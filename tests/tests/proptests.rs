//! Property-based tests over the core data structures and the analytic
//! model.

use mproxy::{Asid, Cluster, ClusterSpec, ProcId};
use mproxy_des::{Dur, SimTime, Simulation, Tally};
use mproxy_model::{get_latency, DesignPoint, MachineParams, MP1};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dur_arithmetic_is_consistent(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let (da, db) = (Dur::from_ns(a), Dur::from_ns(b));
        prop_assert_eq!(da + db, Dur::from_ns(a + b));
        prop_assert_eq!((SimTime::ZERO + da + db) - db, SimTime::ZERO + da);
        prop_assert_eq!(da - db, Dur::from_ns(a.saturating_sub(b)));
    }

    #[test]
    fn tally_merge_equals_combined_stream(xs in prop::collection::vec(-1e6f64..1e6, 0..50),
                                          ys in prop::collection::vec(-1e6f64..1e6, 0..50)) {
        let mut all = Tally::new();
        for &x in xs.iter().chain(&ys) { all.add(x); }
        let mut a = Tally::new();
        for &x in &xs { a.add(x); }
        let mut b = Tally::new();
        for &y in &ys { b.add(y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.sum() - all.sum()).abs() < 1e-6);
        prop_assert_eq!(a.min(), all.min());
        prop_assert_eq!(a.max(), all.max());
    }

    #[test]
    fn model_is_monotone_in_every_primitive(c in 0.1f64..2.0, s in 1.0f64..8.0, l in 0.1f64..5.0) {
        let base = MachineParams { cache_miss_us: c, speed: s, net_latency_us: l, ..MachineParams::G30 };
        let g = get_latency().eval_uniform(&base);
        let worse_c = MachineParams { cache_miss_us: c * 1.5, ..base };
        let better_s = MachineParams { speed: s * 2.0, ..base };
        let worse_l = MachineParams { net_latency_us: l + 1.0, ..base };
        prop_assert!(get_latency().eval_uniform(&worse_c) > g);
        prop_assert!(get_latency().eval_uniform(&better_s) < g);
        prop_assert!(get_latency().eval_uniform(&worse_l) > g);
    }
}

proptest! {
    // Simulator runs are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulator_tracks_analytic_model_on_random_machines(
        c in prop::sample::select(vec![0.25f64, 0.5, 1.0, 1.5]),
        s in prop::sample::select(vec![1.0f64, 2.0, 4.0]),
    ) {
        let machine = MachineParams::G30.with_cache_miss(c).with_speed(s);
        let point = DesignPoint { name: "prop", machine, shared_miss_us: c, ..MP1 };
        let sim = mproxy::micro::run_micro(point).get_us;
        let model = get_latency().eval_uniform(&machine);
        let err = (sim - model).abs() / model;
        prop_assert!(err < 0.10, "sim {sim:.2} vs model {model:.2} ({err:.1}%)");
    }

    #[test]
    fn put_then_get_reads_own_write(
        words in prop::collection::vec(any::<u64>(), 1..16),
        offset_words in 0u64..8,
    ) {
        let sim = Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 2, 1)).unwrap();
        let ok = Rc::new(RefCell::new(false));
        let probe = Rc::clone(&ok);
        let words2 = words.clone();
        cluster.spawn_spmd(move |p| {
            let probe = Rc::clone(&probe);
            let words = words2.clone();
            async move {
                let n = words.len() as u64;
                let buf = p.alloc((offset_words + n + 16) * 8);
                p.ctx().yield_now().await;
                if p.rank() == ProcId(0) {
                    let f = p.new_flag();
                    for (i, w) in words.iter().enumerate() {
                        p.write_u64(buf.index(i as u64, 8), *w);
                    }
                    let raddr = buf.index(offset_words, 8);
                    p.put(buf, Asid(1), raddr, (n * 8) as u32, Some(&f), None)
                        .await
                        .unwrap();
                    p.wait_flag(&f, 1).await;
                    let back = buf.index(offset_words + n + 1, 8);
                    p.get(back, Asid(1), raddr, (n * 8) as u32, Some(&f), None)
                        .await
                        .unwrap();
                    p.wait_flag(&f, 2).await;
                    let all_match = words
                        .iter()
                        .enumerate()
                        .all(|(i, w)| p.read_u64(back.index(i as u64, 8)) == *w);
                    *probe.borrow_mut() = all_match;
                }
            }
        });
        prop_assert!(cluster.run(&sim).completed_cleanly());
        prop_assert!(*ok.borrow(), "PUT-then-GET must read back the written words");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// CRL exclusivity makes region increments atomic: under a random
    /// assignment of increments to ranks and regions — with no barriers,
    /// so requests genuinely contend — every region ends at its exact
    /// increment count on every architecture.
    #[test]
    fn crl_increments_are_atomic_under_contention(
        plan in prop::collection::vec((0u32..4, 0u32..3), 1..24),
        hw in any::<bool>(),
    ) {
        use mproxy_am::{Am, Coll};
        use mproxy_crl::{Crl, RegionId};
        let design = if hw { mproxy_model::HW1 } else { MP1 };
        let sim = Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(design, 4, 1)).unwrap();
        let plan = Rc::new(plan);
        let checked = Rc::new(RefCell::new(0usize));
        let probe = Rc::clone(&checked);
        let plan2 = Rc::clone(&plan);
        cluster.spawn_spmd(move |p| {
            let plan = Rc::clone(&plan2);
            let probe = Rc::clone(&probe);
            async move {
                let am = Am::new(&p);
                let crl = Crl::new(&p, &am);
                let coll = Coll::new(&p, Some(am));
                // Rank 0 homes three counter regions.
                if p.rank().0 == 0 {
                    for _ in 0..3 {
                        crl.create(8);
                    }
                }
                let regions: Vec<_> = (0..3)
                    .map(|idx| crl.map(RegionId { home: ProcId(0), idx }, 8))
                    .collect();
                p.ctx().yield_now().await;
                coll.barrier().await;
                for &(rank, region) in plan.iter() {
                    if rank == p.rank().0 {
                        let rgn = &regions[region as usize];
                        crl.start_write(rgn).await;
                        let v = p.read_u64(rgn.addr());
                        p.write_u64(rgn.addr(), v + 1);
                        crl.end_write(rgn).await;
                    }
                }
                coll.barrier().await;
                for (idx, rgn) in regions.iter().enumerate() {
                    crl.start_read(rgn).await;
                    let expect = plan.iter().filter(|&&(_, r)| r as usize == idx).count();
                    assert_eq!(p.read_u64(rgn.addr()), expect as u64);
                    crl.end_read(rgn).await;
                    *probe.borrow_mut() += 1;
                }
                coll.barrier().await;
            }
        });
        prop_assert!(cluster.run(&sim).completed_cleanly());
        prop_assert_eq!(*checked.borrow(), 12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The DES executor never moves time backwards and runs every task to
    /// completion for arbitrary delay graphs.
    #[test]
    fn des_time_is_monotone_over_random_task_graphs(
        delays in prop::collection::vec(prop::collection::vec(0u64..5_000, 1..6), 1..12),
    ) {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let log = Rc::new(RefCell::new(Vec::new()));
        let max_end: u64 = delays.iter().map(|d| d.iter().sum::<u64>()).max().unwrap_or(0);
        for chain in delays {
            let ctx = ctx.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for d in chain {
                    ctx.delay(mproxy_des::Dur::from_ns(d)).await;
                    log.borrow_mut().push(ctx.now().as_ns());
                }
            });
        }
        let report = sim.run();
        prop_assert!(report.completed_cleanly());
        prop_assert_eq!(report.end.as_ns(), max_end);
        // Events were observed in nondecreasing time order.
        let log = log.borrow();
        prop_assert!(log.windows(2).all(|w| w[0] <= w[1]), "time went backwards: {log:?}");
    }
}
