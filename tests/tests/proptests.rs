//! Property-based tests over the core data structures and the analytic
//! model, driven by the seeded harness in `mproxy_tests::Rng` (each case
//! index seeds the generator, so every failure reproduces exactly).

use mproxy::{Asid, Cluster, ClusterSpec, ProcId};
use mproxy_des::{Dur, SimTime, Simulation, Tally};
use mproxy_model::{get_latency, DesignPoint, MachineParams, MP1};
use mproxy_tests::Rng;
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn dur_arithmetic_is_consistent() {
    for case in 0..64u64 {
        let mut rng = Rng::new(case);
        let a = rng.below(1 << 40);
        let b = rng.below(1 << 40);
        let (da, db) = (Dur::from_ns(a), Dur::from_ns(b));
        assert_eq!(da + db, Dur::from_ns(a + b));
        assert_eq!((SimTime::ZERO + da + db) - db, SimTime::ZERO + da);
        assert_eq!(da - db, Dur::from_ns(a.saturating_sub(b)));
    }
}

#[test]
fn tally_merge_equals_combined_stream() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0x7a11_0000 + case);
        let xs = rng.vec(0, 50, |r| r.f64_range(-1e6, 1e6));
        let ys = rng.vec(0, 50, |r| r.f64_range(-1e6, 1e6));
        let mut all = Tally::new();
        for &x in xs.iter().chain(&ys) {
            all.add(x);
        }
        let mut a = Tally::new();
        for &x in &xs {
            a.add(x);
        }
        let mut b = Tally::new();
        for &y in &ys {
            b.add(y);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.sum() - all.sum()).abs() < 1e-6);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }
}

#[test]
fn model_is_monotone_in_every_primitive() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0x0de1_0000 + case);
        let c = rng.f64_range(0.1, 2.0);
        let s = rng.f64_range(1.0, 8.0);
        let l = rng.f64_range(0.1, 5.0);
        let base = MachineParams {
            cache_miss_us: c,
            speed: s,
            net_latency_us: l,
            ..MachineParams::G30
        };
        let g = get_latency().eval_uniform(&base);
        let worse_c = MachineParams {
            cache_miss_us: c * 1.5,
            ..base
        };
        let better_s = MachineParams {
            speed: s * 2.0,
            ..base
        };
        let worse_l = MachineParams {
            net_latency_us: l + 1.0,
            ..base
        };
        assert!(get_latency().eval_uniform(&worse_c) > g);
        assert!(get_latency().eval_uniform(&better_s) < g);
        assert!(get_latency().eval_uniform(&worse_l) > g);
    }
}

#[test]
fn simulator_tracks_analytic_model_on_random_machines() {
    for case in 0..12u64 {
        let mut rng = Rng::new(0x5100_0000 + case);
        let c = rng.pick(&[0.25f64, 0.5, 1.0, 1.5]);
        let s = rng.pick(&[1.0f64, 2.0, 4.0]);
        let machine = MachineParams::G30.with_cache_miss(c).with_speed(s);
        let point = DesignPoint {
            name: "prop",
            machine,
            shared_miss_us: c,
            ..MP1
        };
        let sim = mproxy::micro::run_micro(point).get_us;
        let model = get_latency().eval_uniform(&machine);
        let err = (sim - model).abs() / model;
        assert!(err < 0.10, "sim {sim:.2} vs model {model:.2} ({err:.1}%)");
    }
}

#[test]
fn put_then_get_reads_own_write() {
    for case in 0..12u64 {
        let mut rng = Rng::new(0x9e70_0000 + case);
        let words = rng.vec(1, 16, Rng::next_u64);
        let offset_words = rng.below(8);
        let sim = Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 2, 1)).unwrap();
        let ok = Rc::new(RefCell::new(false));
        let probe = Rc::clone(&ok);
        let words2 = words.clone();
        cluster.spawn_spmd(move |p| {
            let probe = Rc::clone(&probe);
            let words = words2.clone();
            async move {
                let n = words.len() as u64;
                let buf = p.alloc((offset_words + n + 16) * 8);
                p.ctx().yield_now().await;
                if p.rank() == ProcId(0) {
                    let f = p.new_flag();
                    for (i, w) in words.iter().enumerate() {
                        p.write_u64(buf.index(i as u64, 8), *w);
                    }
                    let raddr = buf.index(offset_words, 8);
                    p.put(buf, Asid(1), raddr, (n * 8) as u32, Some(&f), None)
                        .await
                        .unwrap();
                    p.wait_flag(&f, 1).await;
                    let back = buf.index(offset_words + n + 1, 8);
                    p.get(back, Asid(1), raddr, (n * 8) as u32, Some(&f), None)
                        .await
                        .unwrap();
                    p.wait_flag(&f, 2).await;
                    let all_match = words
                        .iter()
                        .enumerate()
                        .all(|(i, w)| p.read_u64(back.index(i as u64, 8)) == *w);
                    *probe.borrow_mut() = all_match;
                }
            }
        });
        assert!(cluster.run(&sim).completed_cleanly());
        assert!(*ok.borrow(), "PUT-then-GET must read back the written words");
    }
}

/// CRL exclusivity makes region increments atomic: under a random
/// assignment of increments to ranks and regions — with no barriers, so
/// requests genuinely contend — every region ends at its exact increment
/// count on every architecture.
#[test]
fn crl_increments_are_atomic_under_contention() {
    for case in 0..8u64 {
        let mut rng = Rng::new(0xc41_0000 + case);
        let plan: Vec<(u32, u32)> =
            rng.vec(1, 24, |r| (r.below(4) as u32, r.below(3) as u32));
        let hw = rng.coin();
        use mproxy_am::{Am, Coll};
        use mproxy_crl::{Crl, RegionId};
        let design = if hw { mproxy_model::HW1 } else { MP1 };
        let sim = Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(design, 4, 1)).unwrap();
        let plan = Rc::new(plan);
        let checked = Rc::new(RefCell::new(0usize));
        let probe = Rc::clone(&checked);
        let plan2 = Rc::clone(&plan);
        cluster.spawn_spmd(move |p| {
            let plan = Rc::clone(&plan2);
            let probe = Rc::clone(&probe);
            async move {
                let am = Am::new(&p);
                let crl = Crl::new(&p, &am);
                let coll = Coll::new(&p, Some(am));
                // Rank 0 homes three counter regions.
                if p.rank().0 == 0 {
                    for _ in 0..3 {
                        crl.create(8);
                    }
                }
                let regions: Vec<_> = (0..3)
                    .map(|idx| crl.map(RegionId { home: ProcId(0), idx }, 8))
                    .collect();
                p.ctx().yield_now().await;
                coll.barrier().await;
                for &(rank, region) in plan.iter() {
                    if rank == p.rank().0 {
                        let rgn = &regions[region as usize];
                        crl.start_write(rgn).await;
                        let v = p.read_u64(rgn.addr());
                        p.write_u64(rgn.addr(), v + 1);
                        crl.end_write(rgn).await;
                    }
                }
                coll.barrier().await;
                for (idx, rgn) in regions.iter().enumerate() {
                    crl.start_read(rgn).await;
                    let expect = plan.iter().filter(|&&(_, r)| r as usize == idx).count();
                    assert_eq!(p.read_u64(rgn.addr()), expect as u64);
                    crl.end_read(rgn).await;
                    *probe.borrow_mut() += 1;
                }
                coll.barrier().await;
            }
        });
        assert!(cluster.run(&sim).completed_cleanly());
        assert_eq!(*checked.borrow(), 12);
    }
}

/// The DES executor never moves time backwards and runs every task to
/// completion for arbitrary delay graphs.
#[test]
fn des_time_is_monotone_over_random_task_graphs() {
    for case in 0..32u64 {
        let mut rng = Rng::new(0xde50_0000 + case);
        let delays: Vec<Vec<u64>> = rng.vec(1, 12, |r| r.vec(1, 6, |r2| r2.below(5_000)));
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let log = Rc::new(RefCell::new(Vec::new()));
        let max_end: u64 = delays
            .iter()
            .map(|d| d.iter().sum::<u64>())
            .max()
            .unwrap_or(0);
        for chain in delays {
            let ctx = ctx.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for d in chain {
                    ctx.delay(mproxy_des::Dur::from_ns(d)).await;
                    log.borrow_mut().push(ctx.now().as_ns());
                }
            });
        }
        let report = sim.run();
        assert!(report.completed_cleanly());
        assert_eq!(report.end.as_ns(), max_end);
        // Events were observed in nondecreasing time order.
        let log = log.borrow();
        assert!(
            log.windows(2).all(|w| w[0] <= w[1]),
            "time went backwards: {log:?}"
        );
    }
}
