//! Whole-stack determinism: repeated runs are bit-identical in results,
//! simulated time, and event counts — the property that makes the
//! evaluation reproducible.

use mproxy_apps::{run_app_flat, AppId, AppSize};
use mproxy_model::{MP0, MP2, SW1};

#[test]
fn identical_runs_are_bit_identical() {
    for (app, d) in [(AppId::Sample, MP0), (AppId::Lu, MP2), (AppId::Wator, SW1)] {
        let a = run_app_flat(app, d, 4, AppSize::Tiny);
        let b = run_app_flat(app, d, 4, AppSize::Tiny);
        assert_eq!(a.elapsed_us, b.elapsed_us, "{} time drifted", app.name());
        assert_eq!(a.checksum, b.checksum, "{} result drifted", app.name());
        assert_eq!(
            a.traffic.total_ops,
            b.traffic.total_ops,
            "{} traffic drifted",
            app.name()
        );
    }
}

#[test]
fn micro_benchmarks_are_deterministic() {
    let a = mproxy::micro::run_micro(MP0);
    let b = mproxy::micro::run_micro(MP0);
    assert_eq!(a, b);
}
