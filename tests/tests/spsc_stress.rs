//! Randomized cross-thread stress for the runtime's lock-free queues:
//! the full/empty-flag SPSC command ring (`mproxy_rt::spsc`) and the
//! bounded sequence-counter ring (`mproxy_rt::ring::Ring`) in SPSC and
//! MPSC configurations.
//!
//! The schedules are randomized (burst sizes, injected yields) but
//! **seeded**: every run prints nothing and reproduces from its constant
//! seed, so a CI failure is replayable. Capacities are tiny so the rings
//! wrap thousands of times and spend much of the run full — the
//! full-queue edge and the wraparound arithmetic are the point, not the
//! happy path.
//!
//! `MPROXY_STRESS_ITERS` scales the per-test operation count (CI runs a
//! seeded high-iteration loop on stable, and the same tests under
//! ThreadSanitizer on nightly, where the defaults already take long
//! enough).

use std::sync::Arc;

use mproxy_rt::ring::Ring;
use mproxy_rt::spsc::{self, Entry};

/// Per-test operation count; override with `MPROXY_STRESS_ITERS`.
fn iters(default: u64) -> u64 {
    std::env::var("MPROXY_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Tiny deterministic PRNG (xorshift64*); no external crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish value in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[test]
fn spsc_randomized_two_thread_stress() {
    let n = iters(50_000);
    // Capacity 8: the producer finds the queue full constantly and the
    // ring wraps every 8 entries.
    let (mut tx, mut rx) = spsc::channel(8);
    let producer = std::thread::spawn(move || {
        let mut rng = Rng::new(0xfeed_0001);
        let mut sent = 0u64;
        while sent < n {
            // Random burst of sends, then maybe a yield to shake up the
            // interleaving.
            let burst = 1 + rng.below(12);
            for _ in 0..burst {
                if sent == n {
                    break;
                }
                tx.send(Entry {
                    op: sent as u32,
                    args: [sent, sent.wrapping_mul(0x9e37), !sent, 0],
                    ..Entry::default()
                });
                sent += 1;
            }
            if rng.below(4) == 0 {
                std::thread::yield_now();
            }
        }
    });
    let mut rng = Rng::new(0xfeed_0002);
    let mut out = Vec::new();
    let mut expected = 0u64;
    while expected < n {
        // Alternate single pops and randomized bursts.
        let burst = 1 + rng.below(16) as usize;
        out.clear();
        if rx.pop_burst(&mut out, burst) == 0 {
            std::thread::yield_now();
            continue;
        }
        for e in &out {
            assert_eq!(u64::from(e.op), expected & 0xffff_ffff);
            assert_eq!(e.args[0], expected, "payload word 0 out of sequence");
            assert_eq!(e.args[1], expected.wrapping_mul(0x9e37));
            assert_eq!(e.args[2], !expected, "payload word 2 torn");
            expected += 1;
        }
    }
    assert!(rx.try_recv().is_none(), "queue must end empty");
    producer.join().unwrap();
}

#[test]
fn ring_spsc_randomized_full_queue_wraparound() {
    let n = iters(50_000);
    let ring = Arc::new(Ring::<u64>::new(4));
    let r2 = Arc::clone(&ring);
    let producer = std::thread::spawn(move || {
        let mut rng = Rng::new(0xabcd_0001);
        for i in 0..n {
            let mut v = i;
            // try_push must hand the exact value back on full.
            loop {
                match r2.try_push(v) {
                    Ok(()) => break,
                    Err(back) => {
                        assert_eq!(back, i, "full ring must return the rejected value");
                        v = back;
                        std::thread::yield_now();
                    }
                }
            }
            if rng.below(8) == 0 {
                std::thread::yield_now();
            }
        }
    });
    let mut rng = Rng::new(0xabcd_0002);
    let mut expected = 0u64;
    while expected < n {
        match ring.try_pop() {
            Some(v) => {
                assert_eq!(v, expected, "FIFO order broken across wraparound");
                expected += 1;
                if rng.below(16) == 0 {
                    std::thread::yield_now();
                }
            }
            None => std::thread::yield_now(),
        }
    }
    assert!(ring.try_pop().is_none());
    assert!(ring.is_empty());
    producer.join().unwrap();
}

#[test]
fn ring_mpsc_randomized_multi_producer_stress() {
    const PRODUCERS: usize = 3;
    let per_producer = iters(60_000) / PRODUCERS as u64;
    // Capacity 8 with 3 producers: constant CAS races on the head
    // counter plus the full-ring path on every lap.
    let ring = Arc::new(Ring::<(u8, u64)>::new(8));
    let producers: Vec<_> = (0..PRODUCERS as u8)
        .map(|id| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut rng = Rng::new(0x5eed_0000 + u64::from(id));
                for i in 0..per_producer {
                    let mut v = (id, i);
                    loop {
                        match ring.try_push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                    if rng.below(8) == 0 {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();
    let mut next = [0u64; PRODUCERS];
    let mut got = 0u64;
    while got < per_producer * PRODUCERS as u64 {
        match ring.try_pop() {
            Some((id, i)) => {
                assert_eq!(
                    i, next[id as usize],
                    "per-producer FIFO broken for producer {id}"
                );
                next[id as usize] += 1;
                got += 1;
            }
            None => std::thread::yield_now(),
        }
    }
    for p in producers {
        p.join().unwrap();
    }
    assert!(ring.is_empty(), "all entries accounted for");
    assert_eq!(next, [per_producer; PRODUCERS]);
}
