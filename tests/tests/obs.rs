//! Telemetry-vs-truth: the observability layer's numbers must agree
//! with ground truth established by independent means.
//!
//! * Counters are checked against the tagged-payload exactly-once
//!   checker — every delivery the checker verified must appear in
//!   `ops_applied`, and the per-receiver accounting identity
//!   `msgs_in == applied + dedup + damaged + shed` must hold exactly on
//!   a post-shutdown snapshot (counters live in the shared hub, so they
//!   survive proxy respawns).
//! * Histogram merge must be associative and commutative — the property
//!   that makes per-node recorders aggregatable in any order.
//! * The Chrome-trace exporter must emit valid JSON containing the
//!   kill → respawn → resync recovery spans for a chaos run.
//!
//! The soak at the bottom honours `MPROXY_STRESS_ITERS` (seeds, CI
//! scales it up).

use std::time::Duration;

use mproxy_bench::chaos;
use mproxy_obs::{chrome, json, Ctr, HistId, Histogram};
use mproxy_rt::{FlagId, RqId, RtClusterBuilder, RtFaultPlan};

const WAIT: Duration = Duration::from_secs(60);

/// Clean (fault-free) two-sender fan-in with recording armed: every
/// counter the telemetry layer reports must match the op counts the
/// test itself performed.
#[test]
fn counters_match_ground_truth_on_clean_fan_in() {
    const SENDERS: usize = 2;
    const PER: u64 = 200;
    let mut b = RtClusterBuilder::new(SENDERS + 1);
    b.telemetry(true);
    let sink_asid = b.add_process(0, 1 << 16);
    let src_asids: Vec<u32> = (1..=SENDERS).map(|n| b.add_process(n, 1 << 16)).collect();
    let (cluster, mut eps) = b.start();
    let src_eps = eps.split_off(1);
    let sink = eps.pop().expect("sink endpoint");

    let handles: Vec<_> = src_eps
        .into_iter()
        .zip(src_asids)
        .map(|(mut e, asid)| {
            std::thread::spawn(move || {
                for i in 1..=PER {
                    e.seg().write_u64(0, (u64::from(asid) << 32) | i);
                    e.enq(0, sink_asid, RqId(0), 8, Some(FlagId(0)), None);
                    e.wait_flag_timeout(FlagId(0), i, WAIT).expect("ack wait");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("sender thread");
    }
    let mut drained = 0u64;
    let deadline = std::time::Instant::now() + WAIT;
    while drained < SENDERS as u64 * PER {
        if sink.rq_try_recv(RqId(0)).is_some() {
            drained += 1;
        } else {
            assert!(std::time::Instant::now() < deadline, "drain timed out");
            std::thread::yield_now();
        }
    }
    assert!(
        sink.rq_try_recv(RqId(0)).is_none(),
        "no duplicate deliveries"
    );

    let hub = cluster.obs_handle();
    cluster.shutdown();
    let snap = hub.snapshot("clean_fan_in");

    let total = SENDERS as u64 * PER;
    assert_eq!(snap.total(Ctr::OpsSubmitted), total, "submits == enq calls");
    assert_eq!(snap.total(Ctr::OpsApplied), total, "applies == deliveries");
    assert_eq!(snap.total(Ctr::MsgsOut), total, "no faults: one frame/op");
    chaos::telemetry_truth(&snap).expect("per-receiver accounting identity");
    // Recording was armed: the submit-side stamp is taken 1-in-32 and
    // every stamped entry records into the cmd-wait and lsync-RTT
    // histograms, so with 200 ops/sender samples are guaranteed.
    assert!(
        snap.merged_hist(HistId::CmdWaitNs).count() > 0,
        "cmd-wait histogram recorded samples"
    );
    assert!(
        snap.merged_hist(HistId::LsyncRttNs).count() > 0,
        "lsync RTT histogram recorded samples"
    );
    let json_doc = snap.to_json();
    json::validate(&json_doc).expect("snapshot JSON is valid");
}

/// The chaos scenarios themselves assert telemetry-vs-truth after every
/// run (see `chaos::telemetry_truth` and the sink `ops_applied` check in
/// `kill_fan_in`); here we pin that the checks hold across a kill +
/// respawn, where the counters must survive the proxy's death.
#[test]
fn counters_survive_kill_and_match_exactly_once_checker() {
    let r = chaos::kill_sink_fan_in(11, 40);
    assert!(r.passed, "{}: {}", r.name, r.failure);
    assert!(r.deaths >= 1, "kill fired");
    let snap = r.obs.expect("scenario captured a snapshot");
    assert_eq!(
        snap.scopes[0].counter(Ctr::OpsApplied),
        2 * 40,
        "sink applied exactly the verified deliveries"
    );
    assert!(snap.total(Ctr::Kills) >= 1);
    assert!(snap.total(Ctr::Respawns) >= 1);
    assert!(snap.total(Ctr::HellosOut) >= 1, "respawn announced itself");
}

/// Shard dimension of the merge algebra: on a sharded cluster every
/// lane registers its own `node{n}s{s}` scope, and the merged per-node
/// view must absorb them bucket-wise — counters summed, histograms
/// merged — without changing any cluster-wide total, while the
/// per-receiver accounting identity keeps holding on the merged scopes.
#[test]
fn shard_scopes_merge_to_node_view() {
    const PER: u64 = 150;
    let mut b = RtClusterBuilder::new(2);
    b.telemetry(true);
    b.shards(2);
    // Two sink users on node 0 (the jump hash may co-locate them; the
    // merge must be correct either way), one source on node 1.
    let sink_a = b.add_process(0, 1 << 16);
    let sink_b = b.add_process(0, 1 << 16);
    let _src = b.add_process(1, 1 << 16);
    let (cluster, mut eps) = b.start();
    let mut src = eps.pop().expect("source endpoint");
    let eb = eps.pop().expect("sink b");
    let ea = eps.pop().expect("sink a");

    for i in 1..=PER {
        src.seg().write_u64(0, i);
        let dst = if i % 2 == 0 { sink_b } else { sink_a };
        src.enq(0, dst, RqId(0), 8, Some(FlagId(0)), None);
        src.wait_flag_timeout(FlagId(0), i, WAIT).expect("ack wait");
    }
    for sink in [&ea, &eb] {
        let deadline = std::time::Instant::now() + WAIT;
        let mut drained = 0u64;
        while drained < PER / 2 {
            if sink.rq_try_recv(RqId(0)).is_some() {
                drained += 1;
            } else {
                assert!(std::time::Instant::now() < deadline, "drain timed out");
                std::thread::yield_now();
            }
        }
    }

    // The cluster is quiescent (every op acked and drained): the raw and
    // merged views are stable and must agree.
    let raw = cluster.obs_snapshot("sharded_raw");
    let merged = cluster.obs_snapshot_by_node("sharded_merged");

    let lane_scopes: Vec<&str> = raw
        .scopes
        .iter()
        .map(|sc| sc.name.as_str())
        .filter(|n| n.starts_with("node"))
        .collect();
    assert_eq!(
        lane_scopes,
        vec!["node0s0", "node0s1", "node1s0", "node1s1"],
        "sharded lanes register per-shard scopes"
    );
    let node_scopes: Vec<&str> = merged
        .scopes
        .iter()
        .map(|sc| sc.name.as_str())
        .filter(|n| n.starts_with("node"))
        .collect();
    assert_eq!(node_scopes, vec!["node0", "node1"], "merged to node view");

    for ctr in [Ctr::OpsApplied, Ctr::MsgsIn, Ctr::MsgsOut, Ctr::AcksOut] {
        assert_eq!(
            merged.total(ctr),
            raw.total(ctr),
            "merge must not change the {ctr:?} total"
        );
        for node in 0..2 {
            let want: u64 = raw
                .scopes
                .iter()
                .filter(|sc| sc.name.starts_with(&format!("node{node}s")))
                .map(|sc| sc.counter(ctr))
                .sum();
            let got = merged
                .scopes
                .iter()
                .find(|sc| sc.name == format!("node{node}"))
                .expect("merged node scope")
                .counter(ctr);
            assert_eq!(got, want, "node{node} {ctr:?} is the shard sum");
        }
    }
    assert_eq!(
        merged.total(Ctr::OpsApplied),
        PER,
        "every verified delivery counted once across shard scopes"
    );
    // Histograms merge bucket-wise: per-node counts are the shard sums.
    for node in 0..2 {
        let want: u64 = raw
            .scopes
            .iter()
            .filter(|sc| sc.name.starts_with(&format!("node{node}s")))
            .map(|sc| sc.hist(HistId::CmdWaitNs).count())
            .sum();
        let got = merged
            .scopes
            .iter()
            .find(|sc| sc.name == format!("node{node}"))
            .expect("merged node scope")
            .hist(HistId::CmdWaitNs)
            .count();
        assert_eq!(got, want, "node{node} cmd-wait samples are the shard sum");
    }
    chaos::telemetry_truth(&merged).expect("identity holds on merged scopes");
    json::validate(&merged.to_json()).expect("merged snapshot JSON is valid");
    cluster.shutdown();
}

/// Bucket-wise histogram merge is associative and commutative, and
/// preserves count / sum / min / max — aggregation order can't matter.
#[test]
fn histogram_merge_is_associative_and_commutative() {
    let mk = |seed: u64, n: u64| {
        let mut h = Histogram::new();
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 1_000_000);
        }
        h
    };
    let (a, b, c) = (mk(1, 300), mk(2, 500), mk(3, 700));

    let mut ab_c = a.clone();
    ab_c.merge(&b);
    ab_c.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut a_bc = a.clone();
    a_bc.merge(&bc);
    let mut cba = c.clone();
    cba.merge(&b);
    cba.merge(&a);

    for m in [&a_bc, &cba] {
        assert_eq!(ab_c.count(), m.count());
        assert_eq!(ab_c.sum(), m.sum());
        assert_eq!(ab_c.min(), m.min());
        assert_eq!(ab_c.max(), m.max());
        assert_eq!(ab_c.nonzero_buckets(), m.nonzero_buckets());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(ab_c.quantile(q), m.quantile(q));
        }
    }
    assert_eq!(ab_c.count(), 1500);
}

/// A kill + respawn under recording renders to a valid Chrome-trace
/// document containing the synthesized recovery spans.
#[test]
fn chrome_trace_shows_recovery_span() {
    const PER: u64 = 50;
    let mut b = RtClusterBuilder::new(2);
    b.telemetry(true);
    let sink_asid = b.add_process(0, 1 << 16);
    let _src = b.add_process(1, 1 << 16);
    b.fault_plan(RtFaultPlan::new(3).kill(0, PER / 2));
    b.supervise(3, Duration::from_millis(1));
    let (cluster, mut eps) = b.start();
    let mut src = eps.pop().expect("source endpoint");
    drop(eps.pop());

    for i in 1..=PER {
        src.seg().write_u64(0, i);
        src.enq(0, sink_asid, RqId(0), 8, Some(FlagId(0)), None);
        src.wait_flag_timeout(FlagId(0), i, WAIT).expect("ack wait");
    }
    assert!(cluster.deaths(0) >= 1, "kill fired");
    let hub = cluster.obs_handle();
    cluster.shutdown();

    let trace = chrome::chrome_trace(&hub.trace_dump());
    json::validate(&trace).expect("trace is valid JSON");
    assert!(
        chrome::has_recovery_span(&trace),
        "kill → respawn → resync span present: {trace}"
    );
}

/// Seeded telemetry soak, scaled by `MPROXY_STRESS_ITERS`: randomized
/// chaos scenarios assert telemetry-vs-truth internally on the always-on
/// counter tier (recording stays disarmed — the zero-cost path); this
/// re-checks the identity and validates every exported artifact.
fn soak(seeds: u64) {
    for seed in 0..seeds {
        let r = chaos::randomized(seed, 30);
        assert!(r.passed, "seed {seed}: {}", r.failure);
        let snap = r.obs.expect("snapshot captured");
        chaos::telemetry_truth(&snap).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        json::validate(&snap.to_json()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        json::validate(&r.shutdown_json).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn telemetry_soak() {
    let seeds = std::env::var("MPROXY_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    soak(seeds);
}

#[test]
#[ignore = "long nightly soak; run with --ignored"]
fn telemetry_soak_nightly() {
    soak(40);
}
