//! End-to-end fault injection: the reliable link layer must hide drops,
//! duplicates, reorders, and corruption from the protocol above it,
//! surface genuinely dead nodes as [`CommError::Unreachable`], and stay
//! bit-for-bit deterministic per seed.

use mproxy::micro::pingpong_verified;
use mproxy::{Cluster, ClusterSpec, CommError, FaultPlan, ProcId, RemoteQueue};
use mproxy_des::Simulation;
use mproxy_model::{MP1, HW1, SW1};
use mproxy_tests::Rng;
use std::cell::RefCell;
use std::rc::Rc;

/// Property: an ENQ stream through an arbitrarily faulty link is
/// delivered exactly once, in submission order, on every architecture
/// and for every seed.
#[test]
fn faulty_link_delivers_enq_streams_exactly_once_in_order() {
    for case in 0..10u64 {
        let mut rng = Rng::new(0xfa17_0000 + case);
        let design = rng.pick(&[MP1, HW1, SW1]);
        let k = rng.range(8, 33);
        let plan = FaultPlan::new(rng.next_u64())
            .drop(rng.f64_range(0.0, 0.08))
            .duplicate(rng.f64_range(0.0, 0.04))
            .reorder(rng.f64_range(0.0, 0.08), rng.f64_range(5.0, 50.0))
            .corrupt(rng.f64_range(0.0, 0.04));
        let sim = Simulation::new();
        let cluster =
            Cluster::new_with_faults(&sim.ctx(), ClusterSpec::new(design, 2, 1), plan).unwrap();
        let leftover = Rc::new(RefCell::new(usize::MAX));
        let probe = Rc::clone(&leftover);
        cluster.spawn_spmd(move |p| {
            let probe = Rc::clone(&probe);
            async move {
                let buf = p.alloc(64);
                let q = p.new_queue();
                p.ctx().yield_now().await;
                if p.rank().0 == 0 {
                    // Fire the whole stream; inline capture lets the
                    // buffer be reused immediately.
                    for i in 0..k {
                        p.write_u64(buf, i);
                        p.enq(
                            buf,
                            RemoteQueue {
                                proc: ProcId(1),
                                rq: q,
                            },
                            8,
                            None,
                            None,
                        )
                        .await
                        .unwrap();
                    }
                } else {
                    for i in 0..k {
                        let got = p.rq_recv(q).await.expect("stream ended early");
                        let v = u64::from_le_bytes(got.as_ref().try_into().unwrap());
                        assert_eq!(v, i, "case {case}: out of order or duplicated");
                    }
                    *probe.borrow_mut() = p.rq_len(q);
                }
            }
        });
        assert!(
            cluster.run(&sim).completed_cleanly(),
            "case {case} on {} deadlocked",
            design.name
        );
        assert_eq!(*leftover.borrow(), 0, "case {case}: stray deliveries");
        assert!(cluster.comm_error(ProcId(0)).is_none());
        assert!(cluster.comm_error(ProcId(1)).is_none());
    }
}

/// The same seed must reproduce the same faulty run bit for bit:
/// identical timing, identical injected-fault and recovery counters.
#[test]
fn same_seed_reproduces_the_same_faulty_run_bit_for_bit() {
    let plan = || {
        FaultPlan::new(0xdeed)
            .drop(0.03)
            .duplicate(0.02)
            .reorder(0.04, 25.0)
            .corrupt(0.01)
    };
    let a = pingpong_verified(MP1, 64, 32, Some(plan()));
    let b = pingpong_verified(MP1, 64, 32, Some(plan()));
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.rt_us.to_bits(), b.rt_us.to_bits());
    assert_eq!(a.data_ok, b.data_ok);
    assert_eq!(a.error, b.error);
    assert_eq!(a.report, b.report);
    assert!(a.report.injected.packets > 0, "plan injected nothing");
}

/// A node whose proxy stalls past the whole retransmission budget is
/// reported as unreachable at the submitting process — the run ends,
/// it never deadlocks.
#[test]
fn stalled_node_surfaces_unreachable_without_deadlock() {
    // Stall node 1 for 50 ms: far beyond the ~12.8 ms default budget.
    let plan = FaultPlan::new(1).stall(1, 0.0, 50_000.0);
    let sim = Simulation::new();
    let cluster =
        Cluster::new_with_faults(&sim.ctx(), ClusterSpec::new(MP1, 2, 1), plan).unwrap();
    let seen = Rc::new(RefCell::new(None));
    let probe = Rc::clone(&seen);
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let buf = p.alloc(64);
            p.ctx().yield_now().await;
            if p.rank().0 == 0 {
                let f = p.new_flag();
                p.write_u64(buf, 7);
                p.put(buf, ProcId(1).into(), buf, 8, Some(&f), None)
                    .await
                    .unwrap();
                let err = p.wait_flag_result(&f, 1).await.unwrap_err();
                *probe.borrow_mut() = Some(err);
            }
        }
    });
    assert!(cluster.run(&sim).completed_cleanly(), "stall deadlocked");
    let err = seen.borrow().clone().expect("rank 0 never saw a failure");
    assert!(
        matches!(err, CommError::Unreachable { dst: 1, .. }),
        "expected unreachable node 1, got: {err}"
    );
    assert_eq!(cluster.comm_error(ProcId(0)), Some(err));
    assert_eq!(cluster.fault_report().link.unreachable, 1);
}

/// Heavy corruption is healed by NACK-driven retransmission: everything
/// still arrives exactly once with the right contents.
#[test]
fn heavy_corruption_recovers_via_nack_retransmission() {
    let plan = FaultPlan::new(7).corrupt(0.3);
    let r = pingpong_verified(MP1, 64, 24, Some(plan));
    assert_eq!(r.rounds, 24);
    assert!(r.data_ok, "corrupted payload leaked through");
    assert_eq!(r.error, None);
    assert!(r.report.link.nacks_sent > 0, "corruption never NACKed");
    assert_eq!(r.report.link.unreachable, 0);
}
