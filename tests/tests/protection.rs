//! Protection semantics across the whole stack: per-asid grants, faults,
//! and revocation — on every architecture (the property the paper's title
//! promises).

use mproxy::{Asid, Cluster, ClusterSpec, CommError, ProcId};
use mproxy_des::Simulation;
use mproxy_model::{ALL_DESIGN_POINTS, MP1};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn ungranted_access_is_denied_on_every_architecture() {
    for d in ALL_DESIGN_POINTS {
        let sim = Simulation::new();
        let mut spec = ClusterSpec::new(d, 2, 1);
        spec.allow_all = false;
        let cluster = Cluster::new(&sim.ctx(), spec).unwrap();
        let outcome = Rc::new(RefCell::new(Vec::new()));
        let probe = Rc::clone(&outcome);
        cluster.spawn_spmd(move |p| {
            let probe = Rc::clone(&probe);
            async move {
                let buf = p.alloc(8);
                p.ctx().yield_now().await;
                if p.rank() == ProcId(0) {
                    let r = p.put(buf, Asid(1), buf, 8, None, None).await;
                    probe.borrow_mut().push(r);
                    let r = p.get(buf, Asid(1), buf, 8, None, None).await;
                    probe.borrow_mut().push(r);
                }
            }
        });
        assert!(cluster.run(&sim).completed_cleanly());
        for r in outcome.borrow().iter() {
            assert!(
                matches!(r, Err(CommError::PermissionDenied { .. })),
                "{}: expected denial, got {r:?}",
                d.name
            );
        }
        assert_eq!(cluster.proc_stats(ProcId(0)).faults, 2, "{}", d.name);
    }
}

#[test]
fn grant_enables_then_revoke_disables() {
    let sim = Simulation::new();
    let mut spec = ClusterSpec::new(MP1, 2, 1);
    spec.allow_all = false;
    let cluster = Cluster::new(&sim.ctx(), spec).unwrap();
    cluster.grant(ProcId(0), Asid(1));
    let phase2_denied = Rc::new(RefCell::new(false));
    let probe = Rc::clone(&phase2_denied);
    // Revocation takes effect for ops submitted afterwards; model it by
    // revoking after the first completed op via a mid-run hook.
    let handle = cluster.proc(ProcId(0));
    let _ = handle;
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let buf = p.alloc(8);
            let f = p.new_flag();
            p.ctx().yield_now().await;
            if p.rank() == ProcId(0) {
                p.put(buf, Asid(1), buf, 8, Some(&f), None).await.unwrap();
                p.wait_flag(&f, 1).await;
                *probe.borrow_mut() = true;
            }
        }
    });
    assert!(cluster.run(&sim).completed_cleanly());
    assert!(*phase2_denied.borrow(), "granted put must succeed");
    cluster.revoke(ProcId(0), Asid(1));
    // A fresh run on the same cluster state isn't supported; revocation is
    // validated through the runtime crate's live test instead.
}

#[test]
fn out_of_bounds_remote_address_rejected() {
    let sim = Simulation::new();
    let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 2, 1)).unwrap();
    let saw = Rc::new(RefCell::new(None));
    let probe = Rc::clone(&saw);
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let buf = p.alloc(8);
            p.ctx().yield_now().await;
            if p.rank() == ProcId(0) {
                let r = p
                    .put(buf, Asid(1), mproxy::Addr(1 << 40), 8, None, None)
                    .await;
                *probe.borrow_mut() = Some(r);
            }
        }
    });
    assert!(cluster.run(&sim).completed_cleanly());
    assert!(matches!(
        saw.borrow().as_ref().unwrap(),
        Err(CommError::OutOfBounds { .. })
    ));
}

#[test]
fn zero_byte_transfers_rejected() {
    let sim = Simulation::new();
    let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 2, 1)).unwrap();
    let saw = Rc::new(RefCell::new(None));
    let probe = Rc::clone(&saw);
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let buf = p.alloc(8);
            p.ctx().yield_now().await;
            if p.rank().0 == 0 {
                *probe.borrow_mut() = Some(p.put(buf, Asid(1), buf, 0, None, None).await);
            }
        }
    });
    assert!(cluster.run(&sim).completed_cleanly());
    assert!(matches!(
        saw.borrow().as_ref().unwrap(),
        Err(CommError::EmptyTransfer)
    ));
}
