//! Cross-layer integration: CRL + Split-C + collectives + AM sharing one
//! process, SMP nodes with several compute processors, and mixed traffic.

use mproxy::{Cluster, ClusterSpec, ProcId};
use mproxy_am::{Am, Coll};
use mproxy_apps::{run_app, AppId, AppSize};
use mproxy_crl::{Crl, RegionId};
use mproxy_des::Simulation;
use mproxy_model::{ALL_DESIGN_POINTS, HW0, MP2};
use mproxy_splitc::{GlobalPtr, SplitC};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn all_layers_interoperate_in_one_process() {
    let sim = Simulation::new();
    let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(MP2, 2, 2)).unwrap();
    let done = Rc::new(RefCell::new(0));
    let probe = Rc::clone(&done);
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let am = Am::new(&p);
            let sc = SplitC::new(&p, &am);
            let crl = Crl::new(&p, &am);
            let coll = Coll::new(&p, Some(am.clone()));
            let buf = p.alloc(64);
            let rid = RegionId {
                home: ProcId(0),
                idx: 0,
            };
            if p.rank().0 == 0 {
                crl.create(8);
            }
            let rgn = crl.map(rid, 8);
            p.ctx().yield_now().await;
            coll.barrier().await;
            // Split-C write into the right neighbour...
            let next = ProcId(((p.rank().0 as usize + 1) % p.nprocs()) as u32);
            p.write_f64(buf, f64::from(p.rank().0));
            sc.store(
                buf,
                GlobalPtr {
                    proc: next,
                    addr: buf.offset(8),
                },
                8,
            )
            .await;
            sc.all_store_sync(&coll).await;
            // ...a CRL counter increment...
            crl.start_write(&rgn).await;
            let v = p.read_u64(rgn.addr());
            p.write_u64(rgn.addr(), v + 1);
            crl.end_write(&rgn).await;
            coll.barrier().await;
            // ...and a reduction over what the neighbour stored.
            let got = p.read_f64(buf.offset(8));
            let total = coll.allreduce_sum(got).await;
            assert_eq!(total, 0.0 + 1.0 + 2.0 + 3.0);
            crl.start_read(&rgn).await;
            assert_eq!(p.read_u64(rgn.addr()), 4);
            crl.end_read(&rgn).await;
            coll.barrier().await;
            *probe.borrow_mut() += 1;
        }
    });
    assert!(cluster.run(&sim).completed_cleanly());
    assert_eq!(*done.borrow(), 4);
}

#[test]
fn smp_topology_matches_flat_results_everywhere() {
    for d in ALL_DESIGN_POINTS {
        let flat = run_app(AppId::Water, d, 4, 1, AppSize::Tiny);
        let smp = run_app(AppId::Water, d, 2, 2, AppSize::Tiny);
        assert_eq!(
            flat.checksum, smp.checksum,
            "{}: topology changed the answer",
            d.name
        );
        // Intra-node traffic bypasses the wire, so the SMP layout is
        // never slower by an order of magnitude.
        assert!(smp.elapsed_us < flat.elapsed_us * 3.0, "{}", d.name);
    }
}

#[test]
fn uniprocessor_cluster_runs_every_app() {
    for app in [AppId::Mm, AppId::Fft, AppId::Sampleb] {
        let r = run_app(app, HW0, 1, 1, AppSize::Tiny);
        assert!(r.elapsed_us > 0.0);
    }
}

#[test]
fn proxy_contention_increases_with_procs_per_node() {
    // One proxy serving four compute processors must be busier than one
    // serving one (Figure 9's mechanism). Same total processors, so the
    // per-node load quadruples minus what intra-node traffic absorbs.
    let one = run_app(AppId::Sample, mproxy_model::MP1, 8, 1, AppSize::Tiny);
    let four = run_app(AppId::Sample, mproxy_model::MP1, 2, 4, AppSize::Tiny);
    assert!(
        four.traffic.interface_utilization > one.traffic.interface_utilization,
        "4-per-node proxy util {:.2} should exceed 1-per-node {:.2}",
        four.traffic.interface_utilization,
        one.traffic.interface_utilization
    );
}

#[test]
fn remote_deq_retries_until_data_arrives() {
    // The paper's DEQ dequeues from a *remote* queue; an empty queue is
    // re-probed until data lands. Exercise it on all three architectures.
    for d in [mproxy_model::MP1, mproxy_model::HW1, mproxy_model::SW1] {
        let sim = Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(d, 2, 1)).unwrap();
        let got = Rc::new(RefCell::new(0u64));
        let probe = Rc::clone(&got);
        cluster.spawn_spmd(move |p| {
            let probe = Rc::clone(&probe);
            async move {
                let buf = p.alloc(64);
                let q = p.new_queue();
                let f = p.new_flag();
                p.ctx().yield_now().await;
                if p.rank().0 == 0 {
                    // DEQ from rank 1's queue *before* anything is there.
                    p.deq(
                        buf,
                        mproxy::RemoteQueue {
                            proc: ProcId(1),
                            rq: q,
                        },
                        8,
                        Some(&f),
                    )
                    .await
                    .unwrap();
                    p.wait_flag(&f, 1).await;
                    *probe.borrow_mut() = p.read_u64(buf);
                } else {
                    // Enqueue into our own queue only after a long delay,
                    // forcing several remote re-probes.
                    p.compute_us(200.0).await;
                    p.write_u64(buf, 4242);
                    p.enq(
                        buf,
                        mproxy::RemoteQueue {
                            proc: ProcId(1),
                            rq: q,
                        },
                        8,
                        Some(&f),
                        None,
                    )
                    .await
                    .unwrap();
                    p.wait_flag(&f, 1).await;
                }
            }
        });
        assert!(cluster.run(&sim).completed_cleanly(), "{}", d.name);
        assert_eq!(*got.borrow(), 4242, "{}", d.name);
    }
}
