//! Crash-recovery epochs and credit-based overload control, end to end.
//!
//! A proxy crash loses all volatile link state (sequence counters,
//! retransmit buffer, backlog) and restarts into a new epoch. The
//! HELLO/HELLO-ACK resync must restore exactly-once, in-order delivery
//! when the crash caught no un-ACKed work, and fail-stop with
//! [`CommError::EpochReset`] — never lose or duplicate silently — when
//! it did. Credits bound the per-node command queue under overload.

use mproxy::micro::pingpong_verified;
use mproxy::{Cluster, ClusterSpec, CommError, FaultPlan, ProcId, RemoteQueue};
use mproxy_apps::{run_app_flat_faulty, AppId, AppSize};
use mproxy_bench::reports::{
    crash_sweep_plan, sweep_plan, APP_CRASH_AT_US, CRASH_DOWNTIME_US, CRASH_DROP, CRASH_NODE,
    PP_CRASH_AT_US, PP_MIDFLIGHT_AT_US,
};
use mproxy_des::Simulation;
use mproxy_model::MP1;
use mproxy_tests::Rng;
use std::cell::RefCell;
use std::rc::Rc;

/// Acceptance: the verified ping-pong completes every round with zero
/// lost or duplicated deliveries despite a mid-run proxy crash on a 1%
/// lossy wire, and the link visibly went through an epoch resync.
#[test]
fn pingpong_survives_midrun_proxy_crash_with_zero_loss() {
    let plan = crash_sweep_plan(CRASH_DROP, CRASH_NODE, PP_CRASH_AT_US, CRASH_DOWNTIME_US);
    let r = pingpong_verified(MP1, 64, 64, Some(plan));
    assert_eq!(r.rounds, 64, "rounds lost across the crash");
    assert!(r.data_ok, "payload corrupted or replayed out of order");
    assert_eq!(r.error, None);
    let link = r.report.link;
    assert!(link.epoch_resyncs >= 1, "no epoch resync happened");
    assert!(link.hellos_sent >= 1, "restarted node never said HELLO");
    // The crashed node restarted into epoch 1; the survivor stayed at 0.
    assert_eq!(r.epochs.len(), 2);
    assert_eq!(r.epochs[0].0, 0, "survivor must keep its epoch");
    assert_eq!(r.epochs[1].0, 1, "crashed node must enter the next epoch");
}

/// Acceptance: the Sample application runs to completion through a
/// proxy crash with a checksum identical to the crash-free run.
#[test]
fn sample_app_completes_through_proxy_crash_with_identical_checksum() {
    let base = run_app_flat_faulty(AppId::Sample, MP1, 2, AppSize::Tiny, sweep_plan(CRASH_DROP));
    let plan = crash_sweep_plan(CRASH_DROP, CRASH_NODE, APP_CRASH_AT_US, CRASH_DOWNTIME_US);
    let r = run_app_flat_faulty(AppId::Sample, MP1, 2, AppSize::Tiny, plan);
    assert_eq!(r.checksum, base.checksum, "crash changed the answer");
    assert!(r.faults.link.epoch_resyncs >= 1, "no epoch resync happened");
    assert!(
        r.elapsed_us > base.elapsed_us,
        "recovery cannot be free: {} vs {}",
        r.elapsed_us,
        base.elapsed_us
    );
}

/// Same seed, same crash window => byte-identical delivery order,
/// timing, recovery statistics and final epoch/sequence tables.
#[test]
fn crash_recovery_is_deterministic_across_runs() {
    let plan = || crash_sweep_plan(CRASH_DROP, CRASH_NODE, PP_CRASH_AT_US, CRASH_DOWNTIME_US);
    let a = pingpong_verified(MP1, 64, 64, Some(plan()));
    let b = pingpong_verified(MP1, 64, 64, Some(plan()));
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.rt_us.to_bits(), b.rt_us.to_bits());
    assert_eq!(a.error, b.error);
    assert_eq!(a.report, b.report);
    assert_eq!(a.epochs, b.epochs, "epoch/seq tables diverged");
}

/// The same crash workload driven through the parallel sweep driver
/// must produce the bytes of the serial driver — OS threads add no
/// nondeterminism because every simulation is self-contained.
#[test]
fn crash_recovery_is_deterministic_under_the_parallel_driver() {
    let section = || {
        let plan = crash_sweep_plan(CRASH_DROP, CRASH_NODE, PP_CRASH_AT_US, CRASH_DOWNTIME_US);
        let r = pingpong_verified(MP1, 64, 64, Some(plan));
        format!(
            "{} {} {:?} {:?} {:?}",
            r.rounds,
            r.rt_us.to_bits(),
            r.error,
            r.report,
            r.epochs
        )
    };
    let serial = section();
    let jobs: Vec<mproxy_bench::sweep::Job> =
        vec![Box::new(section), Box::new(section), Box::new(section)];
    for parallel in mproxy_bench::sweep::run_parallel(jobs, 3) {
        assert_eq!(serial, parallel, "parallel crash run diverged");
    }
}

/// A crash that catches the victim with un-ACKed work of its own cannot
/// be hidden: the owner is failed with `EpochReset` (fail-stop), and
/// that failure itself is deterministic.
#[test]
fn crash_with_unacked_work_fails_stop_with_epoch_reset() {
    let plan = || crash_sweep_plan(CRASH_DROP, CRASH_NODE, PP_MIDFLIGHT_AT_US, CRASH_DOWNTIME_US);
    let a = pingpong_verified(MP1, 64, 64, Some(plan()));
    assert!(
        matches!(
            a.error,
            Some(CommError::EpochReset { node, .. }) if node == CRASH_NODE
        ),
        "expected EpochReset from node {CRASH_NODE}, got {:?}",
        a.error
    );
    assert!(a.data_ok, "even a failed run must never corrupt data");
    assert!(a.rounds < 64, "the failure must abort the stream");
    let b = pingpong_verified(MP1, 64, 64, Some(plan()));
    assert_eq!(a.error, b.error);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.report, b.report);
}

/// Satellite: the retransmit buffer obeys its configured window even at
/// 20% drop — overflow parks in the backlog (O(window) memory), is
/// promoted as ACKs free slots, and the stream still arrives exactly
/// once, in order.
#[test]
fn retransmit_buffer_stays_bounded_at_heavy_drop() {
    const WINDOW: usize = 4;
    const K: u64 = 64;
    let plan = FaultPlan::new(0x20_c4a5).drop(0.20).reorder(0.05, 20.0);
    let sim = Simulation::new();
    let mut spec = ClusterSpec::new(MP1, 2, 1);
    spec.link_window = WINDOW;
    let cluster = Cluster::new_with_faults(&sim.ctx(), spec, plan).unwrap();
    let done = Rc::new(RefCell::new(false));
    let probe = Rc::clone(&done);
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let buf = p.alloc(64);
            let q = p.new_queue();
            p.ctx().yield_now().await;
            if p.rank().0 == 0 {
                for i in 0..K {
                    p.write_u64(buf, i);
                    p.enq(
                        buf,
                        RemoteQueue {
                            proc: ProcId(1),
                            rq: q,
                        },
                        8,
                        None,
                        None,
                    )
                    .await
                    .unwrap();
                }
            } else {
                for i in 0..K {
                    let got = p.rq_recv(q).await.expect("stream ended early");
                    let v = u64::from_le_bytes(got.as_ref().try_into().unwrap());
                    assert_eq!(v, i, "out of order or duplicated past the window");
                }
                *probe.borrow_mut() = true;
            }
        }
    });
    assert!(cluster.run(&sim).completed_cleanly(), "drop storm hung");
    assert!(*done.borrow(), "receiver never finished");
    let link = cluster.fault_report().link;
    assert!(
        link.peak_pending <= WINDOW as u64,
        "retransmit buffer grew to {} > window {WINDOW}",
        link.peak_pending
    );
    assert!(
        link.backlogged > 0,
        "a {K}-message flood through a {WINDOW}-slot window never parked anything"
    );
    assert!(link.retransmits > 0, "20% drop caused no retransmissions");
}

/// Credits bound the engine's command-queue depth under a flood; the
/// same flood without credits overruns that bound.
#[test]
fn credits_bound_command_queue_depth() {
    const PUTS: u64 = 50;
    let run = |credits: u32| {
        let sim = Simulation::new();
        let mut spec = ClusterSpec::new(MP1, 2, 2);
        spec.cmd_credits = credits;
        let cluster = Cluster::new(&sim.ctx(), spec).unwrap();
        cluster.spawn_spmd(move |p| async move {
            let buf = p.alloc(64);
            p.ctx().yield_now().await;
            let me = p.rank().0;
            if me < 2 {
                let peer = mproxy::Asid(me + 2);
                for _ in 0..PUTS {
                    p.put(buf, peer, buf, 64, None, None).await.unwrap();
                }
            }
        });
        assert!(cluster.run(&sim).completed_cleanly());
        let (cmds, wait_us) = cluster.cmd_wait_us(0);
        assert_eq!(cmds, 2 * PUTS, "a command went missing");
        (cluster.engine_queue_peak(0), wait_us)
    };
    let (bounded_peak, bounded_wait) = run(2);
    let (free_peak, free_wait) = run(0);
    assert!(
        bounded_peak <= 2 * 2,
        "credited queue peaked at {bounded_peak} > procs x credits = 4"
    );
    assert!(
        free_peak > 2 * 2,
        "uncredited flood should overrun the credit bound, peaked at {free_peak}"
    );
    assert!(
        bounded_wait < free_wait,
        "backpressure should shift waiting out of the shared queue"
    );
}

/// With `credit_fail_fast`, exhausting the credit limit surfaces
/// [`CommError::CreditsExhausted`] instead of blocking. A stall window
/// freezes the engine so the first command's credit is provably still
/// out when the second submits.
#[test]
fn credit_exhaustion_fails_fast_when_configured() {
    let plan = FaultPlan::new(7).stall(0, 1.0, 120.0);
    let sim = Simulation::new();
    let mut spec = ClusterSpec::new(MP1, 2, 1);
    spec.cmd_credits = 1;
    spec.credit_fail_fast = true;
    let cluster = Cluster::new_with_faults(&sim.ctx(), spec, plan).unwrap();
    let seen = Rc::new(RefCell::new(None));
    let probe = Rc::clone(&seen);
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let buf = p.alloc(64);
            p.ctx().yield_now().await;
            if p.rank().0 != 0 {
                return;
            }
            p.put(buf, mproxy::Asid(1), buf, 64, None, None)
                .await
                .expect("first put holds the only credit");
            let err = p
                .put(buf, mproxy::Asid(1), buf, 64, None, None)
                .await
                .expect_err("stalled engine cannot have returned the credit");
            *probe.borrow_mut() = Some(err.clone());
            // After the stall lifts, the credit comes back and puts flow.
            p.ctx().delay(mproxy_des::Dur::from_us(200.0)).await;
            p.put(buf, mproxy::Asid(1), buf, 64, None, None)
                .await
                .expect("credit must return once the engine drains");
        }
    });
    assert!(cluster.run(&sim).completed_cleanly());
    let observed = seen.borrow().clone();
    match observed {
        Some(CommError::CreditsExhausted { src, limit }) => {
            assert_eq!(src, ProcId(0));
            assert_eq!(limit, 1);
        }
        other => panic!("expected CreditsExhausted, got {other:?}"),
    }
}

/// Nightly soak: crash windows on top of the full PR 1 fault matrix
/// (drop + duplicate + reorder + corrupt) across many seeds and crash
/// instants. Invariant: every run terminates, and either recovers with
/// all rounds intact or fail-stops with `EpochReset`/`Unreachable` —
/// silent loss, duplication, or deadlock are never acceptable.
#[test]
#[ignore = "long soak; run nightly via cargo test -- --ignored"]
fn crash_plus_fault_matrix_soak() {
    let mut clean = 0u32;
    let mut failstop = 0u32;
    for case in 0..60u64 {
        let mut rng = Rng::new(0xc4a5_0000 + case);
        let node = usize::from(case % 2 == 0);
        let at = rng.f64_range(30.0, 450.0);
        let downtime = rng.f64_range(120.0, 400.0);
        let plan = FaultPlan::new(rng.next_u64())
            .drop(rng.f64_range(0.0, 0.06))
            .duplicate(rng.f64_range(0.0, 0.03))
            .reorder(rng.f64_range(0.0, 0.06), rng.f64_range(5.0, 40.0))
            .corrupt(rng.f64_range(0.0, 0.03))
            .crash(node, at, downtime);
        let r = pingpong_verified(MP1, 64, 64, Some(plan));
        assert!(r.data_ok, "case {case}: silent corruption or replay");
        match r.error {
            None => {
                assert_eq!(r.rounds, 64, "case {case}: silent round loss");
                clean += 1;
            }
            Some(CommError::EpochReset { .. } | CommError::Unreachable { .. }) => failstop += 1,
            Some(other) => panic!("case {case}: unexpected failure {other}"),
        }
    }
    // The sweep must exercise both outcomes to mean anything.
    assert!(clean > 0, "no case ever recovered cleanly");
    assert!(failstop > 0, "no case ever hit the fail-stop path");
    eprintln!("soak: {clean} clean recoveries, {failstop} fail-stops");
}
