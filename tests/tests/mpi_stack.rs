//! Integration of the miniature MPI layer with the rest of the stack:
//! topology independence and coexistence with collectives.

use mproxy::{Cluster, ClusterSpec, ProcId};
use mproxy_am::{Am, Coll};
use mproxy_des::Simulation;
use mproxy_model::{ALL_DESIGN_POINTS, MP1};
use mproxy_mpi::Mpi;
use std::cell::RefCell;
use std::rc::Rc;

fn all_to_all_sum(design: mproxy_model::DesignPoint, nodes: usize, ppn: usize) -> f64 {
    let sim = Simulation::new();
    let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(design, nodes, ppn)).unwrap();
    let out = Rc::new(RefCell::new(0.0));
    let probe = Rc::clone(&out);
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let am = Am::new(&p);
            let mpi = Mpi::new(&p, &am);
            let coll = Coll::new(&p, Some(am));
            let n = p.nprocs() as u32;
            let me = p.rank().0;
            let buf = p.alloc(64);
            p.ctx().yield_now().await;
            coll.barrier().await;
            // Everyone sends its rank+1 to everyone else, tag = sender.
            for d in 0..n {
                if d != me {
                    p.write_u64(buf, u64::from(me) + 1);
                    mpi.send(ProcId(d), me, buf, 8).await;
                }
            }
            let mut sum = 0u64;
            for _ in 0..n - 1 {
                let (_, _, _) = mpi.recv(None, None, buf.offset(8), 8).await;
                sum += p.read_u64(buf.offset(8));
            }
            let total = coll.allreduce_sum(sum as f64).await;
            coll.barrier().await;
            if me == 0 {
                *probe.borrow_mut() = total;
            }
        }
    });
    assert!(cluster.run(&sim).completed_cleanly());
    let v = *out.borrow();
    v
}

#[test]
fn mpi_all_to_all_is_topology_and_architecture_independent() {
    // Each rank receives sum over senders (s+1): total = (n-1) * n(n+1)/2.
    let expect = |n: u64| (n - 1) as f64 * (n * (n + 1) / 2) as f64;
    let flat = all_to_all_sum(MP1, 4, 1);
    assert_eq!(flat, expect(4));
    let smp = all_to_all_sum(MP1, 2, 2);
    assert_eq!(smp, expect(4));
    for d in ALL_DESIGN_POINTS {
        assert_eq!(all_to_all_sum(d, 2, 1), expect(2), "{}", d.name);
    }
}
