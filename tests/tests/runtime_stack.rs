//! Integration of the threaded runtime: mixed op streams, revocation at
//! run time, and an SPSC model-based property test.

use mproxy_rt::{spsc, FlagId, RqId, RtClusterBuilder, RtError};
use mproxy_tests::Rng;
use std::time::Duration;

#[test]
fn mixed_ops_across_three_nodes() {
    let mut b = RtClusterBuilder::new(3);
    let ids: Vec<u32> = (0..3).map(|n| b.add_process(n, 8192)).collect();
    let (cluster, mut eps) = b.start();
    let e2 = eps.pop().unwrap();
    let mut e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    // Ring of PUTs: 0 -> 1 -> 2, then a GET back, then ENQs.
    e0.seg().write_u64(0, 11);
    e0.put(0, ids[1], 0, 8, Some(FlagId(0)), Some(FlagId(0)));
    e0.wait_flag(FlagId(0), 1);
    e1.wait_flag(FlagId(0), 1);
    e1.put(0, ids[2], 0, 8, Some(FlagId(1)), Some(FlagId(0)));
    e1.wait_flag(FlagId(1), 1);
    e2.wait_flag(FlagId(0), 1);
    assert_eq!(e2.seg().read_u64(0), 11);
    e0.get_blocking(64, ids[2], 0, 8);
    assert_eq!(e0.seg().read_u64(64), 11);
    for i in 0..10u64 {
        e0.seg().write_u64(128, i);
        e0.enq(128, ids[2], RqId(1), 8, Some(FlagId(2)), None);
        e0.wait_flag(FlagId(2), i + 1);
    }
    let mut got = Vec::new();
    while got.len() < 10 {
        if let Some(v) = e2.rq_try_recv(RqId(1)) {
            got.push(u64::from_le_bytes(v[..].try_into().unwrap()));
        }
    }
    assert_eq!(got, (0..10).collect::<Vec<_>>());
    drop((e0, e1, e2));
    cluster.shutdown();
}

#[test]
fn revocation_takes_effect_mid_run() {
    let mut b = RtClusterBuilder::new(2);
    let p0 = b.add_process(0, 4096);
    let p1 = b.add_process(1, 4096);
    let (cluster, mut eps) = b.start();
    let e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    cluster.restrict();
    cluster.grant(p0, p1);
    e0.put(0, p1, 0, 8, None, Some(FlagId(0)));
    e1.wait_flag(FlagId(0), 1);
    cluster.revoke(p0, p1);
    let faults_before = e0.faults();
    e0.put(0, p1, 0, 8, None, Some(FlagId(0)));
    while e0.faults() == faults_before {
        std::hint::spin_loop();
    }
    assert_eq!(e1.flag(FlagId(0)), 1, "revoked put must not land");
    drop((e0, e1));
    cluster.shutdown();
}

/// Shutdown must complete even with a burst of operations still in
/// flight: surviving proxies drain their queues before exiting.
#[test]
fn shutdown_completes_with_inflight_ops() {
    let mut b = RtClusterBuilder::new(2);
    let _p0 = b.add_process(0, 8192);
    let p1 = b.add_process(1, 8192);
    let (cluster, mut eps) = b.start();
    let e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    // Fire-and-forget: no waits, endpoints dropped immediately after.
    for i in 0..200u64 {
        e0.seg().write_u64(0, i);
        e0.put(0, p1, 8 * (i % 64), 8, None, None);
        e0.enq(0, p1, RqId(0), 8, None, None);
    }
    drop((e0, e1));
    assert!(cluster.shutdown().clean(), "proxy died draining backlog");
}

/// A bounded flag wait on a flag nobody sets reports a timeout instead
/// of spinning forever, and the endpoint counts it.
#[test]
fn bounded_wait_reports_timeout() {
    let mut b = RtClusterBuilder::new(1);
    let _p0 = b.add_process(0, 4096);
    let (cluster, mut eps) = b.start();
    let e0 = eps.pop().unwrap();
    assert_eq!(e0.timeouts(), 0);
    let err = e0
        .wait_flag_timeout(FlagId(3), 5, Duration::from_millis(20))
        .unwrap_err();
    assert_eq!(
        err,
        RtError::Timeout {
            flag: 3,
            target: 5,
            observed: 0,
        }
    );
    assert_eq!(e0.timeouts(), 1);
    drop(e0);
    assert!(cluster.shutdown().clean());
}

/// The SPSC ring behaves exactly like a bounded FIFO against a model.
#[test]
fn spsc_matches_vecdeque_model() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0x5b5c_0000 + case);
        let ops = rng.vec(1, 200, Rng::coin);
        let cap = rng.range(1, 16) as usize;
        let (mut tx, mut rx) = spsc::channel(cap);
        let mut model = std::collections::VecDeque::new();
        let mut seq = 0u32;
        for push in ops {
            if push {
                let e = spsc::Entry {
                    op: seq,
                    args: [u64::from(seq); 4],
                    ..spsc::Entry::default()
                };
                let accepted = tx.try_send(e);
                assert_eq!(accepted, model.len() < cap);
                if accepted {
                    model.push_back(seq);
                    seq += 1;
                }
            } else {
                let got = rx.try_recv().map(|e| e.op);
                assert_eq!(got, model.pop_front());
            }
        }
        // Drain and compare the tails.
        while let Some(e) = rx.try_recv() {
            assert_eq!(Some(e.op), model.pop_front());
        }
        assert!(model.is_empty());
    }
}
