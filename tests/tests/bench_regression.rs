//! Regression gates for the benchmark reports and the simulator's
//! timer machinery.
//!
//! The checked-in `results/*.txt` files are the ground truth for the
//! paper reproduction: every engine change must reproduce them byte for
//! byte, whether the report is generated serially, a second time in the
//! same process, or through the parallel sweep driver.

use mproxy::micro::pingpong_verified;
use mproxy_bench::reports;
use mproxy_model::MP1;

const FIG7_EXPECTED: &str = include_str!("../../results/fig7.txt");
const FAULT_SWEEP_EXPECTED: &str = include_str!("../../results/fault_sweep.txt");
const CRASH_SWEEP_EXPECTED: &str = include_str!("../../results/crash_sweep.txt");

#[test]
fn fault_sweep_report_matches_checked_in_results() {
    let first = reports::fault_sweep_report();
    assert!(
        first == FAULT_SWEEP_EXPECTED,
        "fault sweep drifted from results/fault_sweep.txt"
    );
    let second = reports::fault_sweep_report();
    assert!(first == second, "fault sweep not repeatable in-process");
}

#[test]
fn crash_sweep_report_matches_checked_in_results() {
    // The report itself asserts zero-loss recovery, EpochReset fail-stop
    // and run-to-run determinism; the byte comparison pins epochs,
    // sequence watermarks and recovery statistics across engine changes.
    let first = reports::crash_sweep_report();
    assert!(
        first == CRASH_SWEEP_EXPECTED,
        "crash sweep drifted from results/crash_sweep.txt"
    );
    let second = reports::crash_sweep_report();
    assert!(first == second, "crash sweep not repeatable in-process");
}

#[test]
fn parallel_crash_sweep_is_byte_identical_to_serial() {
    let parallel = reports::crash_sweep_report_parallel(2);
    assert!(
        parallel == CRASH_SWEEP_EXPECTED,
        "parallel crash sweep drifted from results/crash_sweep.txt"
    );
}

#[test]
fn fig7_report_matches_checked_in_results() {
    let first = reports::fig7_report();
    assert!(
        first == FIG7_EXPECTED,
        "fig7 drifted from results/fig7.txt"
    );
    let second = reports::fig7_report();
    assert!(first == second, "fig7 not repeatable in-process");
}

#[test]
fn parallel_fig7_is_byte_identical_to_serial() {
    // Two workers on the twelve (protocol, design-point) sections: the
    // driver must reassemble them in submission order regardless of
    // which thread finishes first.
    let parallel = reports::fig7_report_parallel(2);
    assert!(
        parallel == FIG7_EXPECTED,
        "parallel fig7 drifted from results/fig7.txt"
    );
}

#[test]
fn fault_sweep_arms_far_more_timers_than_it_fires() {
    // Retransmit timers are armed for every reliable send but almost
    // every ACK lands first and cancels its timer — only genuinely
    // dropped packets let one fire. The cancellation-aware calendar is
    // what makes this cheap; the counters prove it is exercised.
    let pp = pingpong_verified(MP1, 64, 64, Some(reports::sweep_plan(0.01)));
    assert!(pp.data_ok, "workload lost data");
    let t = &pp.sim;
    assert!(
        t.timers_armed > 100,
        "expected a timer per reliable send, got {} armed",
        t.timers_armed
    );
    assert!(
        t.timers_cancelled > 0,
        "no timer was ever cancelled — ACKs are not disarming retransmits"
    );
    assert!(
        t.timers_fired * 10 <= t.timers_armed,
        "{} of {} timers fired; cancellation is not suppressing retransmits",
        t.timers_fired,
        t.timers_armed
    );
    assert!(
        t.timers_fired + t.timers_cancelled <= t.timers_armed,
        "timer accounting broken: {} fired + {} cancelled > {} armed",
        t.timers_fired,
        t.timers_cancelled,
        t.timers_armed
    );
}
