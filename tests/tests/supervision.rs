//! Supervision, fault injection, and recovery: the runtime equivalents
//! of the simulator's fault-plan tests. Every scenario is seeded and
//! deterministic in its *decisions* (which packets are judged, where
//! kills land); thread interleaving still varies, so assertions are on
//! protocol invariants — "acked means applied exactly once", "the
//! cluster converges" — not on timing.
//!
//! The randomized soak at the bottom honours `MPROXY_STRESS_ITERS`
//! (default 5 seeds; CI nightly raises it), and the `--ignored` variant
//! runs a longer sweep.

use std::time::Duration;

use mproxy_rt::{FlagId, RqId, RtClusterBuilder, RtError, RtFaultPlan};

/// Generous per-wait bound: recovery from a kill must complete well
/// inside this even on a loaded single-CPU host.
const WAIT: Duration = Duration::from_millis(2000);

#[test]
fn kill_respawn_resyncs_and_completes_all_ops() {
    // Node 1's proxy is killed after 10 serviced ops; supervision brings
    // it back. Every one of the 100 acknowledged puts must have landed
    // exactly once (the payload is a counter, so the final cell value
    // proves the last write; lsync count proves acknowledgement).
    let mut b = RtClusterBuilder::new(2);
    let p0 = b.add_process(0, 1 << 16);
    let p1 = b.add_process(1, 1 << 16);
    b.fault_plan(RtFaultPlan::new(42).kill(1, 10));
    b.supervise(3, Duration::from_millis(1));
    let (cluster, mut eps) = b.start();
    let e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    assert_eq!((e0.asid(), e1.asid()), (p0, p1));

    for i in 1..=100u64 {
        e0.seg().write_u64(0, i);
        e0.put(0, p1, 64, 8, Some(FlagId(0)), None);
        e0.wait_flag_timeout(FlagId(0), i, WAIT)
            .expect("put must be acknowledged across the respawn");
    }
    assert_eq!(e1.seg().read_u64(64), 100, "last acked write visible");
    assert!(cluster.deaths(1) >= 1, "the kill must have fired");
    assert!(cluster.epoch(1) >= 1, "respawn bumps the epoch");
    assert!(cluster.restarts_total() >= 1);
    assert_eq!(cluster.condemned_nodes(), Vec::<usize>::new());
    let report = cluster.shutdown();
    assert!(report.clean(), "recovered node shuts down clean: {report:?}");
    assert!(report.restarts >= 1);
}

#[test]
fn unsupervised_death_condemns_and_reports_reason() {
    // No supervision: the kill condemns node 1. Bounded waits must
    // report ProxyDown with the injected panic message, and the
    // shutdown report must carry it too.
    let mut b = RtClusterBuilder::new(2);
    let _p0 = b.add_process(0, 1 << 16);
    let p1 = b.add_process(1, 1 << 16);
    b.fault_plan(RtFaultPlan::new(7).kill(1, 5));
    let (cluster, mut eps) = b.start();
    let _e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();

    let mut saw_down = None;
    for i in 1..=200u64 {
        e0.seg().write_u64(0, i);
        e0.put(0, p1, 64, 8, Some(FlagId(0)), None);
        match e0.wait_flag_timeout(FlagId(0), i, WAIT) {
            Ok(()) => {}
            Err(err) => {
                saw_down = Some(err);
                break;
            }
        }
    }
    let err = saw_down.expect("some put must fail once node 1 is dead");
    match &err {
        RtError::ProxyDown { node, reason } => {
            assert_eq!(*node, 1);
            let r = reason.as_deref().expect("panic payload captured");
            assert!(r.contains("injected kill"), "unexpected reason: {r}");
        }
        other => panic!("expected ProxyDown, got {other:?}"),
    }
    assert_eq!(cluster.condemned_nodes(), vec![1]);
    let report = cluster.shutdown();
    assert!(!report.clean());
    assert_eq!(report.panicked_nodes.len(), 1);
    assert_eq!(report.panicked_nodes[0].node, 1);
    assert!(report.panicked_nodes[0]
        .reason
        .as_deref()
        .unwrap()
        .contains("injected kill"));
}

#[test]
fn restart_budget_exhaustion_condemns() {
    // Two kills, budget of one: the first death is respawned, the second
    // exhausts the budget and the node is condemned.
    let mut b = RtClusterBuilder::new(2);
    let _p0 = b.add_process(0, 1 << 16);
    let p1 = b.add_process(1, 1 << 16);
    b.fault_plan(RtFaultPlan::new(3).kill(1, 20).kill(1, 40));
    b.supervise(1, Duration::from_millis(1));
    let (cluster, mut eps) = b.start();
    let _e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();

    let mut acked = 0u64;
    for i in 1..=500u64 {
        e0.seg().write_u64(0, i);
        e0.put(0, p1, 64, 8, Some(FlagId(0)), None);
        match e0.wait_flag_timeout(FlagId(0), i, WAIT) {
            Ok(()) => acked = i,
            Err(_) => break,
        }
    }
    assert!(acked > 0, "some ops must land before condemnation");
    assert_eq!(cluster.condemned_nodes(), vec![1]);
    assert_eq!(cluster.restarts_total(), 1, "budget was one respawn");
    assert!(cluster.deaths(1) >= 2);
    let report = cluster.shutdown();
    assert!(!report.clean());
}

#[test]
fn wedged_proxy_is_reported_not_joined_forever() {
    // Node 0's proxy wedges (uninterruptible stall) for far longer than
    // the shutdown deadline: shutdown must return promptly, reporting
    // the node as wedged rather than hanging.
    let mut b = RtClusterBuilder::new(2);
    let _p0 = b.add_process(0, 4096);
    let _p1 = b.add_process(1, 4096);
    b.fault_plan(RtFaultPlan::new(0).wedge(0, Duration::ZERO, Duration::from_secs(20)));
    let (cluster, _eps) = b.start();
    // Give the proxy a moment to enter the wedge.
    std::thread::sleep(Duration::from_millis(50));
    let t0 = std::time::Instant::now();
    let report = cluster.shutdown_with_deadline(Duration::from_millis(300));
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "shutdown must not wait out the wedge"
    );
    assert_eq!(report.wedged_nodes, vec![0]);
    assert!(!report.clean());
}

#[test]
fn interruptible_stall_defers_but_does_not_wedge() {
    // An interruptible stall freezes the proxy mid-run but honours the
    // stop signal: shutdown inside the stall window completes fast and
    // clean.
    let mut b = RtClusterBuilder::new(2);
    let p0 = b.add_process(0, 4096);
    let p1 = b.add_process(1, 4096);
    b.fault_plan(RtFaultPlan::new(0).stall(
        1,
        Duration::from_millis(30),
        Duration::from_secs(30),
    ));
    let (cluster, mut eps) = b.start();
    let _e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    assert_eq!((e0.asid(), e1_asid(&_e1)), (p0, p1));

    // Before the stall window opens the path works normally.
    e0.seg().write_u64(0, 9);
    e0.put(0, p1, 0, 8, Some(FlagId(0)), None);
    e0.wait_flag_timeout(FlagId(0), 1, WAIT).unwrap();
    // Let node 1 enter the stall, then shut down through it.
    std::thread::sleep(Duration::from_millis(60));
    let t0 = std::time::Instant::now();
    let report = cluster.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "stop must interrupt the stall"
    );
    assert!(report.clean(), "{report:?}");
}

fn e1_asid(e: &mproxy_rt::Endpoint) -> u32 {
    e.asid()
}

#[test]
fn lossy_wire_still_delivers_exactly_once() {
    // 20% drop + 20% duplicate + 5% corrupt on every data packet. The
    // sequenced wire layer must deliver every acknowledged enq exactly
    // once, in order, despite the carnage.
    let mut b = RtClusterBuilder::new(2);
    let p0 = b.add_process(0, 1 << 16);
    let p1 = b.add_process(1, 1 << 16);
    b.fault_plan(
        RtFaultPlan::new(1234)
            .drop(0.20)
            .duplicate(0.20)
            .corrupt(0.05),
    );
    let (cluster, mut eps) = b.start();
    let e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    assert_eq!((e0.asid(), e1.asid()), (p0, p1));

    let n = 300u64;
    for i in 1..=n {
        e0.seg().write_u64(0, i);
        e0.enq(0, p1, RqId(0), 8, Some(FlagId(0)), None);
        e0.wait_flag_timeout(FlagId(0), i, WAIT)
            .expect("every enq must eventually be acknowledged");
    }
    // Drain: exactly n payloads, in order, no duplicates.
    let mut got = Vec::new();
    while got.len() < n as usize {
        if let Some(data) = e1.rq_try_recv(RqId(0)) {
            got.push(u64::from_le_bytes(data[..8].try_into().unwrap()));
        } else {
            std::thread::yield_now();
        }
    }
    assert!(e1.rq_try_recv(RqId(0)).is_none(), "no extra deliveries");
    assert_eq!(got, (1..=n).collect::<Vec<_>>(), "in order, exactly once");
    let counts = cluster.fault_counts().unwrap();
    assert!(counts.dropped > 0, "the plan must actually have dropped");
    assert!(counts.duplicated > 0);
    assert!(counts.corrupted > 0);
    let report = cluster.shutdown();
    assert!(report.clean(), "{report:?}");
}

/// Polls until `asid` sits on `shard` or the [`WAIT`] deadline passes.
fn await_shard(cluster: &mproxy_rt::RtCluster, asid: u32, shard: usize) {
    let deadline = std::time::Instant::now() + WAIT;
    while cluster.shard_of(asid) != shard {
        assert!(
            std::time::Instant::now() < deadline,
            "asid {asid} never reached shard {shard}"
        );
        std::thread::yield_now();
    }
}

#[test]
fn shard_kill_sibling_shard_stays_live() {
    // Node 1 runs two proxy shards, one sink user on each. Shard 0 is
    // killed with no supervision — its lane is condemned — but the
    // sibling shard must keep serving its user as if nothing happened.
    let mut b = RtClusterBuilder::new(2);
    b.shards(2);
    let p0 = b.add_process(0, 1 << 16);
    let pa = b.add_process(1, 1 << 16);
    let pb = b.add_process(1, 1 << 16);
    b.fault_plan(RtFaultPlan::new(9).kill_shard(1, 0, 10));
    let (cluster, mut eps) = b.start();
    let _eb = eps.pop().unwrap();
    let _ea = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    assert_eq!(e0.asid(), p0);

    // Pin the victim user to shard 0 and the survivor to shard 1.
    for (target, asid) in [(0, pa), (1, pb)] {
        if cluster.shard_of(asid) != target {
            assert!(cluster.migrate_asid(asid, target));
            await_shard(&cluster, asid, target);
        }
    }

    // Flood the victim until its shard dies under the op-count trigger.
    let mut saw_down = None;
    for i in 1..=200u64 {
        e0.seg().write_u64(0, i);
        e0.put(0, pa, 64, 8, Some(FlagId(0)), None);
        match e0.wait_flag_timeout(FlagId(0), i, WAIT) {
            Ok(()) => {}
            Err(err) => {
                saw_down = Some(err);
                break;
            }
        }
    }
    match saw_down.expect("puts at the killed shard must eventually fail") {
        RtError::ProxyDown { node, reason } => {
            assert_eq!(node, 1);
            let r = reason.as_deref().expect("panic payload captured");
            assert!(r.contains("injected kill") && r.contains("shard 0"), "{r}");
        }
        other => panic!("expected ProxyDown, got {other:?}"),
    }

    // Sibling liveness: the surviving shard keeps acknowledging.
    for i in 1..=30u64 {
        e0.seg().write_u64(0, i);
        e0.put(0, pb, 64, 8, Some(FlagId(1)), None);
        e0.wait_flag_timeout(FlagId(1), i, WAIT)
            .expect("sibling shard must stay live after the kill");
    }

    assert_eq!(cluster.condemned_nodes(), vec![1]);
    let report = cluster.shutdown();
    assert!(!report.clean());
    assert_eq!(report.panicked_nodes.len(), 1);
    assert_eq!(report.panicked_nodes[0].node, 1);
    assert_eq!(report.panicked_nodes[0].shard, 0);
}

#[test]
fn shard_kill_respawn_preserves_exactly_once() {
    // Supervised variant: shard 0 of the sink node dies mid-stream and is
    // respawned; every acknowledged enq must surface exactly once, in
    // order, across the kill/respawn epoch.
    let mut b = RtClusterBuilder::new(2);
    b.shards(2);
    let p0 = b.add_process(0, 1 << 16);
    let p1 = b.add_process(1, 1 << 16);
    b.fault_plan(RtFaultPlan::new(21).kill_shard(1, 0, 15).drop(0.05));
    b.supervise(3, Duration::from_millis(1));
    let (cluster, mut eps) = b.start();
    let e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    assert_eq!(e0.asid(), p0);
    if cluster.shard_of(p1) != 0 {
        assert!(cluster.migrate_asid(p1, 0));
        await_shard(&cluster, p1, 0);
    }

    let n = 150u64;
    for i in 1..=n {
        e0.seg().write_u64(0, i);
        e0.enq(0, p1, RqId(0), 8, Some(FlagId(0)), None);
        e0.wait_flag_timeout(FlagId(0), i, WAIT)
            .expect("enq must be acknowledged across the shard respawn");
    }
    let mut got = Vec::new();
    let deadline = std::time::Instant::now() + WAIT;
    while got.len() < n as usize && std::time::Instant::now() < deadline {
        if let Some(data) = e1.rq_try_recv(RqId(0)) {
            got.push(u64::from_le_bytes(data[..8].try_into().unwrap()));
        } else {
            std::thread::yield_now();
        }
    }
    assert!(e1.rq_try_recv(RqId(0)).is_none(), "no extra deliveries");
    assert_eq!(got, (1..=n).collect::<Vec<_>>(), "in order, exactly once");
    assert!(cluster.deaths(1) >= 1, "the shard kill must have fired");
    assert!(cluster.restarts_total() >= 1);
    assert_eq!(cluster.condemned_nodes(), Vec::<usize>::new());
    let report = cluster.shutdown();
    assert!(report.clean(), "{report:?}");
}

#[test]
fn rebalance_mid_flood_no_loss_dup_reorder() {
    // The satellite's deterministic seeded rebalance check: a hot asid is
    // migrated between shards twice in the middle of a lossy acked-enq
    // flood; the drained queue must be 1..=n, in order, exactly once.
    let mut b = RtClusterBuilder::new(2);
    b.shards(2);
    let p0 = b.add_process(0, 1 << 16);
    let p1 = b.add_process(1, 1 << 16);
    b.fault_plan(RtFaultPlan::new(77).drop(0.05).duplicate(0.05));
    let (cluster, mut eps) = b.start();
    let e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    assert_eq!(e0.asid(), p0);

    let n = 300u64;
    for i in 1..=n {
        if i == 100 || i == 200 {
            // Fire the handoff and keep flooding through it.
            cluster.migrate_asid(p1, 1 - cluster.shard_of(p1));
        }
        e0.seg().write_u64(0, i);
        e0.enq(0, p1, RqId(0), 8, Some(FlagId(0)), None);
        e0.wait_flag_timeout(FlagId(0), i, WAIT)
            .expect("enq must be acknowledged across the handoff epoch");
    }
    let mut got = Vec::new();
    let deadline = std::time::Instant::now() + WAIT;
    while got.len() < n as usize && std::time::Instant::now() < deadline {
        if let Some(data) = e1.rq_try_recv(RqId(0)) {
            got.push(u64::from_le_bytes(data[..8].try_into().unwrap()));
        } else {
            std::thread::yield_now();
        }
    }
    assert!(e1.rq_try_recv(RqId(0)).is_none(), "no extra deliveries");
    assert_eq!(got, (1..=n).collect::<Vec<_>>(), "in order, exactly once");
    assert!(
        cluster.migrations_total() >= 1,
        "at least one handoff must have completed"
    );
    let report = cluster.shutdown();
    assert!(report.clean(), "{report:?}");
}

#[test]
fn elastic_controller_grows_and_shrinks() {
    // Elastic range [1,2]: the cluster starts with one active shard; a
    // sustained two-sender flood saturates it past the §5.4 bound, so the
    // controller must grow to two shards (migrating users onto the new
    // lane); once the flood stops it must shrink back to one.
    let mut b = RtClusterBuilder::new(3);
    b.elastic_shards(1, 2);
    // Five users on node 0: under the jump hash, asid 4 moves to shard 1
    // when the active count grows to 2, so a grow must migrate it.
    let users: Vec<u32> = (0..5).map(|_| b.add_process(0, 1 << 16)).collect();
    let (pa, pb) = (users[0], users[4]);
    let p1 = b.add_process(1, 1 << 16);
    let p2 = b.add_process(2, 1 << 16);
    let (cluster, mut eps) = b.start();
    let e2 = eps.pop().unwrap();
    let e1 = eps.pop().unwrap();
    assert_eq!((e1.asid(), e2.asid()), (p1, p2));
    assert_eq!(cluster.active_shards(0), 1, "elastic min is the start");

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mk = |mut e: mproxy_rt::Endpoint, dst: u32, stop: std::sync::Arc<std::sync::atomic::AtomicBool>| {
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                i += 1;
                e.seg().write_u64(0, i);
                e.put(0, dst, 64, 8, Some(FlagId(0)), None);
                e.wait_flag_timeout(FlagId(0), i, WAIT).expect("flood ack");
            }
        })
    };
    let t1 = mk(e1, pa, stop.clone());
    let t2 = mk(e2, pb, stop.clone());

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while cluster.active_shards(0) < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "controller never grew under saturation (util {:.2})",
            cluster.utilization(0)
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    t1.join().unwrap();
    t2.join().unwrap();

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while cluster.active_shards(0) > 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "controller never shrank after the flood stopped"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(cluster.migrations_total() >= 1, "scaling implies handoffs");
    let report = cluster.shutdown();
    assert!(report.clean(), "{report:?}");
}

/// Seeded randomized kill/loss soak, scaled by `MPROXY_STRESS_ITERS`.
/// Each iteration: 3 nodes in a ring, lossy wire, a kill on a random
/// node partway through, supervision on — every acknowledged op must
/// have been applied exactly once.
fn soak(seeds: u64) {
    for seed in 0..seeds {
        let mut b = RtClusterBuilder::new(3);
        let procs: Vec<u32> = (0..3).map(|n| b.add_process(n, 1 << 16)).collect();
        let victim = (seed % 3) as usize;
        let after = 10 + (seed * 13) % 60;
        b.fault_plan(
            RtFaultPlan::new(seed)
                .drop(0.02)
                .duplicate(0.02)
                .corrupt(0.01)
                .kill(victim, after),
        );
        b.supervise(3, Duration::from_millis(1));
        let (cluster, mut eps) = b.start();

        let rounds = 60u64;
        for i in 1..=rounds {
            for src in 0..3usize {
                let dst = procs[(src + 1) % 3];
                let e = &mut eps[src];
                e.seg().write_u64(0, i);
                e.put(0, dst, 64, 8, Some(FlagId(0)), None);
            }
            for e in eps.iter_mut() {
                e.wait_flag_timeout(FlagId(0), i, WAIT).unwrap_or_else(|err| {
                    panic!("seed {seed}: round {i} not acknowledged: {err}")
                });
            }
        }
        for e in &eps {
            assert_eq!(e.seg().read_u64(64), rounds, "seed {seed}: last write");
        }
        assert!(cluster.deaths(victim) >= 1, "seed {seed}: kill never fired");
        let report = cluster.shutdown();
        assert!(report.clean(), "seed {seed}: {report:?}");
    }
}

#[test]
fn randomized_kill_soak() {
    let seeds = std::env::var("MPROXY_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    soak(seeds);
}

#[test]
#[ignore = "long nightly soak; run with --ignored"]
fn randomized_kill_soak_nightly() {
    soak(40);
}
