//! The threaded runtime's overload watchdog: saturation detection per the
//! paper's §5.4 stability rule (a proxy past 50% utilisation has unbounded
//! expected queueing delay), hysteresis-based recovery, and opt-in request
//! shedding.
//!
//! These tests drive real threads against wall-clock deadlines, so every
//! assertion is of the form "reaches the expected state within a generous
//! deadline" rather than "reaches it at an exact instant".

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mproxy_rt::{FlagId, RtClusterBuilder};

/// Spins until `cond` holds or `deadline` passes; true on success.
fn eventually(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

#[test]
fn watchdog_flags_saturation_and_recovers() {
    let mut b = RtClusterBuilder::new(1);
    let p0 = b.add_process(0, 1 << 20);
    let p1 = b.add_process(0, 1 << 20);
    b.watchdog_interval(Duration::from_micros(200));
    let (cluster, mut eps) = b.start();
    let e1 = eps.pop().unwrap();
    let e0 = eps.pop().unwrap();

    // Two clients flood self-puts: the proxy copies every payload twice
    // (segment read into the wire message, wire message into the segment)
    // while each client copies it once, so the proxy is the bottleneck and
    // its utilisation pins well above the 50% bound.
    let stop = Arc::new(AtomicBool::new(false));
    let flooders: Vec<_> = [(e0, p0), (e1, p1)]
        .into_iter()
        .map(|(mut ep, asid)| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let laddr = ep.alloc(1024);
                let raddr = ep.alloc(1024);
                while !stop.load(Ordering::Relaxed) {
                    ep.put(laddr, asid, raddr, 1024, None, None);
                }
            })
        })
        .collect();

    let saturated = eventually(Duration::from_secs(5), || cluster.saturated(0));
    // Utilisation is read for observability, not asserted against a bound:
    // on an oversubscribed host the flag can trip on the backlog signal
    // while the descheduled proxy's time-domain utilisation samples low.
    let sampled_util = cluster.utilization(0);
    stop.store(true, Ordering::Relaxed);
    for f in flooders {
        f.join().unwrap();
    }
    assert!(
        saturated,
        "flooded proxy never flagged saturated (last util {sampled_util:.2})"
    );
    assert!(
        cluster.saturation_events(0) >= 1,
        "saturation crossing not counted"
    );

    // Load gone: the flag must clear once utilisation falls back under the
    // recovery threshold (hysteresis keeps it from flapping, not from
    // clearing).
    assert!(
        eventually(Duration::from_secs(5), || !cluster.saturated(0)),
        "saturation flag stuck after load vanished"
    );
    assert!(cluster.shutdown().clean());
}

#[test]
fn shedding_drops_requests_but_cluster_stays_live() {
    // Three source nodes flood one sink: the sink's arrival rate is three
    // proxies' worth of forwarding against one proxy's worth of service,
    // so its wire backlog grows without bound until shedding caps it.
    const SOURCES: usize = 3;
    let mut b = RtClusterBuilder::new(SOURCES + 1);
    let sources: Vec<u32> = (0..SOURCES).map(|n| b.add_process(n, 1 << 20)).collect();
    let sink = b.add_process(SOURCES, 1 << 20);
    b.enable_shedding();
    b.watchdog_interval(Duration::from_micros(200));
    let (cluster, mut eps) = b.start();
    drop(sources);
    let mut sink_ep = eps.pop().unwrap();
    // Carve the sink's segment so the flood target never overlaps the
    // sentinel exchanged after the storm (stale flood puts may still be
    // draining when it runs).
    let flood_raddr = sink_ep.alloc(1024);
    let sentinel_src = sink_ep.alloc(8);
    let sentinel_dst = sink_ep.alloc(8);

    let stop = Arc::new(AtomicBool::new(false));
    let flooders: Vec<_> = eps
        .into_iter()
        .map(|mut ep| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let laddr = ep.alloc(1024);
                while !stop.load(Ordering::Relaxed) {
                    // Fire-and-forget puts into the sink's segment.
                    ep.put(laddr, SOURCES as u32, flood_raddr, 1024, None, None);
                }
            })
        })
        .collect();

    let shed = eventually(Duration::from_secs(10), || {
        cluster.shed_count(SOURCES) > 0
    });
    stop.store(true, Ordering::Relaxed);
    for f in flooders {
        f.join().unwrap();
    }
    assert!(shed, "overloaded sink never shed a request");

    // Liveness after the storm: wait out saturation (shedding stops with
    // it), then a synchronised put must complete — shedding degraded the
    // flood, not the protocol.
    assert!(
        eventually(Duration::from_secs(5), || !cluster.saturated(SOURCES)),
        "sink never recovered from saturation"
    );
    sink_ep.seg().write_u64(sentinel_src, 0x5EED);
    sink_ep.put(sentinel_src, sink, sentinel_dst, 8, Some(FlagId(0)), None);
    sink_ep
        .wait_flag_timeout(FlagId(0), 1, Duration::from_secs(5))
        .expect("post-shedding put lost");
    assert_eq!(sink_ep.seg().read_u64(sentinel_dst), 0x5EED);
    assert!(cluster.shutdown().clean());
}
