//! Integration-test-only package; the tests live in `tests/tests/`.
//!
//! Also hosts the tiny seeded property-test harness the suite uses in
//! place of an external property-testing framework (the workspace builds
//! offline): a SplitMix64 generator plus draw helpers. Each property is a
//! plain `for case in 0..N` loop seeded from the case index, so failures
//! reproduce exactly by re-running the named test.

/// A SplitMix64 PRNG: tiny, fast, and with a well-distributed output
/// stream even for consecutive seeds — every case index is a valid seed.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator for `seed` (any value, including zero).
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }

    /// A fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Picks one element of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len() as u64) as usize]
    }

    /// A vector of `self.range(min_len, max_len)` draws from `f`.
    pub fn vec<T>(&mut self, min_len: u64, max_len: u64, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let n = self.range(min_len, max_len);
        (0..n).map(|_| f(self)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::Rng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8).map(|_| Rng::new(42).next_u64()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(Rng::new(1).next_u64(), Rng::new(2).next_u64());
    }

    #[test]
    fn draws_respect_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let x = r.range(5, 9);
            assert!((5..9).contains(&x));
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
