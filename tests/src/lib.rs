//! Integration-test-only package; the tests live in `tests/tests/`.
