//! Parallel sweep driver.
//!
//! Each simulation (`Simulation` plus everything built on it) is
//! single-threaded and `!Send`, but *independent* runs — one per design
//! point, fault rate, or application — share nothing, so a sweep can
//! fan them out across OS threads. Each job constructs its own
//! simulation on the thread that claims it and returns a rendered
//! result; results are slotted back by submission index, so composed
//! output is deterministic no matter which thread ran what, or in what
//! order jobs finished.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// A unit of sweep work: builds, runs, and renders one independent
/// simulation.
pub type Job = Box<dyn FnOnce() -> String + Send>;

/// Runs `jobs` on up to `threads` worker threads and returns their
/// results in submission order.
///
/// # Panics
///
/// Propagates the first panic from any job once all workers have been
/// joined.
#[must_use]
pub fn run_parallel(jobs: Vec<Job>, threads: usize) -> Vec<String> {
    let n = jobs.len();
    let workers = threads.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    let jobs: Vec<Mutex<Option<Job>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<String>>> = (0..n).map(|_| Mutex::new(None)).collect();
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each job is claimed exactly once");
                let out = job();
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed job stores a result")
        })
        .collect()
}

/// Default worker count: one per available core.
#[must_use]
pub fn default_threads() -> usize {
    thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let jobs: Vec<Job> = (0..17)
            .map(|i| Box::new(move || format!("job-{i}")) as Job)
            .collect();
        let out = run_parallel(jobs, 4);
        let want: Vec<String> = (0..17).map(|i| format!("job-{i}")).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let jobs: Vec<Job> = vec![Box::new(|| "only".to_string())];
        assert_eq!(run_parallel(jobs, 64), vec!["only".to_string()]);
    }

    #[test]
    fn empty_job_list_returns_empty() {
        assert!(run_parallel(Vec::new(), 8).is_empty());
    }
}
