//! Overload sweep: measured proxy command-queue delay vs the §5.4
//! contention model (`BENCH_overload.json`).
//!
//! Four compute processors on one MP1 node submit PUTs toward the peer
//! node in open loop — Poisson arrivals (exponential inter-submission
//! gaps) with a two-point payload mix calibrated so the proxy's
//! service-time distribution has unit squared coefficient of variation.
//! For an M/G/1 server the Pollaczek–Khinchine mean wait depends only on
//! the first two service moments, so with CV² = 1 the measured
//! submission-to-service-start delay must land on the paper's M/M/1
//! curve [`mm1_wait_us`] — the "simple queuing model analysis" behind
//! the 50% utilisation rule.
//!
//! The same sweep exercises the overload-control contract: per-process
//! command credits bound the shared command queue, so peak engine-queue
//! occupancy never exceeds `senders × credits` no matter the offered
//! load.

use mproxy::{Asid, Cluster, ClusterSpec, ProcId};
use mproxy_des::{Dur, Simulation};
use mproxy_model::contention::{mm1_wait_us, STABLE_UTILIZATION};
use mproxy_model::MP1;

/// Compute processors submitting load (all on node 0).
pub const OVERLOAD_SENDERS: usize = 4;

/// Per-process command-queue credit limit used by the sweep.
pub const OVERLOAD_CREDITS: u32 = 16;

/// Deterministic seed for the arrival/size streams.
pub const OVERLOAD_SEED: u64 = 0x4D50_5F4F_4C44; // "MP_OLD"

/// Payload of the short-service class (PIO path).
pub const SMALL_BYTES: u32 = 64;

/// Payload of the long-service class (pinned-DMA path).
pub const LARGE_BYTES: u32 = 4096;

/// Target utilisations of the full sweep.
pub const OVERLOAD_RHOS: [f64; 6] = [0.1, 0.2, 0.3, 0.4, 0.6, 0.8];

/// Target utilisations of the `--quick` (CI smoke) sweep.
pub const QUICK_RHOS: [f64; 3] = [0.2, 0.4, 0.7];

/// Allowed deviation of the measured wait from the model curve in the
/// stable regime (`--check`).
pub const MODEL_TOLERANCE: f64 = 0.25;

/// Model agreement is only enforced for sweep points targeting at most
/// this utilisation (the acceptance criterion's "rho <= 0.4"; beyond it
/// the open-loop arrival process is perturbed by credit backpressure).
pub const CHECK_RHO_CAP: f64 = 0.45;

/// One measured point of the overload sweep.
#[derive(Debug, Clone, Copy)]
pub struct OverloadPoint {
    /// Utilisation the arrival rate was tuned for.
    pub target_rho: f64,
    /// Measured utilisation: engine busy time over elapsed time.
    pub rho: f64,
    /// Measured mean service time, µs (engine busy / commands serviced).
    pub service_us: f64,
    /// Measured mean command queueing delay, µs (submission to service
    /// start).
    pub wait_us: f64,
    /// The §5.4 model's prediction [`mm1_wait_us`]`(service_us, rho)`.
    pub model_us: f64,
    /// Commands serviced.
    pub ops: u64,
    /// Peak occupancy of the node-0 engine input queue.
    pub queue_peak: usize,
    /// The flow-control bound on that occupancy: senders × credits.
    pub credit_bound: usize,
}

impl OverloadPoint {
    /// Relative deviation of the measured wait from the model curve.
    #[must_use]
    pub fn deviation(&self) -> f64 {
        if self.model_us <= 0.0 {
            return 0.0;
        }
        (self.wait_us - self.model_us).abs() / self.model_us
    }

    /// True if the point sits in the paper's stable regime.
    #[must_use]
    pub fn stable(&self) -> bool {
        self.rho < STABLE_UTILIZATION
    }
}

/// The full sweep result, including the service-time calibration that
/// fixed the payload mix.
#[derive(Debug, Clone)]
pub struct OverloadSweep {
    /// Measured service time of a [`SMALL_BYTES`] PUT, µs.
    pub small_us: f64,
    /// Measured service time of a [`LARGE_BYTES`] PUT, µs.
    pub large_us: f64,
    /// Fraction of submissions using the large payload, solved so the
    /// two-point service mix has CV² = 1.
    pub large_fraction: f64,
    /// One entry per target utilisation.
    pub points: Vec<OverloadPoint>,
}

// ---------------------------------------------------------------------
// Deterministic random streams (SplitMix64): the sweep must be
// reproducible bit-for-bit, so it carries its own tiny generator.

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in (0, 1].
fn uniform(state: &mut u64) -> f64 {
    ((splitmix(state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// Exponential with the given mean.
fn exp_sample(state: &mut u64, mean: f64) -> f64 {
    -mean * uniform(state).ln()
}

/// Measures the proxy service time of a `bytes`-sized PUT: one sender
/// floods `reps` commands at node 0's engine and the engine's busy time
/// is divided by the commands serviced. Credits keep the flood bounded;
/// queueing never inflates the busy scope.
fn calibrate_service_us(bytes: u32, reps: u64) -> f64 {
    let sim = Simulation::new();
    let mut spec = ClusterSpec::new(MP1, 2, OVERLOAD_SENDERS);
    spec.cmd_credits = OVERLOAD_CREDITS;
    let cluster = Cluster::new(&sim.ctx(), spec).expect("valid overload spec");
    cluster.spawn_spmd(move |p| async move {
        let buf = p.alloc(u64::from(LARGE_BYTES));
        p.ctx().yield_now().await;
        if p.rank() != ProcId(0) {
            return;
        }
        let peer = Asid(OVERLOAD_SENDERS as u32);
        for _ in 0..reps {
            p.put(buf, peer, buf, bytes, None, None)
                .await
                .expect("calibration put");
        }
    });
    let run = cluster.run(&sim);
    assert!(run.completed_cleanly(), "overload calibration hung");
    let (busy_us, _) = cluster.engine_busy_us(0);
    let (cmds, _) = cluster.cmd_wait_us(0);
    assert_eq!(cmds, reps, "calibration serviced a different command count");
    busy_us / cmds as f64
}

/// Solves for the large-payload fraction `q` that gives the two-point
/// service mix `{small_us w.p. 1−q, large_us w.p. q}` a squared
/// coefficient of variation of exactly 1 (E\[S²\] = 2·E\[S\]²), so the
/// M/G/1 wait collapses onto the M/M/1 curve. Falls back to 0.25 when
/// the two services are too close for a real solution (needs roughly
/// `large > 5.83 × small`).
#[must_use]
pub fn large_fraction(small_us: f64, large_us: f64) -> f64 {
    let d = large_us - small_us;
    // 2d²·q² + d(3·small − large)·q + small² = 0
    let a = 2.0 * d * d;
    let b = d * (3.0 * small_us - large_us);
    let c = small_us * small_us;
    let disc = b * b - 4.0 * a * c;
    if disc <= 0.0 || d <= 0.0 {
        return 0.25;
    }
    let q = (-b - disc.sqrt()) / (2.0 * a);
    if q > 0.0 && q < 1.0 {
        q
    } else {
        (-b + disc.sqrt()) / (2.0 * a)
    }
}

/// Runs one open-loop point: four senders at exponential gaps tuned for
/// `target_rho`, measured against the model.
fn run_point(target_rho: f64, big_frac: f64, mean_service_us: f64, window_us: f64) -> OverloadPoint {
    let sim = Simulation::new();
    let mut spec = ClusterSpec::new(MP1, 2, OVERLOAD_SENDERS);
    spec.cmd_credits = OVERLOAD_CREDITS;
    let cluster = Cluster::new(&sim.ctx(), spec).expect("valid overload spec");
    // Aggregate arrival rate rho/S, split evenly across the senders.
    let gap_mean = OVERLOAD_SENDERS as f64 * mean_service_us / target_rho;
    cluster.spawn_spmd(move |p| async move {
        let buf = p.alloc(u64::from(LARGE_BYTES));
        p.ctx().yield_now().await;
        let me = p.rank().0 as usize;
        if me >= OVERLOAD_SENDERS {
            return;
        }
        let peer = Asid((me + OVERLOAD_SENDERS) as u32);
        let mut rng = OVERLOAD_SEED
            ^ ((me as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F))
            ^ target_rho.to_bits();
        let t0 = p.now();
        loop {
            let gap = exp_sample(&mut rng, gap_mean);
            p.ctx().delay(Dur::from_us(gap)).await;
            if p.now().since(t0).as_us() > window_us {
                break;
            }
            let bytes = if uniform(&mut rng) < big_frac {
                LARGE_BYTES
            } else {
                SMALL_BYTES
            };
            p.put(buf, peer, buf, bytes, None, None)
                .await
                .expect("overload put");
        }
    });
    let run = cluster.run(&sim);
    assert!(run.completed_cleanly(), "overload sweep hung");
    let (ops, wait_us) = cluster.cmd_wait_us(0);
    let (busy_us, _) = cluster.engine_busy_us(0);
    let elapsed_us = cluster.traffic_report().elapsed.as_us();
    let rho = busy_us / elapsed_us;
    let service_us = busy_us / ops as f64;
    OverloadPoint {
        target_rho,
        rho,
        service_us,
        wait_us,
        model_us: mm1_wait_us(service_us, rho),
        ops,
        queue_peak: cluster.engine_queue_peak(0),
        credit_bound: OVERLOAD_SENDERS * OVERLOAD_CREDITS as usize,
    }
}

/// Runs the overload sweep: calibrate the two service classes, solve the
/// CV² = 1 mix, then measure every target utilisation.
#[must_use]
pub fn overload_sweep(quick: bool) -> OverloadSweep {
    let (small_reps, large_reps) = if quick { (200, 100) } else { (400, 200) };
    let small_us = calibrate_service_us(SMALL_BYTES, small_reps);
    let large_us = calibrate_service_us(LARGE_BYTES, large_reps);
    let q = large_fraction(small_us, large_us);
    let mean_service_us = (1.0 - q) * small_us + q * large_us;
    let rhos: &[f64] = if quick { &QUICK_RHOS } else { &OVERLOAD_RHOS };
    let window_us = if quick { 40_000.0 } else { 150_000.0 };
    let points = rhos
        .iter()
        .map(|&t| run_point(t, q, mean_service_us, window_us))
        .collect();
    OverloadSweep {
        small_us,
        large_us,
        large_fraction: q,
        points,
    }
}

/// Checks a sweep against the acceptance criteria: the command queue
/// never outgrew the credit bound, and in the stable regime (targets up
/// to [`CHECK_RHO_CAP`]) the measured wait sits within
/// [`MODEL_TOLERANCE`] of the model curve.
///
/// # Errors
///
/// Returns a message naming the first violated point.
pub fn check_sweep(sweep: &OverloadSweep) -> Result<(), String> {
    for p in &sweep.points {
        if p.queue_peak > p.credit_bound {
            return Err(format!(
                "rho {:.2}: engine queue peaked at {} > credit bound {}",
                p.target_rho, p.queue_peak, p.credit_bound
            ));
        }
        if p.target_rho <= CHECK_RHO_CAP {
            let dev = p.deviation();
            if dev > MODEL_TOLERANCE {
                return Err(format!(
                    "rho {:.2}: measured wait {:.3} us deviates {:.0}% from model {:.3} us \
                     (tolerance {:.0}%)",
                    p.target_rho,
                    p.wait_us,
                    dev * 100.0,
                    p.model_us,
                    MODEL_TOLERANCE * 100.0
                ));
            }
        }
    }
    Ok(())
}

/// Human-readable table of a sweep (mirrors the JSON the binary emits).
#[must_use]
pub fn overload_rows(sweep: &OverloadSweep) -> String {
    use std::fmt::Write as _;
    let mut s = format!(
        "# Overload sweep on MP1: {} senders, {} credits each\n\
         # service mix: {:.2} us ({:.0}%) / {:.2} us ({:.0}%), CV^2 = 1\n\
         {:<10} {:>8} {:>10} {:>9} {:>9} {:>9} {:>6} {:>10} {:>6}\n",
        OVERLOAD_SENDERS,
        OVERLOAD_CREDITS,
        sweep.small_us,
        (1.0 - sweep.large_fraction) * 100.0,
        sweep.large_us,
        sweep.large_fraction * 100.0,
        "target_rho",
        "rho",
        "service_us",
        "wait_us",
        "model_us",
        "dev_pct",
        "ops",
        "queue_peak",
        "stable"
    );
    for p in &sweep.points {
        let _ = writeln!(
            s,
            "{:<10.2} {:>8.3} {:>10.2} {:>9.2} {:>9.2} {:>9.1} {:>6} {:>10} {:>6}",
            p.target_rho,
            p.rho,
            p.service_us,
            p.wait_us,
            p.model_us,
            p.deviation() * 100.0,
            p.ops,
            p.queue_peak,
            if p.stable() { "yes" } else { "NO" }
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cv2_mix_is_exact_when_solvable() {
        let q = large_fraction(5.0, 50.0);
        let m = (1.0 - q) * 5.0 + q * 50.0;
        let m2 = (1.0 - q) * 25.0 + q * 2500.0;
        assert!((m2 - 2.0 * m * m).abs() < 1e-9, "q = {q} broke CV^2 = 1");
        assert!(q > 0.0 && q < 1.0);
    }

    #[test]
    fn cv2_mix_falls_back_when_unsolvable() {
        assert!((large_fraction(5.0, 6.0) - 0.25).abs() < 1e-12);
        assert!((large_fraction(5.0, 5.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn exponential_sampler_has_the_right_mean() {
        let mut st = 42u64;
        let n = 20_000;
        let mean = (0..n).map(|_| exp_sample(&mut st, 10.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn quick_sweep_tracks_model_and_respects_credits() {
        let sweep = overload_sweep(true);
        assert!(sweep.large_us > sweep.small_us);
        check_sweep(&sweep).unwrap();
        // The rho-0.7 point must show real queueing (wait well above the
        // stable-regime points) without the queue outgrowing the bound.
        let last = sweep.points.last().unwrap();
        assert!(last.wait_us > sweep.points[0].wait_us);
        assert!(last.queue_peak <= last.credit_bound);
    }
}
