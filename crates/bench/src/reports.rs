//! Report generators for the figure/table reproductions.
//!
//! The `fig7_pingpong` and `fault_sweep` binaries are thin wrappers
//! around these functions, which return the full report as a `String`
//! so that tests can assert byte-identity against the checked-in
//! `results/` files and the parallel sweep driver can compose reports
//! from independently computed sections.

use std::fmt::Write as _;

use mproxy::micro::{pingpong_put, pingpong_verified, VerifiedPingPong};
use mproxy::{FaultPlan, LinkSnapshot};
use mproxy_am::micro::pingpong_am_store;
use mproxy_apps::{run_app_flat, run_app_flat_faulty, AppId, AppRun, AppSize};
use mproxy_model::{DesignPoint, ALL_DESIGN_POINTS, MP1};

use crate::sweep::{run_parallel, Job};

/// Version of the shared BENCH_*.json envelope ([`bench_header_json`]).
pub const BENCH_SCHEMA: u32 = 2;

/// The shared header every bench binary embeds at the top of its JSON
/// document: schema version, the git revision the numbers were measured
/// at, the host's logical CPU count, and the run's seed (when the
/// workload is seeded). Returned as pre-indented member lines —
/// callers splice it right after their opening `{`:
///
/// ```text
/// "schema": 2,
/// "header": { "git_rev": "abc1234", "host_cpus": 8, "seed": 7 },
/// ```
#[must_use]
pub fn bench_header_json(seed: Option<u64>) -> String {
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .or_else(|| std::env::var("GITHUB_SHA").ok())
        .unwrap_or_else(|| "unknown".to_string());
    let cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let seed = seed.map_or_else(|| "null".to_string(), |s| s.to_string());
    format!(
        "  \"schema\": {BENCH_SCHEMA},\n  \"header\": {{ \"git_rev\": \"{}\", \
         \"host_cpus\": {cpus}, \"seed\": {seed} }},\n",
        mproxy_obs::json::esc(&rev)
    )
}

/// Message sizes swept by the Figure 7 reproduction.
pub const FIG7_SIZES: [u32; 8] = [8, 32, 128, 512, 2048, 8192, 65536, 262144];

/// Round trips averaged per Figure 7 measurement.
pub const FIG7_REPS: u64 = 4;

/// The two ping-pong protocols of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig7Protocol {
    /// Remote PUT with a completion flag.
    Put,
    /// Active-message bulk store.
    AmStore,
}

impl Fig7Protocol {
    fn title(self) -> &'static str {
        match self {
            Fig7Protocol::Put => "PUT ping-pong",
            Fig7Protocol::AmStore => "AM store ping-pong",
        }
    }
}

fn fig7_header(proto: Fig7Protocol) -> String {
    format!(
        "# Figure 7: {}\n{:<8} {:>9} {:>13} {:>15}\n",
        proto.title(),
        "point",
        "bytes",
        "latency_us",
        "bandwidth_MB/s"
    )
}

/// One independent slice of the Figure 7 sweep: every message size for
/// one protocol at one design point. Sections are self-contained, so
/// the sweep driver can compute them on separate threads and the
/// concatenation is byte-identical to the serial report.
#[must_use]
pub fn fig7_section(proto: Fig7Protocol, design: DesignPoint) -> String {
    let mut s = String::new();
    match proto {
        Fig7Protocol::Put => {
            for pt in pingpong_put(design, &FIG7_SIZES, FIG7_REPS) {
                let _ = writeln!(
                    s,
                    "{:<8} {:>9} {:>13.2} {:>15.2}",
                    design.name, pt.bytes, pt.latency_us, pt.bandwidth_mbs
                );
            }
        }
        Fig7Protocol::AmStore => {
            for pt in pingpong_am_store(design, &FIG7_SIZES, FIG7_REPS) {
                let _ = writeln!(
                    s,
                    "{:<8} {:>9} {:>13.2} {:>15.2}",
                    design.name, pt.bytes, pt.latency_us, pt.bandwidth_mbs
                );
            }
        }
    }
    s
}

fn fig7_compose(sections: &[String]) -> String {
    let mut s = fig7_header(Fig7Protocol::Put);
    for sec in &sections[..ALL_DESIGN_POINTS.len()] {
        s.push_str(sec);
    }
    s.push('\n');
    s.push_str(&fig7_header(Fig7Protocol::AmStore));
    for sec in &sections[ALL_DESIGN_POINTS.len()..] {
        s.push_str(sec);
    }
    s
}

/// The full Figure 7 report (`results/fig7.txt`), computed serially.
#[must_use]
pub fn fig7_report() -> String {
    let mut sections = Vec::with_capacity(2 * ALL_DESIGN_POINTS.len());
    for proto in [Fig7Protocol::Put, Fig7Protocol::AmStore] {
        for d in ALL_DESIGN_POINTS {
            sections.push(fig7_section(proto, d));
        }
    }
    fig7_compose(&sections)
}

/// The full Figure 7 report computed by fanning the 12 independent
/// (protocol × design point) sections out across `threads` OS threads.
/// Byte-identical to [`fig7_report`].
#[must_use]
pub fn fig7_report_parallel(threads: usize) -> String {
    let mut jobs: Vec<Job> = Vec::with_capacity(2 * ALL_DESIGN_POINTS.len());
    for proto in [Fig7Protocol::Put, Fig7Protocol::AmStore] {
        for d in ALL_DESIGN_POINTS {
            jobs.push(Box::new(move || fig7_section(proto, d)));
        }
    }
    fig7_compose(&run_parallel(jobs, threads))
}

/// Seed for the fault-sweep plans (`results/fault_sweep.txt`).
pub const SWEEP_SEED: u64 = 1997;

/// Drop rates swept by the fault-sweep reproduction.
pub const SWEEP_DROP_RATES: [f64; 3] = [0.001, 0.01, 0.05];

/// A sweep plan at `drop` probability: duplicates at half the drop rate,
/// reorders at the drop rate, corrupts at a quarter of it.
#[must_use]
pub fn sweep_plan(drop: f64) -> FaultPlan {
    FaultPlan::new(SWEEP_SEED)
        .drop(drop)
        .duplicate(drop / 2.0)
        .reorder(drop, 30.0)
        .corrupt(drop / 4.0)
}

fn sweep_pp_row(s: &mut String, label: &str, r: &VerifiedPingPong) {
    let _ = writeln!(
        s,
        "{:<10} {:>8} {:>10.2} {:>8} {:>9} {:>8} {:>7} {:>7}",
        label,
        r.rounds,
        r.rt_us,
        if r.data_ok && r.error.is_none() {
            "yes"
        } else {
            "NO"
        },
        r.report.injected.packets,
        r.report.injected.dropped,
        r.report.link.retransmits,
        r.report.link.dups_discarded,
    );
}

fn sweep_app_row(s: &mut String, label: &str, r: &AppRun) {
    let _ = writeln!(
        s,
        "{:<10} {:>12.1} {:>14.6} {:>9} {:>8} {:>7} {:>7}",
        label,
        r.elapsed_us,
        r.checksum,
        r.faults.injected.packets,
        r.faults.injected.dropped,
        r.faults.link.retransmits,
        r.faults.link.unreachable,
    );
}

/// The full fault-sweep report (`results/fault_sweep.txt`): the MP1
/// verified ping-pong and the Sample application on increasingly lossy
/// networks.
///
/// # Panics
///
/// Panics if any faulty run produces a different checksum than the
/// fault-free one — the reliable link layer must hide faults.
#[must_use]
pub fn fault_sweep_report() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# Fault sweep on MP1 (seed {SWEEP_SEED})");
    let _ = writeln!(s, "# dup = drop/2, reorder = drop (30us), corrupt = drop/4\n");

    let _ = writeln!(s, "## Verified PUT ping-pong, 64 B x 64 reps");
    let _ = writeln!(
        s,
        "{:<10} {:>8} {:>10} {:>8} {:>9} {:>8} {:>7} {:>7}",
        "drop_rate", "rounds", "rt_us", "ok", "injected", "dropped", "retx", "dups"
    );
    let base = pingpong_verified(MP1, 64, 64, None);
    sweep_pp_row(&mut s, "none", &base);
    let benign = pingpong_verified(MP1, 64, 64, Some(FaultPlan::new(SWEEP_SEED)));
    sweep_pp_row(&mut s, "0 (rel.)", &benign);
    for &rate in &SWEEP_DROP_RATES {
        let r = pingpong_verified(MP1, 64, 64, Some(sweep_plan(rate)));
        sweep_pp_row(&mut s, &format!("{rate}"), &r);
    }

    let _ = writeln!(s, "\n## Sample application (Tiny, 2 procs)");
    let _ = writeln!(
        s,
        "{:<10} {:>12} {:>14} {:>9} {:>8} {:>7} {:>7}",
        "drop_rate", "elapsed_us", "checksum", "injected", "dropped", "retx", "unreach"
    );
    let base = run_app_flat(AppId::Sample, MP1, 2, AppSize::Tiny);
    sweep_app_row(&mut s, "none", &base);
    let benign = run_app_flat_faulty(
        AppId::Sample,
        MP1,
        2,
        AppSize::Tiny,
        FaultPlan::new(SWEEP_SEED),
    );
    sweep_app_row(&mut s, "0 (rel.)", &benign);
    assert_eq!(base.checksum, benign.checksum);
    for &rate in &SWEEP_DROP_RATES {
        let r = run_app_flat_faulty(AppId::Sample, MP1, 2, AppSize::Tiny, sweep_plan(rate));
        assert_eq!(base.checksum, r.checksum, "faults must never change answers");
        sweep_app_row(&mut s, &format!("{rate}"), &r);
    }
    let _ = writeln!(s, "\n# all checksums identical to the fault-free run");
    s
}

// ---------------------------------------------------------------------
// Crash-recovery sweep (`results/crash_sweep.txt`)

/// Drop rate active during the crash-recovery sweep.
pub const CRASH_DROP: f64 = 0.01;

/// Node whose proxy crashes in the sweep.
pub const CRASH_NODE: usize = 1;

/// Downtime between crash and restart, µs (well inside the senders'
/// retransmission budget, so survivors keep retrying across the outage).
pub const CRASH_DOWNTIME_US: f64 = 250.0;

/// Crash instant for the ping-pong recovery row: node 1 is caught
/// between rounds, with no un-ACKed work of its own, so the epoch
/// handshake restores the connection and all 64 rounds complete.
pub const PP_CRASH_AT_US: f64 = 120.0;

/// Crash instant for the ping-pong fail-stop row: node 1 is caught with
/// its reply still un-ACKed, so recovery is impossible and the owner is
/// failed with `EpochReset` instead of risking silent duplication.
pub const PP_MIDFLIGHT_AT_US: f64 = 152.0;

/// Crash instant for the Sample-application row (inside a compute
/// phase; the run completes with the fault-free checksum).
pub const APP_CRASH_AT_US: f64 = 600.0;

/// The standard sweep fault mix plus a crash window.
#[must_use]
pub fn crash_sweep_plan(drop: f64, node: usize, at_us: f64, downtime_us: f64) -> FaultPlan {
    sweep_plan(drop).crash(node, at_us, downtime_us)
}

/// Compact rendering of the per-node link snapshots: node, epoch, then
/// per-peer `peer:last_sent/next_expected`.
fn epoch_digest(epochs: &[LinkSnapshot]) -> String {
    let mut s = String::new();
    for (node, (epoch, peers)) in epochs.iter().enumerate() {
        if node > 0 {
            s.push(' ');
        }
        let _ = write!(s, "n{node}:e{epoch}[");
        for (i, (peer, last, expected)) in peers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{peer}:{last}/{expected}");
        }
        s.push(']');
    }
    s
}

fn crash_pp_row(s: &mut String, label: &str, r: &VerifiedPingPong) {
    let outcome = match &r.error {
        None if r.data_ok => "ok",
        None => "corrupt",
        Some(mproxy::CommError::EpochReset { .. }) => "EpochReset",
        Some(mproxy::CommError::Unreachable { .. }) => "Unreachable",
        Some(_) => "error",
    };
    let _ = writeln!(
        s,
        "{:<15} {:>6} {:>11} {:>5} {:>6} {:>6} {:>7} {:>8}  {}",
        label,
        r.rounds,
        outcome,
        r.report.link.retransmits,
        r.report.link.replayed,
        r.report.link.hellos_sent,
        r.report.link.epoch_resyncs,
        r.report.link.stale_discarded,
        epoch_digest(&r.epochs),
    );
}

/// Crash-recovery sweep, ping-pong section: one recovery row (run twice
/// and asserted byte-identical — crash recovery must be deterministic)
/// and one fail-stop row where the crash eats un-ACKed work.
///
/// # Panics
///
/// Panics if the recovery run loses or duplicates data, if its repeat
/// differs in any observable (delivery order, epochs, statistics), or if
/// the fail-stop run does not surface `EpochReset`.
#[must_use]
pub fn crash_pp_section() -> String {
    let mut s = String::new();
    let base = pingpong_verified(MP1, 64, 64, Some(sweep_plan(CRASH_DROP)));
    crash_pp_row(&mut s, "no-crash", &base);

    let plan = || crash_sweep_plan(CRASH_DROP, CRASH_NODE, PP_CRASH_AT_US, CRASH_DOWNTIME_US);
    let crash = pingpong_verified(MP1, 64, 64, Some(plan()));
    assert!(
        crash.rounds == base.rounds && crash.data_ok && crash.error.is_none(),
        "mid-run proxy crash lost data: {crash:?}"
    );
    assert!(
        crash.report.link.epoch_resyncs >= 1,
        "crash run never resynced an epoch"
    );
    crash_pp_row(&mut s, &format!("crash@{PP_CRASH_AT_US}"), &crash);

    let again = pingpong_verified(MP1, 64, 64, Some(plan()));
    let mut repeat = String::new();
    crash_pp_row(&mut repeat, &format!("crash@{PP_CRASH_AT_US}"), &again);
    let mut first = String::new();
    crash_pp_row(&mut first, &format!("crash@{PP_CRASH_AT_US}"), &crash);
    assert_eq!(
        first,
        repeat,
        "crash recovery must be deterministic run-to-run"
    );
    assert!(
        (crash.rt_us - again.rt_us).abs() < f64::EPSILON,
        "crash recovery timing diverged between identical runs"
    );

    let failstop = pingpong_verified(
        MP1,
        64,
        64,
        Some(crash_sweep_plan(
            CRASH_DROP,
            CRASH_NODE,
            PP_MIDFLIGHT_AT_US,
            CRASH_DOWNTIME_US,
        )),
    );
    assert!(
        matches!(failstop.error, Some(mproxy::CommError::EpochReset { .. })),
        "mid-flight crash must surface EpochReset, got {:?}",
        failstop.error
    );
    crash_pp_row(&mut s, &format!("midflight@{PP_MIDFLIGHT_AT_US}"), &failstop);
    s
}

fn crash_app_row(s: &mut String, label: &str, r: &AppRun) {
    let _ = writeln!(
        s,
        "{:<15} {:>12.1} {:>14.6} {:>5} {:>6} {:>6} {:>7}",
        label,
        r.elapsed_us,
        r.checksum,
        r.faults.link.retransmits,
        r.faults.link.replayed,
        r.faults.link.hellos_sent,
        r.faults.link.epoch_resyncs,
    );
}

/// Crash-recovery sweep, application section: the Sample app completes
/// with the fault-free checksum despite a mid-run proxy crash, twice,
/// identically.
///
/// # Panics
///
/// Panics if the crashed run changes the answer or the repeat run
/// diverges.
#[must_use]
pub fn crash_app_section() -> String {
    let mut s = String::new();
    let base = run_app_flat_faulty(
        AppId::Sample,
        MP1,
        2,
        AppSize::Tiny,
        sweep_plan(CRASH_DROP),
    );
    crash_app_row(&mut s, "no-crash", &base);
    let plan = || crash_sweep_plan(CRASH_DROP, CRASH_NODE, APP_CRASH_AT_US, CRASH_DOWNTIME_US);
    let crash = run_app_flat_faulty(AppId::Sample, MP1, 2, AppSize::Tiny, plan());
    assert_eq!(
        base.checksum, crash.checksum,
        "proxy crash changed the application answer"
    );
    assert!(
        crash.faults.link.epoch_resyncs >= 1,
        "app crash run never resynced an epoch"
    );
    crash_app_row(&mut s, &format!("crash@{APP_CRASH_AT_US}"), &crash);
    let again = run_app_flat_faulty(AppId::Sample, MP1, 2, AppSize::Tiny, plan());
    assert!(
        again.checksum == crash.checksum
            && (again.elapsed_us - crash.elapsed_us).abs() < f64::EPSILON
            && again.faults == crash.faults,
        "app crash recovery must be deterministic run-to-run"
    );
    s
}

fn crash_compose(sections: &[String]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# Crash-recovery sweep on MP1 (seed {SWEEP_SEED}, drop {CRASH_DROP})"
    );
    let _ = writeln!(
        s,
        "# crash: node {CRASH_NODE}'s proxy dies (volatile link state lost), restarts \
         {CRASH_DOWNTIME_US}us later\n"
    );
    let _ = writeln!(s, "## Verified PUT ping-pong, 64 B x 64 reps");
    let _ = writeln!(
        s,
        "{:<15} {:>6} {:>11} {:>5} {:>6} {:>6} {:>7} {:>8}  epochs",
        "label", "rounds", "outcome", "retx", "replay", "hello", "resync", "stale"
    );
    s.push_str(&sections[0]);
    let _ = writeln!(s, "\n## Sample application (Tiny, 2 procs)");
    let _ = writeln!(
        s,
        "{:<15} {:>12} {:>14} {:>5} {:>6} {:>6} {:>7}",
        "label", "elapsed_us", "checksum", "retx", "replay", "hello", "resync"
    );
    s.push_str(&sections[1]);
    let _ = writeln!(
        s,
        "\n# recovery rows re-ran byte-identically; checksums match the crash-free run"
    );
    s
}

/// The full crash-recovery report (`results/crash_sweep.txt`), computed
/// serially.
#[must_use]
pub fn crash_sweep_report() -> String {
    crash_compose(&[crash_pp_section(), crash_app_section()])
}

/// The crash-recovery report with its two sections computed on separate
/// OS threads. Byte-identical to [`crash_sweep_report`].
#[must_use]
pub fn crash_sweep_report_parallel(threads: usize) -> String {
    let jobs: Vec<Job> = vec![
        Box::new(crash_pp_section),
        Box::new(crash_app_section),
    ];
    crash_compose(&run_parallel(jobs, threads))
}

/// One unit of the events/sec benchmark workload: the MP1 verified
/// ping-pong plus the Sample application at the given drop rate (the
/// acceptance workload uses 1%). Returns total simulator calendar
/// events executed, so the harness can report events per wall-clock
/// second.
///
/// # Panics
///
/// Panics if the faulty run loses data — the workload is also a
/// correctness check.
#[must_use]
pub fn fault_sweep_unit_events(drop: f64) -> u64 {
    let pp = pingpong_verified(MP1, 64, 64, Some(sweep_plan(drop)));
    assert!(
        pp.data_ok && pp.error.is_none(),
        "benchmark workload lost data"
    );
    let app = run_app_flat_faulty(AppId::Sample, MP1, 2, AppSize::Tiny, sweep_plan(drop));
    pp.sim.events + app.sim.events
}

#[cfg(test)]
mod profile {
    use super::*;
    use std::time::Instant;

    #[test]
    #[ignore = "manual profiling aid"]
    fn acceptance_loop() {
        for _ in 0..400 {
            let _ = fault_sweep_unit_events(0.01);
        }
    }

    #[test]
    #[ignore = "manual profiling aid"]
    fn primitive_throughput() {
        use mproxy_des::{Channel, Dur, Simulation};
        // Pure delay chain: one task, N calendar events.
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            for _ in 0..200_000u32 {
                ctx.delay(Dur::from_us(1.0)).await;
            }
        });
        let t = Instant::now();
        let r = sim.run();
        let w = t.elapsed().as_secs_f64();
        eprintln!("delay-chain: {} events in {w:.4}s = {:.0} ev/s", r.events, r.events as f64 / w);
        // Channel ping-pong: two tasks, waker round trips.
        let sim = Simulation::new();
        let a: Channel<u32> = Channel::unbounded();
        let b: Channel<u32> = Channel::unbounded();
        let (a2, b2) = (a.clone(), b.clone());
        sim.spawn(async move {
            for i in 0..200_000u32 {
                a.try_send(i).unwrap();
                let _ = b.recv().await;
            }
        });
        sim.spawn(async move {
            for _ in 0..200_000u32 {
                let v = a2.recv().await.unwrap();
                b2.try_send(v).unwrap();
            }
        });
        let t = Instant::now();
        let r = sim.run();
        let w = t.elapsed().as_secs_f64();
        eprintln!("chan-pingpong: 400k round trips in {w:.4}s = {:.0} msg/s (events={})", 400_000.0 / w, r.events);
        // Timer arm+cancel churn.
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            for _ in 0..200_000u32 {
                let t = ctx.timer(Dur::from_us(50.0));
                let h = t.handle();
                h.cancel();
                let _ = t.await;
            }
        });
        let t = Instant::now();
        let r = sim.run();
        let w = t.elapsed().as_secs_f64();
        eprintln!("timer-cancel: 200k in {w:.4}s = {:.0}/s (events={})", 200_000.0 / w, r.events);
    }

    #[test]
    #[ignore = "manual profiling aid"]
    fn split_timings() {
        for _ in 0..3 {
            let t = Instant::now();
            let pp = pingpong_verified(MP1, 64, 64, Some(sweep_plan(0.01)));
            let tp = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let app = run_app_flat_faulty(AppId::Sample, MP1, 2, AppSize::Tiny, sweep_plan(0.01));
            let ta = t.elapsed().as_secs_f64();
            eprintln!("pp: {tp:.4}s {:?}", pp.sim);
            eprintln!("app: {ta:.4}s {:?}", app.sim);
        }
    }
}
