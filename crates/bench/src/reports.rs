//! Report generators for the figure/table reproductions.
//!
//! The `fig7_pingpong` and `fault_sweep` binaries are thin wrappers
//! around these functions, which return the full report as a `String`
//! so that tests can assert byte-identity against the checked-in
//! `results/` files and the parallel sweep driver can compose reports
//! from independently computed sections.

use std::fmt::Write as _;

use mproxy::micro::{pingpong_put, pingpong_verified, VerifiedPingPong};
use mproxy::FaultPlan;
use mproxy_am::micro::pingpong_am_store;
use mproxy_apps::{run_app_flat, run_app_flat_faulty, AppId, AppRun, AppSize};
use mproxy_model::{DesignPoint, ALL_DESIGN_POINTS, MP1};

use crate::sweep::{run_parallel, Job};

/// Message sizes swept by the Figure 7 reproduction.
pub const FIG7_SIZES: [u32; 8] = [8, 32, 128, 512, 2048, 8192, 65536, 262144];

/// Round trips averaged per Figure 7 measurement.
pub const FIG7_REPS: u64 = 4;

/// The two ping-pong protocols of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig7Protocol {
    /// Remote PUT with a completion flag.
    Put,
    /// Active-message bulk store.
    AmStore,
}

impl Fig7Protocol {
    fn title(self) -> &'static str {
        match self {
            Fig7Protocol::Put => "PUT ping-pong",
            Fig7Protocol::AmStore => "AM store ping-pong",
        }
    }
}

fn fig7_header(proto: Fig7Protocol) -> String {
    format!(
        "# Figure 7: {}\n{:<8} {:>9} {:>13} {:>15}\n",
        proto.title(),
        "point",
        "bytes",
        "latency_us",
        "bandwidth_MB/s"
    )
}

/// One independent slice of the Figure 7 sweep: every message size for
/// one protocol at one design point. Sections are self-contained, so
/// the sweep driver can compute them on separate threads and the
/// concatenation is byte-identical to the serial report.
#[must_use]
pub fn fig7_section(proto: Fig7Protocol, design: DesignPoint) -> String {
    let mut s = String::new();
    match proto {
        Fig7Protocol::Put => {
            for pt in pingpong_put(design, &FIG7_SIZES, FIG7_REPS) {
                let _ = writeln!(
                    s,
                    "{:<8} {:>9} {:>13.2} {:>15.2}",
                    design.name, pt.bytes, pt.latency_us, pt.bandwidth_mbs
                );
            }
        }
        Fig7Protocol::AmStore => {
            for pt in pingpong_am_store(design, &FIG7_SIZES, FIG7_REPS) {
                let _ = writeln!(
                    s,
                    "{:<8} {:>9} {:>13.2} {:>15.2}",
                    design.name, pt.bytes, pt.latency_us, pt.bandwidth_mbs
                );
            }
        }
    }
    s
}

fn fig7_compose(sections: &[String]) -> String {
    let mut s = fig7_header(Fig7Protocol::Put);
    for sec in &sections[..ALL_DESIGN_POINTS.len()] {
        s.push_str(sec);
    }
    s.push('\n');
    s.push_str(&fig7_header(Fig7Protocol::AmStore));
    for sec in &sections[ALL_DESIGN_POINTS.len()..] {
        s.push_str(sec);
    }
    s
}

/// The full Figure 7 report (`results/fig7.txt`), computed serially.
#[must_use]
pub fn fig7_report() -> String {
    let mut sections = Vec::with_capacity(2 * ALL_DESIGN_POINTS.len());
    for proto in [Fig7Protocol::Put, Fig7Protocol::AmStore] {
        for d in ALL_DESIGN_POINTS {
            sections.push(fig7_section(proto, d));
        }
    }
    fig7_compose(&sections)
}

/// The full Figure 7 report computed by fanning the 12 independent
/// (protocol × design point) sections out across `threads` OS threads.
/// Byte-identical to [`fig7_report`].
#[must_use]
pub fn fig7_report_parallel(threads: usize) -> String {
    let mut jobs: Vec<Job> = Vec::with_capacity(2 * ALL_DESIGN_POINTS.len());
    for proto in [Fig7Protocol::Put, Fig7Protocol::AmStore] {
        for d in ALL_DESIGN_POINTS {
            jobs.push(Box::new(move || fig7_section(proto, d)));
        }
    }
    fig7_compose(&run_parallel(jobs, threads))
}

/// Seed for the fault-sweep plans (`results/fault_sweep.txt`).
pub const SWEEP_SEED: u64 = 1997;

/// Drop rates swept by the fault-sweep reproduction.
pub const SWEEP_DROP_RATES: [f64; 3] = [0.001, 0.01, 0.05];

/// A sweep plan at `drop` probability: duplicates at half the drop rate,
/// reorders at the drop rate, corrupts at a quarter of it.
#[must_use]
pub fn sweep_plan(drop: f64) -> FaultPlan {
    FaultPlan::new(SWEEP_SEED)
        .drop(drop)
        .duplicate(drop / 2.0)
        .reorder(drop, 30.0)
        .corrupt(drop / 4.0)
}

fn sweep_pp_row(s: &mut String, label: &str, r: &VerifiedPingPong) {
    let _ = writeln!(
        s,
        "{:<10} {:>8} {:>10.2} {:>8} {:>9} {:>8} {:>7} {:>7}",
        label,
        r.rounds,
        r.rt_us,
        if r.data_ok && r.error.is_none() {
            "yes"
        } else {
            "NO"
        },
        r.report.injected.packets,
        r.report.injected.dropped,
        r.report.link.retransmits,
        r.report.link.dups_discarded,
    );
}

fn sweep_app_row(s: &mut String, label: &str, r: &AppRun) {
    let _ = writeln!(
        s,
        "{:<10} {:>12.1} {:>14.6} {:>9} {:>8} {:>7} {:>7}",
        label,
        r.elapsed_us,
        r.checksum,
        r.faults.injected.packets,
        r.faults.injected.dropped,
        r.faults.link.retransmits,
        r.faults.link.unreachable,
    );
}

/// The full fault-sweep report (`results/fault_sweep.txt`): the MP1
/// verified ping-pong and the Sample application on increasingly lossy
/// networks.
///
/// # Panics
///
/// Panics if any faulty run produces a different checksum than the
/// fault-free one — the reliable link layer must hide faults.
#[must_use]
pub fn fault_sweep_report() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# Fault sweep on MP1 (seed {SWEEP_SEED})");
    let _ = writeln!(s, "# dup = drop/2, reorder = drop (30us), corrupt = drop/4\n");

    let _ = writeln!(s, "## Verified PUT ping-pong, 64 B x 64 reps");
    let _ = writeln!(
        s,
        "{:<10} {:>8} {:>10} {:>8} {:>9} {:>8} {:>7} {:>7}",
        "drop_rate", "rounds", "rt_us", "ok", "injected", "dropped", "retx", "dups"
    );
    let base = pingpong_verified(MP1, 64, 64, None);
    sweep_pp_row(&mut s, "none", &base);
    let benign = pingpong_verified(MP1, 64, 64, Some(FaultPlan::new(SWEEP_SEED)));
    sweep_pp_row(&mut s, "0 (rel.)", &benign);
    for &rate in &SWEEP_DROP_RATES {
        let r = pingpong_verified(MP1, 64, 64, Some(sweep_plan(rate)));
        sweep_pp_row(&mut s, &format!("{rate}"), &r);
    }

    let _ = writeln!(s, "\n## Sample application (Tiny, 2 procs)");
    let _ = writeln!(
        s,
        "{:<10} {:>12} {:>14} {:>9} {:>8} {:>7} {:>7}",
        "drop_rate", "elapsed_us", "checksum", "injected", "dropped", "retx", "unreach"
    );
    let base = run_app_flat(AppId::Sample, MP1, 2, AppSize::Tiny);
    sweep_app_row(&mut s, "none", &base);
    let benign = run_app_flat_faulty(
        AppId::Sample,
        MP1,
        2,
        AppSize::Tiny,
        FaultPlan::new(SWEEP_SEED),
    );
    sweep_app_row(&mut s, "0 (rel.)", &benign);
    assert_eq!(base.checksum, benign.checksum);
    for &rate in &SWEEP_DROP_RATES {
        let r = run_app_flat_faulty(AppId::Sample, MP1, 2, AppSize::Tiny, sweep_plan(rate));
        assert_eq!(base.checksum, r.checksum, "faults must never change answers");
        sweep_app_row(&mut s, &format!("{rate}"), &r);
    }
    let _ = writeln!(s, "\n# all checksums identical to the fault-free run");
    s
}

/// One unit of the events/sec benchmark workload: the MP1 verified
/// ping-pong plus the Sample application at the given drop rate (the
/// acceptance workload uses 1%). Returns total simulator calendar
/// events executed, so the harness can report events per wall-clock
/// second.
///
/// # Panics
///
/// Panics if the faulty run loses data — the workload is also a
/// correctness check.
#[must_use]
pub fn fault_sweep_unit_events(drop: f64) -> u64 {
    let pp = pingpong_verified(MP1, 64, 64, Some(sweep_plan(drop)));
    assert!(
        pp.data_ok && pp.error.is_none(),
        "benchmark workload lost data"
    );
    let app = run_app_flat_faulty(AppId::Sample, MP1, 2, AppSize::Tiny, sweep_plan(drop));
    pp.sim.events + app.sim.events
}

#[cfg(test)]
mod profile {
    use super::*;
    use std::time::Instant;

    #[test]
    #[ignore = "manual profiling aid"]
    fn acceptance_loop() {
        for _ in 0..400 {
            let _ = fault_sweep_unit_events(0.01);
        }
    }

    #[test]
    #[ignore = "manual profiling aid"]
    fn primitive_throughput() {
        use mproxy_des::{Channel, Dur, Simulation};
        // Pure delay chain: one task, N calendar events.
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            for _ in 0..200_000u32 {
                ctx.delay(Dur::from_us(1.0)).await;
            }
        });
        let t = Instant::now();
        let r = sim.run();
        let w = t.elapsed().as_secs_f64();
        eprintln!("delay-chain: {} events in {w:.4}s = {:.0} ev/s", r.events, r.events as f64 / w);
        // Channel ping-pong: two tasks, waker round trips.
        let sim = Simulation::new();
        let a: Channel<u32> = Channel::unbounded();
        let b: Channel<u32> = Channel::unbounded();
        let (a2, b2) = (a.clone(), b.clone());
        sim.spawn(async move {
            for i in 0..200_000u32 {
                a.try_send(i).unwrap();
                let _ = b.recv().await;
            }
        });
        sim.spawn(async move {
            for _ in 0..200_000u32 {
                let v = a2.recv().await.unwrap();
                b2.try_send(v).unwrap();
            }
        });
        let t = Instant::now();
        let r = sim.run();
        let w = t.elapsed().as_secs_f64();
        eprintln!("chan-pingpong: 400k round trips in {w:.4}s = {:.0} msg/s (events={})", 400_000.0 / w, r.events);
        // Timer arm+cancel churn.
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            for _ in 0..200_000u32 {
                let t = ctx.timer(Dur::from_us(50.0));
                let h = t.handle();
                h.cancel();
                let _ = t.await;
            }
        });
        let t = Instant::now();
        let r = sim.run();
        let w = t.elapsed().as_secs_f64();
        eprintln!("timer-cancel: 200k in {w:.4}s = {:.0}/s (events={})", 200_000.0 / w, r.events);
    }

    #[test]
    #[ignore = "manual profiling aid"]
    fn split_timings() {
        for _ in 0..3 {
            let t = Instant::now();
            let pp = pingpong_verified(MP1, 64, 64, Some(sweep_plan(0.01)));
            let tp = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let app = run_app_flat_faulty(AppId::Sample, MP1, 2, AppSize::Tiny, sweep_plan(0.01));
            let ta = t.elapsed().as_secs_f64();
            eprintln!("pp: {tp:.4}s {:?}", pp.sim);
            eprintln!("app: {ta:.4}s {:?}", app.sim);
        }
    }
}
