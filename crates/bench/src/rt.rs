//! Threaded-runtime data-plane workloads for the `rt_throughput` harness.
//!
//! Two microbenchmarks, each runnable on either data plane (the lock-free
//! rings or the `Mutex<VecDeque>` baseline kept by
//! [`RtClusterBuilder::locked_data_plane`]):
//!
//! * **ping-pong** — two processes on two nodes bounce a small PUT back
//!   and forth; per-round latency percentiles expose the idle-path cost
//!   (spin → yield → park wake-up) and the per-message queue mechanics;
//! * **fan-in** — several source processes, each on its own node, flood
//!   acknowledged PUTs at one sink process under a fixed outstanding
//!   window; sustained messages/sec exposes the hot-path queue mechanics
//!   (one mutex per push/pop and one ACK packet per message on the
//!   baseline, versus CAS claims and per-batch coalesced ACKs on the
//!   rings);
//! * **multi-user fan-in** ([`fan_in_users`]) — the proxies×users sweep
//!   point: several sink *users* share node 0 and the sources spray
//!   round-robin across them, so with `--shards N` the sink node's
//!   command-queue service parallelizes across shard threads instead of
//!   serializing behind one proxy.

use std::time::{Duration, Instant};

use mproxy_rt::{FlagId, RtClusterBuilder};

/// Payload bytes per message (a small control message — word aligned, so
/// segment copies are pure atomic word traffic).
pub const PAYLOAD: u32 = 32;
/// Outstanding unacknowledged PUTs each fan-in source keeps in flight.
/// Deep enough to build real backlog at the sink (batching and ACK
/// coalescing have material work), shallow enough that the bounded rings
/// exercise their backpressure path rather than deadlocking the host.
pub const WINDOW: u64 = 256;
/// Give-up bound for every wait in the workloads — a wedged data plane
/// fails the bench loudly instead of hanging CI.
const WAIT: Duration = Duration::from_secs(120);

/// Ping-pong latency summary (microseconds).
#[derive(Debug, Clone, Copy)]
pub struct PingPong {
    /// Round trips measured.
    pub rounds: u64,
    /// Total wall time, seconds.
    pub wall_s: f64,
    /// Median round-trip latency, µs.
    pub p50_us: f64,
    /// 90th-percentile round-trip latency, µs.
    pub p90_us: f64,
    /// 99th-percentile round-trip latency, µs.
    pub p99_us: f64,
}

/// Fan-in throughput summary.
#[derive(Debug, Clone, Copy)]
pub struct FanIn {
    /// Source processes (each on its own node).
    pub sources: usize,
    /// Messages sent per source.
    pub msgs_per_source: u64,
    /// Total wall time until the sink observed every delivery, seconds.
    pub wall_s: f64,
    /// Sustained delivered messages per second at the sink.
    pub msgs_per_sec: f64,
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

/// Runs the ping-pong workload on the selected data plane.
///
/// # Panics
///
/// Panics if any wait times out (a wedged data plane) — the bench must
/// fail loudly, not hang.
#[must_use]
pub fn ping_pong(locked: bool, rounds: u64) -> PingPong {
    ping_pong_cfg(locked, rounds, true)
}

/// [`ping_pong`] with an explicit telemetry-recording knob — the A/B
/// axis of the `rt_obs` overhead gate (counters stay on either way;
/// `telemetry` arms histograms and flight recorders).
#[must_use]
pub fn ping_pong_cfg(locked: bool, rounds: u64, telemetry: bool) -> PingPong {
    ping_pong_inner(locked, rounds, telemetry, 1)
}

/// [`ping_pong`] with the per-node proxy-shard count exposed.
#[must_use]
pub fn ping_pong_shards(locked: bool, rounds: u64, shards: usize) -> PingPong {
    ping_pong_inner(locked, rounds, true, shards)
}

fn ping_pong_inner(locked: bool, rounds: u64, telemetry: bool, shards: usize) -> PingPong {
    let mut b = RtClusterBuilder::new(2);
    b.telemetry(telemetry);
    b.shards(shards);
    if locked {
        b.locked_data_plane();
    }
    let p0 = b.add_process(0, 4096);
    let p1 = b.add_process(1, 4096);
    let (cluster, mut eps) = b.start();
    let mut e1 = eps.pop().expect("endpoint 1");
    let mut e0 = eps.pop().expect("endpoint 0");

    let ponger = std::thread::spawn(move || {
        for i in 1..=rounds {
            e1.wait_flag_timeout(FlagId(0), i, WAIT).expect("pong wait");
            e1.put(0, p0, 0, PAYLOAD, None, Some(FlagId(0)));
        }
    });

    let mut lat_us = Vec::with_capacity(usize::try_from(rounds).expect("rounds fits usize"));
    let t0 = Instant::now();
    for i in 1..=rounds {
        let r0 = Instant::now();
        e0.put(0, p1, 0, PAYLOAD, None, Some(FlagId(0)));
        e0.wait_flag_timeout(FlagId(0), i, WAIT).expect("ping wait");
        lat_us.push(r0.elapsed().as_secs_f64() * 1e6);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    ponger.join().expect("ponger thread");
    cluster.shutdown();

    lat_us.sort_by(f64::total_cmp);
    PingPong {
        rounds,
        wall_s,
        p50_us: percentile(&lat_us, 0.50),
        p90_us: percentile(&lat_us, 0.90),
        p99_us: percentile(&lat_us, 0.99),
    }
}

/// Runs the all-to-one fan-in workload on the selected data plane:
/// `sources` processes (one per node) each send `msgs_per_source`
/// acknowledged PUTs at a sink on node 0, keeping [`WINDOW`] messages in
/// flight. The clock stops when the sink's delivery flag reaches the
/// total.
///
/// # Panics
///
/// Panics if any wait times out (a wedged data plane).
#[must_use]
pub fn fan_in(locked: bool, sources: usize, msgs_per_source: u64) -> FanIn {
    fan_in_cfg(locked, sources, msgs_per_source, true)
}

/// [`fan_in`] with an explicit telemetry-recording knob (see
/// [`ping_pong_cfg`]).
///
/// # Panics
///
/// Panics if any wait times out (a wedged data plane).
#[must_use]
pub fn fan_in_cfg(locked: bool, sources: usize, msgs_per_source: u64, telemetry: bool) -> FanIn {
    fan_in_inner(locked, sources, msgs_per_source, telemetry, 1)
}

/// [`fan_in`] with the per-node proxy-shard count exposed. One sink
/// still means one busy shard — this measures the *no-tax* axis, not
/// the scaling axis (that is [`fan_in_users`]).
///
/// # Panics
///
/// Panics if any wait times out (a wedged data plane).
#[must_use]
pub fn fan_in_shards(locked: bool, sources: usize, msgs_per_source: u64, shards: usize) -> FanIn {
    fan_in_inner(locked, sources, msgs_per_source, true, shards)
}

fn fan_in_inner(
    locked: bool,
    sources: usize,
    msgs_per_source: u64,
    telemetry: bool,
    shards: usize,
) -> FanIn {
    assert!((1..=63).contains(&sources), "1..=63 sources");
    let mut b = RtClusterBuilder::new(sources + 1);
    b.telemetry(telemetry);
    b.shards(shards);
    if locked {
        b.locked_data_plane();
    }
    let sink_asid = b.add_process(0, 1 << 16);
    let src_asids: Vec<u32> = (1..=sources).map(|n| b.add_process(n, 4096)).collect();
    let (cluster, mut eps) = b.start();
    let src_eps: Vec<_> = eps.split_off(1);
    let sink = eps.pop().expect("sink endpoint");

    let total = msgs_per_source * sources as u64;
    let t0 = Instant::now();
    let senders: Vec<_> = src_eps
        .into_iter()
        .zip(src_asids)
        .map(|(mut e, asid)| {
            std::thread::spawn(move || {
                e.seg().write(0, &vec![0x5A; PAYLOAD as usize]);
                // Each source lands in its own region of the sink segment.
                let raddr = u64::from(asid) * 64;
                let acked = FlagId(1);
                for i in 1..=msgs_per_source {
                    e.put(0, sink_asid, raddr, PAYLOAD, Some(acked), Some(FlagId(0)));
                    if i > WINDOW {
                        e.wait_flag_timeout(acked, i - WINDOW, WAIT)
                            .expect("window wait");
                    }
                }
                e.wait_flag_timeout(acked, msgs_per_source, WAIT)
                    .expect("final ack wait");
            })
        })
        .collect();

    sink.wait_flag_timeout(FlagId(0), total, WAIT)
        .expect("sink delivery wait");
    let wall_s = t0.elapsed().as_secs_f64();
    for s in senders {
        s.join().expect("sender thread");
    }
    cluster.shutdown();

    FanIn {
        sources,
        msgs_per_source,
        wall_s,
        msgs_per_sec: total as f64 / wall_s,
    }
}

/// One point of the proxies×users sweep: `shards` proxy threads on the
/// sink node serving `users` sink processes.
#[derive(Debug, Clone, Copy)]
pub struct ShardPoint {
    /// Proxy shard threads per node.
    pub shards: usize,
    /// Sink processes sharing node 0.
    pub users: usize,
    /// Source processes (each on its own node).
    pub sources: usize,
    /// Messages sent per source (rounded down to a multiple of `users`).
    pub msgs_per_source: u64,
    /// PUT payload bytes per message.
    pub payload: u32,
    /// Total wall time until every sink observed its deliveries, seconds.
    pub wall_s: f64,
    /// Sustained delivered messages per second across all sinks.
    pub msgs_per_sec: f64,
}

/// The proxies×users sweep workload (lock-free plane): `users` sink
/// processes share node 0 and `sources` source processes (one per
/// node) each spray `msgs_per_source` acknowledged `payload`-byte PUTs
/// round-robin across the sinks under a [`WINDOW`]-deep outstanding
/// window. The sink node's shard table spreads the sinks' command
/// queues over `shards` proxy threads, so delivery work that serializes
/// behind one proxy at `shards=1` runs in parallel when cores allow.
/// Callers pick the payload: the sweep wants bulk frames (the proxy's
/// per-message copy dominates, so the curve measures data-plane
/// scaling), while tiny frames mostly measure per-frame bookkeeping.
///
/// # Panics
///
/// Panics if any wait times out (a wedged data plane), if
/// `msgs_per_source < users`, or if the sink segment cannot hold every
/// source's landing region at the given payload.
#[must_use]
pub fn fan_in_users(
    shards: usize,
    users: usize,
    sources: usize,
    msgs_per_source: u64,
    payload: u32,
) -> ShardPoint {
    assert!((1..=63).contains(&sources), "1..=63 sources");
    assert!(users >= 1, "at least one sink user");
    // Round-robin spraying lands an exact per-sink count only when each
    // source's message count is a multiple of `users`.
    let msgs_per_source = msgs_per_source - (msgs_per_source % users as u64);
    assert!(msgs_per_source > 0, "msgs_per_source < users");
    // Each source lands in its own 4 KiB-aligned region of the sink
    // segment; the last region must still fit.
    const SINK_SEG: u64 = 1 << 17;
    assert!(payload >= 1 && u64::from(payload) <= 4096, "payload in 1..=4096");
    assert!(
        (users + sources) as u64 * 4096 + u64::from(payload) <= SINK_SEG,
        "sink segment too small for the source landing regions"
    );

    let mut b = RtClusterBuilder::new(sources + 1);
    b.shards(shards);
    let sink_asids: Vec<u32> = (0..users)
        .map(|_| b.add_process(0, SINK_SEG as usize))
        .collect();
    let src_asids: Vec<u32> = (1..=sources).map(|n| b.add_process(n, 4096)).collect();
    let (cluster, mut eps) = b.start();
    let src_eps: Vec<_> = eps.split_off(users);
    let sink_eps = eps;

    let per_sink = sources as u64 * msgs_per_source / users as u64;
    let total = msgs_per_source * sources as u64;
    let t0 = Instant::now();
    let senders: Vec<_> = src_eps
        .into_iter()
        .zip(src_asids)
        .map(|(mut e, asid)| {
            let sinks = sink_asids.clone();
            std::thread::spawn(move || {
                e.seg().write(0, &vec![0x5A; payload as usize]);
                let raddr = u64::from(asid) * 4096;
                let acked = FlagId(1);
                for i in 1..=msgs_per_source {
                    let dst = sinks[((i - 1) % sinks.len() as u64) as usize];
                    e.put(0, dst, raddr, payload, Some(acked), Some(FlagId(0)));
                    if i > WINDOW {
                        e.wait_flag_timeout(acked, i - WINDOW, WAIT)
                            .expect("window wait");
                    }
                }
                e.wait_flag_timeout(acked, msgs_per_source, WAIT)
                    .expect("final ack wait");
            })
        })
        .collect();

    for sink in &sink_eps {
        sink.wait_flag_timeout(FlagId(0), per_sink, WAIT)
            .expect("sink delivery wait");
    }
    let wall_s = t0.elapsed().as_secs_f64();
    for s in senders {
        s.join().expect("sender thread");
    }
    cluster.shutdown();

    ShardPoint {
        shards,
        users,
        sources,
        msgs_per_source,
        payload,
        wall_s,
        msgs_per_sec: total as f64 / wall_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn ping_pong_smoke_both_planes() {
        for locked in [false, true] {
            let r = ping_pong(locked, 20);
            assert_eq!(r.rounds, 20);
            assert!(r.p50_us > 0.0 && r.p50_us <= r.p99_us);
        }
    }

    #[test]
    fn fan_in_smoke_both_planes() {
        for locked in [false, true] {
            let r = fan_in(locked, 2, 300);
            assert!(r.msgs_per_sec > 0.0, "locked={locked}");
        }
    }

    #[test]
    fn fan_in_users_smoke_sharded() {
        let r = fan_in_users(2, 4, 2, 302, 64);
        assert_eq!(r.msgs_per_source, 300, "rounded to a users multiple");
        assert!(r.msgs_per_sec > 0.0);
    }
}
