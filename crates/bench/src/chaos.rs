//! Chaos scenarios for the threaded runtime: drive kills, corruption
//! and stalls (via [`mproxy_rt::RtFaultPlan`]) under real load and check
//! the recovery invariants the supervision layer promises:
//!
//! 1. **No acked op lost or duplicated** — an operation whose `lsync`
//!    flag fired was applied at the destination exactly once, kills and
//!    packet faults notwithstanding. Enqueue workloads verify this
//!    end-to-end: every payload carries `(sender, index)`, and each
//!    sender's drained subsequence must be exactly `1..=n`, in order.
//! 2. **Bounded recovery** — every acknowledgement lands within
//!    [`WAIT`]; a kill-respawn-resync cycle that exceeds it fails the
//!    scenario (no wait, no matter how unlucky, may outlive the bound).
//! 3. **Survivor liveness** — nodes not involved in a fault keep
//!    completing operations while a peer is stalled or dead.
//!
//! Each scenario is seeded and returns a [`ScenarioResult`]; the
//! `rt_chaos` binary aggregates them into `BENCH_chaos.json` and exits
//! non-zero on any violation (the CI gate).

use std::time::{Duration, Instant};

use mproxy_obs::{Ctr, Snapshot};
use mproxy_rt::{FlagId, RqId, RtClusterBuilder, RtFaultPlan};

/// Per-acknowledgement bound: recovery (respawn + resync + retransmit)
/// must complete well inside this, even on a loaded single-CPU host.
pub const WAIT: Duration = Duration::from_millis(2000);

/// Outcome of one chaos scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario family name.
    pub name: String,
    /// The seed it ran under.
    pub seed: u64,
    /// Whether every invariant held.
    pub passed: bool,
    /// Operations acknowledged (lsync fired) during the run.
    pub acked_ops: u64,
    /// Proxy deaths observed (injected kills that fired).
    pub deaths: u64,
    /// Supervisor respawns performed.
    pub restarts: u64,
    /// Longest single acknowledgement wait, milliseconds (the recovery
    /// bound proxy: a kill-respawn-resync cycle shows up here).
    pub max_ack_wait_ms: f64,
    /// Human-readable failure description, empty when `passed`.
    pub failure: String,
    /// The cluster's [`mproxy_rt::ShutdownReport`] as stable JSON.
    pub shutdown_json: String,
    /// Post-shutdown telemetry snapshot (exact: every proxy has exited).
    pub obs: Option<Snapshot>,
}

impl ScenarioResult {
    fn fail(mut self, why: String) -> ScenarioResult {
        self.passed = false;
        if self.failure.is_empty() {
            self.failure = why;
        }
        self
    }
}

/// Bookkeeping for the ack-wait bound.
struct AckClock {
    max_wait: Duration,
    acked: u64,
}

impl AckClock {
    fn new() -> AckClock {
        AckClock {
            max_wait: Duration::ZERO,
            acked: 0,
        }
    }

    /// Waits for `flag >= target` on `e`, recording the wait.
    fn wait(
        &mut self,
        e: &mproxy_rt::Endpoint,
        flag: FlagId,
        target: u64,
    ) -> Result<(), mproxy_rt::RtError> {
        let t0 = Instant::now();
        let r = e.wait_flag_timeout(flag, target, WAIT);
        self.max_wait = self.max_wait.max(t0.elapsed());
        if r.is_ok() {
            self.acked += 1;
        }
        r
    }
}

/// Checks that `got` (one sink queue's drained payloads, each tagged
/// `(sender << 32) | index`) contains exactly `1..=per_sender` per
/// sender, in order — the "no acked op lost or duplicated" invariant.
fn check_exactly_once(got: &[u64], senders: &[u32], per_sender: u64) -> Result<(), String> {
    for &s in senders {
        let seq: Vec<u64> = got
            .iter()
            .filter(|v| (*v >> 32) as u32 == s)
            .map(|v| *v & 0xffff_ffff)
            .collect();
        let want: Vec<u64> = (1..=per_sender).collect();
        if seq != want {
            return Err(format!(
                "sender {s}: expected 1..={per_sender} in order, got {} items \
                 (first divergence at {:?})",
                seq.len(),
                seq.iter().zip(&want).position(|(a, b)| a != b)
            ));
        }
    }
    Ok(())
}

/// Telemetry-vs-truth: on a post-shutdown snapshot every popped data
/// frame sits in exactly one outcome bucket, so per receiver
/// `msgs_in == applied + dedup_drops + damaged_drops + sheds` must hold
/// exactly — the counters' version of the tagged-payload exactly-once
/// check.
pub fn telemetry_truth(snap: &Snapshot) -> Result<(), String> {
    for sc in &snap.scopes {
        let msgs_in = sc.counter(Ctr::MsgsIn);
        let accounted = sc.counter(Ctr::OpsApplied)
            + sc.counter(Ctr::DedupDrops)
            + sc.counter(Ctr::DamagedDrops)
            + sc.counter(Ctr::Sheds);
        if msgs_in != accounted {
            return Err(format!(
                "{}: msgs_in {msgs_in} != applied+dedup+damaged+shed {accounted}",
                sc.name
            ));
        }
    }
    Ok(())
}

/// Drains `rq` on `sink` until `expect` payloads arrived or the deadline
/// passes.
fn drain_u64s(sink: &mproxy_rt::Endpoint, rq: RqId, expect: usize) -> Result<Vec<u64>, String> {
    let deadline = Instant::now() + WAIT;
    let mut got = Vec::with_capacity(expect);
    while got.len() < expect {
        if let Some(data) = sink.rq_try_recv(rq) {
            let bytes: [u8; 8] = data[..8]
                .try_into()
                .map_err(|_| "short payload".to_string())?;
            got.push(u64::from_le_bytes(bytes));
        } else if Instant::now() >= deadline {
            return Err(format!("drained {} of {expect} before deadline", got.len()));
        } else {
            std::thread::yield_now();
        }
    }
    // Anything extra is a duplicate delivery.
    std::thread::sleep(Duration::from_millis(5));
    if sink.rq_try_recv(rq).is_some() {
        return Err("extra delivery after full drain (duplicate)".into());
    }
    Ok(got)
}

/// Kill-during-fan-in: `senders` processes enqueue tagged payloads at a
/// sink whose proxy is killed (and respawned) mid-stream. `victim_sender`
/// instead kills one of the *sending* nodes.
fn kill_fan_in(
    name: &str,
    seed: u64,
    senders: usize,
    per_sender: u64,
    kill_after: u64,
    victim_sender: bool,
) -> ScenarioResult {
    let mut result = ScenarioResult {
        name: name.into(),
        seed,
        passed: true,
        acked_ops: 0,
        deaths: 0,
        restarts: 0,
        max_ack_wait_ms: 0.0,
        failure: String::new(),
        shutdown_json: String::new(),
        obs: None,
    };
    let mut b = RtClusterBuilder::new(senders + 1);
    let sink_asid = b.add_process(0, 1 << 16);
    let src_asids: Vec<u32> = (1..=senders).map(|n| b.add_process(n, 1 << 16)).collect();
    let victim = if victim_sender { 1 } else { 0 };
    b.fault_plan(RtFaultPlan::new(seed).kill(victim, kill_after));
    b.supervise(3, Duration::from_millis(1));
    let (cluster, mut eps) = b.start();
    let src_eps = eps.split_off(1);
    let sink = eps.pop().expect("sink endpoint");

    let handles: Vec<_> = src_eps
        .into_iter()
        .zip(src_asids.iter().copied())
        .map(|(mut e, asid)| {
            std::thread::spawn(move || -> Result<AckClock, String> {
                let mut clock = AckClock::new();
                for i in 1..=per_sender {
                    e.seg().write_u64(0, (u64::from(asid) << 32) | i);
                    e.enq(0, sink_asid, RqId(0), 8, Some(FlagId(0)), None);
                    clock
                        .wait(&e, FlagId(0), i)
                        .map_err(|err| format!("sender {asid} op {i}: {err}"))?;
                }
                Ok(clock)
            })
        })
        .collect();

    let mut max_wait = Duration::ZERO;
    for h in handles {
        match h.join().expect("sender thread") {
            Ok(clock) => {
                result.acked_ops += clock.acked;
                max_wait = max_wait.max(clock.max_wait);
            }
            Err(why) => result = result.fail(why),
        }
    }
    result.max_ack_wait_ms = max_wait.as_secs_f64() * 1e3;
    if result.passed {
        match drain_u64s(&sink, RqId(0), senders * per_sender as usize) {
            Ok(got) => {
                if let Err(why) = check_exactly_once(&got, &src_asids, per_sender) {
                    result = result.fail(why);
                }
            }
            Err(why) => result = result.fail(why),
        }
    }
    result.deaths = cluster.deaths(victim);
    result.restarts = cluster.restarts_total();
    if result.passed && result.deaths == 0 {
        result = result.fail(format!("injected kill on node {victim} never fired"));
    }
    let hub = cluster.obs_handle();
    let report = cluster.shutdown();
    result.shutdown_json = report.to_json();
    if result.passed && !report.clean() {
        result = result.fail(format!("unclean shutdown: {report:?}"));
    }
    let snap = hub.snapshot(&result.name);
    if result.passed {
        if let Err(why) = telemetry_truth(&snap) {
            result = result.fail(format!("telemetry vs truth: {why}"));
        }
        // The sink's applied-op counter must agree with the tagged
        // payloads the exactly-once checker verified, across kills.
        let want = senders as u64 * per_sender;
        let applied = snap
            .scopes
            .iter()
            .find(|sc| sc.name == "node0")
            .map_or(0, |sc| sc.counter(Ctr::OpsApplied));
        if applied != want {
            result = result.fail(format!(
                "sink ops_applied {applied} != {want} verified deliveries"
            ));
        }
    }
    result.obs = Some(snap);
    result
}

/// Kill the sink's proxy mid-fan-in.
#[must_use]
pub fn kill_sink_fan_in(seed: u64, per_sender: u64) -> ScenarioResult {
    kill_fan_in("kill_sink_fan_in", seed, 2, per_sender, 25, false)
}

/// Sums `OpsApplied` over every scope of `node`, whether the run was
/// sharded (`node0s0`, `node0s1`, ...) or not (`node0`).
fn node_applied(snap: &Snapshot, node: usize) -> u64 {
    let plain = format!("node{node}");
    let sharded = format!("node{node}s");
    snap.scopes
        .iter()
        .filter(|sc| sc.name == plain || sc.name.starts_with(&sharded))
        .map(|sc| sc.counter(Ctr::OpsApplied))
        .sum()
}

/// Polls until `asid` sits on `shard` (a previously issued migration
/// completed) or the [`WAIT`] deadline passes.
fn await_shard(cluster: &mproxy_rt::RtCluster, asid: u32, shard: usize) -> Result<(), String> {
    let deadline = Instant::now() + WAIT;
    while cluster.shard_of(asid) != shard {
        if Instant::now() >= deadline {
            return Err(format!("asid {asid} never reached shard {shard}"));
        }
        std::thread::yield_now();
    }
    Ok(())
}

/// Shard-targeted kill: node 0 runs two proxy shards serving one sink
/// user each; the injector kills only shard 0, supervision respawns it,
/// and the run must show (a) the tagged-payload exactly-once contract on
/// *both* sinks' queues and (b) the sibling shard staying live — its
/// sender keeps streaming under the same recovery bound while shard 0 is
/// down.
#[must_use]
pub fn shard_kill_fan_in(seed: u64, per_sender: u64) -> ScenarioResult {
    let mut result = ScenarioResult {
        name: "shard_kill_fan_in".into(),
        seed,
        passed: true,
        acked_ops: 0,
        deaths: 0,
        restarts: 0,
        max_ack_wait_ms: 0.0,
        failure: String::new(),
        shutdown_json: String::new(),
        obs: None,
    };
    let senders = 2usize;
    let kill_after = 10 + seed % 30;
    let mut b = RtClusterBuilder::new(senders + 1);
    b.shards(2);
    let sink_asids: Vec<u32> = (0..2).map(|_| b.add_process(0, 1 << 16)).collect();
    let src_asids: Vec<u32> = (1..=senders).map(|n| b.add_process(n, 1 << 16)).collect();
    b.fault_plan(RtFaultPlan::new(seed).kill_shard(0, 0, kill_after));
    b.supervise(3, Duration::from_millis(1));
    let (cluster, mut eps) = b.start();
    let src_eps = eps.split_off(2);
    let sink_eps = eps;

    // The stable hash may land both sinks on one shard; separate them so
    // shard 0 has a victim queue and shard 1 a surviving one.
    for (i, &a) in sink_asids.iter().enumerate() {
        if cluster.shard_of(a) != i {
            cluster.migrate_asid(a, i);
            if let Err(why) = await_shard(&cluster, a, i) {
                result = result.fail(why);
            }
        }
    }

    let handles: Vec<_> = src_eps
        .into_iter()
        .zip(src_asids.iter().copied())
        .enumerate()
        .map(|(i, (mut e, asid))| {
            // Sender i feeds sink i: sender 0's stream crosses the killed
            // shard, sender 1's stream must never notice.
            let dst = sink_asids[i];
            std::thread::spawn(move || -> Result<AckClock, String> {
                let mut clock = AckClock::new();
                for op in 1..=per_sender {
                    e.seg().write_u64(0, (u64::from(asid) << 32) | op);
                    e.enq(0, dst, RqId(0), 8, Some(FlagId(0)), None);
                    clock
                        .wait(&e, FlagId(0), op)
                        .map_err(|err| format!("sender {asid} op {op}: {err}"))?;
                }
                Ok(clock)
            })
        })
        .collect();

    let mut max_wait = Duration::ZERO;
    for h in handles {
        match h.join().expect("sender thread") {
            Ok(clock) => {
                result.acked_ops += clock.acked;
                max_wait = max_wait.max(clock.max_wait);
            }
            Err(why) => result = result.fail(why),
        }
    }
    result.max_ack_wait_ms = max_wait.as_secs_f64() * 1e3;
    if result.passed {
        for (i, sink) in sink_eps.iter().enumerate() {
            match drain_u64s(sink, RqId(0), per_sender as usize) {
                Ok(got) => {
                    if let Err(why) = check_exactly_once(&got, &src_asids[i..=i], per_sender) {
                        result = result.fail(format!("sink {i}: {why}"));
                    }
                }
                Err(why) => result = result.fail(format!("sink {i}: {why}")),
            }
        }
    }
    result.deaths = cluster.deaths(0);
    result.restarts = cluster.restarts_total();
    if result.passed && result.deaths == 0 {
        result = result.fail("injected kill on node 0 shard 0 never fired".into());
    }
    let hub = cluster.obs_handle();
    let report = cluster.shutdown();
    result.shutdown_json = report.to_json();
    if result.passed && !report.clean() {
        result = result.fail(format!("unclean shutdown: {report:?}"));
    }
    let snap = hub.snapshot(&result.name);
    if result.passed {
        if let Err(why) = telemetry_truth(&snap) {
            result = result.fail(format!("telemetry vs truth: {why}"));
        }
        let want = senders as u64 * per_sender;
        let applied = node_applied(&snap, 0);
        if applied != want {
            result = result.fail(format!(
                "sink node ops_applied {applied} != {want} verified deliveries"
            ));
        }
    }
    result.obs = Some(snap);
    result
}

/// Seeded rebalance-under-load: two senders flood tagged payloads at one
/// hot sink on a two-shard node while the sink is migrated back and
/// forth between shards (and a lightly lossy wire keeps the go-back-N
/// layer honest); the sink's queue must still show every payload exactly
/// once, in order, across every handoff epoch.
#[must_use]
pub fn rebalance_under_load(seed: u64, per_sender: u64) -> ScenarioResult {
    let mut result = ScenarioResult {
        name: "rebalance_under_load".into(),
        seed,
        passed: true,
        acked_ops: 0,
        deaths: 0,
        restarts: 0,
        max_ack_wait_ms: 0.0,
        failure: String::new(),
        shutdown_json: String::new(),
        obs: None,
    };
    let senders = 2usize;
    let mut b = RtClusterBuilder::new(senders + 1);
    b.shards(2);
    let sink_asid = b.add_process(0, 1 << 16);
    let src_asids: Vec<u32> = (1..=senders).map(|n| b.add_process(n, 1 << 16)).collect();
    b.fault_plan(RtFaultPlan::new(seed).drop(0.02).duplicate(0.02));
    let (cluster, mut eps) = b.start();
    let src_eps = eps.split_off(1);
    let sink = eps.pop().expect("sink endpoint");

    let handles: Vec<_> = src_eps
        .into_iter()
        .zip(src_asids.iter().copied())
        .map(|(mut e, asid)| {
            std::thread::spawn(move || -> Result<AckClock, String> {
                let mut clock = AckClock::new();
                for op in 1..=per_sender {
                    e.seg().write_u64(0, (u64::from(asid) << 32) | op);
                    e.enq(0, sink_asid, RqId(0), 8, Some(FlagId(0)), None);
                    clock
                        .wait(&e, FlagId(0), op)
                        .map_err(|err| format!("sender {asid} op {op}: {err}"))?;
                }
                Ok(clock)
            })
        })
        .collect();

    // Mid-flood rebalances: bounce the hot asid between the two shards a
    // few times at seed-derived offsets, waiting out each handoff.
    let mut migrations = 0u64;
    for k in 0..3u64 {
        std::thread::sleep(Duration::from_millis(3 + (seed.wrapping_mul(13) + k * 7) % 17));
        let target = 1 - cluster.shard_of(sink_asid);
        if cluster.migrate_asid(sink_asid, target) {
            if let Err(why) = await_shard(&cluster, sink_asid, target) {
                result = result.fail(why);
                break;
            }
            migrations += 1;
        }
    }

    let mut max_wait = Duration::ZERO;
    for h in handles {
        match h.join().expect("sender thread") {
            Ok(clock) => {
                result.acked_ops += clock.acked;
                max_wait = max_wait.max(clock.max_wait);
            }
            Err(why) => result = result.fail(why),
        }
    }
    result.max_ack_wait_ms = max_wait.as_secs_f64() * 1e3;
    if result.passed && migrations == 0 {
        result = result.fail("no migration completed mid-flood".into());
    }
    if result.passed && cluster.migrations_total() < migrations {
        result = result.fail(format!(
            "migrations_total {} < {migrations} handoffs observed",
            cluster.migrations_total()
        ));
    }
    if result.passed {
        match drain_u64s(&sink, RqId(0), senders * per_sender as usize) {
            Ok(got) => {
                if let Err(why) = check_exactly_once(&got, &src_asids, per_sender) {
                    result = result.fail(why);
                }
            }
            Err(why) => result = result.fail(why),
        }
    }
    let hub = cluster.obs_handle();
    let report = cluster.shutdown();
    result.shutdown_json = report.to_json();
    if result.passed && !report.clean() {
        result = result.fail(format!("unclean shutdown: {report:?}"));
    }
    let snap = hub.snapshot(&result.name);
    if result.passed {
        if let Err(why) = telemetry_truth(&snap) {
            result = result.fail(format!("telemetry vs truth: {why}"));
        }
        let want = senders as u64 * per_sender;
        let applied = node_applied(&snap, 0);
        if applied != want {
            result = result.fail(format!(
                "sink node ops_applied {applied} != {want} verified deliveries"
            ));
        }
    }
    result.obs = Some(snap);
    result
}

/// Kill one sender's proxy mid-fan-in.
#[must_use]
pub fn kill_sender_fan_in(seed: u64, per_sender: u64) -> ScenarioResult {
    kill_fan_in("kill_sender_fan_in", seed, 2, per_sender, 20, true)
}

/// Corruption, loss and duplication under windowed PUT load on a clean
/// two-node pair: the sequenced wire layer must hide all of it.
#[must_use]
pub fn corrupt_under_load(seed: u64, msgs: u64) -> ScenarioResult {
    let mut result = ScenarioResult {
        name: "corrupt_under_load".into(),
        seed,
        passed: true,
        acked_ops: 0,
        deaths: 0,
        restarts: 0,
        max_ack_wait_ms: 0.0,
        failure: String::new(),
        shutdown_json: String::new(),
        obs: None,
    };
    let mut b = RtClusterBuilder::new(2);
    let _p0 = b.add_process(0, 1 << 16);
    let p1 = b.add_process(1, 1 << 16);
    b.fault_plan(RtFaultPlan::new(seed).drop(0.10).duplicate(0.10).corrupt(0.05));
    let (cluster, mut eps) = b.start();
    let e1 = eps.pop().expect("endpoint 1");
    let mut e0 = eps.pop().expect("endpoint 0");

    let mut clock = AckClock::new();
    const WINDOW: u64 = 64;
    for i in 1..=msgs {
        e0.seg().write_u64(0, i);
        e0.put(0, p1, 64, 8, Some(FlagId(0)), None);
        if i > WINDOW {
            if let Err(err) = clock.wait(&e0, FlagId(0), i - WINDOW) {
                result = result.fail(format!("op {i}: {err}"));
                break;
            }
        }
    }
    if result.passed {
        if let Err(err) = clock.wait(&e0, FlagId(0), msgs) {
            result = result.fail(format!("final ack: {err}"));
        }
    }
    result.acked_ops = clock.acked;
    result.max_ack_wait_ms = clock.max_wait.as_secs_f64() * 1e3;
    // The monotone counter payload: the cell must hold the *last* write
    // (in-order delivery means no stale overwrite can land afterwards).
    if result.passed && e1.seg().read_u64(64) != msgs {
        result = result.fail(format!(
            "final cell holds {}, want {msgs}",
            e1.seg().read_u64(64)
        ));
    }
    let counts = cluster.fault_counts().expect("plan installed");
    if result.passed && (counts.dropped == 0 || counts.duplicated == 0 || counts.corrupted == 0) {
        result = result.fail(format!("injector idle under load: {counts:?}"));
    }
    let hub = cluster.obs_handle();
    let report = cluster.shutdown();
    result.shutdown_json = report.to_json();
    if result.passed && !report.clean() {
        result = result.fail(format!("unclean shutdown: {report:?}"));
    }
    let snap = hub.snapshot(&result.name);
    if result.passed {
        if let Err(why) = telemetry_truth(&snap) {
            result = result.fail(format!("telemetry vs truth: {why}"));
        }
    }
    result.obs = Some(snap);
    result
}

/// Stall one node's proxy past the watchdog period while two *other*
/// nodes keep exchanging acknowledged puts: survivors must never block
/// on a stalled peer, and the stalled node must finish its own backlog
/// once the stall lifts.
#[must_use]
pub fn stall_survivor_liveness(seed: u64, rounds: u64) -> ScenarioResult {
    let mut result = ScenarioResult {
        name: "stall_survivor_liveness".into(),
        seed,
        passed: true,
        acked_ops: 0,
        deaths: 0,
        restarts: 0,
        max_ack_wait_ms: 0.0,
        failure: String::new(),
        shutdown_json: String::new(),
        obs: None,
    };
    let mut b = RtClusterBuilder::new(3);
    let _p0 = b.add_process(0, 1 << 16);
    let p1 = b.add_process(1, 1 << 16);
    let p2 = b.add_process(2, 1 << 16);
    // Node 1 freezes for 150 ms starting almost immediately — dozens of
    // watchdog periods.
    b.fault_plan(RtFaultPlan::new(seed).stall(
        1,
        Duration::from_millis(5),
        Duration::from_millis(150),
    ));
    let (cluster, mut eps) = b.start();
    let e2 = eps.pop().expect("endpoint 2");
    let _e1 = eps.pop().expect("endpoint 1");
    let mut e0 = eps.pop().expect("endpoint 0");

    std::thread::sleep(Duration::from_millis(20)); // let the stall start
    let mut clock = AckClock::new();
    // Survivor path 0→2 stays live during the stall.
    for i in 1..=rounds {
        e0.seg().write_u64(0, i);
        e0.put(0, p2, 64, 8, Some(FlagId(0)), None);
        if let Err(err) = clock.wait(&e0, FlagId(0), i) {
            result = result.fail(format!("survivor op {i}: {err}"));
            break;
        }
    }
    // Traffic *into* the stalled node completes once the stall lifts.
    if result.passed {
        e0.seg().write_u64(0, 77);
        e0.put(0, p1, 64, 8, Some(FlagId(1)), None);
        if let Err(err) = clock.wait(&e0, FlagId(1), 1) {
            result = result.fail(format!("post-stall delivery: {err}"));
        }
    }
    result.acked_ops = clock.acked;
    result.max_ack_wait_ms = clock.max_wait.as_secs_f64() * 1e3;
    if result.passed && e2.seg().read_u64(64) != rounds {
        result = result.fail("survivor data incomplete".into());
    }
    let counts = cluster.fault_counts().expect("plan installed");
    if result.passed && counts.stalls == 0 {
        result = result.fail("stall never fired".into());
    }
    let hub = cluster.obs_handle();
    let report = cluster.shutdown();
    result.shutdown_json = report.to_json();
    if result.passed && !report.clean() {
        result = result.fail(format!("unclean shutdown: {report:?}"));
    }
    let snap = hub.snapshot(&result.name);
    if result.passed {
        if let Err(why) = telemetry_truth(&snap) {
            result = result.fail(format!("telemetry vs truth: {why}"));
        }
    }
    result.obs = Some(snap);
    result
}

/// One seeded randomized scenario: 3–5 nodes in a ring, each node
/// enqueuing tagged payloads at its successor, a low-probability lossy
/// wire, and a kill at a seed-derived point on a seed-chosen victim,
/// with supervision on. Exactly-once is checked on every queue.
#[must_use]
pub fn randomized(seed: u64, rounds: u64) -> ScenarioResult {
    let mut result = ScenarioResult {
        name: "randomized_ring".into(),
        seed,
        passed: true,
        acked_ops: 0,
        deaths: 0,
        restarts: 0,
        max_ack_wait_ms: 0.0,
        failure: String::new(),
        shutdown_json: String::new(),
        obs: None,
    };
    let nodes = 3 + (seed % 3) as usize; // 3..=5
    let victim = (seed / 3 % nodes as u64) as usize;
    let kill_after = 10 + (seed.wrapping_mul(7) % 70);
    let mut b = RtClusterBuilder::new(nodes);
    let asids: Vec<u32> = (0..nodes).map(|n| b.add_process(n, 1 << 16)).collect();
    b.fault_plan(
        RtFaultPlan::new(seed)
            .drop(0.02)
            .duplicate(0.02)
            .corrupt(0.01)
            .kill(victim, kill_after),
    );
    b.supervise(4, Duration::from_millis(1));
    let (cluster, eps) = b.start();

    let handles: Vec<_> = eps
        .into_iter()
        .enumerate()
        .map(|(n, mut e)| {
            let dst = asids[(n + 1) % nodes];
            let me = asids[n];
            std::thread::spawn(move || -> (mproxy_rt::Endpoint, Result<AckClock, String>) {
                let mut clock = AckClock::new();
                for i in 1..=rounds {
                    e.seg().write_u64(0, (u64::from(me) << 32) | i);
                    e.enq(0, dst, RqId(0), 8, Some(FlagId(0)), None);
                    if let Err(err) = clock.wait(&e, FlagId(0), i) {
                        return (e, Err(format!("node {n} op {i}: {err}")));
                    }
                }
                (e, Ok(clock))
            })
        })
        .collect();

    let mut endpoints = Vec::with_capacity(nodes);
    let mut max_wait = Duration::ZERO;
    for h in handles {
        let (e, r) = h.join().expect("ring thread");
        match r {
            Ok(clock) => {
                result.acked_ops += clock.acked;
                max_wait = max_wait.max(clock.max_wait);
            }
            Err(why) => result = result.fail(why),
        }
        endpoints.push(e);
    }
    result.max_ack_wait_ms = max_wait.as_secs_f64() * 1e3;
    if result.passed {
        // Each node's queue holds exactly its predecessor's 1..=rounds.
        for (n, e) in endpoints.iter().enumerate() {
            let pred = asids[(n + nodes - 1) % nodes];
            match drain_u64s(e, RqId(0), rounds as usize) {
                Ok(got) => {
                    if let Err(why) = check_exactly_once(&got, &[pred], rounds) {
                        result = result.fail(format!("queue of node {n}: {why}"));
                        break;
                    }
                }
                Err(why) => {
                    result = result.fail(format!("queue of node {n}: {why}"));
                    break;
                }
            }
        }
    }
    result.deaths = cluster.deaths(victim);
    result.restarts = cluster.restarts_total();
    if result.passed && result.deaths == 0 {
        result = result.fail(format!("injected kill on node {victim} never fired"));
    }
    let hub = cluster.obs_handle();
    let report = cluster.shutdown();
    result.shutdown_json = report.to_json();
    if result.passed && !report.clean() {
        result = result.fail(format!("unclean shutdown: {report:?}"));
    }
    let snap = hub.snapshot(&result.name);
    if result.passed {
        if let Err(why) = telemetry_truth(&snap) {
            result = result.fail(format!("telemetry vs truth: {why}"));
        }
    }
    result.obs = Some(snap);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_once_checker_catches_loss_and_dup() {
        let s = [1u32];
        let tag = |i: u64| (1u64 << 32) | i;
        assert!(check_exactly_once(&[tag(1), tag(2), tag(3)], &s, 3).is_ok());
        assert!(check_exactly_once(&[tag(1), tag(3)], &s, 3).is_err(), "loss");
        assert!(
            check_exactly_once(&[tag(1), tag(2), tag(2), tag(3)], &s, 3).is_err(),
            "duplicate"
        );
        assert!(
            check_exactly_once(&[tag(2), tag(1), tag(3)], &s, 3).is_err(),
            "reorder"
        );
    }

    #[test]
    fn deterministic_scenarios_smoke() {
        let r = kill_sink_fan_in(11, 40);
        assert!(r.passed, "{}", r.failure);
        let r = corrupt_under_load(12, 150);
        assert!(r.passed, "{}", r.failure);
    }

    #[test]
    fn sharded_scenarios_smoke() {
        let r = shard_kill_fan_in(13, 40);
        assert!(r.passed, "{}", r.failure);
        let r = rebalance_under_load(14, 40);
        assert!(r.passed, "{}", r.failure);
    }
}
