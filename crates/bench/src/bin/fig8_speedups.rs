//! Regenerates Figure 8: self-relative speedups of the ten applications
//! on 1–16 processors (one compute processor per node), for all six
//! design points. Speedups are relative to single-processor execution on
//! HW1, exactly as the paper plots them.
//!
//! Usage: `fig8_speedups [--app NAME] [--size tiny|small|full] [--list]`

use mproxy_apps::{run_app_flat, AppId, AppSize};
use mproxy_model::{ALL_DESIGN_POINTS, HW1};

const PROCS: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        println!("{:<12} {:<12}", "app", "style");
        for a in AppId::ALL {
            println!("{:<12} {:<12}", a.name(), a.style());
        }
        return;
    }
    let size = match args
        .iter()
        .position(|a| a == "--size")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("tiny") => AppSize::Tiny,
        Some("full") => AppSize::Full,
        _ => AppSize::Small,
    };
    let apps: Vec<AppId> = match args
        .iter()
        .position(|a| a == "--app")
        .and_then(|i| args.get(i + 1))
    {
        Some(name) => vec![AppId::by_name(name).unwrap_or_else(|| panic!("unknown app {name}"))],
        None => AppId::ALL.to_vec(),
    };

    for app in apps {
        let t1 = run_app_flat(app, HW1, 1, size).elapsed_us;
        println!(
            "\n{} ({}), T(1) on HW1 = {:.0} us — speedups:",
            app.name(),
            app.style(),
            t1
        );
        print!("{:<6}", "procs");
        for d in ALL_DESIGN_POINTS {
            print!(" {:>7}", d.name);
        }
        println!();
        for procs in PROCS {
            print!("{procs:<6}");
            for d in ALL_DESIGN_POINTS {
                let t = run_app_flat(app, d, procs, size).elapsed_us;
                print!(" {:>7.2}", t1 / t);
            }
            println!();
        }
    }
}
