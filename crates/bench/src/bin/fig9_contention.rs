//! Regenerates Figure 9: speedups of the five communication-intensive
//! applications on 4 SMP nodes with 4 compute processors per node, where
//! a single message proxy per node must serve four processors (§5.4's
//! contention regime).

use mproxy_apps::{run_app, run_app_flat, AppId, AppSize};
use mproxy_model::{ALL_DESIGN_POINTS, HW1};

fn main() {
    let apps = [
        AppId::Lu,
        AppId::Barnes,
        AppId::Water,
        AppId::Sample,
        AppId::Wator,
    ];
    println!("4 SMP nodes x 4 compute processors (16 total); speedup vs T(1) on HW1\n");
    print!("{:<12}", "app");
    for d in ALL_DESIGN_POINTS {
        print!(" {:>7}", d.name);
    }
    println!("  | flat-16 MP1");
    for app in apps {
        let t1 = run_app_flat(app, HW1, 1, AppSize::Small).elapsed_us;
        print!("{:<12}", app.name());
        let mut mp1_util = 0.0;
        for d in ALL_DESIGN_POINTS {
            let r = run_app(app, d, 4, 4, AppSize::Small);
            if d.name == "MP1" {
                mp1_util = r.traffic.interface_utilization;
            }
            print!(" {:>7.2}", t1 / r.elapsed_us);
        }
        // Contrast with the Figure 8 configuration at equal compute count.
        let flat = run_app_flat(app, mproxy_model::MP1, 16, AppSize::Small).elapsed_us;
        println!(
            "  | {:>7.2}   (MP1 proxy util {:.0}%)",
            t1 / flat,
            mp1_util * 100.0
        );
    }
    println!("\nExpected shape: the HW1-MP1 gap widens vs Figure 8 (proxy serves 4");
    println!("procs), intra-node traffic cushions the loss, and MP2 recovers it.");
}
