//! Regenerates the §5.4 analysis: how many compute processors one message
//! proxy supports (stability requires utilisation < 50%), from measured
//! per-processor proxy load; and the P/(P-1) compute-or-communicate rule.

use mproxy_apps::{run_app, run_app_flat, AppId, AppSize};
use mproxy_model::contention::{
    max_supported_procs, mm1_wait_us, ProxyTradeoff, STABLE_UTILIZATION,
};
use mproxy_model::{MP1, MP2, SW1};

fn main() {
    println!("Per-proxy load measured at 16 procs (1/node) on MP1:");
    println!(
        "{:<12} {:>10} {:>12} {:>14}",
        "app", "util/proc%", "max procs", "stable at 4?"
    );
    println!("{}", "-".repeat(52));
    for app in AppId::ALL {
        let r = run_app_flat(app, MP1, 16, AppSize::Small);
        // One proxy per node serves exactly one compute processor here, so
        // the measured utilisation is the per-processor load.
        let per_proc = r.traffic.interface_utilization;
        let max = max_supported_procs(per_proc);
        println!(
            "{:<12} {:>10.1} {:>12} {:>14}",
            app.name(),
            per_proc * 100.0,
            if max > 64 {
                ">64".into()
            } else {
                max.to_string()
            },
            if per_proc * 4.0 < STABLE_UTILIZATION {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!("\nM/M/1 queueing delay at a proxy with 15 us service time:");
    for rho in [0.1, 0.3, 0.5, 0.7, 0.9] {
        println!(
            "  rho = {rho:.1}: extra wait {:>7.1} us",
            mm1_wait_us(15.0, rho)
        );
    }
    println!("\nCompute-or-communicate (5-processor nodes, break-even P/(P-1) = 1.25):");
    for app in [
        AppId::Lu,
        AppId::Barnes,
        AppId::Water,
        AppId::Sample,
        AppId::Wator,
    ] {
        // MP2 with 4 compute procs (1 dedicated to the proxy) vs SW1 with
        // all 5 computing — approximated by 4x4 vs 4x4 runs at equal node
        // count (the paper's Figure 9 discussion).
        let mp = run_app(app, MP2, 4, 4, AppSize::Small).elapsed_us;
        let sw = run_app(app, SW1, 4, 4, AppSize::Small).elapsed_us * 4.0 / 5.0;
        let t = ProxyTradeoff {
            smp_procs: 5,
            syscall_time: sw,
            proxy_time: mp,
        };
        println!(
            "  {:<12} MP2 {:>9.0} us vs SW1(5 procs est.) {:>9.0} us -> use proxy: {}",
            app.name(),
            mp,
            sw,
            t.proxy_wins()
        );
    }
}
