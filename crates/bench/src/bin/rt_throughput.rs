//! Runtime data-plane harness: measures the threaded runtime's ping-pong
//! latency percentiles and all-to-one fan-in throughput on both data
//! planes (lock-free rings vs the locked baseline) and emits
//! `BENCH_rt.json` so the runtime's perf trajectory is tracked in-repo.
//!
//! ```text
//! rt_throughput [--quick] [--label STR] [--out PATH] [--baseline-locked] [--check PATH]
//! ```
//!
//! * `--quick`            reduced round/message counts (CI smoke).
//! * `--label`            free-form description recorded in the JSON.
//! * `--out`              write the JSON document to PATH (default: stdout).
//! * `--baseline-locked`  ablation: run only the locked `Mutex<VecDeque>`
//!   plane ([`RtClusterBuilder::locked_data_plane`]) — no speedup section.
//! * `--check`            compare measured lock-free fan-in msgs/sec
//!   against the number recorded in PATH; exit non-zero on a >20%
//!   regression. Incompatible with `--baseline-locked`.
//!
//! A default run measures **both** planes back to back and records the
//! fan-in speedup (lock-free over locked) — the A/B the rings must win.
//!
//! [`RtClusterBuilder::locked_data_plane`]: mproxy_rt::RtClusterBuilder::locked_data_plane

use std::fmt::Write as _;
use std::process::ExitCode;

use mproxy_bench::rt::{self, FanIn, PingPong};

/// Allowed fan-in msgs/sec regression before `--check` fails.
const CHECK_TOLERANCE: f64 = 0.20;
/// Fan-in source processes (each on its own node).
const SOURCES: usize = 3;

struct Args {
    quick: bool,
    label: String,
    out: Option<String>,
    baseline_locked: bool,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        label: "current".to_string(),
        out: None,
        baseline_locked: false,
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--quick" => args.quick = true,
            "--label" => args.label = value("--label")?,
            "--out" => args.out = Some(value("--out")?),
            "--baseline-locked" => args.baseline_locked = true,
            "--check" => args.check = Some(value("--check")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.baseline_locked && args.check.is_some() {
        return Err("--check gates the lock-free plane; drop --baseline-locked".into());
    }
    Ok(args)
}

/// Extracts the lock-free fan-in msgs/sec from a JSON document produced
/// by this binary (manual scan; the harnesses avoid a JSON dependency).
fn extract_lockfree_fanin(doc: &str) -> Option<f64> {
    let plane = doc.find("\"lockfree\":")?;
    let fanin = plane + doc[plane..].find("\"fan_in\":")?;
    let key = "\"msgs_per_sec\":";
    let k = fanin + doc[fanin..].find(key)? + key.len();
    let rest = doc[k..].trim_start();
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

/// One plane, both workloads.
fn run_plane(name: &str, locked: bool, pp_rounds: u64, fi_msgs: u64) -> (PingPong, FanIn) {
    eprintln!("rt_throughput: {name} ping-pong ({pp_rounds} rounds) ...");
    let pp = rt::ping_pong(locked, pp_rounds);
    eprintln!(
        "rt_throughput:   p50 {:.1} us, p90 {:.1} us, p99 {:.1} us",
        pp.p50_us, pp.p90_us, pp.p99_us
    );
    eprintln!("rt_throughput: {name} fan-in ({SOURCES} sources x {fi_msgs} msgs) ...");
    let fi = rt::fan_in(locked, SOURCES, fi_msgs);
    eprintln!("rt_throughput:   {:.0} msgs/sec", fi.msgs_per_sec);
    (pp, fi)
}

fn plane_json(pp: &PingPong, fi: &FanIn) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "      \"ping_pong\": {{");
    let _ = writeln!(s, "        \"rounds\": {},", pp.rounds);
    let _ = writeln!(s, "        \"wall_s\": {:.6},", pp.wall_s);
    let _ = writeln!(s, "        \"p50_us\": {:.2},", pp.p50_us);
    let _ = writeln!(s, "        \"p90_us\": {:.2},", pp.p90_us);
    let _ = writeln!(s, "        \"p99_us\": {:.2}", pp.p99_us);
    let _ = writeln!(s, "      }},");
    let _ = writeln!(s, "      \"fan_in\": {{");
    let _ = writeln!(s, "        \"sources\": {},", fi.sources);
    let _ = writeln!(s, "        \"msgs_per_source\": {},", fi.msgs_per_source);
    let _ = writeln!(s, "        \"wall_s\": {:.6},", fi.wall_s);
    let _ = writeln!(s, "        \"msgs_per_sec\": {:.1}", fi.msgs_per_sec);
    let _ = writeln!(s, "      }}");
    let _ = write!(s, "    }}");
    s
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rt_throughput: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (pp_rounds, fi_msgs) = if args.quick {
        (500, 5_000)
    } else {
        (3_000, 30_000)
    };
    let mode = if args.quick { "quick" } else { "full" };

    let lockfree = if args.baseline_locked {
        None
    } else {
        Some(run_plane("lock-free", false, pp_rounds, fi_msgs))
    };
    let locked = run_plane("locked baseline", true, pp_rounds, fi_msgs);

    let mut doc = format!(
        "{{\n{}  \"after\": {{\n",
        mproxy_bench::reports::bench_header_json(None)
    );
    let _ = writeln!(doc, "    \"label\": \"{}\",", args.label);
    let _ = writeln!(doc, "    \"mode\": \"{mode}\",");
    if let Some((pp, fi)) = &lockfree {
        let _ = writeln!(doc, "    \"lockfree\": {},", plane_json(pp, fi));
    }
    let _ = writeln!(doc, "    \"locked\": {},", plane_json(&locked.0, &locked.1));
    if let Some((pp, fi)) = &lockfree {
        let speedup_fanin = fi.msgs_per_sec / locked.1.msgs_per_sec;
        let speedup_p50 = locked.0.p50_us / pp.p50_us;
        eprintln!(
            "rt_throughput: fan-in speedup {speedup_fanin:.2}x, p50 speedup {speedup_p50:.2}x \
             (lock-free over locked)"
        );
        let _ = writeln!(doc, "    \"speedup_fanin\": {speedup_fanin:.2},");
        let _ = writeln!(doc, "    \"speedup_p50\": {speedup_p50:.2}");
    } else {
        let _ = writeln!(doc, "    \"plane\": \"locked\"");
    }
    doc.push_str("  }\n}\n");

    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("rt_throughput: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("rt_throughput: wrote {path}");
        }
        None => print!("{doc}"),
    }

    if let Some(path) = &args.check {
        let Some((_, fi)) = &lockfree else {
            unreachable!("--check with --baseline-locked is rejected at parse time")
        };
        let recorded = std::fs::read_to_string(path)
            .ok()
            .as_deref()
            .and_then(extract_lockfree_fanin);
        let Some(recorded) = recorded else {
            eprintln!("rt_throughput: no recorded lock-free fan-in msgs/sec in {path}");
            return ExitCode::FAILURE;
        };
        let floor = recorded * (1.0 - CHECK_TOLERANCE);
        if fi.msgs_per_sec < floor {
            eprintln!(
                "rt_throughput: REGRESSION: {:.0} msgs/sec < {floor:.0} \
                 (recorded {recorded:.0} - {:.0}%)",
                fi.msgs_per_sec,
                CHECK_TOLERANCE * 100.0
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "rt_throughput: check ok: {:.0} msgs/sec vs recorded {recorded:.0} (floor {floor:.0})",
            fi.msgs_per_sec
        );
    }
    ExitCode::SUCCESS
}
