//! Runtime data-plane harness: measures the threaded runtime's ping-pong
//! latency percentiles and all-to-one fan-in throughput on both data
//! planes (lock-free rings vs the locked baseline) and emits
//! `BENCH_rt.json` so the runtime's perf trajectory is tracked in-repo.
//!
//! ```text
//! rt_throughput [--quick] [--label STR] [--out PATH] [--baseline-locked]
//!               [--check PATH] [--shards N]
//! ```
//!
//! * `--quick`            reduced round/message counts (CI smoke); skips
//!   the shard sweep.
//! * `--label`            free-form description recorded in the JSON.
//! * `--out`              write the JSON document to PATH (default: stdout).
//! * `--baseline-locked`  ablation: run only the locked `Mutex<VecDeque>`
//!   plane ([`RtClusterBuilder::locked_data_plane`]) — no speedup section.
//! * `--check`            compare measured lock-free fan-in msgs/sec
//!   against the number recorded in PATH; exit non-zero on a >20%
//!   regression. Incompatible with `--baseline-locked`. When the shard
//!   sweep ran, additionally gates it: throughput must not decrease
//!   by more than 10% from one shard count to the next, and the top
//!   shard count must strictly beat `shards=1` when the host has more
//!   than one core.
//! * `--shards N`         per-node proxy shard threads for the main
//!   ping-pong / fan-in runs (default 1). The recorded baseline is the
//!   unsharded single-proxy number, so `--shards 2 --check` gates the
//!   sharding tax on a single-user workload.
//!
//! A default run measures **both** planes back to back, records the
//! fan-in speedup (lock-free over locked) — the A/B the rings must win —
//! and then sweeps the proxies×users fan-in over 1/2/4 shards.
//!
//! [`RtClusterBuilder::locked_data_plane`]: mproxy_rt::RtClusterBuilder::locked_data_plane

use std::fmt::Write as _;
use std::process::ExitCode;

use mproxy_bench::rt::{self, FanIn, PingPong, ShardPoint};
use mproxy_rt::MAX_SHARDS;

/// Allowed fan-in msgs/sec regression before `--check` fails.
const CHECK_TOLERANCE: f64 = 0.20;
/// Allowed step-to-step dip in the shard sweep before `--check` fails —
/// tighter than [`CHECK_TOLERANCE`] because consecutive sweep points run
/// back to back in one process, so run-to-run noise is the only slack
/// needed; on a single-core host extra shard threads must be near-free.
const SWEEP_TOLERANCE: f64 = 0.10;
/// Fan-in source processes (each on its own node).
const SOURCES: usize = 3;
/// Shard counts the proxies×users sweep visits.
const SWEEP_SHARDS: [usize; 3] = [1, 2, 4];
/// Sink users sharing node 0 in the sweep. Eight, not four: the shard
/// table is a jump hash, and asids 0..8 happen to cover *all four*
/// shards at the sweep's top point (4 asids would leave two shards
/// idle — threads that only tax the scheduler and skew the curve on
/// small hosts).
const SWEEP_USERS: usize = 8;
/// PUT payload bytes for sweep points. Bulk frames, unlike the planes'
/// [`rt::PAYLOAD`]-byte pings: the sweep's question is how *delivery
/// work* scales with proxy shards, so the per-message segment copy must
/// dominate per-frame bookkeeping (at tiny payloads the curve mostly
/// measures scheduler churn on oversubscribed hosts).
const SWEEP_PAYLOAD: u32 = 2048;
/// Best-of runs per sweep point: the sweep's contract is *monotonic
/// non-decreasing*, so each point takes the best of a few runs to keep
/// scheduler noise from manufacturing a fake regression. Reps are
/// interleaved across shard counts (rep-major) so a noisy host epoch
/// taxes every point equally instead of whichever point it lands on.
/// Points are deliberately short (~0.2 s) and reps many: shared-host
/// noise arrives in multi-second bursts, and a short point has a real
/// chance of landing wholly inside a quiet window, which is the regime
/// the sweep is defined over.
const SWEEP_REPS: usize = 15;

struct Args {
    quick: bool,
    label: String,
    out: Option<String>,
    baseline_locked: bool,
    check: Option<String>,
    shards: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        label: "current".to_string(),
        out: None,
        baseline_locked: false,
        check: None,
        shards: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--quick" => args.quick = true,
            "--label" => args.label = value("--label")?,
            "--out" => args.out = Some(value("--out")?),
            "--baseline-locked" => args.baseline_locked = true,
            "--check" => args.check = Some(value("--check")?),
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if !(1..=MAX_SHARDS).contains(&args.shards) {
                    return Err(format!("--shards must be in 1..={MAX_SHARDS}"));
                }
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.baseline_locked && args.check.is_some() {
        return Err("--check gates the lock-free plane; drop --baseline-locked".into());
    }
    Ok(args)
}

/// Extracts the lock-free fan-in msgs/sec from a JSON document produced
/// by this binary (manual scan; the harnesses avoid a JSON dependency).
fn extract_lockfree_fanin(doc: &str) -> Option<f64> {
    let plane = doc.find("\"lockfree\":")?;
    let fanin = plane + doc[plane..].find("\"fan_in\":")?;
    let key = "\"msgs_per_sec\":";
    let k = fanin + doc[fanin..].find(key)? + key.len();
    let rest = doc[k..].trim_start();
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

/// One plane, both workloads.
fn run_plane(name: &str, locked: bool, pp_rounds: u64, fi_msgs: u64, shards: usize) -> (PingPong, FanIn) {
    eprintln!("rt_throughput: {name} ping-pong ({pp_rounds} rounds, {shards} shards) ...");
    let pp = rt::ping_pong_shards(locked, pp_rounds, shards);
    eprintln!(
        "rt_throughput:   p50 {:.1} us, p90 {:.1} us, p99 {:.1} us",
        pp.p50_us, pp.p90_us, pp.p99_us
    );
    eprintln!("rt_throughput: {name} fan-in ({SOURCES} sources x {fi_msgs} msgs, {shards} shards) ...");
    let fi = rt::fan_in_shards(locked, SOURCES, fi_msgs, shards);
    eprintln!("rt_throughput:   {:.0} msgs/sec", fi.msgs_per_sec);
    (pp, fi)
}

/// The proxies×users sweep: best-of-[`SWEEP_REPS`] multi-user bulk
/// fan-in at each shard count in [`SWEEP_SHARDS`].
///
fn run_sweep(fi_msgs: u64) -> Vec<ShardPoint> {
    eprintln!(
        "rt_throughput: sweep fan-in ({SOURCES} sources x {fi_msgs} x {SWEEP_PAYLOAD}B msgs -> \
         {SWEEP_USERS} users, shards {SWEEP_SHARDS:?}, best of {SWEEP_REPS} interleaved) ..."
    );
    let mut best: Vec<Option<ShardPoint>> = vec![None; SWEEP_SHARDS.len()];
    for _ in 0..SWEEP_REPS {
        for (i, &shards) in SWEEP_SHARDS.iter().enumerate() {
            let p = rt::fan_in_users(shards, SWEEP_USERS, SOURCES, fi_msgs, SWEEP_PAYLOAD);
            if best[i].is_none_or(|b| p.msgs_per_sec > b.msgs_per_sec) {
                best[i] = Some(p);
            }
        }
    }
    let sweep: Vec<ShardPoint> = best.into_iter().map(|p| p.expect("SWEEP_REPS > 0")).collect();
    for p in &sweep {
        eprintln!(
            "rt_throughput:   {} shards: {:.0} msgs/sec",
            p.shards, p.msgs_per_sec
        );
    }
    sweep
}

fn sweep_json(sweep: &[ShardPoint]) -> String {
    let mut s = String::from("[\n");
    for (i, p) in sweep.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"shards\": {}, \"users\": {}, \"sources\": {}, \
             \"msgs_per_source\": {}, \"payload\": {}, \"wall_s\": {:.6}, \
             \"msgs_per_sec\": {:.1}}}",
            p.shards, p.users, p.sources, p.msgs_per_source, p.payload, p.wall_s, p.msgs_per_sec
        );
        s.push_str(if i + 1 < sweep.len() { ",\n" } else { "\n" });
    }
    s.push_str("    ]");
    s
}

/// Gates the sweep: monotone non-decreasing (within [`SWEEP_TOLERANCE`])
/// across consecutive shard counts, and a strict speedup from the first
/// to the last point when the host actually has parallel cores.
fn check_sweep(sweep: &[ShardPoint]) -> Result<(), String> {
    for w in sweep.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if b.msgs_per_sec < a.msgs_per_sec * (1.0 - SWEEP_TOLERANCE) {
            return Err(format!(
                "sweep NOT monotone: {} shards {:.0} msgs/sec -> {} shards {:.0} msgs/sec \
                 (> {:.0}% dip)",
                a.shards,
                a.msgs_per_sec,
                b.shards,
                b.msgs_per_sec,
                SWEEP_TOLERANCE * 100.0
            ));
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores > 1 {
        let (first, last) = (&sweep[0], &sweep[sweep.len() - 1]);
        if last.msgs_per_sec <= first.msgs_per_sec {
            return Err(format!(
                "no sharding speedup on a {cores}-core host: {} shards {:.0} msgs/sec vs \
                 {} shards {:.0} msgs/sec",
                first.shards, first.msgs_per_sec, last.shards, last.msgs_per_sec
            ));
        }
    } else {
        eprintln!("rt_throughput: single-core host; strict sweep speedup not asserted");
    }
    Ok(())
}

fn plane_json(pp: &PingPong, fi: &FanIn) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "      \"ping_pong\": {{");
    let _ = writeln!(s, "        \"rounds\": {},", pp.rounds);
    let _ = writeln!(s, "        \"wall_s\": {:.6},", pp.wall_s);
    let _ = writeln!(s, "        \"p50_us\": {:.2},", pp.p50_us);
    let _ = writeln!(s, "        \"p90_us\": {:.2},", pp.p90_us);
    let _ = writeln!(s, "        \"p99_us\": {:.2}", pp.p99_us);
    let _ = writeln!(s, "      }},");
    let _ = writeln!(s, "      \"fan_in\": {{");
    let _ = writeln!(s, "        \"sources\": {},", fi.sources);
    let _ = writeln!(s, "        \"msgs_per_source\": {},", fi.msgs_per_source);
    let _ = writeln!(s, "        \"wall_s\": {:.6},", fi.wall_s);
    let _ = writeln!(s, "        \"msgs_per_sec\": {:.1}", fi.msgs_per_sec);
    let _ = writeln!(s, "      }}");
    let _ = write!(s, "    }}");
    s
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rt_throughput: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (pp_rounds, fi_msgs) = if args.quick {
        (500, 5_000)
    } else {
        (3_000, 30_000)
    };
    let mode = if args.quick { "quick" } else { "full" };

    let lockfree = if args.baseline_locked {
        None
    } else {
        Some(run_plane("lock-free", false, pp_rounds, fi_msgs, args.shards))
    };
    let locked = run_plane("locked baseline", true, pp_rounds, fi_msgs, args.shards);
    // The proxies×users sweep is a full-mode, lock-free-plane measurement
    // with its own shard axis; --quick (CI smoke) skips it for time.
    let sweep = if args.quick || args.baseline_locked {
        Vec::new()
    } else {
        run_sweep(fi_msgs)
    };

    let mut doc = format!(
        "{{\n{}  \"after\": {{\n",
        mproxy_bench::reports::bench_header_json(None)
    );
    let _ = writeln!(doc, "    \"label\": \"{}\",", args.label);
    let _ = writeln!(doc, "    \"mode\": \"{mode}\",");
    let _ = writeln!(doc, "    \"shards\": {},", args.shards);
    if let Some((pp, fi)) = &lockfree {
        let _ = writeln!(doc, "    \"lockfree\": {},", plane_json(pp, fi));
    }
    let _ = writeln!(doc, "    \"locked\": {},", plane_json(&locked.0, &locked.1));
    if !sweep.is_empty() {
        let _ = writeln!(doc, "    \"shard_sweep\": {},", sweep_json(&sweep));
    }
    if let Some((pp, fi)) = &lockfree {
        let speedup_fanin = fi.msgs_per_sec / locked.1.msgs_per_sec;
        let speedup_p50 = locked.0.p50_us / pp.p50_us;
        eprintln!(
            "rt_throughput: fan-in speedup {speedup_fanin:.2}x, p50 speedup {speedup_p50:.2}x \
             (lock-free over locked)"
        );
        let _ = writeln!(doc, "    \"speedup_fanin\": {speedup_fanin:.2},");
        let _ = writeln!(doc, "    \"speedup_p50\": {speedup_p50:.2}");
    } else {
        let _ = writeln!(doc, "    \"plane\": \"locked\"");
    }
    doc.push_str("  }\n}\n");

    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("rt_throughput: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("rt_throughput: wrote {path}");
        }
        None => print!("{doc}"),
    }

    if let Some(path) = &args.check {
        let Some((_, fi)) = &lockfree else {
            unreachable!("--check with --baseline-locked is rejected at parse time")
        };
        let recorded = std::fs::read_to_string(path)
            .ok()
            .as_deref()
            .and_then(extract_lockfree_fanin);
        let Some(recorded) = recorded else {
            eprintln!("rt_throughput: no recorded lock-free fan-in msgs/sec in {path}");
            return ExitCode::FAILURE;
        };
        let floor = recorded * (1.0 - CHECK_TOLERANCE);
        if fi.msgs_per_sec < floor {
            eprintln!(
                "rt_throughput: REGRESSION: {:.0} msgs/sec < {floor:.0} \
                 (recorded {recorded:.0} - {:.0}%)",
                fi.msgs_per_sec,
                CHECK_TOLERANCE * 100.0
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "rt_throughput: check ok: {:.0} msgs/sec vs recorded {recorded:.0} (floor {floor:.0})",
            fi.msgs_per_sec
        );
        if !sweep.is_empty() {
            if let Err(e) = check_sweep(&sweep) {
                eprintln!("rt_throughput: REGRESSION: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("rt_throughput: shard sweep check ok");
        }
    }
    ExitCode::SUCCESS
}
