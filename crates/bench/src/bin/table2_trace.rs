//! Regenerates Tables 1 and 2: the primitive costs and the critical-path
//! trace of one-word GET and PUT operations on the G30 message-proxy
//! implementation (Section 4.1).

use mproxy_model::{
    format_trace, get_latency, get_trace, protection_cost_get, protection_cost_put,
    put_oneway_latency, put_trace, MachineParams,
};

fn main() {
    let m = MachineParams::G30;
    println!("Table 1: primitive operations on the IBM Model G30");
    println!("{:<42} {:>8}", "primitive", "us");
    println!("{}", "-".repeat(52));
    println!(
        "{:<42} {:>8.2}",
        "C   time to service a cache miss", m.cache_miss_us
    );
    println!(
        "{:<42} {:>8.2}",
        "U   uncached (adapter FIFO) access", m.uncached_us
    );
    println!(
        "{:<42} {:>8.2}",
        "V   vm_att cross-memory attach", m.vm_att_us
    );
    println!("{:<42} {:>8.2}", "P   polling delay", m.polling_delay_us());
    println!("{:<42} {:>8.2}", "S   processor speed (x 75 MHz)", m.speed);
    println!(
        "{:<42} {:>8.2}",
        "L   network transit latency", m.net_latency_us
    );
    println!();
    println!("Table 2: critical path of a one-word GET");
    println!("{}", format_trace(&get_trace(), &m));
    println!("Critical path of a one-word PUT (one-way)");
    println!("{}", format_trace(&put_trace(), &m));
    println!(
        "GET  = 10C + 6U + 3V + 3.6/S + 3P + 2L = {:.2} us  (paper: 27.5 + 2L)",
        get_latency().eval_uniform(&m)
    );
    println!(
        "PUT  =  7C + 4U + 2V + 2.2/S + 2P +  L = {:.2} us  (paper: 18.5 + L)",
        put_oneway_latency().eval_uniform(&m)
    );
    println!(
        "protection cost: GET 3C+3V+3P = {:.2} us (paper ~14), PUT 3C+2V+2P = {:.2} us (paper 10.3)",
        protection_cost_get().eval_uniform(&m),
        protection_cost_put().eval_uniform(&m)
    );
}
