//! Overload sweep binary: measures proxy command-queue delay under
//! open-loop load and emits `BENCH_overload.json` comparing it against
//! the §5.4 contention model.
//!
//! ```text
//! overload [--quick] [--out PATH] [--check]
//! ```
//!
//! * `--quick`  fewer utilisation points and shorter windows (CI smoke).
//! * `--out`    write the JSON document to PATH (default: stdout).
//! * `--check`  exit non-zero if the command queue outgrew the credit
//!   bound anywhere, or if the measured wait deviates more than 25% from
//!   the M/M/1 curve at target utilisations up to 0.45.

use std::fmt::Write as _;
use std::process::ExitCode;

use mproxy_bench::overload::{
    check_sweep, overload_rows, overload_sweep, OverloadSweep, CHECK_RHO_CAP, MODEL_TOLERANCE,
    OVERLOAD_CREDITS, OVERLOAD_SEED, OVERLOAD_SENDERS,
};

struct Args {
    quick: bool,
    out: Option<String>,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: None,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--out" => args.out = Some(it.next().ok_or("--out needs a value")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn json_doc(sweep: &OverloadSweep, mode: &str) -> String {
    let mut doc = format!(
        "{{\n{}",
        mproxy_bench::reports::bench_header_json(Some(OVERLOAD_SEED))
    );
    let _ = writeln!(doc, "  \"workload\": \"mp1_overload_put_mix\",");
    let _ = writeln!(doc, "  \"mode\": \"{mode}\",");
    let _ = writeln!(doc, "  \"seed\": {OVERLOAD_SEED},");
    let _ = writeln!(doc, "  \"senders\": {OVERLOAD_SENDERS},");
    let _ = writeln!(doc, "  \"credits_per_proc\": {OVERLOAD_CREDITS},");
    let _ = writeln!(doc, "  \"model\": \"mm1_wait_us\",");
    let _ = writeln!(doc, "  \"check_rho_cap\": {CHECK_RHO_CAP},");
    let _ = writeln!(doc, "  \"model_tolerance\": {MODEL_TOLERANCE},");
    let _ = writeln!(doc, "  \"calibration\": {{");
    let _ = writeln!(doc, "    \"small_service_us\": {:.4},", sweep.small_us);
    let _ = writeln!(doc, "    \"large_service_us\": {:.4},", sweep.large_us);
    let _ = writeln!(doc, "    \"large_fraction\": {:.6}", sweep.large_fraction);
    let _ = writeln!(doc, "  }},");
    let _ = writeln!(doc, "  \"points\": [");
    for (i, p) in sweep.points.iter().enumerate() {
        let comma = if i + 1 == sweep.points.len() { "" } else { "," };
        let _ = writeln!(
            doc,
            "    {{ \"target_rho\": {:.2}, \"rho\": {:.4}, \"service_us\": {:.3}, \
             \"wait_us\": {:.3}, \"model_wait_us\": {:.3}, \"deviation\": {:.4}, \
             \"ops\": {}, \"queue_peak\": {}, \"credit_bound\": {}, \"stable\": {} }}{comma}",
            p.target_rho,
            p.rho,
            p.service_us,
            p.wait_us,
            p.model_us,
            p.deviation(),
            p.ops,
            p.queue_peak,
            p.credit_bound,
            p.stable()
        );
    }
    doc.push_str("  ]\n}\n");
    doc
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("overload: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mode = if args.quick { "quick" } else { "full" };
    eprintln!("overload: sweeping ({mode}) ...");
    let sweep = overload_sweep(args.quick);
    eprint!("{}", overload_rows(&sweep));

    let doc = json_doc(&sweep, mode);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("overload: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("overload: wrote {path}");
        }
        None => print!("{doc}"),
    }

    if args.check {
        if let Err(e) = check_sweep(&sweep) {
            eprintln!("overload: CHECK FAILED: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("overload: check ok (queue bounded, model within tolerance)");
    }
    ExitCode::SUCCESS
}
