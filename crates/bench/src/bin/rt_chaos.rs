//! Chaos soak for the threaded runtime: drives kill / corrupt / stall
//! scenarios under load (see [`mproxy_bench::chaos`]) and checks the
//! recovery invariants — no acked op lost or duplicated, recovery
//! bounded, survivors live. Emits `BENCH_chaos.json` and exits non-zero
//! on any violation, which is the CI gate.
//!
//! ```text
//! rt_chaos [--quick] [--check] [--seeds N] [--label STR] [--out PATH]
//! ```
//!
//! * `--quick`   fewer randomized seeds and lighter per-scenario load
//!   (CI smoke).
//! * `--check`   gate mode: suppress the JSON document, just run and
//!   exit non-zero on violation.
//! * `--seeds`   randomized scenario count (default 30 full / 6 quick).
//! * `--label`   free-form description recorded in the JSON.
//! * `--out`     write the JSON document to PATH (default: stdout).

use std::fmt::Write as _;
use std::process::ExitCode;

use mproxy_bench::chaos::{self, ScenarioResult};

struct Args {
    quick: bool,
    check: bool,
    seeds: Option<u64>,
    label: String,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        check: false,
        seeds: None,
        label: "current".to_string(),
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--seeds" => {
                args.seeds = Some(
                    value("--seeds")?
                        .parse()
                        .map_err(|e| format!("--seeds: {e}"))?,
                );
            }
            "--label" => args.label = value("--label")?,
            "--out" => args.out = Some(value("--out")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn scenario_json(r: &ScenarioResult) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "    {{ \"name\": \"{}\", \"seed\": {}, \"passed\": {}, \"acked_ops\": {}, \
         \"deaths\": {}, \"restarts\": {}, \"max_ack_wait_ms\": {:.2}",
        r.name, r.seed, r.passed, r.acked_ops, r.deaths, r.restarts, r.max_ack_wait_ms
    );
    if !r.failure.is_empty() {
        let _ = write!(s, ", \"failure\": \"{}\"", mproxy_obs::json::esc(&r.failure));
    }
    if !r.shutdown_json.is_empty() {
        let _ = write!(s, ",\n      \"shutdown\": {}", r.shutdown_json);
    }
    if let Some(obs) = &r.obs {
        let _ = write!(s, ",\n      \"obs\": {}", obs.to_json());
    }
    let _ = write!(s, " }}");
    s
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rt_chaos: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (seeds, fan_msgs, load_msgs, ring_rounds) = if args.quick {
        (args.seeds.unwrap_or(6), 40, 200, 25)
    } else {
        (args.seeds.unwrap_or(30), 80, 600, 40)
    };
    let mode = if args.quick { "quick" } else { "full" };

    let mut results: Vec<ScenarioResult> = Vec::new();
    let mut run = |r: ScenarioResult| {
        eprintln!(
            "rt_chaos: {:<24} seed {:<3} {} (acked {}, deaths {}, restarts {}, \
             max ack wait {:.1} ms){}",
            r.name,
            r.seed,
            if r.passed { "ok " } else { "FAIL" },
            r.acked_ops,
            r.deaths,
            r.restarts,
            r.max_ack_wait_ms,
            if r.failure.is_empty() {
                String::new()
            } else {
                format!(" — {}", r.failure)
            }
        );
        results.push(r);
    };

    // Deterministic scenarios: one of each fault family.
    run(chaos::kill_sink_fan_in(101, fan_msgs));
    run(chaos::kill_sender_fan_in(202, fan_msgs));
    run(chaos::corrupt_under_load(303, load_msgs));
    run(chaos::stall_survivor_liveness(404, ring_rounds));
    // Sharded runtime: single-shard kill and live rebalance.
    run(chaos::shard_kill_fan_in(505, fan_msgs));
    run(chaos::rebalance_under_load(606, fan_msgs));
    // Seeded randomized soak.
    for seed in 0..seeds {
        run(chaos::randomized(seed, ring_rounds));
    }

    let passed = results.iter().filter(|r| r.passed).count();
    let total = results.len();
    let acked: u64 = results.iter().map(|r| r.acked_ops).sum();
    let deaths: u64 = results.iter().map(|r| r.deaths).sum();
    let restarts: u64 = results.iter().map(|r| r.restarts).sum();
    let max_wait = results
        .iter()
        .map(|r| r.max_ack_wait_ms)
        .fold(0.0f64, f64::max);
    eprintln!(
        "rt_chaos: {passed}/{total} scenarios clean — {acked} acked ops, {deaths} proxy \
         deaths, {restarts} respawns, max ack wait {max_wait:.1} ms"
    );

    if !args.check {
        let mut doc = format!("{{\n{}", mproxy_bench::reports::bench_header_json(None));
        let _ = writeln!(doc, "  \"label\": \"{}\",", args.label);
        let _ = writeln!(doc, "  \"mode\": \"{mode}\",");
        let _ = writeln!(doc, "  \"scenarios\": {total},");
        let _ = writeln!(doc, "  \"passed\": {passed},");
        let _ = writeln!(doc, "  \"acked_ops\": {acked},");
        let _ = writeln!(doc, "  \"proxy_deaths\": {deaths},");
        let _ = writeln!(doc, "  \"respawns\": {restarts},");
        let _ = writeln!(doc, "  \"max_ack_wait_ms\": {max_wait:.2},");
        let _ = writeln!(doc, "  \"results\": [");
        for (i, r) in results.iter().enumerate() {
            let sep = if i + 1 < results.len() { "," } else { "" };
            let _ = writeln!(doc, "{}{sep}", scenario_json(r));
        }
        doc.push_str("  ]\n}\n");
        match &args.out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &doc) {
                    eprintln!("rt_chaos: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("rt_chaos: wrote {path}");
            }
            None => print!("{doc}"),
        }
    }

    if passed != total {
        eprintln!("rt_chaos: INVARIANT VIOLATION in {} scenario(s)", total - passed);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
