//! Crash-recovery sweep: the MP1 verified ping-pong and the Sample
//! application with a mid-run proxy crash on a lossy network. The
//! epoch/HELLO resync protocol must deliver every message exactly once
//! when the crash catches no un-ACKed work, surface `EpochReset` when it
//! does, and do either deterministically — the report re-runs each crash
//! case and asserts byte-identity.
//!
//! Thin wrapper over [`mproxy_bench::reports::crash_sweep_report`] so
//! tests reproduce the same bytes.

fn main() {
    print!("{}", mproxy_bench::reports::crash_sweep_report());
}
