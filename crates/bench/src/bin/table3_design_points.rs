//! Regenerates Table 3: the simulation parameters of the six design
//! points (several cells reconstructed from Table 4 identities; see
//! DESIGN.md).

use mproxy_model::ALL_DESIGN_POINTS;

fn main() {
    println!(
        "{:<34} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "Parameter", "HW0", "HW1", "MP0", "MP1", "MP2", "SW1"
    );
    println!("{}", "-".repeat(86));
    type Getter = Box<dyn Fn(&mproxy_model::DesignPoint) -> f64>;
    let rows: Vec<(&str, Getter)> = vec![
        (
            "Cache miss latency (us)",
            Box::new(|d| d.machine.cache_miss_us),
        ),
        ("Proxy<->compute miss (us)", Box::new(|d| d.shared_miss_us)),
        (
            "Uncached access U (us)",
            Box::new(|d| d.machine.uncached_us),
        ),
        ("vm_att V (us)", Box::new(|d| d.machine.vm_att_us)),
        ("Polling delay P (us)", Box::new(|d| d.polling_us())),
        ("Processor speed S (x75MHz)", Box::new(|d| d.machine.speed)),
        ("Adapter overhead (us)", Box::new(|d| d.adapter_ovh_us)),
        ("Syscall / interrupt (us)", Box::new(|d| d.syscall_us)),
        (
            "Compute proc overhead (us)",
            Box::new(|d| d.predicted_overhead_us()),
        ),
        ("DMA bandwidth (MB/s)", Box::new(|d| d.dma_bw_mbs)),
        (
            "Network latency (us)",
            Box::new(|d| d.machine.net_latency_us),
        ),
        ("Network bandwidth (MB/s)", Box::new(|d| d.net_bw_mbs)),
        (
            "Pin + unpin per page (us)",
            Box::new(|d| d.pin_us + d.unpin_us),
        ),
    ];
    for (name, f) in rows {
        print!("{name:<34}");
        for d in &ALL_DESIGN_POINTS {
            print!(" {:>7.2}", f(d));
        }
        println!();
    }
}
