//! Ablation study of the §4.1 optimisation proposals, applied to the MP1
//! baseline:
//!
//! * **64-bit address spaces** — "a 64-bit implementation of the PowerPC
//!   architecture can avoid this overhead by permanently attaching to the
//!   address spaces of all communicating user processes": V = 0.
//! * **Bit-vector polling** — "the communicating processes and the message
//!   proxy can cooperatively maintain a shared bit vector ... the message
//!   proxy can detect the state of a number of command queues in a single
//!   probe": the scan cost collapses to one probe (poll_instr -> 0.2 µs,
//!   one miss).
//! * **Cache update** (= the paper's MP2): C' = 0.25 µs.
//!
//! Prints one-word GET latency and a communication-intensive app's
//! execution time for every combination.

use mproxy_apps::{run_app_flat, AppId, AppSize};
use mproxy_model::{DesignPoint, MachineParams, MP1};

fn variant(v64: bool, bitvec: bool, update: bool) -> DesignPoint {
    let machine = MachineParams {
        vm_att_us: if v64 { 0.0001 } else { MP1.machine.vm_att_us },
        poll_instr_us: if bitvec {
            0.2
        } else {
            MP1.machine.poll_instr_us
        },
        poll_miss_factor: if bitvec {
            1.0
        } else {
            MP1.machine.poll_miss_factor
        },
        ..MP1.machine
    };
    DesignPoint {
        name: "ablate",
        machine,
        shared_miss_us: if update { 0.25 } else { MP1.shared_miss_us },
        ..MP1
    }
}

fn main() {
    println!(
        "{:<28} {:>9} {:>12} {:>12}",
        "variant (on MP1)", "GET us", "Sample us", "vs base"
    );
    println!("{}", "-".repeat(64));
    let base = run_app_flat(AppId::Sample, MP1, 8, AppSize::Small).elapsed_us;
    for (label, v64, bv, cu) in [
        ("baseline (MP1)", false, false, false),
        ("+64-bit (V=0)", true, false, false),
        ("+bit-vector poll", false, true, false),
        ("+cache update (MP2)", false, false, true),
        ("64-bit + bit-vector", true, true, false),
        ("all three", true, true, true),
    ] {
        let d = variant(v64, bv, cu);
        let get = mproxy::micro::run_micro(d).get_us;
        let t = run_app_flat(AppId::Sample, d, 8, AppSize::Small).elapsed_us;
        println!(
            "{:<28} {:>9.2} {:>12.0} {:>11.1}%",
            label,
            get,
            t,
            100.0 * (t - base) / base
        );
    }
}
