//! Fault-injection sweep: the MP1 verified ping-pong and the Sample
//! application on increasingly lossy networks. The reliable link layer
//! must keep message-level results identical to the fault-free run —
//! only timing degrades — so the sweep doubles as an end-to-end
//! robustness check of the proxy fabric. Output is deterministic for a
//! given seed.
//!
//! Thin wrapper over [`mproxy_bench::reports::fault_sweep_report`] so
//! tests and the performance harness reproduce the same bytes.

fn main() {
    print!("{}", mproxy_bench::reports::fault_sweep_report());
}
