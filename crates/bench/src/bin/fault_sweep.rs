//! Fault-injection sweep: the MP1 verified ping-pong and the Sample
//! application on increasingly lossy networks. The reliable link layer
//! must keep message-level results identical to the fault-free run —
//! only timing degrades — so the sweep doubles as an end-to-end
//! robustness check of the proxy fabric. Output is deterministic for a
//! given seed.

use mproxy::micro::pingpong_verified;
use mproxy::FaultPlan;
use mproxy_apps::{run_app_flat, run_app_flat_faulty, AppId, AppSize};
use mproxy_model::MP1;

const SEED: u64 = 1997;
const DROP_RATES: [f64; 3] = [0.001, 0.01, 0.05];

/// A sweep plan at `drop` probability: duplicates at half the drop rate,
/// reorders at the drop rate, corrupts at a quarter of it.
fn plan(drop: f64) -> FaultPlan {
    FaultPlan::new(SEED)
        .drop(drop)
        .duplicate(drop / 2.0)
        .reorder(drop, 30.0)
        .corrupt(drop / 4.0)
}

fn main() {
    println!("# Fault sweep on MP1 (seed {SEED})");
    println!("# dup = drop/2, reorder = drop (30us), corrupt = drop/4\n");

    println!("## Verified PUT ping-pong, 64 B x 64 reps");
    println!(
        "{:<10} {:>8} {:>10} {:>8} {:>9} {:>8} {:>7} {:>7}",
        "drop_rate", "rounds", "rt_us", "ok", "injected", "dropped", "retx", "dups"
    );
    let base = pingpong_verified(MP1, 64, 64, None);
    print_pp("none", &base);
    let benign = pingpong_verified(MP1, 64, 64, Some(FaultPlan::new(SEED)));
    print_pp("0 (rel.)", &benign);
    for &rate in &DROP_RATES {
        let r = pingpong_verified(MP1, 64, 64, Some(plan(rate)));
        print_pp(&format!("{rate}"), &r);
    }

    println!("\n## Sample application (Tiny, 2 procs)");
    println!(
        "{:<10} {:>12} {:>14} {:>9} {:>8} {:>7} {:>7}",
        "drop_rate", "elapsed_us", "checksum", "injected", "dropped", "retx", "unreach"
    );
    let base = run_app_flat(AppId::Sample, MP1, 2, AppSize::Tiny);
    print_app("none", &base);
    let benign = run_app_flat_faulty(AppId::Sample, MP1, 2, AppSize::Tiny, FaultPlan::new(SEED));
    print_app("0 (rel.)", &benign);
    assert_eq!(base.checksum, benign.checksum);
    for &rate in &DROP_RATES {
        let r = run_app_flat_faulty(AppId::Sample, MP1, 2, AppSize::Tiny, plan(rate));
        assert_eq!(base.checksum, r.checksum, "faults must never change answers");
        print_app(&format!("{rate}"), &r);
    }
    println!("\n# all checksums identical to the fault-free run");
}

fn print_pp(label: &str, r: &mproxy::micro::VerifiedPingPong) {
    println!(
        "{:<10} {:>8} {:>10.2} {:>8} {:>9} {:>8} {:>7} {:>7}",
        label,
        r.rounds,
        r.rt_us,
        if r.data_ok && r.error.is_none() {
            "yes"
        } else {
            "NO"
        },
        r.report.injected.packets,
        r.report.injected.dropped,
        r.report.link.retransmits,
        r.report.link.dups_discarded,
    );
}

fn print_app(label: &str, r: &mproxy_apps::AppRun) {
    println!(
        "{:<10} {:>12.1} {:>14.6} {:>9} {:>8} {:>7} {:>7}",
        label,
        r.elapsed_us,
        r.checksum,
        r.faults.injected.packets,
        r.faults.injected.dropped,
        r.faults.link.retransmits,
        r.faults.link.unreachable,
    );
}
