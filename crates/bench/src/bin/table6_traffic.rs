//! Regenerates Table 6: average application message sizes, per-processor
//! message rates, and communication-interface utilisation on 16
//! processors, for HW1 (adapter logic) and MP1 (message proxy).

use mproxy_apps::{run_app_flat, AppId, AppSize};
use mproxy_model::{HW1, MP1, SW1};

fn main() {
    println!(
        "{:<12} {:>6} | {:>9} {:>9} {:>8} | {:>9} {:>9} {:>8} | {:>9}",
        "app", "bytes", "HW1 op/ms", "HW1 util%", "", "MP1 op/ms", "MP1 util%", "", "SW1 op/ms"
    );
    println!("{}", "-".repeat(100));
    for app in AppId::ALL {
        let hw = run_app_flat(app, HW1, 16, AppSize::Small);
        let mp = run_app_flat(app, MP1, 16, AppSize::Small);
        let sw = run_app_flat(app, SW1, 16, AppSize::Small);
        println!(
            "{:<12} {:>6.0} | {:>9.2} {:>9.1} {:>8} | {:>9.2} {:>9.1} {:>8} | {:>9.2}",
            app.name(),
            mp.traffic.avg_msg_bytes,
            hw.traffic.msg_rate_per_ms,
            hw.traffic.interface_utilization * 100.0,
            "",
            mp.traffic.msg_rate_per_ms,
            mp.traffic.interface_utilization * 100.0,
            "",
            sw.traffic.msg_rate_per_ms,
        );
    }
    println!("\npaper reference points: Moldy 6456 B @ 0.43 op/ms (2.0%/4.1%),");
    println!("P-Ray 29 B @ 0.88 op/ms (1.9%), Wator 40 B @ 19.0/14.5 op/ms (5.5%/25.7%)");
}
