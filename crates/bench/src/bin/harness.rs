//! Performance harness: measures simulator throughput (events/sec) and
//! wall time per figure reproduction, and emits `BENCH_des.json` so the
//! engine's perf trajectory is tracked in-repo.
//!
//! ```text
//! harness [--quick] [--label STR] [--out PATH] [--before PATH] [--check PATH]
//! ```
//!
//! * `--quick`   fewer repetitions of the events/sec workload (CI smoke).
//! * `--label`   free-form engine description recorded in the JSON.
//! * `--out`     write the JSON document to PATH (default: stdout).
//! * `--before`  embed the `"after"` section of a previous run's JSON as
//!   this document's `"before"`, plus the resulting speedup.
//! * `--check`   compare measured events/sec against the `"after"`
//!   number recorded in PATH; exit non-zero on a >20% regression.
//!
//! The events/sec workload is the acceptance workload: the MP1 verified
//! ping-pong plus the Sample application at 1% drop rate, timers and
//! retransmissions included.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use mproxy_bench::reports;
use mproxy_bench::sweep;

/// Drop rate of the acceptance workload.
const CHECK_DROP: f64 = 0.01;
/// Allowed events/sec regression before `--check` fails.
const CHECK_TOLERANCE: f64 = 0.20;

struct Args {
    quick: bool,
    label: String,
    out: Option<String>,
    before: Option<String>,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        label: "current".to_string(),
        out: None,
        before: None,
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--quick" => args.quick = true,
            "--label" => args.label = value("--label")?,
            "--out" => args.out = Some(value("--out")?),
            "--before" => args.before = Some(value("--before")?),
            "--check" => args.check = Some(value("--check")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Extracts the `"after"` object (balanced braces) from a harness JSON
/// document produced by this binary.
fn extract_after_object(doc: &str) -> Option<&str> {
    let key = doc.find("\"after\":")?;
    let start = key + doc[key..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in doc[start..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&doc[start..=start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts the recorded events/sec of the acceptance workload from the
/// `"after"` section of a harness JSON document.
fn extract_after_events_per_sec(doc: &str) -> Option<f64> {
    let after = extract_after_object(doc)?;
    let w = after.find("\"fault_sweep_mp1_drop1pct\"")?;
    let key = "\"events_per_sec\":";
    let k = w + after[w..].find(key)? + key.len();
    let rest = after[k..].trim_start();
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("harness: {e}");
            return ExitCode::FAILURE;
        }
    };
    let reps: u32 = if args.quick { 2 } else { 8 };
    let mode = if args.quick { "quick" } else { "full" };

    // Acceptance workload: events/sec on the 1%-drop MP1 fault sweep.
    // Best of `trials` — the minimum wall time isolates engine speed
    // from scheduler interference on a shared host.
    let trials: u32 = if args.quick { 3 } else { 5 };
    eprintln!(
        "harness: events/sec workload ({trials} trials x {reps} reps, drop {CHECK_DROP}) ..."
    );
    let mut events: u64 = 0;
    let mut sweep_wall = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        let mut trial_events: u64 = 0;
        for _ in 0..reps {
            trial_events += reports::fault_sweep_unit_events(CHECK_DROP);
        }
        let wall = t0.elapsed().as_secs_f64();
        if wall < sweep_wall {
            sweep_wall = wall;
            events = trial_events;
        }
    }
    let events_per_sec = events as f64 / sweep_wall;
    eprintln!("harness:   {events} events in {sweep_wall:.3} s = {events_per_sec:.0} events/sec");

    // Figure reproductions: serial, then through the parallel driver.
    eprintln!("harness: fig7 serial ...");
    let t0 = Instant::now();
    let fig7_serial = reports::fig7_report();
    let fig7_serial_wall = t0.elapsed().as_secs_f64();

    let threads = sweep::default_threads();
    eprintln!("harness: fig7 parallel ({threads} threads) ...");
    let t0 = Instant::now();
    let fig7_parallel = reports::fig7_report_parallel(threads);
    let fig7_parallel_wall = t0.elapsed().as_secs_f64();
    assert_eq!(
        fig7_serial, fig7_parallel,
        "parallel fig7 must be byte-identical to serial"
    );

    eprintln!("harness: fault sweep report ...");
    let t0 = Instant::now();
    let _ = reports::fault_sweep_report();
    let sweep_report_wall = t0.elapsed().as_secs_f64();

    let mut after = String::new();
    let _ = writeln!(after, "{{");
    let _ = writeln!(after, "    \"label\": \"{}\",", args.label);
    let _ = writeln!(after, "    \"mode\": \"{mode}\",");
    let _ = writeln!(after, "    \"workloads\": {{");
    let _ = writeln!(after, "      \"fault_sweep_mp1_drop1pct\": {{");
    let _ = writeln!(after, "        \"runs\": {reps},");
    let _ = writeln!(after, "        \"events\": {events},");
    let _ = writeln!(after, "        \"wall_s\": {sweep_wall:.6},");
    let _ = writeln!(after, "        \"events_per_sec\": {events_per_sec:.1}");
    let _ = writeln!(after, "      }},");
    let _ = writeln!(after, "      \"fig7_serial\": {{ \"wall_s\": {fig7_serial_wall:.6} }},");
    let _ = writeln!(
        after,
        "      \"fig7_parallel\": {{ \"threads\": {threads}, \"wall_s\": {fig7_parallel_wall:.6} }},"
    );
    let _ = writeln!(
        after,
        "      \"fault_sweep_report\": {{ \"wall_s\": {sweep_report_wall:.6} }}"
    );
    let _ = writeln!(after, "    }}");
    let _ = write!(after, "  }}");

    let mut doc = format!("{{\n{}", reports::bench_header_json(Some(reports::SWEEP_SEED)));
    if let Some(path) = &args.before {
        match std::fs::read_to_string(path) {
            Ok(prev) => match (
                extract_after_object(&prev),
                extract_after_events_per_sec(&prev),
            ) {
                (Some(obj), Some(before_eps)) => {
                    let _ = writeln!(doc, "  \"before\": {obj},");
                    let _ = writeln!(
                        doc,
                        "  \"speedup_fault_sweep\": {:.2},",
                        events_per_sec / before_eps
                    );
                }
                _ => {
                    eprintln!("harness: no usable \"after\" section in {path}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("harness: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let _ = writeln!(doc, "  \"after\": {after}");
    doc.push_str("}\n");

    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("harness: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("harness: wrote {path}");
        }
        None => print!("{doc}"),
    }

    if let Some(path) = &args.check {
        let recorded = std::fs::read_to_string(path)
            .ok()
            .as_deref()
            .and_then(extract_after_events_per_sec);
        let Some(recorded) = recorded else {
            eprintln!("harness: no recorded events/sec in {path}");
            return ExitCode::FAILURE;
        };
        let floor = recorded * (1.0 - CHECK_TOLERANCE);
        if events_per_sec < floor {
            eprintln!(
                "harness: REGRESSION: {events_per_sec:.0} events/sec < {floor:.0} \
                 (recorded {recorded:.0} - {:.0}%)",
                CHECK_TOLERANCE * 100.0
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "harness: check ok: {events_per_sec:.0} events/sec vs recorded {recorded:.0} \
             (floor {floor:.0})"
        );
    }
    ExitCode::SUCCESS
}
