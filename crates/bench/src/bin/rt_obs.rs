//! Observability overhead gate + Perfetto-export smoke for the threaded
//! runtime. Two jobs, both feeding `BENCH_obs.json`:
//!
//! 1. **A/B overhead** — runs the `rt_throughput` workloads (fan-in,
//!    ping-pong) with telemetry recording *off* and *on* (counters stay
//!    on either way — they are the always-on tier) and reports the
//!    throughput delta. The `--check` gate fails if recording costs more
//!    than [`OVERHEAD_GATE_PCT`] on either workload's best-of-N.
//! 2. **Chaos trace** — a mini kill-and-respawn fan-in with recording
//!    armed, exported through the Chrome `trace_event` renderer. The
//!    document must be valid JSON and must contain at least one
//!    kill → respawn → resync recovery span.
//!
//! ```text
//! rt_obs [--quick] [--check] [--label STR] [--out PATH] [--trace PATH]
//! ```
//!
//! * `--quick`  lighter loads, fewer repetitions (CI smoke).
//! * `--check`  gate mode: suppress the JSON document, exit non-zero on
//!   an overhead or trace violation.
//! * `--out`    write `BENCH_obs.json` to PATH (default: stdout).
//! * `--trace`  also write the full Perfetto trace document to PATH.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use mproxy_bench::rt::{fan_in_cfg, ping_pong_cfg};
use mproxy_obs::{chrome, json, Snapshot};
use mproxy_rt::{FlagId, RqId, RtClusterBuilder, RtFaultPlan};

/// Maximum tolerated throughput cost of armed telemetry, percent.
const OVERHEAD_GATE_PCT: f64 = 5.0;
/// Give-up bound for the chaos scenario's waits.
const WAIT: Duration = Duration::from_secs(120);

struct Args {
    quick: bool,
    check: bool,
    label: String,
    out: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        check: false,
        label: "current".to_string(),
        out: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--label" => args.label = value("--label")?,
            "--out" => args.out = Some(value("--out")?),
            "--trace" => args.trace = Some(value("--trace")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// One workload's A/B verdict (throughputs are best-of-N).
struct Overhead {
    name: &'static str,
    off_per_sec: f64,
    on_per_sec: f64,
}

impl Overhead {
    /// Positive when armed telemetry is slower.
    fn pct(&self) -> f64 {
        if self.off_per_sec <= 0.0 {
            return 0.0;
        }
        (self.off_per_sec - self.on_per_sec) / self.off_per_sec * 100.0
    }
}

/// Best-of-`reps` A/B: one discarded warm-up, then rep pairs whose
/// off/on order alternates so host drift and scheduler position bias hit
/// both sides equally. Best-of (not mean) is the right statistic here —
/// the fastest run is the one with the least outside interference, and
/// on a small host (CI is often one core) interference dwarfs the effect
/// being measured.
fn best_ab(name: &'static str, reps: usize, run: impl Fn(bool) -> f64) -> Overhead {
    let _ = run(false);
    let (mut off, mut on) = (0.0f64, 0.0f64);
    for r in 0..reps {
        if r % 2 == 0 {
            off = off.max(run(false));
            on = on.max(run(true));
        } else {
            on = on.max(run(true));
            off = off.max(run(false));
        }
    }
    Overhead {
        name,
        off_per_sec: off,
        on_per_sec: on,
    }
}

/// Mini chaos run with recording armed: two senders enqueue
/// lsync-acknowledged ops at a sink whose proxy is killed and respawned
/// mid-stream. Returns the Perfetto trace document and the post-shutdown
/// telemetry snapshot.
fn chaos_trace(per_sender: u64) -> (String, Snapshot) {
    const SENDERS: usize = 2;
    let mut b = RtClusterBuilder::new(SENDERS + 1);
    b.telemetry(true);
    let sink_asid = b.add_process(0, 1 << 16);
    let src_asids: Vec<u32> = (1..=SENDERS).map(|n| b.add_process(n, 1 << 16)).collect();
    b.fault_plan(RtFaultPlan::new(7).kill(0, per_sender / 2));
    b.supervise(3, Duration::from_millis(1));
    let (cluster, mut eps) = b.start();
    let src_eps = eps.split_off(1);
    drop(eps.pop());

    let handles: Vec<_> = src_eps
        .into_iter()
        .zip(src_asids)
        .map(|(mut e, asid)| {
            std::thread::spawn(move || {
                for i in 1..=per_sender {
                    e.seg().write_u64(0, (u64::from(asid) << 32) | i);
                    e.enq(0, sink_asid, RqId(0), 8, Some(FlagId(0)), None);
                    e.wait_flag_timeout(FlagId(0), i, WAIT).expect("ack wait");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("sender thread");
    }
    let hub = cluster.obs_handle();
    cluster.shutdown();
    let trace = chrome::chrome_trace(&hub.trace_dump());
    let snap = hub.snapshot("obs_chaos");
    (trace, snap)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rt_obs: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (fan_msgs, pp_rounds, reps, chaos_per_sender) = if args.quick {
        (3_000, 2_000, 4, 60)
    } else {
        (10_000, 5_000, 6, 120)
    };
    let mode = if args.quick { "quick" } else { "full" };

    let fan = |telemetry: bool| fan_in_cfg(false, 4, fan_msgs, telemetry).msgs_per_sec;
    let pp =
        |telemetry: bool| pp_rounds as f64 / ping_pong_cfg(false, pp_rounds, telemetry).wall_s;
    let mut workloads = [
        best_ab("fan_in", reps, fan),
        best_ab("ping_pong", reps, pp),
    ];
    // Rescue round: a workload over the gate gets one more set of reps
    // merged in before the verdict — still best-of, just more samples
    // where it matters, so one noisy burst on a shared host can't fail
    // the gate on its own.
    for w in &mut workloads {
        if w.pct() <= OVERHEAD_GATE_PCT {
            continue;
        }
        let retry = match w.name {
            "fan_in" => best_ab(w.name, reps, fan),
            _ => best_ab(w.name, reps, pp),
        };
        w.off_per_sec = w.off_per_sec.max(retry.off_per_sec);
        w.on_per_sec = w.on_per_sec.max(retry.on_per_sec);
    }
    for w in &workloads {
        eprintln!(
            "rt_obs: {:<10} off {:>12.0}/s  on {:>12.0}/s  overhead {:+.2}%",
            w.name,
            w.off_per_sec,
            w.on_per_sec,
            w.pct()
        );
    }

    let (trace, snap) = chaos_trace(chaos_per_sender);
    let trace_valid = json::validate(&trace).is_ok();
    let recovery = chrome::has_recovery_span(&trace);
    let trace_events = trace.matches("\"ph\":").count();
    eprintln!(
        "rt_obs: chaos trace {} bytes, {trace_events} events, valid_json={trace_valid}, \
         recovery_span={recovery}",
        trace.len()
    );
    if let Some(path) = &args.trace {
        if let Err(e) = std::fs::write(path, &trace) {
            eprintln!("rt_obs: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("rt_obs: wrote {path}");
    }

    if !args.check {
        let mut doc = format!("{{\n{}", mproxy_bench::reports::bench_header_json(None));
        let _ = writeln!(doc, "  \"label\": \"{}\",", args.label);
        let _ = writeln!(doc, "  \"mode\": \"{mode}\",");
        let _ = writeln!(doc, "  \"overhead_gate_pct\": {OVERHEAD_GATE_PCT},");
        let _ = writeln!(doc, "  \"workloads\": [");
        for (i, w) in workloads.iter().enumerate() {
            let sep = if i + 1 < workloads.len() { "," } else { "" };
            let _ = writeln!(
                doc,
                "    {{ \"name\": \"{}\", \"off_per_sec\": {:.1}, \"on_per_sec\": {:.1}, \
                 \"overhead_pct\": {:.3} }}{sep}",
                w.name,
                w.off_per_sec,
                w.on_per_sec,
                w.pct()
            );
        }
        let _ = writeln!(doc, "  ],");
        let _ = writeln!(
            doc,
            "  \"chaos_trace\": {{ \"valid_json\": {trace_valid}, \"recovery_span\": \
             {recovery}, \"events\": {trace_events}, \"bytes\": {} }},",
            trace.len()
        );
        let _ = writeln!(doc, "  \"snapshot\": {}", snap.to_json());
        doc.push_str("}\n");
        match &args.out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &doc) {
                    eprintln!("rt_obs: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("rt_obs: wrote {path}");
            }
            None => print!("{doc}"),
        }
    }

    let mut failed = false;
    for w in &workloads {
        if w.pct() > OVERHEAD_GATE_PCT {
            eprintln!(
                "rt_obs: GATE FAILURE: {} telemetry overhead {:.2}% > {OVERHEAD_GATE_PCT}%",
                w.name,
                w.pct()
            );
            failed = true;
        }
    }
    if !trace_valid {
        eprintln!("rt_obs: GATE FAILURE: chaos trace is not valid JSON");
        failed = true;
    }
    if !recovery {
        eprintln!("rt_obs: GATE FAILURE: chaos trace has no kill→respawn→resync span");
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
