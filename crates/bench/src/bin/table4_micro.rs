//! Regenerates Table 4: micro-benchmark measurements of raw machine
//! performance for the six design points, next to the paper's values.

use mproxy_am::micro::am_roundtrip_us;
use mproxy_bench::row;
use mproxy_model::{paper_table4, ALL_DESIGN_POINTS};

fn main() {
    println!("Table 4 (simulated | paper). Latencies in us, bandwidth in MB/s.\n");
    let header: Vec<String> = ALL_DESIGN_POINTS
        .iter()
        .map(|d| d.name.to_string())
        .collect();
    println!("{:<12} {:>17}", "", header.join("            "));
    let mut sims = Vec::new();
    for d in ALL_DESIGN_POINTS {
        let m = mproxy::micro::run_micro(d);
        let am = am_roundtrip_us(d, 16);
        sims.push((m, am));
    }
    let paper: Vec<_> = ALL_DESIGN_POINTS
        .iter()
        .map(|d| paper_table4(d.name).expect("paper row"))
        .collect();
    let print_row = |name: &str, sim: &dyn Fn(usize) -> f64, pap: &dyn Fn(usize) -> f64| {
        let cells: Vec<f64> = (0..6).flat_map(|i| [sim(i), pap(i)]).collect();
        println!("{}", row(name, &cells));
    };
    println!("{:<12} {}", "", "   sim    paper".repeat(6));
    print_row("PUT latency*", &|i| sims[i].0.put_rt_us, &|i| {
        paper[i].put_rt_us
    });
    print_row("GET latency", &|i| sims[i].0.get_us, &|i| paper[i].get_us);
    print_row("PUT+sync ovh", &|i| sims[i].0.overhead_us, &|i| {
        paper[i].overhead_us
    });
    print_row("AM latency*", &|i| sims[i].1, &|i| paper[i].am_rt_us);
    print_row("Peak BW", &|i| sims[i].0.peak_bw_mbs, &|i| {
        paper[i].peak_bw_mbs
    });
    println!("\n* round-trip");
}
