//! Regenerates Figure 7: ping-pong latency and bandwidth versus message
//! size, for PUT transfers and active-message bulk stores, at all six
//! design points. Output is a tidy table (size, point, latency, BW) —
//! ready for a log-log plot.

use mproxy::micro::pingpong_put;
use mproxy_am::micro::pingpong_am_store;
use mproxy_model::ALL_DESIGN_POINTS;

const SIZES: [u32; 8] = [8, 32, 128, 512, 2048, 8192, 65536, 262144];

fn main() {
    let reps = 4;
    println!("# Figure 7: PUT ping-pong");
    println!(
        "{:<8} {:>9} {:>13} {:>15}",
        "point", "bytes", "latency_us", "bandwidth_MB/s"
    );
    for d in ALL_DESIGN_POINTS {
        for pt in pingpong_put(d, &SIZES, reps) {
            println!(
                "{:<8} {:>9} {:>13.2} {:>15.2}",
                d.name, pt.bytes, pt.latency_us, pt.bandwidth_mbs
            );
        }
    }
    println!("\n# Figure 7: AM store ping-pong");
    println!(
        "{:<8} {:>9} {:>13} {:>15}",
        "point", "bytes", "latency_us", "bandwidth_MB/s"
    );
    for d in ALL_DESIGN_POINTS {
        for pt in pingpong_am_store(d, &SIZES, reps) {
            println!(
                "{:<8} {:>9} {:>13.2} {:>15.2}",
                d.name, pt.bytes, pt.latency_us, pt.bandwidth_mbs
            );
        }
    }
}
