//! Regenerates Figure 7: ping-pong latency and bandwidth versus message
//! size, for PUT transfers and active-message bulk stores, at all six
//! design points. Output is a tidy table (size, point, latency, BW) —
//! ready for a log-log plot.
//!
//! Thin wrapper over [`mproxy_bench::reports::fig7_report`] so tests
//! and the parallel sweep driver reproduce the same bytes.

fn main() {
    print!("{}", mproxy_bench::reports::fig7_report());
}
