//! # mproxy-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table2_trace` | Tables 1–2: primitives and the GET/PUT critical path |
//! | `table3_design_points` | Table 3: the six design-point parameter sets |
//! | `table4_micro` | Table 4: micro-benchmarks vs the paper's values |
//! | `fig7_pingpong` | Figure 7: latency/bandwidth vs message size |
//! | `fig8_speedups` | Figure 8: application speedups, 1–16 processors |
//! | `table6_traffic` | Table 6: message sizes, rates, interface utilisation |
//! | `fig9_contention` | Figure 9: 4 nodes × 4 compute processors |
//! | `sec54_contention` | §5.4: proxy-contention queueing analysis |
//!
//! Criterion benches (`cargo bench`) measure the *real* threaded runtime
//! (`runtime_latency`) and the simulator's own execution speed
//! (`sim_micro`).

pub mod chaos;
pub mod overload;
pub mod reports;
pub mod rt;
pub mod sweep;

/// Formats one results row: name then aligned float columns.
#[must_use]
pub fn row(name: &str, values: &[f64]) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{name:<12}");
    for v in values {
        let _ = if *v >= 100.0 {
            write!(s, " {v:>8.1}")
        } else {
            write!(s, " {v:>8.2}")
        };
    }
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn row_formats_aligned() {
        let s = super::row("GET", &[9.5, 150.0]);
        assert!(s.starts_with("GET"));
        assert!(s.contains("9.50"));
        assert!(s.contains("150.0"));
    }
}
