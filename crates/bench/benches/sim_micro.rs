//! Wall-clock benches of the simulator itself: how fast the
//! discrete-event engine replays the paper's micro-benchmarks and a small
//! application. Useful as a regression guard on engine overhead.
//!
//! Plain `harness = false` timing loops (no external bench framework, so
//! the workspace builds offline).

use mproxy_apps::{run_app_flat, AppId, AppSize};
use mproxy_model::{MP1, SW1};

fn bench<T, F: FnMut() -> T>(name: &str, iters: u32, mut op: F) {
    op(); // warmup
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(op());
    }
    let us = t0.elapsed().as_micros() as f64 / f64::from(iters);
    println!("{name:<24} {us:>12.1} us/run  ({iters} iters)");
}

fn main() {
    bench("sim_table4_mp1", 10, || mproxy::micro::run_micro(MP1));
    bench("sim_sample_tiny_mp1", 10, || {
        run_app_flat(AppId::Sample, MP1, 4, AppSize::Tiny)
    });
    bench("sim_wator_tiny_sw1", 10, || {
        run_app_flat(AppId::Wator, SW1, 4, AppSize::Tiny)
    });
}
