//! Criterion benches of the simulator itself: how fast the
//! discrete-event engine replays the paper's micro-benchmarks and a small
//! application. Useful as a regression guard on engine overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use mproxy_apps::{run_app_flat, AppId, AppSize};
use mproxy_model::{MP1, SW1};

fn sim_micro(c: &mut Criterion) {
    c.bench_function("sim_table4_mp1", |b| {
        b.iter(|| std::hint::black_box(mproxy::micro::run_micro(MP1)));
    });
    c.bench_function("sim_sample_tiny_mp1", |b| {
        b.iter(|| std::hint::black_box(run_app_flat(AppId::Sample, MP1, 4, AppSize::Tiny)));
    });
    c.bench_function("sim_wator_tiny_sw1", |b| {
        b.iter(|| std::hint::black_box(run_app_flat(AppId::Wator, SW1, 4, AppSize::Tiny)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    targets = sim_micro
}
criterion_main!(benches);
