//! Wall-clock benches of the *real* threaded message-proxy runtime: PUT
//! round-trip latency, GET latency and ENQ throughput through an actual
//! dedicated polling proxy. (On a single-core host the proxy shares the
//! CPU with the benchmark thread, so absolute numbers are dominated by
//! scheduling; on a multicore host they approach queue + wire costs.)
//!
//! Plain `harness = false` timing loops (no external bench framework, so
//! the workspace builds offline): each case runs a warmup then reports
//! mean ns/op over a fixed iteration count.

use mproxy_rt::{FlagId, RqId, RtClusterBuilder};

const WARMUP: u64 = 2_000;
const ITERS: u64 = 20_000;

fn report(name: &str, total: std::time::Duration, iters: u64) {
    let ns = total.as_nanos() as f64 / iters as f64;
    println!("{name:<24} {ns:>12.1} ns/op   ({iters} iters)");
}

fn bench<F: FnMut()>(name: &str, mut op: F) {
    for _ in 0..WARMUP {
        op();
    }
    let t0 = std::time::Instant::now();
    for _ in 0..ITERS {
        op();
    }
    report(name, t0.elapsed(), ITERS);
}

fn put_roundtrip() {
    let mut b = RtClusterBuilder::new(2);
    let _p0 = b.add_process(0, 1 << 16);
    let p1 = b.add_process(1, 1 << 16);
    let (cluster, mut eps) = b.start();
    let _e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    e0.seg().write_u64(0, 7);
    let mut target = 0u64;
    bench("rt_put_acked_8B", || {
        target += 1;
        e0.put(0, p1, 64, 8, Some(FlagId(0)), None);
        e0.wait_flag(FlagId(0), target);
    });
    drop(e0);
    cluster.shutdown();
}

fn get_latency() {
    let mut b = RtClusterBuilder::new(2);
    let _p0 = b.add_process(0, 1 << 16);
    let p1 = b.add_process(1, 1 << 16);
    let (cluster, mut eps) = b.start();
    let e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    e1.seg().write_u64(256, 99);
    bench("rt_get_8B", || {
        e0.get_blocking(0, p1, 256, 8);
    });
    drop((e0, e1));
    cluster.shutdown();
}

fn enq_deq() {
    let mut b = RtClusterBuilder::new(1);
    let _p0 = b.add_process(0, 1 << 16);
    let p1 = b.add_process(0, 1 << 16);
    let (cluster, mut eps) = b.start();
    let e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    e0.seg().write_u64(0, 5);
    let mut target = 0u64;
    bench("rt_enq_deq_16B", || {
        target += 1;
        e0.enq(0, p1, RqId(0), 16, Some(FlagId(1)), None);
        e0.wait_flag(FlagId(1), target);
        while e1.rq_try_recv(RqId(0)).is_none() {
            std::hint::spin_loop();
        }
    });
    drop((e0, e1));
    cluster.shutdown();
}

fn main() {
    put_roundtrip();
    get_latency();
    enq_deq();
}
