//! Criterion benches of the *real* threaded message-proxy runtime: PUT
//! round-trip latency, GET latency and ENQ throughput through an actual
//! dedicated polling proxy. (On a single-core host the proxy shares the
//! CPU with the benchmark thread, so absolute numbers are dominated by
//! scheduling; on a multicore host they approach queue + wire costs.)

use criterion::{criterion_group, criterion_main, Criterion};
use mproxy_rt::{FlagId, RqId, RtClusterBuilder};

fn put_roundtrip(c: &mut Criterion) {
    let mut b = RtClusterBuilder::new(2);
    let _p0 = b.add_process(0, 1 << 16);
    let p1 = b.add_process(1, 1 << 16);
    let (cluster, mut eps) = b.start();
    let _e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    e0.seg().write_u64(0, 7);
    let mut target = 0u64;
    c.bench_function("rt_put_acked_8B", |bench| {
        bench.iter(|| {
            target += 1;
            e0.put(0, p1, 64, 8, Some(FlagId(0)), None);
            e0.wait_flag(FlagId(0), target);
        });
    });
    drop(e0);
    cluster.shutdown();
}

fn get_latency(c: &mut Criterion) {
    let mut b = RtClusterBuilder::new(2);
    let _p0 = b.add_process(0, 1 << 16);
    let p1 = b.add_process(1, 1 << 16);
    let (cluster, mut eps) = b.start();
    let e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    e1.seg().write_u64(256, 99);
    c.bench_function("rt_get_8B", |bench| {
        bench.iter(|| {
            e0.get_blocking(0, p1, 256, 8);
        });
    });
    drop((e0, e1));
    cluster.shutdown();
}

fn enq_deq(c: &mut Criterion) {
    let mut b = RtClusterBuilder::new(1);
    let _p0 = b.add_process(0, 1 << 16);
    let p1 = b.add_process(0, 1 << 16);
    let (cluster, mut eps) = b.start();
    let e1 = eps.pop().unwrap();
    let mut e0 = eps.pop().unwrap();
    e0.seg().write_u64(0, 5);
    let mut target = 0u64;
    c.bench_function("rt_enq_deq_16B", |bench| {
        bench.iter(|| {
            target += 1;
            e0.enq(0, p1, RqId(0), 16, Some(FlagId(1)), None);
            e0.wait_flag(FlagId(1), target);
            while e1.rq_try_recv(RqId(0)).is_none() {
                std::hint::spin_loop();
            }
        });
    });
    drop((e0, e1));
    cluster.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = put_roundtrip, get_latency, enq_deq
}
criterion_main!(benches);
