//! Diagnostic scanner for the crash-recovery protocol.
//!
//! Three modes:
//!
//! * `crash_scan pp` — sweeps the crash instant across the verified
//!   ping-pong, printing outcome/recovery counters per instant. Clean
//!   instants recover 64/64 with one resync; instants that catch an
//!   un-ACKed PUT fail-stop with `EpochReset`.
//! * `crash_scan app` — the same sweep over the Sample application,
//!   checking the checksum against a crash-free run.
//! * `crash_scan soak <case>` — replays one case of the randomized
//!   `crash_plus_fault_matrix_soak` integration test standalone (same
//!   SplitMix64 derivation), for bisecting a failing case under a
//!   timeout. This is how the `stall_gate` tick-rounding livelock was
//!   isolated.

use mproxy::micro::pingpong_verified;
use mproxy_apps::{run_app_flat, run_app_flat_faulty, AppId, AppSize};
use mproxy_bench::reports::sweep_plan;
use mproxy_model::MP1;

/// Copy of the mproxy-tests SplitMix64 draw helpers (that crate is not a
/// dependency here) so soak cases reproduce bit-exactly.
struct Rng {
    state: u64,
}
impl Rng {
    fn new(seed: u64) -> Rng {
        Rng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
    }
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "pp".into());
    if which == "soak" {
        let case: u64 = std::env::args().nth(2).unwrap().parse().unwrap();
        let mut rng = Rng::new(0xc4a5_0000 + case);
        let node = usize::from(case.is_multiple_of(2));
        let at = rng.f64_range(30.0, 450.0);
        let downtime = rng.f64_range(120.0, 400.0);
        let plan = mproxy::FaultPlan::new(rng.next_u64())
            .drop(rng.f64_range(0.0, 0.06))
            .duplicate(rng.f64_range(0.0, 0.03))
            .reorder(rng.f64_range(0.0, 0.06), rng.f64_range(5.0, 40.0))
            .corrupt(rng.f64_range(0.0, 0.03))
            .crash(node, at, downtime);
        eprintln!("case {case}: node {node} at {at:.1} down {downtime:.1}");
        let r = pingpong_verified(MP1, 64, 64, Some(plan));
        println!("case {case}: rounds={} ok={} err={:?}", r.rounds, r.data_ok, r.error);
        return;
    }
    if which == "pp" {
        for t in (40..400).step_by(4) {
            let plan = sweep_plan(0.01).crash(1, f64::from(t), 250.0);
            let r = pingpong_verified(MP1, 64, 64, Some(plan));
            let resyncs = r.report.link.epoch_resyncs;
            println!(
                "t={t} rounds={} ok={} err={:?} resyncs={resyncs} replayed={} hellos={} epochs={:?}",
                r.rounds, r.data_ok, r.error, r.report.link.replayed, r.report.link.hellos_sent, r.epochs
            );
        }
    } else {
        let base = run_app_flat(AppId::Sample, MP1, 2, AppSize::Tiny);
        println!("base elapsed={} checksum={}", base.elapsed_us, base.checksum);
        for t in (100..3000).step_by(50) {
            let plan = sweep_plan(0.01).crash(1, f64::from(t), 250.0);
            let r = run_app_flat_faulty(AppId::Sample, MP1, 2, AppSize::Tiny, plan);
            println!(
                "t={t} elapsed={:.1} ok={} resyncs={} replayed={} unreach={}",
                r.elapsed_us,
                r.checksum == base.checksum,
                r.faults.link.epoch_resyncs,
                r.faults.link.replayed,
                r.faults.link.unreachable
            );
        }
    }
}
