//! # mproxy — message proxies for efficient, protected communication on SMP clusters
//!
//! A reproduction of Lim, Heidelberger, Pattnaik & Snir (HPCA 1997). The
//! *message proxy* is a trusted communication process pinned to one
//! processor of an SMP node; it polls per-user shared-memory command
//! queues and the network input FIFO, giving mutually-untrusting user
//! processes atomic, protected, lock-free, interrupt-free access to a
//! shared network interface using only commodity parts.
//!
//! This crate provides:
//!
//! * the Section 3 communication model — [`Proc::put`], [`Proc::get`],
//!   [`Proc::enq`], [`Proc::deq`] with `asid` protection and lsync/rsync
//!   completion flags;
//! * three interchangeable protected-communication engines (Section 2):
//!   message proxy, custom hardware, and system-call, selected by the
//!   [`mproxy_model::DesignPoint`] in the [`ClusterSpec`];
//! * a cluster fabric ([`Cluster`]) running on the `mproxy-des`
//!   simulated-time executor over `mproxy-simnet` hardware;
//! * micro-benchmarks ([`micro`]) reproducing Table 4 and Figure 7.
//!
//! # Examples
//!
//! Two SMP nodes, one compute processor each, message-proxy protection:
//!
//! ```
//! use mproxy::{Asid, Cluster, ClusterSpec, ProcId};
//! use mproxy_des::Simulation;
//! use mproxy_model::MP1;
//!
//! let sim = Simulation::new();
//! let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 2, 1)).unwrap();
//! cluster.spawn_spmd(|p| async move {
//!     let buf = p.alloc(8);
//!     let flag = p.new_flag();
//!     // Let every rank allocate before anyone communicates.
//!     p.ctx().yield_now().await;
//!     if p.rank() == ProcId(0) {
//!         p.write_u64(buf, 7);
//!         // PUT our word into rank 1's space and wait for the ack.
//!         p.put(buf, Asid(1), buf, 8, Some(&flag), None).await.unwrap();
//!         p.wait_flag(&flag, 1).await;
//!     }
//! });
//! let report = cluster.run(&sim);
//! assert!(report.completed_cleanly());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cluster;
mod engine;
mod error;
mod fxhash;
mod flags;
mod mem;
pub mod micro;
mod process;
mod retry;

pub use addr::{Addr, Asid, FlagId, ProcId, RemoteFlag, RemoteQueue, RqId};
pub use cluster::{Cluster, ClusterSpec, FaultReport, ProcStats, TrafficReport};
pub use engine::reliable::{LinkSnapshot, LinkStats};
pub use error::CommError;
pub use flags::SyncFlag;
pub use mem::{Memory, CACHE_LINE_BYTES};
pub use process::Proc;
pub use retry::RetryPolicy;

// Convenience re-exports so fault-injection users need only this crate.
pub use mproxy_simnet::{CrashWindow, FaultCounts, FaultPlan, StallWindow};
