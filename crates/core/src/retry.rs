//! Shared retry/backoff policies.
//!
//! Two places in the stack re-probe or re-send after a delay: DEQ
//! operations that found a remote queue empty, and the reliable link
//! layer's retransmission timers. Both draw their schedule from one
//! [`RetryPolicy`], configured per cluster in
//! [`crate::ClusterSpec::deq_retry`] and [`crate::ClusterSpec::xmit_retry`].

/// An exponential-backoff schedule with optional attempt bound.
///
/// Attempt `n` (0-based) waits `initial_us * multiplier^n`, capped at
/// `cap_us`. With `max_attempts = Some(m)`, the operation gives up once
/// `m` attempts have been made; `None` retries forever.
///
/// # Examples
///
/// ```
/// use mproxy::RetryPolicy;
///
/// let p = RetryPolicy::backoff(50.0, 2.0, 800.0, Some(8));
/// assert_eq!(p.delay_us(0), 50.0);
/// assert_eq!(p.delay_us(3), 400.0);
/// assert_eq!(p.delay_us(6), 800.0); // capped
/// assert!(!p.give_up_after(7));
/// assert!(p.give_up_after(8));
///
/// let fixed = RetryPolicy::fixed(10.0);
/// assert_eq!(fixed.delay_us(100), 10.0);
/// assert!(!fixed.give_up_after(1_000_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry, µs.
    pub initial_us: f64,
    /// Growth factor per attempt (1.0 = fixed interval).
    pub multiplier: f64,
    /// Upper bound on any single delay, µs.
    pub cap_us: f64,
    /// Total attempts allowed (`None` = unbounded).
    pub max_attempts: Option<u32>,
}

impl RetryPolicy {
    /// A fixed-interval, unbounded policy (every retry waits `us`).
    ///
    /// # Panics
    ///
    /// Panics if `us` is non-positive or non-finite.
    #[must_use]
    pub fn fixed(us: f64) -> RetryPolicy {
        RetryPolicy::backoff(us, 1.0, us, None)
    }

    /// An exponential policy: `initial_us`, growing by `multiplier`,
    /// capped at `cap_us`, giving up after `max_attempts` attempts.
    ///
    /// # Panics
    ///
    /// Panics on non-positive/non-finite delays, `multiplier < 1`, or
    /// `max_attempts == Some(0)`.
    #[must_use]
    pub fn backoff(
        initial_us: f64,
        multiplier: f64,
        cap_us: f64,
        max_attempts: Option<u32>,
    ) -> RetryPolicy {
        assert!(
            initial_us.is_finite() && initial_us > 0.0,
            "initial delay must be finite and > 0"
        );
        assert!(
            multiplier.is_finite() && multiplier >= 1.0,
            "multiplier must be finite and >= 1"
        );
        assert!(
            cap_us.is_finite() && cap_us >= initial_us,
            "cap must be finite and >= initial"
        );
        assert!(max_attempts != Some(0), "max_attempts must be > 0");
        RetryPolicy {
            initial_us,
            multiplier,
            cap_us,
            max_attempts,
        }
    }

    /// The default DEQ re-probe schedule: the 10 µs fixed interval the
    /// engines have always used, unbounded (DEQ blocks until data).
    #[must_use]
    pub fn deq_default() -> RetryPolicy {
        RetryPolicy::fixed(10.0)
    }

    /// The default retransmission schedule of the reliable link layer:
    /// 50 µs doubling to a 1.6 ms cap, at most 12 transmissions before the
    /// destination is declared unreachable.
    ///
    /// ACKs come back only once the receiving engine dequeues the packet,
    /// so under bursty load the first transmissions routinely "fail" and
    /// are re-sent (harmless: duplicates are discarded). The budget's total
    /// horizon (~12.8 ms) is therefore sized well past any worst-case
    /// receiver service time, so only a genuinely dead or stalled node
    /// exhausts it.
    #[must_use]
    pub fn xmit_default() -> RetryPolicy {
        RetryPolicy::backoff(50.0, 2.0, 1600.0, Some(12))
    }

    /// Delay before retry number `attempt` (0-based), µs.
    #[must_use]
    pub fn delay_us(&self, attempt: u32) -> f64 {
        let d = self.initial_us * self.multiplier.powi(attempt.min(1_000) as i32);
        d.min(self.cap_us)
    }

    /// True once `attempts_made` attempts exhaust the budget.
    #[must_use]
    pub fn give_up_after(&self, attempts_made: u32) -> bool {
        self.max_attempts.is_some_and(|m| attempts_made >= m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_never_escalates_or_gives_up() {
        let p = RetryPolicy::fixed(10.0);
        for a in [0, 1, 7, 500] {
            assert_eq!(p.delay_us(a), 10.0);
        }
        assert!(!p.give_up_after(u32::MAX));
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy::backoff(50.0, 2.0, 800.0, Some(8));
        let delays: Vec<f64> = (0..6).map(|a| p.delay_us(a)).collect();
        assert_eq!(delays, vec![50.0, 100.0, 200.0, 400.0, 800.0, 800.0]);
        assert!(!p.give_up_after(0));
        assert!(p.give_up_after(9));
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow_to_infinity() {
        let p = RetryPolicy::backoff(1.0, 2.0, 100.0, None);
        assert_eq!(p.delay_us(u32::MAX), 100.0);
    }

    #[test]
    #[should_panic(expected = "max_attempts")]
    fn zero_attempt_budget_rejected() {
        let _ = RetryPolicy::backoff(1.0, 2.0, 2.0, Some(0));
    }
}
