//! The user-process API: RMA (PUT/GET) and RQ (ENQ/DEQ) primitives.
//!
//! A [`Proc`] is a handle held by the application code of one simulated
//! user process. Its communication methods implement the Section 3 model:
//!
//! ```text
//! PUT(laddr, raddr, asid, nbytes, lsync, rsync)
//! GET(laddr, raddr, asid, nbytes, lsync, rsync)
//! ENQ(laddr, rq, asid, nbytes, lsync, rsync)
//! DEQ(laddr, rq, asid, nbytes, lsync)
//! ```
//!
//! All four are asynchronous: the call returns once the command is
//! *submitted* (charging only the submission overhead — three cache misses
//! under a message proxy) and completion is observed through
//! synchronisation flags, letting programs overlap communication with
//! computation.

use std::rc::Rc;

use bytes::Bytes;
use mproxy_des::{Dur, SimCtx, SimTime};
use mproxy_model::Arch;

use crate::addr::{Addr, Asid, FlagId, ProcId, RemoteQueue, RqId};
use crate::cluster::{ClusterState, ProcState};
use crate::engine::{self, flag_counter, lines, queue_channel, Command, ProxyInput};
use crate::error::CommError;
use crate::flags::SyncFlag;
use crate::mem::Memory;

/// A handle to one simulated user process.
///
/// Cheap to clone; all clones refer to the same process.
#[derive(Clone)]
pub struct Proc {
    cs: Rc<ClusterState>,
    id: ProcId,
}

impl Proc {
    pub(crate) fn new(cs: Rc<ClusterState>, id: ProcId) -> Proc {
        Proc { cs, id }
    }

    fn state(&self) -> &Rc<ProcState> {
        self.cs.proc(self.id)
    }

    /// This process's global rank.
    #[must_use]
    pub fn rank(&self) -> ProcId {
        self.id
    }

    /// This process's address-space id.
    #[must_use]
    pub fn asid(&self) -> Asid {
        Asid::from(self.id)
    }

    /// The SMP node this process runs on.
    #[must_use]
    pub fn node(&self) -> usize {
        self.state().node
    }

    /// Total processes in the cluster.
    #[must_use]
    pub fn nprocs(&self) -> usize {
        self.cs.procs.len()
    }

    /// The simulation context (clock, spawning).
    #[must_use]
    pub fn ctx(&self) -> &SimCtx {
        &self.cs.ctx
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.cs.ctx.now()
    }

    /// The design point this cluster runs at.
    #[must_use]
    pub fn design(&self) -> mproxy_model::DesignPoint {
        *self.cs.design()
    }

    /// Nanoseconds of compute per work unit (see `ClusterSpec`).
    #[must_use]
    pub fn work_unit_ns(&self) -> u64 {
        self.cs.spec.work_unit_ns
    }

    // ----- memory -------------------------------------------------------

    /// Allocates `nbytes` in this process's address space.
    #[must_use]
    pub fn alloc(&self, nbytes: u64) -> Addr {
        self.state().mem.borrow_mut().alloc(nbytes)
    }

    /// Runs `f` with shared access to this process's memory.
    pub fn with_mem<R>(&self, f: impl FnOnce(&Memory) -> R) -> R {
        f(&self.state().mem.borrow())
    }

    /// Runs `f` with exclusive access to this process's memory.
    pub fn with_mem_mut<R>(&self, f: impl FnOnce(&mut Memory) -> R) -> R {
        f(&mut self.state().mem.borrow_mut())
    }

    /// Reads a `u64` from local memory.
    #[must_use]
    pub fn read_u64(&self, addr: Addr) -> u64 {
        self.state().mem.borrow().read_u64(addr)
    }

    /// Writes a `u64` to local memory.
    pub fn write_u64(&self, addr: Addr, v: u64) {
        self.state().mem.borrow_mut().write_u64(addr, v);
    }

    /// Reads an `f64` from local memory.
    #[must_use]
    pub fn read_f64(&self, addr: Addr) -> f64 {
        self.state().mem.borrow().read_f64(addr)
    }

    /// Writes an `f64` to local memory.
    pub fn write_f64(&self, addr: Addr, v: f64) {
        self.state().mem.borrow_mut().write_f64(addr, v);
    }

    /// Reads raw bytes from local memory.
    #[must_use]
    pub fn read_bytes(&self, addr: Addr, nbytes: u32) -> Bytes {
        self.state().mem.borrow().read(addr, nbytes)
    }

    /// Writes raw bytes to local memory.
    pub fn write_bytes(&self, addr: Addr, data: &[u8]) {
        self.state().mem.borrow_mut().write(addr, data);
    }

    /// Reads consecutive `f64`s from local memory.
    #[must_use]
    pub fn read_f64_slice(&self, addr: Addr, count: usize) -> Vec<f64> {
        self.state().mem.borrow().read_f64_slice(addr, count)
    }

    /// Writes consecutive `f64`s to local memory.
    pub fn write_f64_slice(&self, addr: Addr, values: &[f64]) {
        self.state().mem.borrow_mut().write_f64_slice(addr, values);
    }

    // ----- flags and queues ----------------------------------------------

    /// Allocates the next flag slot. Allocation order is deterministic, so
    /// SPMD peers allocating flags in lockstep can refer to each other's
    /// slots by index.
    #[must_use]
    pub fn new_flag(&self) -> SyncFlag {
        let ps = self.state();
        let id = FlagId(ps.next_flag.get());
        ps.next_flag.set(id.0 + 1);
        SyncFlag {
            proc: self.id,
            id,
            counter: flag_counter(ps, id),
        }
    }

    /// A reference to flag slot `id` of process `proc` (for `rsync`).
    #[must_use]
    pub fn remote_flag(&self, proc: ProcId, id: FlagId) -> crate::addr::RemoteFlag {
        crate::addr::RemoteFlag { proc, flag: id }
    }

    /// Allocates the next remote-queue slot (deterministic order, like
    /// flags).
    #[must_use]
    pub fn new_queue(&self) -> RqId {
        let ps = self.state();
        let id = RqId(ps.next_queue.get());
        ps.next_queue.set(id.0 + 1);
        let _ = queue_channel(ps, id);
        id
    }

    /// Waits until `flag` reaches `target`, then charges the cost of the
    /// completing read of the flag line.
    ///
    /// # Panics
    ///
    /// Panics with the failure message if the process was failed by the
    /// communication layer while waiting (e.g. destination unreachable
    /// under fault injection); use [`Proc::wait_flag_result`] to observe
    /// the failure as an error instead.
    pub async fn wait_flag(&self, flag: &SyncFlag, target: u64) {
        if let Err(e) = self.wait_flag_result(flag, target).await {
            panic!("wait_flag on rank {}: {e}", self.id);
        }
    }

    /// Like [`Proc::wait_flag`], but surfaces communication failures: if
    /// the process is poisoned (its operation's destination became
    /// unreachable, or a bounded retry schedule ran out) while waiting,
    /// returns the recorded [`CommError`] instead of blocking forever.
    ///
    /// # Errors
    ///
    /// The first [`CommError`] recorded against this process.
    pub async fn wait_flag_result(&self, flag: &SyncFlag, target: u64) -> Result<(), CommError> {
        assert_eq!(flag.proc, self.id, "wait_flag on a foreign flag");
        flag.counter.wait_for(target).await;
        if let Some(e) = self.comm_error() {
            return Err(e);
        }
        self.hold_cpu(self.flag_read_cost()).await;
        Ok(())
    }

    /// The communication failure that poisoned this process, if any.
    #[must_use]
    pub fn comm_error(&self) -> Option<CommError> {
        self.state().comm_error.borrow().clone()
    }

    /// Blocking local dequeue from one of this process's own queues: waits
    /// for data, charges the dequeue cost, returns the payload.
    pub async fn rq_recv(&self, rq: RqId) -> Option<Bytes> {
        let ch = queue_channel(self.state(), rq);
        let data = ch.recv().await?;
        // Head pointer + payload head: two shared-memory misses.
        self.hold_cpu(Dur::from_us(2.0 * self.shared_miss_us()))
            .await;
        Some(data)
    }

    /// Non-blocking local poll of one of this process's own queues,
    /// charging a probe (hit if empty, two misses if an item is taken).
    pub async fn rq_poll(&self, rq: RqId) -> Option<Bytes> {
        let ch = queue_channel(self.state(), rq);
        match ch.try_recv() {
            Some(data) => {
                self.hold_cpu(Dur::from_us(2.0 * self.shared_miss_us()))
                    .await;
                Some(data)
            }
            None => {
                self.hold_cpu(Dur::from_us(0.1 / self.cs.design().machine.speed))
                    .await;
                None
            }
        }
    }

    /// Items currently waiting in a local queue.
    #[must_use]
    pub fn rq_len(&self, rq: RqId) -> usize {
        queue_channel(self.state(), rq).len()
    }

    // ----- compute model --------------------------------------------------

    /// Charges `units` work units of computation on this process's
    /// processor (the deterministic stand-in for the paper's real-time
    /// clock measurement; see `ClusterSpec::work_unit_ns`).
    ///
    /// Long computations are split into 100 µs quanta so that interrupt
    /// handlers (system-call architecture) get service slots at realistic
    /// preemption latency instead of queueing behind a whole compute
    /// phase.
    pub async fn compute(&self, units: u64) {
        let d = Dur::from_ns(units * self.cs.spec.work_unit_ns);
        self.compute_dur(d).await;
    }

    /// Charges `us` microseconds of computation (quantised like
    /// [`Proc::compute`]).
    pub async fn compute_us(&self, us: f64) {
        self.compute_dur(Dur::from_us(us)).await;
    }

    async fn compute_dur(&self, d: Dur) {
        const QUANTUM: Dur = Dur::from_ns(100_000);
        let mut left = d;
        while left > QUANTUM {
            self.hold_cpu(QUANTUM).await;
            left -= QUANTUM;
        }
        self.hold_cpu(left).await;
    }

    async fn hold_cpu(&self, d: Dur) {
        if d.is_zero() {
            return;
        }
        self.state().cpu.hold(d).await;
    }

    // ----- RMA / RQ primitives --------------------------------------------

    /// `PUT`: copies `nbytes` from local `laddr` to `raddr` in address
    /// space `asid`. `lsync` (a local flag) increments when the data has
    /// been delivered and acknowledged; `rsync` (a flag in the target
    /// space) increments at delivery.
    ///
    /// # Errors
    ///
    /// [`CommError::PermissionDenied`] if this process has not been granted
    /// access to `asid`; [`CommError::OutOfBounds`] /
    /// [`CommError::UnknownAsid`] / [`CommError::EmptyTransfer`] on invalid
    /// arguments.
    pub async fn put(
        &self,
        laddr: Addr,
        asid: Asid,
        raddr: Addr,
        nbytes: u32,
        lsync: Option<&SyncFlag>,
        rsync: Option<crate::addr::RemoteFlag>,
    ) -> Result<(), CommError> {
        self.validate(asid, laddr, raddr, nbytes)?;
        self.record(nbytes);
        let dst = ProcId::from(asid);
        let cmd = Command::Put {
            src: self.id,
            dst,
            laddr,
            raddr,
            nbytes,
            lsync: lsync.map(|f| self.own_flag(f)),
            rsync: rsync.map(|r| self.check_rsync(dst, r)),
            inline: self.capture_inline(laddr, nbytes),
        };
        self.dispatch(cmd, dst).await
    }

    /// `GET`: copies `nbytes` from `raddr` in `asid` to local `laddr`.
    /// `lsync` increments when the data has landed locally; `rsync`
    /// increments in the target space when the data has been read.
    ///
    /// # Errors
    ///
    /// As for [`Proc::put`].
    pub async fn get(
        &self,
        laddr: Addr,
        asid: Asid,
        raddr: Addr,
        nbytes: u32,
        lsync: Option<&SyncFlag>,
        rsync: Option<crate::addr::RemoteFlag>,
    ) -> Result<(), CommError> {
        self.validate(asid, laddr, raddr, nbytes)?;
        self.record(nbytes);
        let dst = ProcId::from(asid);
        let cmd = Command::Get {
            src: self.id,
            dst,
            laddr,
            raddr,
            nbytes,
            lsync: lsync.map(|f| self.own_flag(f)),
            rsync: rsync.map(|r| self.check_rsync(dst, r)),
        };
        self.dispatch(cmd, dst).await
    }

    /// `ENQ`: atomically appends `nbytes` from local `laddr` to remote
    /// queue `rq`.
    ///
    /// # Errors
    ///
    /// As for [`Proc::put`].
    pub async fn enq(
        &self,
        laddr: Addr,
        rq: RemoteQueue,
        nbytes: u32,
        lsync: Option<&SyncFlag>,
        rsync: Option<crate::addr::RemoteFlag>,
    ) -> Result<(), CommError> {
        let asid = Asid::from(rq.proc);
        self.validate_src_perm(asid, laddr, nbytes)?;
        self.record(nbytes);
        let cmd = Command::Enq {
            src: self.id,
            dst: rq.proc,
            rq: rq.rq,
            laddr,
            nbytes,
            lsync: lsync.map(|f| self.own_flag(f)),
            rsync: rsync.map(|r| self.check_rsync(rq.proc, r)),
            inline: self.capture_inline(laddr, nbytes),
        };
        self.dispatch(cmd, rq.proc).await
    }

    /// `DEQ`: removes the head of remote queue `rq` into local `laddr`
    /// (at most `nbytes`). If the queue is empty the operation keeps
    /// probing until data arrives; `lsync` increments on delivery.
    ///
    /// # Errors
    ///
    /// As for [`Proc::put`].
    pub async fn deq(
        &self,
        laddr: Addr,
        rq: RemoteQueue,
        nbytes: u32,
        lsync: Option<&SyncFlag>,
    ) -> Result<(), CommError> {
        let asid = Asid::from(rq.proc);
        self.check_poisoned()?;
        if nbytes == 0 {
            return Err(CommError::EmptyTransfer);
        }
        self.state()
            .mem
            .borrow()
            .check(self.asid(), laddr, nbytes)?;
        self.check_target(asid)?;
        self.record(nbytes);
        let cmd = Command::Deq {
            src: self.id,
            dst: rq.proc,
            rq: rq.rq,
            laddr,
            nbytes,
            lsync: lsync.map(|f| self.own_flag(f)),
        };
        self.dispatch(cmd, rq.proc).await
    }

    // ----- internals -------------------------------------------------------

    /// Captures small payloads into the command entry at submission, so
    /// the caller may immediately reuse its buffer (larger transfers stay
    /// zero-copy and require the source to remain stable until serviced).
    fn capture_inline(&self, laddr: Addr, nbytes: u32) -> Option<bytes::Bytes> {
        (nbytes <= engine::INLINE_BYTES).then(|| self.state().mem.borrow().read(laddr, nbytes))
    }

    fn shared_miss_us(&self) -> f64 {
        match self.cs.design().arch {
            Arch::MessageProxy => self.cs.design().shared_miss_us,
            _ => self.cs.design().machine.cache_miss_us,
        }
    }

    fn flag_read_cost(&self) -> Dur {
        let d = self.cs.design();
        let us = match d.arch {
            Arch::MessageProxy => d.shared_miss_us + 0.25 / d.machine.speed,
            Arch::CustomHardware | Arch::SystemCall => d.machine.cache_miss_us,
        };
        Dur::from_us(us)
    }

    fn own_flag(&self, f: &SyncFlag) -> FlagId {
        assert_eq!(f.proc, self.id, "lsync flag must belong to the caller");
        f.id
    }

    fn check_rsync(&self, dst: ProcId, r: crate::addr::RemoteFlag) -> FlagId {
        assert_eq!(r.proc, dst, "rsync flag must live in the target space");
        r.flag
    }

    fn check_target(&self, asid: Asid) -> Result<(), CommError> {
        if (asid.0 as usize) >= self.cs.procs.len() {
            return Err(CommError::UnknownAsid(asid));
        }
        if !self.cs.allowed(self.id, asid) {
            self.state().stats.borrow_mut().faults += 1;
            return Err(CommError::PermissionDenied {
                src: self.id,
                target: asid,
            });
        }
        Ok(())
    }

    /// Rejects new submissions from a process already failed by the
    /// communication layer.
    fn check_poisoned(&self) -> Result<(), CommError> {
        match self.comm_error() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn validate_src_perm(&self, asid: Asid, laddr: Addr, nbytes: u32) -> Result<(), CommError> {
        self.check_poisoned()?;
        if nbytes == 0 {
            return Err(CommError::EmptyTransfer);
        }
        self.state()
            .mem
            .borrow()
            .check(self.asid(), laddr, nbytes)?;
        self.check_target(asid)
    }

    fn validate(&self, asid: Asid, laddr: Addr, raddr: Addr, nbytes: u32) -> Result<(), CommError> {
        self.validate_src_perm(asid, laddr, nbytes)?;
        let dst = ProcId::from(asid);
        self.cs.proc(dst).mem.borrow().check(asid, raddr, nbytes)?;
        Ok(())
    }

    fn record(&self, nbytes: u32) {
        let ps = self.state();
        let mut s = ps.stats.borrow_mut();
        s.ops += 1;
        s.bytes += u64::from(nbytes);
        s.msg_sizes.add(f64::from(nbytes));
    }

    /// Takes one command-queue credit when the spec enables flow control:
    /// blocks for a free slot by default, or fails fast with
    /// [`CommError::CreditsExhausted`] when configured. The engine returns
    /// the credit at service start.
    async fn acquire_credit(&self) -> Result<(), CommError> {
        let Some(ch) = self.state().credits.clone() else {
            return Ok(());
        };
        if self.cs.spec.credit_fail_fast {
            return match ch.try_recv() {
                Some(()) => Ok(()),
                None => {
                    let node = self.cs.node_of(self.id);
                    node.credit_stalls.set(node.credit_stalls.get() + 1);
                    Err(CommError::CreditsExhausted {
                        src: self.id,
                        limit: self.cs.spec.cmd_credits,
                    })
                }
            };
        }
        // Fast path: a credit is free right now — no stall to record.
        if let Some(()) = ch.try_recv() {
            return Ok(());
        }
        let node = self.cs.node_of(self.id);
        node.credit_stalls.set(node.credit_stalls.get() + 1);
        match ch.recv().await {
            Some(()) => Ok(()),
            // Closed while waiting: the process was poisoned.
            None => Err(self.comm_error().unwrap_or(CommError::CreditsExhausted {
                src: self.id,
                limit: self.cs.spec.cmd_credits,
            })),
        }
    }

    /// Routes a validated command: same-node operations run directly
    /// through shared memory; remote ones go to the node's engine.
    async fn dispatch(&self, cmd: Command, dst: ProcId) -> Result<(), CommError> {
        let d = *self.cs.design();
        let same_node = self.cs.proc(dst).node == self.state().node;
        if same_node {
            return self.run_intra_node(cmd).await;
        }
        match d.arch {
            Arch::MessageProxy => {
                self.acquire_credit().await?;
                // Submission: two shared-memory misses to write the command
                // queue entry plus the library-call instructions.
                self.hold_cpu(Dur::from_us(
                    2.0 * d.shared_miss_us + 0.25 / d.machine.speed,
                ))
                .await;
                let node = self.cs.node_of(self.id);
                let _ = node
                    .proxy_input
                    .try_send(ProxyInput::Cmd(cmd, self.cs.ctx.now()));
            }
            Arch::CustomHardware => {
                self.acquire_credit().await?;
                self.hold_cpu(Dur::from_us(d.hw_submit_us)).await;
                let node = self.cs.node_of(self.id);
                let _ = node
                    .proxy_input
                    .try_send(ProxyInput::Cmd(cmd, self.cs.ctx.now()));
            }
            Arch::SystemCall => {
                let node = Rc::clone(self.cs.node_of(self.id));
                let cpu = self.state().cpu.clone();
                let guard = cpu.acquire().await;
                engine::syscall::user_submit(&node, &self.cs, cmd).await;
                drop(guard);
            }
        }
        Ok(())
    }

    /// Intra-node communication: processes on the same SMP share memory,
    /// so data moves without involving the proxy/adapter — the effect
    /// behind Figure 9's "intra-node communication reduces the load on the
    /// message proxy".
    async fn run_intra_node(&self, cmd: Command) -> Result<(), CommError> {
        let d = *self.cs.design();
        let (submit_us, line_us) = match d.arch {
            Arch::MessageProxy => (
                2.0 * d.shared_miss_us + 0.25 / d.machine.speed,
                2.0 * d.shared_miss_us,
            ),
            Arch::CustomHardware => (d.hw_submit_us, 2.0 * d.machine.cache_miss_us),
            Arch::SystemCall => (
                d.syscall_us + d.kernel_proto_us,
                2.0 * d.machine.cache_miss_us,
            ),
        };
        match cmd {
            Command::Put {
                src,
                dst,
                laddr,
                raddr,
                nbytes,
                lsync,
                rsync,
                inline,
            } => {
                let cost = submit_us + f64::from(lines(nbytes)) * line_us;
                self.hold_cpu(Dur::from_us(cost)).await;
                let data = inline.unwrap_or_else(|| engine::read_mem(&self.cs, src, laddr, nbytes));
                engine::write_mem(&self.cs, dst, raddr, &data);
                if let Some(f) = rsync {
                    engine::set_flag(&self.cs, dst, f);
                }
                if let Some(f) = lsync {
                    engine::set_flag(&self.cs, src, f);
                }
            }
            Command::Get {
                src,
                dst,
                laddr,
                raddr,
                nbytes,
                lsync,
                rsync,
            } => {
                let cost = submit_us + f64::from(lines(nbytes)) * line_us;
                self.hold_cpu(Dur::from_us(cost)).await;
                let data = engine::read_mem(&self.cs, dst, raddr, nbytes);
                engine::write_mem(&self.cs, src, laddr, &data);
                if let Some(f) = rsync {
                    engine::set_flag(&self.cs, dst, f);
                }
                if let Some(f) = lsync {
                    engine::set_flag(&self.cs, src, f);
                }
            }
            Command::Enq {
                src,
                dst,
                rq,
                laddr,
                nbytes,
                lsync,
                rsync,
                inline,
            } => {
                let cost = submit_us + f64::from(lines(nbytes)) * line_us;
                self.hold_cpu(Dur::from_us(cost)).await;
                let data = inline.unwrap_or_else(|| engine::read_mem(&self.cs, src, laddr, nbytes));
                let _ = queue_channel(self.cs.proc(dst), rq).try_send(data);
                if let Some(f) = rsync {
                    engine::set_flag(&self.cs, dst, f);
                }
                if let Some(f) = lsync {
                    engine::set_flag(&self.cs, src, f);
                }
            }
            Command::Deq {
                src,
                dst,
                rq,
                laddr,
                nbytes,
                lsync,
            } => {
                self.hold_cpu(Dur::from_us(submit_us)).await;
                let ch = queue_channel(self.cs.proc(dst), rq);
                let ctx = self.cs.ctx.clone();
                let policy = self.cs.spec.deq_retry;
                let mut attempts: u32 = 0;
                // Probe until data arrives (shared-memory polling), giving
                // up if the process is poisoned mid-wait or a bounded
                // schedule runs out.
                let data = loop {
                    match ch.try_recv() {
                        Some(d) => break d,
                        None => {
                            if let Some(e) = self.comm_error() {
                                return Err(e);
                            }
                            if policy.give_up_after(attempts + 1) {
                                return Err(CommError::Timeout);
                            }
                            ctx.delay(Dur::from_us(policy.delay_us(attempts))).await;
                            attempts += 1;
                        }
                    }
                };
                let take = nbytes.min(data.len() as u32);
                self.hold_cpu(Dur::from_us(f64::from(lines(take)) * line_us))
                    .await;
                engine::write_mem(&self.cs, src, laddr, &data[..take as usize]);
                if let Some(f) = lsync {
                    engine::set_flag(&self.cs, src, f);
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Proc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proc")
            .field("rank", &self.id)
            .field("node", &self.node())
            .finish()
    }
}
