//! The SMP cluster fabric: nodes, processes, engines, permissions, stats.
//!
//! A [`Cluster`] wires `nodes` SMP nodes — each with `procs_per_node`
//! compute processors, a network adapter, and a DMA engine — to a switch,
//! and starts the protected-communication engine the chosen
//! [`DesignPoint`] calls for: a message-proxy task per node, a
//! custom-hardware adapter task per node, or the system-call send path
//! plus per-node interrupt dispatch.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::future::Future;
use std::rc::Rc;

use mproxy_des::{Channel, Counter, Dur, Resource, SimCtx, SimTime, Tally};
use mproxy_model::{Arch, DesignPoint};
use mproxy_simnet::{
    DmaEngine, DmaParams, FaultCounts, FaultPlan, FaultState, LinkParams, NetPort, Network, NodeId,
};

use crate::addr::{Asid, ProcId};
use crate::engine::reliable::{LinkLayer, LinkSnapshot, LinkStats};
use crate::engine::{self, ProxyInput, WireMsg};
use crate::error::CommError;
use crate::mem::Memory;
use crate::process::Proc;
use crate::retry::RetryPolicy;

/// Shape and technology of a simulated cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Technology design point (HW0 ... SW1).
    pub design: DesignPoint,
    /// Number of SMP nodes.
    pub nodes: usize,
    /// Compute processors per node (the proxy processor, where present, is
    /// in addition to these).
    pub procs_per_node: usize,
    /// If true (default), every process may access every address space;
    /// protection tests set this false and grant selectively.
    pub allow_all: bool,
    /// Nanoseconds of compute time per application work unit, calibrating
    /// the deterministic compute model (stands in for the paper's POWER2
    /// real-time-clock measurement).
    pub work_unit_ns: u64,
    /// Re-probe schedule for DEQ operations that find the remote queue
    /// empty.
    pub deq_retry: RetryPolicy,
    /// Retransmission schedule of the reliable link layer (used only when
    /// the cluster is built with a fault plan).
    pub xmit_retry: RetryPolicy,
    /// Per-process command-queue credit limit: each process may have at
    /// most this many commands submitted-but-not-yet-serviced at its
    /// node's engine. 0 (the default) disables flow control entirely.
    pub cmd_credits: u32,
    /// When credits are exhausted, fail the submission with
    /// [`CommError::CreditsExhausted`] instead of blocking for a free
    /// slot (only meaningful with `cmd_credits > 0`).
    pub credit_fail_fast: bool,
    /// Retransmit-buffer cap per destination of the reliable link layer;
    /// overflow parks in a FIFO backlog, keeping link-layer memory
    /// O(window) under sustained loss (used only with a fault plan).
    pub link_window: usize,
}

impl ClusterSpec {
    /// A spec with the defaults used throughout the evaluation: allow-all
    /// protection and 20 ns per work unit.
    #[must_use]
    pub fn new(design: DesignPoint, nodes: usize, procs_per_node: usize) -> Self {
        ClusterSpec {
            design,
            nodes,
            procs_per_node,
            allow_all: true,
            work_unit_ns: 20,
            deq_retry: RetryPolicy::deq_default(),
            xmit_retry: RetryPolicy::xmit_default(),
            cmd_credits: 0,
            credit_fail_fast: false,
            link_window: 64,
        }
    }

    /// Total user processes.
    #[must_use]
    pub fn nprocs(&self) -> usize {
        self.nodes * self.procs_per_node
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a message naming the invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster needs at least one node".into());
        }
        if self.procs_per_node == 0 {
            return Err("nodes need at least one compute processor".into());
        }
        if self.link_window == 0 {
            return Err("link window must be at least 1".into());
        }
        self.design.machine.validate()
    }
}

/// Per-process traffic statistics (inputs to Table 6).
#[derive(Debug, Default, Clone)]
pub struct ProcStats {
    /// RMA/RQ operations submitted.
    pub ops: u64,
    /// Payload bytes moved by submitted operations.
    pub bytes: u64,
    /// Distribution of operation payload sizes.
    pub msg_sizes: Tally,
    /// Protection faults observed (denied submissions).
    pub faults: u64,
}

pub(crate) struct ProcState {
    #[allow(dead_code)]
    pub(crate) id: ProcId,
    pub(crate) node: NodeId,
    pub(crate) mem: RefCell<Memory>,
    pub(crate) flags: RefCell<Vec<Counter>>,
    pub(crate) queues: RefCell<Vec<Channel<bytes::Bytes>>>,
    pub(crate) next_flag: Cell<u32>,
    pub(crate) next_queue: Cell<u32>,
    pub(crate) cpu: Resource,
    pub(crate) stats: RefCell<ProcStats>,
    /// First communication failure that poisoned this process (see
    /// [`crate::engine::reliable::poison_proc`]).
    pub(crate) comm_error: RefCell<Option<CommError>>,
    /// Command-queue credit tokens, present when the spec enables flow
    /// control: a submission takes one, the engine returns it when it
    /// starts servicing the command. Closed when the process is poisoned
    /// so blocked submitters wake.
    pub(crate) credits: Option<Channel<()>>,
}

pub(crate) struct NodeState {
    pub(crate) id: NodeId,
    /// Merged engine input: user commands and arriving packets (the proxy
    /// and the custom-hardware adapter logic both poll this).
    pub(crate) proxy_input: Channel<ProxyInput>,
    pub(crate) dma: DmaEngine,
    pub(crate) port: NetPort<WireMsg>,
    /// Busy time of the node's communication agent (proxy or adapter
    /// protocol logic) — numerator of Table 6's interface utilisation.
    pub(crate) engine_busy: Cell<Dur>,
    pub(crate) engine_ops: Cell<u64>,
    /// Queueing delay of user commands, submission to engine service
    /// start — the measured counterpart of the §5.4 contention model.
    pub(crate) cmd_wait: RefCell<Tally>,
    /// The same delays as a log-linear histogram (ns), exported under the
    /// engines' shared telemetry ids.
    pub(crate) cmd_wait_hist: RefCell<mproxy_obs::Histogram>,
    /// Submissions that found the credit pool empty and had to block.
    pub(crate) credit_stalls: Cell<u64>,
    pub(crate) ccbs: RefCell<crate::fxhash::FxHashMap<u64, engine::Ccb>>,
    pub(crate) next_token: Cell<u64>,
    /// Reliable-delivery state, present only when the cluster was built
    /// with a fault plan.
    pub(crate) link: Option<Rc<LinkLayer>>,
}

impl NodeState {
    pub(crate) fn new_token(&self) -> u64 {
        let t = self.next_token.get();
        self.next_token.set(t + 1);
        t
    }

    pub(crate) fn add_busy(&self, d: Dur) {
        self.engine_busy.set(self.engine_busy.get() + d);
        self.engine_ops.set(self.engine_ops.get() + 1);
    }

    pub(crate) fn record_cmd_wait(&self, d: Dur) {
        self.cmd_wait.borrow_mut().add(d.as_us());
        self.cmd_wait_hist
            .borrow_mut()
            .record((d.as_us() * 1000.0) as u64);
    }
}

pub(crate) struct ClusterState {
    pub(crate) spec: ClusterSpec,
    pub(crate) ctx: SimCtx,
    pub(crate) procs: Vec<Rc<ProcState>>,
    pub(crate) nodes: Vec<Rc<NodeState>>,
    pub(crate) perms: RefCell<HashSet<(ProcId, Asid)>>,
    pub(crate) allow_all: Cell<bool>,
    pub(crate) app_done: Counter,
    pub(crate) started: SimTime,
    /// Fault-injection state shared with the network, when installed.
    pub(crate) faults: Option<Rc<FaultState>>,
    /// True when the fault plan schedules at least one proxy crash (gates
    /// debug assertions that orphaned replies are impossible).
    pub(crate) crashes_possible: bool,
}

impl ClusterState {
    pub(crate) fn design(&self) -> &DesignPoint {
        &self.spec.design
    }

    pub(crate) fn allowed(&self, src: ProcId, target: Asid) -> bool {
        if src == ProcId::from(target) {
            return true;
        }
        self.allow_all.get() || self.perms.borrow().contains(&(src, target))
    }

    pub(crate) fn proc(&self, id: ProcId) -> &Rc<ProcState> {
        &self.procs[id.0 as usize]
    }

    pub(crate) fn node_of(&self, id: ProcId) -> &Rc<NodeState> {
        &self.nodes[self.procs[id.0 as usize].node]
    }
}

/// Aggregate traffic and utilisation report (Table 6).
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Total RMA/RQ operations across all processes.
    pub total_ops: u64,
    /// Total payload bytes.
    pub total_bytes: u64,
    /// Average message (payload) size, bytes.
    pub avg_msg_bytes: f64,
    /// Per-processor message rate, operations per millisecond.
    pub msg_rate_per_ms: f64,
    /// Mean utilisation of the per-node communication agent (message proxy
    /// for MP points, adapter message logic for HW points, n/a-as-zero for
    /// SW points' inline kernel path).
    pub interface_utilization: f64,
    /// Elapsed simulated time the report covers.
    pub elapsed: Dur,
}

/// Fault-injection and recovery summary of a run on a faulty network:
/// what the plan injected, and what the reliable link layer did about it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults injected by the network (per the [`FaultPlan`]).
    pub injected: FaultCounts,
    /// Link-layer protocol activity, summed over all nodes.
    pub link: LinkStats,
}

/// A simulated SMP cluster at one design point.
///
/// # Examples
///
/// ```
/// use mproxy::{Cluster, ClusterSpec};
/// use mproxy_des::Simulation;
/// use mproxy_model::MP1;
///
/// let sim = Simulation::new();
/// let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 2, 1)).unwrap();
/// cluster.spawn_spmd(|p| async move {
///     let a = p.alloc(8);
///     p.ctx().yield_now().await; // all ranks allocate first
///     if p.rank().0 == 0 {
///         p.write_u64(a, 42);
///         let f = p.new_flag();
///         p.put(a, mproxy::Asid(1), a, 8, Some(&f), None).await.unwrap();
///         p.wait_flag(&f, 1).await;
///     }
/// });
/// let report = cluster.run(&sim);
/// assert!(report.completed_cleanly());
/// ```
pub struct Cluster {
    state: Rc<ClusterState>,
}

impl Cluster {
    /// Builds the cluster and starts its engine tasks.
    ///
    /// # Errors
    ///
    /// Returns the [`ClusterSpec::validate`] message if the spec is
    /// invalid.
    pub fn new(ctx: &SimCtx, spec: ClusterSpec) -> Result<Cluster, String> {
        Cluster::build(ctx, spec, None)
    }

    /// Builds the cluster on a faulty network: packets are dropped,
    /// duplicated, reordered, or corrupted per `plan`, and every engine
    /// sends through the reliable link layer ([`crate::engine::reliable`])
    /// so application-visible semantics stay exactly-once, in-order.
    ///
    /// # Errors
    ///
    /// Returns the [`ClusterSpec::validate`] message if the spec is
    /// invalid.
    pub fn new_with_faults(
        ctx: &SimCtx,
        spec: ClusterSpec,
        plan: FaultPlan,
    ) -> Result<Cluster, String> {
        Cluster::build(ctx, spec, Some(plan))
    }

    fn build(ctx: &SimCtx, spec: ClusterSpec, plan: Option<FaultPlan>) -> Result<Cluster, String> {
        spec.validate()?;
        let d = spec.design;
        let link = LinkParams::new(d.machine.net_latency_us, d.net_bw_mbs);
        let network: Network<WireMsg> = match plan {
            Some(plan) => Network::with_faults(ctx, spec.nodes, link, plan),
            None => Network::new(ctx, spec.nodes, link),
        };
        let faults = network.fault_state();
        let dma_params = DmaParams::new(d.dma_bw_mbs, d.pin_us, d.unpin_us, d.page_bytes);

        let procs: Vec<Rc<ProcState>> = (0..spec.nprocs())
            .map(|r| {
                let node = r / spec.procs_per_node;
                let credits = (spec.cmd_credits > 0).then(|| {
                    let ch = Channel::bounded(spec.cmd_credits as usize);
                    for _ in 0..spec.cmd_credits {
                        ch.try_send(()).expect("credit channel sized to limit");
                    }
                    ch
                });
                Rc::new(ProcState {
                    id: ProcId(r as u32),
                    node,
                    mem: RefCell::new(Memory::new()),
                    flags: RefCell::new(Vec::new()),
                    queues: RefCell::new(Vec::new()),
                    next_flag: Cell::new(0),
                    next_queue: Cell::new(0),
                    cpu: Resource::new(ctx, format!("cpu[{r}]"), 1),
                    stats: RefCell::new(ProcStats::default()),
                    comm_error: RefCell::new(None),
                    credits,
                })
            })
            .collect();

        let nodes: Vec<Rc<NodeState>> = (0..spec.nodes)
            .map(|n| {
                let port = network.adapter(n);
                let link = faults.as_ref().map(|_| {
                    LinkLayer::new(
                        ctx.clone(),
                        n,
                        port.clone(),
                        spec.xmit_retry,
                        procs.clone(),
                        spec.link_window,
                    )
                });
                Rc::new(NodeState {
                    id: n,
                    proxy_input: Channel::unbounded(),
                    dma: DmaEngine::new(ctx, n, dma_params),
                    port,
                    engine_busy: Cell::new(Dur::ZERO),
                    engine_ops: Cell::new(0),
                    cmd_wait: RefCell::new(Tally::new()),
                    cmd_wait_hist: RefCell::new(mproxy_obs::Histogram::new()),
                    credit_stalls: Cell::new(0),
                    ccbs: RefCell::new(crate::fxhash::FxHashMap::default()),
                    next_token: Cell::new(0),
                    link,
                })
            })
            .collect();

        let crashes_possible = faults.as_ref().is_some_and(|f| {
            (0..spec.nodes).any(|n| f.plan().crashes_on(n).next().is_some())
        });

        let state = Rc::new(ClusterState {
            allow_all: Cell::new(spec.allow_all),
            spec,
            ctx: ctx.clone(),
            procs,
            nodes,
            perms: RefCell::new(HashSet::new()),
            app_done: Counter::new(),
            started: ctx.now(),
            faults,
            crashes_possible,
        });

        // Drive the fault plan's crash windows: one task per crashing node
        // wipes its volatile proxy state at each window and restarts the
        // link layer into a new epoch afterwards.
        if let Some(f) = &state.faults {
            for n in 0..state.spec.nodes {
                let mut windows: Vec<_> = f.plan().crashes_on(n).collect();
                if windows.is_empty() {
                    continue;
                }
                windows.sort_by(|a, b| a.at_us.total_cmp(&b.at_us));
                ctx.spawn(engine::reliable::crash_driver(
                    Rc::clone(&state),
                    n,
                    windows,
                ));
            }
        }

        // Start the per-node communication agents.
        for node in &state.nodes {
            match d.arch {
                Arch::MessageProxy => {
                    ctx.spawn(engine::proxy::proxy_main(
                        Rc::clone(node),
                        Rc::clone(&state),
                    ));
                    // Forward arriving packets into the proxy's merged input.
                    ctx.spawn(engine::forward_rx(
                        node.port.clone(),
                        node.proxy_input.clone(),
                    ));
                }
                Arch::CustomHardware => {
                    ctx.spawn(engine::hardware::adapter_main(
                        Rc::clone(node),
                        Rc::clone(&state),
                    ));
                    ctx.spawn(engine::forward_rx(
                        node.port.clone(),
                        node.proxy_input.clone(),
                    ));
                }
                Arch::SystemCall => {
                    ctx.spawn(engine::syscall::dispatch_main(
                        Rc::clone(node),
                        Rc::clone(&state),
                    ));
                }
            }
        }

        Ok(Cluster { state })
    }

    /// Number of user processes.
    #[must_use]
    pub fn nprocs(&self) -> usize {
        self.state.spec.nprocs()
    }

    /// The spec this cluster was built from.
    #[must_use]
    pub fn spec(&self) -> ClusterSpec {
        self.state.spec
    }

    /// A handle to process `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[must_use]
    pub fn proc(&self, rank: ProcId) -> Proc {
        assert!(
            (rank.0 as usize) < self.nprocs(),
            "rank {rank} out of range"
        );
        Proc::new(Rc::clone(&self.state), rank)
    }

    /// Spawns the same async body on every process (SPMD style). The
    /// cluster tracks completion; [`Cluster::run`] shuts the engines down
    /// once every body finishes.
    pub fn spawn_spmd<F, Fut>(&self, body: F)
    where
        F: Fn(Proc) -> Fut,
        Fut: Future<Output = ()> + 'static,
    {
        for r in 0..self.nprocs() {
            self.spawn_on(ProcId(r as u32), &body);
        }
    }

    /// Spawns an async body on one process.
    pub fn spawn_on<F, Fut>(&self, rank: ProcId, body: F)
    where
        F: Fn(Proc) -> Fut,
        Fut: Future<Output = ()> + 'static,
    {
        let p = self.proc(rank);
        let done = self.state.app_done.clone();
        let fut = body(p);
        self.state.ctx.spawn(async move {
            fut.await;
            done.incr();
        });
    }

    /// Runs the simulation until every spawned process body has finished,
    /// then shuts down the engine tasks and drains remaining events.
    ///
    /// Returns the underlying [`mproxy_des::RunReport`].
    pub fn run(&self, sim: &mproxy_des::Simulation) -> mproxy_des::RunReport {
        let state = Rc::clone(&self.state);
        let expected = self.nprocs() as u64;
        self.state.ctx.spawn(async move {
            state.app_done.wait_for(expected).await;
            for node in &state.nodes {
                node.proxy_input.close();
                node.port.rx_fifo().close();
                // Linger: all results have arrived by now, so drop any
                // still-unacknowledged link-layer state rather than
                // retransmitting into engines that just shut down.
                if let Some(link) = &node.link {
                    link.quiesce();
                }
            }
        });
        sim.run()
    }

    /// Grants `src` access to address space `target` (used with
    /// `allow_all = false`).
    pub fn grant(&self, src: ProcId, target: Asid) {
        self.state.perms.borrow_mut().insert((src, target));
    }

    /// Revokes a grant.
    pub fn revoke(&self, src: ProcId, target: Asid) {
        self.state.perms.borrow_mut().remove(&(src, target));
    }

    /// Busy time (µs) of the compute processor running `rank`, from the
    /// start of the simulation. With no explicit compute phases this is
    /// pure communication overhead.
    #[must_use]
    pub fn cpu_busy_us(&self, rank: ProcId) -> f64 {
        let ps = &self.state.procs[rank.0 as usize];
        ps.cpu.busy_us(self.state.ctx.now())
    }

    /// Per-process statistics snapshot.
    #[must_use]
    pub fn proc_stats(&self, rank: ProcId) -> ProcStats {
        self.state.procs[rank.0 as usize].stats.borrow().clone()
    }

    /// The communication failure that poisoned `rank`, if any.
    #[must_use]
    pub fn comm_error(&self, rank: ProcId) -> Option<crate::CommError> {
        self.state.procs[rank.0 as usize].comm_error.borrow().clone()
    }

    /// Injected-fault and link-layer counters. All-zero when the cluster
    /// was built without a fault plan.
    #[must_use]
    pub fn fault_report(&self) -> FaultReport {
        let injected = self
            .state
            .faults
            .as_ref()
            .map(|f| f.counts())
            .unwrap_or_default();
        let mut link = LinkStats::default();
        for node in &self.state.nodes {
            if let Some(l) = &node.link {
                let s = l.stats();
                link.retransmits += s.retransmits;
                link.acks_sent += s.acks_sent;
                link.nacks_sent += s.nacks_sent;
                link.dups_discarded += s.dups_discarded;
                link.held_out_of_order += s.held_out_of_order;
                link.unreachable += s.unreachable;
                // Worst single-destination occupancy across nodes (a sum
                // would be meaningless against the per-destination window).
                link.peak_pending = link.peak_pending.max(s.peak_pending);
                link.backlogged += s.backlogged;
                link.hellos_sent += s.hellos_sent;
                link.replayed += s.replayed;
                link.stale_discarded += s.stale_discarded;
                link.epoch_resyncs += s.epoch_resyncs;
            }
        }
        FaultReport { injected, link }
    }

    /// Telemetry snapshot under the engines' shared metric ids (see
    /// `mproxy-obs`): one scope per node carrying the link-layer
    /// counters, per-node traffic totals, credit stalls, and the
    /// command-wait histogram, plus — when `report` is given — a `sim`
    /// scope mapping the DES executor's accounting (events, timers,
    /// calendar peak, spawned/completed tasks and injected faults).
    ///
    /// The sim is single-threaded, so this is an import of its existing
    /// accounting rather than live atomics; ids and JSON shape are
    /// identical to the runtime's `RtCluster::obs_snapshot`, letting
    /// sim/runtime exports line up column for column.
    #[must_use]
    pub fn obs_snapshot(
        &self,
        label: &str,
        report: Option<&mproxy_des::RunReport>,
    ) -> mproxy_obs::Snapshot {
        use mproxy_obs::{Ctr, HistId, ScopeSnapshot};
        let mut scopes = Vec::with_capacity(self.state.nodes.len() + 1);
        for (n, node) in self.state.nodes.iter().enumerate() {
            let mut sc = ScopeSnapshot::empty(format!("node{n}"));
            let (ops, bytes) = self
                .state
                .procs
                .iter()
                .filter(|p| p.node == n)
                .map(|p| {
                    let s = p.stats.borrow();
                    (s.ops, s.bytes)
                })
                .fold((0u64, 0u64), |(a, b), (o, y)| (a + o, b + y));
            sc.set_counter(Ctr::OpsSubmitted, ops);
            sc.set_counter(Ctr::BytesOut, bytes);
            sc.set_counter(Ctr::OpsApplied, node.engine_ops.get());
            sc.set_counter(Ctr::CreditStalls, node.credit_stalls.get());
            if let Some(l) = &node.link {
                let s = l.stats();
                sc.set_counter(Ctr::Retransmits, s.retransmits);
                sc.set_counter(Ctr::AcksOut, s.acks_sent);
                sc.set_counter(Ctr::NacksOut, s.nacks_sent);
                sc.set_counter(Ctr::DedupDrops, s.dups_discarded);
                sc.set_counter(Ctr::HellosOut, s.hellos_sent);
                sc.set_counter(Ctr::Replayed, s.replayed);
                sc.set_counter(Ctr::StaleDrops, s.stale_discarded);
                sc.set_counter(Ctr::EpochBumps, s.epoch_resyncs);
            }
            sc.set_hist(HistId::CmdWaitNs, node.cmd_wait_hist.borrow().clone());
            scopes.push(sc);
        }
        let mut sim = ScopeSnapshot::empty("sim");
        if let Some(r) = report {
            sim.set_counter(Ctr::Events, r.events);
            sim.set_counter(Ctr::TimersArmed, r.timers_armed);
            sim.set_counter(Ctr::TimersCancelled, r.timers_cancelled);
            sim.set_counter(Ctr::TimersFired, r.timers_fired);
            sim.set_counter(Ctr::CalendarPeak, r.calendar_peak);
            sim.set_counter(Ctr::TasksSpawned, r.spawned);
            sim.set_counter(Ctr::TasksCompleted, r.completed);
        }
        if let Some(f) = &self.state.faults {
            let c = f.counts();
            sim.set_counter(
                Ctr::FaultsInjected,
                c.dropped + c.duplicated + c.reordered + c.corrupted,
            );
        }
        scopes.push(sim);
        mproxy_obs::Snapshot {
            label: label.to_string(),
            scopes,
        }
    }

    /// Number and mean (µs) of command queueing delays observed at
    /// `node`'s engine: submission instant to service start, the measured
    /// counterpart of the Section 5.4 contention model.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn cmd_wait_us(&self, node: usize) -> (u64, f64) {
        let t = self.state.nodes[node].cmd_wait.borrow();
        (t.count(), t.mean())
    }

    /// Peak occupancy of `node`'s merged engine input queue over the run
    /// (commands and packets); with credits enabled the command share is
    /// bounded by `procs_per_node * cmd_credits`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn engine_queue_peak(&self, node: usize) -> usize {
        self.state.nodes[node].proxy_input.max_len()
    }

    /// Busy time (µs) and serviced-operation count of `node`'s
    /// communication agent.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn engine_busy_us(&self, node: usize) -> (f64, u64) {
        let n = &self.state.nodes[node];
        (n.engine_busy.get().as_us(), n.engine_ops.get())
    }

    /// Reliable-link snapshot of `node`: its current epoch plus, per peer,
    /// the last sequence sent and next expected — sorted by peer, for
    /// byte-stable determinism checks. `None` without a fault plan.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn link_snapshot(&self, node: usize) -> Option<LinkSnapshot> {
        self.state.nodes[node].link.as_ref().map(|l| l.snapshot())
    }

    /// Aggregate Table 6-style traffic report over the elapsed run.
    #[must_use]
    pub fn traffic_report(&self) -> TrafficReport {
        let now = self.state.ctx.now();
        let elapsed = now.since(self.state.started);
        let mut total_ops = 0;
        let mut total_bytes = 0;
        let mut sizes = Tally::new();
        for p in &self.state.procs {
            let s = p.stats.borrow();
            total_ops += s.ops;
            total_bytes += s.bytes;
            sizes.merge(&s.msg_sizes);
        }
        let elapsed_ms = elapsed.as_us() / 1_000.0;
        let per_proc_rate = if elapsed_ms > 0.0 {
            total_ops as f64 / elapsed_ms / self.nprocs() as f64
        } else {
            0.0
        };
        let util = if elapsed.is_zero() {
            0.0
        } else {
            let busy: f64 = self
                .state
                .nodes
                .iter()
                .map(|n| n.engine_busy.get().as_us())
                .sum();
            busy / elapsed.as_us() / self.state.nodes.len() as f64
        };
        TrafficReport {
            total_ops,
            total_bytes,
            avg_msg_bytes: sizes.mean(),
            msg_rate_per_ms: per_proc_rate,
            interface_utilization: util,
            elapsed,
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("design", &self.state.spec.design.name)
            .field("nodes", &self.state.spec.nodes)
            .field("procs_per_node", &self.state.spec.procs_per_node)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mproxy_model::{MP1, MP2};

    #[test]
    fn spec_validation_rejects_degenerate_shapes() {
        assert!(ClusterSpec::new(MP1, 0, 1).validate().is_err());
        assert!(ClusterSpec::new(MP1, 1, 0).validate().is_err());
        assert!(ClusterSpec::new(MP1, 2, 2).validate().is_ok());
        let sim = mproxy_des::Simulation::new();
        assert!(Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 0, 1)).is_err());
    }

    #[test]
    fn nprocs_and_spec_accessors() {
        let sim = mproxy_des::Simulation::new();
        let c = Cluster::new(&sim.ctx(), ClusterSpec::new(MP2, 3, 2)).unwrap();
        assert_eq!(c.nprocs(), 6);
        assert_eq!(c.spec().design.name, "MP2");
        assert_eq!(c.proc(crate::ProcId(5)).node(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn proc_handle_bounds_checked() {
        let sim = mproxy_des::Simulation::new();
        let c = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 1, 1)).unwrap();
        let _ = c.proc(crate::ProcId(7));
    }

    #[test]
    fn traffic_report_empty_run_is_zeroes() {
        let sim = mproxy_des::Simulation::new();
        let c = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 2, 1)).unwrap();
        c.spawn_spmd(|_| async {});
        let _ = c.run(&sim);
        let t = c.traffic_report();
        assert_eq!(t.total_ops, 0);
        assert_eq!(t.avg_msg_bytes, 0.0);
    }
}
