//! Micro-benchmarks (Table 4 and Figure 7).
//!
//! Each function builds a fresh two-node cluster at a design point, runs a
//! measurement loop inside the simulator, and reports averages:
//!
//! * [`run_micro`] — PUT/GET latency, compute-processor overhead and peak
//!   bandwidth (four of Table 4's five rows; the AM row lives in
//!   `mproxy-am`).
//! * [`pingpong_put`] — latency/bandwidth versus message size (Figure 7).

use std::cell::RefCell;
use std::rc::Rc;

use mproxy_des::{RunReport, Simulation};
use mproxy_model::DesignPoint;
use mproxy_simnet::FaultPlan;

use crate::addr::{Asid, ProcId};
use crate::cluster::{Cluster, ClusterSpec, FaultReport};
use crate::engine::reliable::LinkSnapshot;
use crate::error::CommError;

/// Results of [`run_micro`], in the units of Table 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroResult {
    /// PUT latency to local-sync completion, µs.
    pub put_rt_us: f64,
    /// One-word GET latency, µs.
    pub get_us: f64,
    /// Compute-processor overhead of a PUT with completion detection, µs.
    pub overhead_us: f64,
    /// Peak PUT bandwidth on large messages, MB/s.
    pub peak_bw_mbs: f64,
}

/// One point of a Figure 7 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingPongPoint {
    /// Message payload size, bytes.
    pub bytes: u32,
    /// One-way latency, µs.
    pub latency_us: f64,
    /// Achieved bandwidth, MB/s.
    pub bandwidth_mbs: f64,
}

const WARMUP: u64 = 4;

/// Runs the Table 4 micro-benchmarks at `design`.
///
/// # Examples
///
/// ```
/// use mproxy::micro::run_micro;
/// use mproxy_model::{HW1, MP1};
///
/// let hw = run_micro(HW1);
/// let mp = run_micro(MP1);
/// // Message proxies trade ~2.5x latency for commodity hardware.
/// assert!(mp.get_us > 1.5 * hw.get_us);
/// ```
#[must_use]
pub fn run_micro(design: DesignPoint) -> MicroResult {
    let reps: u64 = 32;
    let (put_rt_us, overhead_us) = put_latency_and_overhead(design, reps);
    let get_us = get_latency(design, reps);
    let peak_bw_mbs = peak_bandwidth(design);
    MicroResult {
        put_rt_us,
        get_us,
        overhead_us,
        peak_bw_mbs,
    }
}

fn two_node_cluster(design: DesignPoint) -> (Simulation, Cluster) {
    let sim = Simulation::new();
    let cluster =
        Cluster::new(&sim.ctx(), ClusterSpec::new(design, 2, 1)).expect("valid micro spec");
    (sim, cluster)
}

fn put_latency_and_overhead(design: DesignPoint, reps: u64) -> (f64, f64) {
    let (sim, cluster) = two_node_cluster(design);
    let out = Rc::new(RefCell::new((0.0, 0.0)));
    let probe = Rc::clone(&out);
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let buf = p.alloc(64);
            // Let every rank finish allocating before anyone validates.
            p.ctx().yield_now().await;
            if p.rank() != ProcId(0) {
                return;
            }
            let f = p.new_flag();
            // Warm-up reps to fill allocator/queue state.
            for i in 0..WARMUP {
                p.put(buf, Asid(1), buf, 8, Some(&f), None).await.unwrap();
                p.wait_flag(&f, i + 1).await;
            }
            let t0 = p.now();
            let busy0 = 0.0; // cpu busy measured via utilization deltas below
            let _ = busy0;
            for i in 0..reps {
                p.put(buf, Asid(1), buf, 8, Some(&f), None).await.unwrap();
                p.wait_flag(&f, WARMUP + i + 1).await;
            }
            let elapsed = p.now().since(t0);
            probe.borrow_mut().0 = elapsed.as_us() / reps as f64;
        }
    });
    // Measure CPU busy time attributable to communication over the whole
    // run (no compute phases are issued, so all rank-0 CPU time is
    // overhead).
    let cpu = cluster.proc(ProcId(0));
    let _ = cpu;
    let report = cluster.run(&sim);
    assert!(report.completed_cleanly(), "micro benchmark deadlocked");
    let total_ops = WARMUP + reps;
    let busy = cluster.cpu_busy_us(ProcId(0));
    let overhead = busy / total_ops as f64;
    let latency = out.borrow().0;
    (latency, overhead)
}

fn get_latency(design: DesignPoint, reps: u64) -> f64 {
    let (sim, cluster) = two_node_cluster(design);
    let out = Rc::new(RefCell::new(0.0));
    let probe = Rc::clone(&out);
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let buf = p.alloc(64);
            // Let every rank finish allocating before anyone validates.
            p.ctx().yield_now().await;
            if p.rank() != ProcId(0) {
                return;
            }
            let f = p.new_flag();
            for i in 0..WARMUP {
                p.get(buf, Asid(1), buf, 8, Some(&f), None).await.unwrap();
                p.wait_flag(&f, i + 1).await;
            }
            let t0 = p.now();
            for i in 0..reps {
                p.get(buf, Asid(1), buf, 8, Some(&f), None).await.unwrap();
                p.wait_flag(&f, WARMUP + i + 1).await;
            }
            *probe.borrow_mut() = p.now().since(t0).as_us() / reps as f64;
        }
    });
    let report = cluster.run(&sim);
    assert!(report.completed_cleanly(), "micro benchmark deadlocked");
    let v = *out.borrow();
    v
}

fn peak_bandwidth(design: DesignPoint) -> f64 {
    let (sim, cluster) = two_node_cluster(design);
    let out = Rc::new(RefCell::new(0.0));
    let probe = Rc::clone(&out);
    const MSG: u32 = 256 * 1024;
    const N: u64 = 8;
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let buf = p.alloc(u64::from(MSG));
            p.ctx().yield_now().await;
            if p.rank() != ProcId(0) {
                return;
            }
            let f = p.new_flag();
            let t0 = p.now();
            for _ in 0..N {
                p.put(buf, Asid(1), buf, MSG, Some(&f), None).await.unwrap();
            }
            p.wait_flag(&f, N).await;
            let elapsed = p.now().since(t0).as_us();
            *probe.borrow_mut() = (u64::from(MSG) * N) as f64 / elapsed;
        }
    });
    let report = cluster.run(&sim);
    assert!(report.completed_cleanly(), "bandwidth benchmark deadlocked");
    let v = *out.borrow();
    v
}

/// Runs the Figure 7 PUT ping-pong at each payload size: rank 0 PUTs to
/// rank 1 (setting a flag there); rank 1 replies in kind. One-way latency
/// is half the round trip.
#[must_use]
pub fn pingpong_put(design: DesignPoint, sizes: &[u32], reps: u64) -> Vec<PingPongPoint> {
    sizes
        .iter()
        .map(|&bytes| {
            let rt = pingpong_once(design, bytes, reps);
            let latency_us = rt / 2.0;
            PingPongPoint {
                bytes,
                latency_us,
                bandwidth_mbs: f64::from(bytes) / latency_us,
            }
        })
        .collect()
}

fn pingpong_once(design: DesignPoint, bytes: u32, reps: u64) -> f64 {
    let (sim, cluster) = two_node_cluster(design);
    let out = Rc::new(RefCell::new(0.0));
    let probe = Rc::clone(&out);
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let buf = p.alloc(u64::from(bytes).max(64));
            let f = p.new_flag();
            p.ctx().yield_now().await;
            let me = p.rank().0;
            let peer = Asid(1 - me);
            let peer_flag = p.remote_flag(ProcId(1 - me), f.id());
            if me == 0 {
                let t0 = p.now();
                for i in 0..reps {
                    p.put(buf, peer, buf, bytes, None, Some(peer_flag))
                        .await
                        .unwrap();
                    p.wait_flag(&f, i + 1).await;
                }
                *probe.borrow_mut() = p.now().since(t0).as_us() / reps as f64;
            } else {
                for i in 0..reps {
                    p.wait_flag(&f, i + 1).await;
                    p.put(buf, peer, buf, bytes, None, Some(peer_flag))
                        .await
                        .unwrap();
                }
            }
        }
    });
    let report = cluster.run(&sim);
    assert!(report.completed_cleanly(), "ping-pong deadlocked");
    let v = *out.borrow();
    v
}

/// Results of [`pingpong_verified`].
#[derive(Debug, Clone)]
pub struct VerifiedPingPong {
    /// Round trips completed by rank 0.
    pub rounds: u64,
    /// Average round-trip time over completed rounds, µs.
    pub rt_us: f64,
    /// True iff every payload word arrived with the expected value at both
    /// ends — the exactly-once, in-order check.
    pub data_ok: bool,
    /// The first communication failure either rank observed, if any.
    pub error: Option<CommError>,
    /// Injected faults and link-layer recovery counters.
    pub report: FaultReport,
    /// Final per-node link snapshots — epoch plus per-peer (peer, last
    /// sequence sent, next expected) — for crash-recovery determinism
    /// checks. Empty when the run had no fault plan.
    pub epochs: Vec<LinkSnapshot>,
    /// The simulator's own run report — event and task counts, used by
    /// the performance harness to compute events/sec.
    pub sim: RunReport,
}

/// The Figure 7 PUT ping-pong with end-to-end payload verification,
/// optionally on a faulty network. Each round carries a distinct marker
/// word that both ranks check on receipt, so dropped, duplicated,
/// reordered, or stale deliveries are detected as data mismatches rather
/// than hidden by timing.
#[must_use]
pub fn pingpong_verified(
    design: DesignPoint,
    bytes: u32,
    reps: u64,
    plan: Option<FaultPlan>,
) -> VerifiedPingPong {
    assert!(bytes >= 8, "verified ping-pong needs room for a marker word");
    let sim = Simulation::new();
    let spec = ClusterSpec::new(design, 2, 1);
    let cluster = match plan {
        Some(plan) => Cluster::new_with_faults(&sim.ctx(), spec, plan),
        None => Cluster::new(&sim.ctx(), spec),
    }
    .expect("valid verified ping-pong spec");

    // Marker words: rank 0 sends PING|i, rank 1 replies PONG|i.
    const PING: u64 = 0x5EED_0000_0000_0000;
    const PONG: u64 = 0xB0B0_0000_0000_0000;

    let out = Rc::new(RefCell::new((0u64, 0.0f64, true, None::<CommError>)));
    let probe = Rc::clone(&out);
    cluster.spawn_spmd(move |p| {
        let probe = Rc::clone(&probe);
        async move {
            let buf = p.alloc(u64::from(bytes).max(64));
            let f = p.new_flag();
            p.ctx().yield_now().await;
            let me = p.rank().0;
            let peer = Asid(1 - me);
            let peer_flag = p.remote_flag(ProcId(1 - me), f.id());
            if me == 0 {
                let t0 = p.now();
                for i in 0..reps {
                    p.write_u64(buf, PING | i);
                    if let Err(e) = p.put(buf, peer, buf, bytes, None, Some(peer_flag)).await {
                        probe.borrow_mut().3.get_or_insert(e);
                        break;
                    }
                    if let Err(e) = p.wait_flag_result(&f, i + 1).await {
                        probe.borrow_mut().3.get_or_insert(e);
                        break;
                    }
                    let mut o = probe.borrow_mut();
                    if p.read_u64(buf) != (PONG | i) {
                        o.2 = false;
                    }
                    o.0 = i + 1;
                    o.1 = p.now().since(t0).as_us() / (i + 1) as f64;
                }
            } else {
                for i in 0..reps {
                    if let Err(e) = p.wait_flag_result(&f, i + 1).await {
                        probe.borrow_mut().3.get_or_insert(e);
                        break;
                    }
                    if p.read_u64(buf) != (PING | i) {
                        probe.borrow_mut().2 = false;
                    }
                    p.write_u64(buf, PONG | i);
                    if let Err(e) = p.put(buf, peer, buf, bytes, None, Some(peer_flag)).await {
                        probe.borrow_mut().3.get_or_insert(e);
                        break;
                    }
                }
            }
        }
    });
    let run = cluster.run(&sim);
    let (rounds, rt_us, data_ok, error) = out.borrow().clone();
    // When one side is failed by the fabric, its peer — which has no
    // submission of its own to be failed on — legitimately never finishes
    // its wait; the error is the result then, not a hung harness.
    assert!(
        run.completed_cleanly() || error.is_some(),
        "verified ping-pong hung"
    );
    VerifiedPingPong {
        rounds,
        rt_us,
        data_ok,
        error,
        report: cluster.fault_report(),
        epochs: (0..2).filter_map(|n| cluster.link_snapshot(n)).collect(),
        sim: run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mproxy_model::{paper_table4, ALL_DESIGN_POINTS, HW1, MP0, MP1, MP2, SW1};

    fn rel_err(a: f64, b: f64) -> f64 {
        (a - b).abs() / b
    }

    #[test]
    fn simulated_latencies_track_paper_table4() {
        for d in ALL_DESIGN_POINTS {
            let m = run_micro(d);
            let t = paper_table4(d.name).unwrap();
            assert!(
                rel_err(m.get_us, t.get_us) < 0.15,
                "{}: GET sim {:.2} vs paper {:.2}",
                d.name,
                m.get_us,
                t.get_us
            );
            assert!(
                rel_err(m.put_rt_us, t.put_rt_us) < 0.15,
                "{}: PUT* sim {:.2} vs paper {:.2}",
                d.name,
                m.put_rt_us,
                t.put_rt_us
            );
            assert!(
                rel_err(m.peak_bw_mbs, t.peak_bw_mbs) < 0.15,
                "{}: BW sim {:.1} vs paper {:.1}",
                d.name,
                m.peak_bw_mbs,
                t.peak_bw_mbs
            );
        }
    }

    #[test]
    fn cache_update_improves_proxy_latency_about_forty_percent() {
        let mp1 = run_micro(MP1);
        let mp2 = run_micro(MP2);
        let gain = (mp1.get_us - mp2.get_us) / mp1.get_us;
        assert!(
            (0.25..=0.5).contains(&gain),
            "expected ~40% gain, got {:.1}%",
            gain * 100.0
        );
    }

    #[test]
    fn overheads_ordered_hw_mp2_mp_sw() {
        let hw = run_micro(HW1).overhead_us;
        let mp = run_micro(MP1).overhead_us;
        let mp2 = run_micro(MP2).overhead_us;
        let sw = run_micro(SW1).overhead_us;
        assert!(mp2 < mp, "cache update must cut overhead: {mp2} vs {mp}");
        assert!(mp > hw, "proxy overhead above custom hardware");
        assert!(sw > 3.0 * mp, "syscall overhead dominates: {sw} vs {mp}");
    }

    #[test]
    fn verified_pingpong_survives_faults_exactly_once() {
        let clean = pingpong_verified(MP1, 64, 16, None);
        assert_eq!(clean.rounds, 16);
        assert!(clean.data_ok && clean.error.is_none());
        assert_eq!(clean.report, FaultReport::default());

        let plan = FaultPlan::new(7)
            .drop(0.05)
            .duplicate(0.02)
            .reorder(0.05, 30.0)
            .corrupt(0.01);
        let faulty = pingpong_verified(MP1, 64, 16, Some(plan));
        assert_eq!(faulty.rounds, 16, "faulty run must still finish");
        assert!(faulty.data_ok, "payloads must arrive exactly-once in-order");
        assert!(faulty.error.is_none());
        assert!(faulty.report.injected.packets > 0);
        // Whatever was injected was recovered, so the run took no less
        // time than the clean one.
        assert!(faulty.rt_us >= clean.rt_us);
    }

    #[test]
    fn pingpong_latency_grows_with_size_and_bw_saturates() {
        let pts = pingpong_put(MP0, &[8, 256, 4096, 65536], 4);
        assert!(pts.windows(2).all(|w| w[0].latency_us < w[1].latency_us));
        // Large-message bandwidth approaches the pinning-limited peak.
        let big = pts.last().unwrap();
        assert!(
            (15.0..=25.0).contains(&big.bandwidth_mbs),
            "bw = {}",
            big.bandwidth_mbs
        );
    }
}
