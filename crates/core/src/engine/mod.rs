//! Protected-communication engines.
//!
//! One submodule per architecture of Section 2: [`proxy`] (message
//! proxies), [`hardware`] (custom hardware), [`syscall`] (system-level
//! communication). All three implement the same RMA + RQ protocol over
//! the same simulated network; they differ in *where* protocol work runs
//! and *what* protection costs they pay, exactly as Figure 2 contrasts.

pub(crate) mod hardware;
pub(crate) mod proxy;
pub(crate) mod reliable;
pub(crate) mod syscall;

use bytes::Bytes;
use mproxy_des::{Channel, Counter, Dur};
use mproxy_simnet::{NetPort, Packet};

use crate::addr::{Addr, FlagId, ProcId, RemoteQueue, RqId};
use crate::cluster::{ClusterState, NodeState, ProcState};

/// Cache-line granularity used to charge per-line PIO costs.
pub(crate) const LINE_BYTES: u32 = 64;

/// PUT/ENQ payloads at or below this size are copied into the command
/// queue entry at submission time (as real proxy queue entries hold their
/// operands inline), so the source buffer may be reused immediately.
/// Larger transfers stay zero-copy: the engine reads the source when it
/// services the command.
pub(crate) const INLINE_BYTES: u32 = 240;

/// Number of 64-byte lines touched by an `nbytes` transfer.
pub(crate) fn lines(nbytes: u32) -> u32 {
    nbytes.div_ceil(LINE_BYTES).max(1)
}

/// A user command as it enters an engine.
#[derive(Debug, Clone)]
pub(crate) enum Command {
    Put {
        src: ProcId,
        dst: ProcId,
        laddr: Addr,
        raddr: Addr,
        nbytes: u32,
        lsync: Option<FlagId>,
        rsync: Option<FlagId>,
        /// Payload captured at submission for small transfers.
        inline: Option<Bytes>,
    },
    Get {
        src: ProcId,
        dst: ProcId,
        laddr: Addr,
        raddr: Addr,
        nbytes: u32,
        lsync: Option<FlagId>,
        rsync: Option<FlagId>,
    },
    Enq {
        src: ProcId,
        dst: ProcId,
        rq: RqId,
        laddr: Addr,
        nbytes: u32,
        lsync: Option<FlagId>,
        rsync: Option<FlagId>,
        /// Payload captured at submission for small transfers.
        inline: Option<Bytes>,
    },
    Deq {
        src: ProcId,
        dst: ProcId,
        rq: RqId,
        laddr: Addr,
        nbytes: u32,
        lsync: Option<FlagId>,
    },
}

impl Command {
    pub(crate) fn src(&self) -> ProcId {
        match self {
            Command::Put { src, .. }
            | Command::Get { src, .. }
            | Command::Enq { src, .. }
            | Command::Deq { src, .. } => *src,
        }
    }
}

/// Wire messages exchanged between nodes.
#[derive(Debug, Clone)]
pub(crate) enum WireMsg {
    PutData {
        dst: ProcId,
        raddr: Addr,
        data: Bytes,
        rsync: Option<FlagId>,
        ack: Option<(usize, u64)>, // (origin node, token)
        dma: bool,
    },
    GetReq {
        dst: ProcId,
        raddr: Addr,
        nbytes: u32,
        rsync: Option<FlagId>,
        origin: usize,
        token: u64,
        dma: bool,
    },
    GetReply {
        token: u64,
        data: Bytes,
        dma: bool,
    },
    EnqData {
        dst: ProcId,
        rq: RqId,
        data: Bytes,
        rsync: Option<FlagId>,
        ack: Option<(usize, u64)>,
    },
    DeqReq {
        dst: ProcId,
        rq: RqId,
        nbytes: u32,
        origin: usize,
        token: u64,
    },
    DeqReply {
        token: u64,
        data: Option<Bytes>,
    },
    Ack {
        token: u64,
    },
    /// Link-layer acknowledgement of sequenced packet `seq` (only present
    /// when reliable delivery is engaged).
    LinkAck {
        seq: u64,
    },
    /// Link-layer retransmission request for packet `seq` (checksum or
    /// corruption failure at the receiver).
    LinkNack {
        seq: u64,
    },
    /// Epoch-resync request from a proxy that crashed and restarted:
    /// announces the restarted node's new epoch and the highest in-order
    /// sequence it had delivered *from* the receiver before the crash, so
    /// the receiver can prune its retransmit buffer and replay the rest.
    Hello {
        epoch: u32,
        last_delivered: u64,
    },
    /// Epoch-resync acknowledgement from a survivor: echoes the epoch and
    /// reports the highest sequence it delivered *from* the restarted
    /// node, so the restarted node resumes numbering where the survivor
    /// expects it.
    HelloAck {
        epoch: u32,
        last_delivered: u64,
    },
}

impl WireMsg {
    /// Payload bytes carried (for statistics; headers are separate).
    #[allow(dead_code)]
    pub(crate) fn payload_bytes(&self) -> u32 {
        match self {
            WireMsg::PutData { data, .. } | WireMsg::EnqData { data, .. } => data.len() as u32,
            WireMsg::GetReply { data, .. } => data.len() as u32,
            WireMsg::DeqReply { data, .. } => data.as_ref().map_or(0, |d| d.len() as u32),
            _ => 0,
        }
    }
}

/// Input stream of a message proxy: user commands multiplexed with
/// arriving packets (the Figure 5 loop polls both).
#[derive(Debug)]
pub(crate) enum ProxyInput {
    /// A user command and its submission instant (for queueing-delay
    /// statistics against the §5.4 contention model).
    Cmd(Command, mproxy_des::SimTime),
    Pkt(Packet<WireMsg>),
    /// Re-probe a remote queue for a pending DEQ.
    RetryDeq(u64),
}

/// Communication control block: per-node state of an outstanding
/// operation awaiting a reply (Section 4's CCB).
#[derive(Debug, Clone)]
pub(crate) enum Ccb {
    Get {
        proc: ProcId,
        laddr: Addr,
        lsync: Option<FlagId>,
    },
    PutAck {
        proc: ProcId,
        lsync: Option<FlagId>,
    },
    Deq {
        proc: ProcId,
        laddr: Addr,
        lsync: Option<FlagId>,
        target: RemoteQueue,
        nbytes: u32,
        /// Empty re-probes so far, indexing [`crate::RetryPolicy::delay_us`].
        attempts: u32,
    },
}

/// Forwards packets from a node's adapter input FIFO into the proxy's
/// merged input channel.
pub(crate) async fn forward_rx(port: NetPort<WireMsg>, input: Channel<ProxyInput>) {
    while let Some(pkt) = port.recv().await {
        if input.try_send(ProxyInput::Pkt(pkt)).is_err() {
            break;
        }
    }
}

/// Lazily grown flag counter of `proc` (flag slots are deterministic, so
/// peers may name a slot before its owner first touches it). Counters
/// created after the process was poisoned are pre-bumped so waiters wake.
pub(crate) fn flag_counter(ps: &ProcState, id: FlagId) -> Counter {
    let poisoned = ps.comm_error.borrow().is_some();
    let mut flags = ps.flags.borrow_mut();
    while flags.len() <= id.0 as usize {
        let c = Counter::new();
        if poisoned {
            c.add(reliable::POISON_BUMP);
        }
        flags.push(c);
    }
    flags[id.0 as usize].clone()
}

/// Lazily grown remote-queue channel of `proc`. Channels created after
/// the process was poisoned start closed.
pub(crate) fn queue_channel(ps: &ProcState, id: RqId) -> Channel<Bytes> {
    let poisoned = ps.comm_error.borrow().is_some();
    let mut queues = ps.queues.borrow_mut();
    while queues.len() <= id.0 as usize {
        let q: Channel<Bytes> = Channel::unbounded();
        if poisoned {
            q.close();
        }
        queues.push(q);
    }
    queues[id.0 as usize].clone()
}

/// Sets flag `id` of process `proc`.
pub(crate) fn set_flag(cs: &ClusterState, proc: ProcId, id: FlagId) {
    flag_counter(cs.proc(proc), id).incr();
}

/// Reads `nbytes` at `addr` from `proc`'s memory.
pub(crate) fn read_mem(cs: &ClusterState, proc: ProcId, addr: Addr, nbytes: u32) -> Bytes {
    cs.proc(proc).mem.borrow().read(addr, nbytes)
}

/// Writes `data` at `addr` into `proc`'s memory.
pub(crate) fn write_mem(cs: &ClusterState, proc: ProcId, addr: Addr, data: &[u8]) {
    cs.proc(proc).mem.borrow_mut().write(addr, data);
}

/// Charges `us` microseconds of wall time to the calling task.
pub(crate) async fn charge(cs: &ClusterState, us: f64) {
    cs.ctx.delay(Dur::from_us(us)).await;
}

/// Measures the busy time of `node`'s engine around a handler body.
pub(crate) struct BusyScope<'a> {
    node: &'a NodeState,
    cs: &'a ClusterState,
    start: mproxy_des::SimTime,
}

impl<'a> BusyScope<'a> {
    pub(crate) fn begin(node: &'a NodeState, cs: &'a ClusterState) -> Self {
        BusyScope {
            node,
            cs,
            start: cs.ctx.now(),
        }
    }
}

impl Drop for BusyScope<'_> {
    fn drop(&mut self) {
        self.node.add_busy(self.cs.ctx.now().since(self.start));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_counting() {
        assert_eq!(lines(0), 1);
        assert_eq!(lines(1), 1);
        assert_eq!(lines(64), 1);
        assert_eq!(lines(65), 2);
        assert_eq!(lines(4096), 64);
    }

    #[test]
    fn payload_bytes_per_message() {
        let m = WireMsg::PutData {
            dst: ProcId(0),
            raddr: Addr(0),
            data: Bytes::from_static(b"12345"),
            rsync: None,
            ack: None,
            dma: false,
        };
        assert_eq!(m.payload_bytes(), 5);
        let req = WireMsg::GetReq {
            dst: ProcId(0),
            raddr: Addr(0),
            nbytes: 100,
            rsync: None,
            origin: 0,
            token: 0,
            dma: false,
        };
        assert_eq!(req.payload_bytes(), 0);
        let deq = WireMsg::DeqReply {
            token: 0,
            data: None,
        };
        assert_eq!(deq.payload_bytes(), 0);
    }
}
