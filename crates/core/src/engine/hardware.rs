//! The custom-hardware engine (SHRIMP / Memory Channel style).
//!
//! The network adapter contains a hardware protocol engine: protection
//! comes from virtual-memory mapping (no kernel crossing, no proxy), and a
//! hardware state machine continuously consumes the input FIFO. We model
//! the adapter's message logic as a per-node serial agent charging
//! `adapter_ovh_us` per pass plus coherent bus transactions (`C`) for the
//! data it moves. Buffers are permanently pinned at setup time, so DMA
//! streams at full engine bandwidth — the bias in the paper's own
//! methodology ("the models and parameters favor the custom hardware ...
//! design points").

use std::rc::Rc;

use mproxy_des::Dur;

use crate::addr::RemoteQueue;
use crate::cluster::{ClusterState, NodeState};
use crate::engine::reliable::{poison_proc, send_wire, stall_gate};
use crate::engine::{
    charge, lines, queue_channel, read_mem, set_flag, write_mem, BusyScope, Ccb, Command,
    ProxyInput, WireMsg,
};
use crate::error::CommError;

struct Costs {
    a: f64, // adapter pass overhead
    c: f64, // coherent bus transaction / cache miss
}

impl Costs {
    fn of(cs: &ClusterState) -> Costs {
        let d = cs.design();
        Costs {
            a: d.adapter_ovh_us,
            c: d.machine.cache_miss_us,
        }
    }
}

/// The per-node adapter protocol engine.
pub(crate) async fn adapter_main(node: Rc<NodeState>, cs: Rc<ClusterState>) {
    let input = node.proxy_input.clone();
    let k = Costs::of(&cs);
    while let Some(ev) = input.recv().await {
        // A stalled adapter engine freezes until its window ends; input
        // keeps queueing meanwhile.
        stall_gate(&node, &cs).await;
        let busy = BusyScope::begin(&node, &cs);
        match ev {
            ProxyInput::Cmd(cmd, submitted) => {
                // Service start: record the queueing delay and hand the
                // submitter's flow-control credit back.
                node.record_cmd_wait(cs.ctx.now().since(submitted));
                if let Some(c) = &cs.proc(cmd.src()).credits {
                    let _ = c.try_send(());
                }
                handle_command(&node, &cs, &k, cmd).await;
            }
            ProxyInput::Pkt(pkt) => match node.link.clone() {
                Some(link) => {
                    for msg in link.accept(pkt).await {
                        handle_packet(&node, &cs, &k, msg).await;
                    }
                }
                None => handle_packet(&node, &cs, &k, pkt.message).await,
            },
            ProxyInput::RetryDeq(token) => retry_deq(&node, &cs, &k, token).await,
        }
        drop(busy);
    }
}

/// Moves `nbytes` out through the adapter: pre-pinned DMA for large
/// blocks, per-line coherent bus reads for small ones.
async fn move_data(node: &NodeState, cs: &ClusterState, k: &Costs, nbytes: u32, dma: bool) {
    if dma {
        node.dma.transfer(nbytes).await;
    } else {
        charge(cs, f64::from(lines(nbytes)) * k.c).await;
    }
}

/// Receives `nbytes` into memory. Pre-pinned receive DMA streams
/// concurrently with the wire (no extra charge); small blocks are stored
/// per line over the bus.
async fn recv_data(cs: &ClusterState, k: &Costs, nbytes: u32, dma: bool) {
    if !dma {
        charge(cs, f64::from(lines(nbytes)) * k.c).await;
    }
}

async fn handle_command(node: &NodeState, cs: &ClusterState, k: &Costs, cmd: Command) {
    charge(cs, k.a).await;
    let d = cs.design();
    match cmd {
        Command::Put {
            src,
            dst,
            laddr,
            raddr,
            nbytes,
            lsync,
            rsync,
            inline,
        } => {
            let dma = nbytes > d.pio_threshold_bytes;
            let data = inline.unwrap_or_else(|| read_mem(cs, src, laddr, nbytes));
            move_data(node, cs, k, nbytes, dma).await;
            let ack = lsync.map(|_| {
                let token = node.new_token();
                node.ccbs
                    .borrow_mut()
                    .insert(token, Ccb::PutAck { proc: src, lsync });
                (node.id, token)
            });
            let dst_node = cs.proc(dst).node;
            send_wire(
                node,
                dst_node,
                WireMsg::PutData {
                    dst,
                    raddr,
                    data,
                    rsync,
                    ack,
                    dma,
                },
                0,
                Some(src),
            )
            .await;
        }
        Command::Get {
            src,
            dst,
            laddr,
            raddr,
            nbytes,
            lsync,
            rsync,
        } => {
            let dma = nbytes > d.pio_threshold_bytes;
            let token = node.new_token();
            node.ccbs.borrow_mut().insert(
                token,
                Ccb::Get {
                    proc: src,
                    laddr,
                    lsync,
                },
            );
            let dst_node = cs.proc(dst).node;
            send_wire(
                node,
                dst_node,
                WireMsg::GetReq {
                    dst,
                    raddr,
                    nbytes,
                    rsync,
                    origin: node.id,
                    token,
                    dma,
                },
                0,
                Some(src),
            )
            .await;
        }
        Command::Enq {
            src,
            dst,
            rq,
            laddr,
            nbytes,
            lsync,
            rsync,
            inline,
        } => {
            let data = inline.unwrap_or_else(|| read_mem(cs, src, laddr, nbytes));
            move_data(node, cs, k, nbytes, false).await;
            let ack = lsync.map(|_| {
                let token = node.new_token();
                node.ccbs
                    .borrow_mut()
                    .insert(token, Ccb::PutAck { proc: src, lsync });
                (node.id, token)
            });
            let dst_node = cs.proc(dst).node;
            send_wire(
                node,
                dst_node,
                WireMsg::EnqData {
                    dst,
                    rq,
                    data,
                    rsync,
                    ack,
                },
                0,
                Some(src),
            )
            .await;
        }
        Command::Deq {
            src,
            dst,
            rq,
            laddr,
            nbytes,
            lsync,
        } => {
            let token = node.new_token();
            node.ccbs.borrow_mut().insert(
                token,
                Ccb::Deq {
                    proc: src,
                    laddr,
                    lsync,
                    target: RemoteQueue { proc: dst, rq },
                    nbytes,
                    attempts: 0,
                },
            );
            let dst_node = cs.proc(dst).node;
            send_wire(
                node,
                dst_node,
                WireMsg::DeqReq {
                    dst,
                    rq,
                    nbytes,
                    origin: node.id,
                    token,
                },
                0,
                Some(src),
            )
            .await;
        }
    }
}

async fn handle_packet(node: &NodeState, cs: &ClusterState, k: &Costs, msg: WireMsg) {
    charge(cs, k.a).await;
    match msg {
        WireMsg::PutData {
            dst,
            raddr,
            data,
            rsync,
            ack,
            dma,
        } => {
            recv_data(cs, k, data.len() as u32, dma).await;
            write_mem(cs, dst, raddr, &data);
            if let Some(f) = rsync {
                charge(cs, k.c).await;
                set_flag(cs, dst, f);
            }
            if let Some((origin, token)) = ack {
                send_wire(node, origin, WireMsg::Ack { token }, 0, None).await;
            }
        }
        WireMsg::GetReq {
            dst,
            raddr,
            nbytes,
            rsync,
            origin,
            token,
            dma,
        } => {
            let data = read_mem(cs, dst, raddr, nbytes);
            move_data(node, cs, k, nbytes, dma).await;
            if let Some(f) = rsync {
                charge(cs, k.c).await;
                set_flag(cs, dst, f);
            }
            send_wire(node, origin, WireMsg::GetReply { token, data, dma }, 0, None).await;
        }
        WireMsg::GetReply { token, data, dma } => {
            let ccb = node.ccbs.borrow_mut().remove(&token);
            let Some(Ccb::Get { proc, laddr, lsync }) = ccb else {
                // After a crash wiped the CCB table, a reply to a
                // pre-crash request is an expected orphan.
                debug_assert!(cs.crashes_possible, "GetReply with no matching CCB");
                return;
            };
            recv_data(cs, k, data.len() as u32, dma).await;
            write_mem(cs, proc, laddr, &data);
            if let Some(f) = lsync {
                charge(cs, k.c).await;
                set_flag(cs, proc, f);
            }
        }
        WireMsg::EnqData {
            dst,
            rq,
            data,
            rsync,
            ack,
        } => {
            move_data(node, cs, k, data.len() as u32, false).await;
            charge(cs, k.c).await; // queue pointer update
            let _ = queue_channel(cs.proc(dst), rq).try_send(data);
            if let Some(f) = rsync {
                charge(cs, k.c).await;
                set_flag(cs, dst, f);
            }
            if let Some((origin, token)) = ack {
                send_wire(node, origin, WireMsg::Ack { token }, 0, None).await;
            }
        }
        WireMsg::DeqReq {
            dst,
            rq,
            nbytes,
            origin,
            token,
        } => {
            let popped = queue_channel(cs.proc(dst), rq).try_recv();
            match popped {
                Some(data) => {
                    charge(cs, k.c).await;
                    move_data(node, cs, k, nbytes.min(data.len() as u32), false).await;
                    send_wire(
                        node,
                        origin,
                        WireMsg::DeqReply {
                            token,
                            data: Some(data),
                        },
                        0,
                        None,
                    )
                    .await;
                }
                None => {
                    send_wire(node, origin, WireMsg::DeqReply { token, data: None }, 0, None)
                        .await;
                }
            }
        }
        WireMsg::DeqReply { token, data } => match data {
            Some(data) => {
                let ccb = node.ccbs.borrow_mut().remove(&token);
                let Some(Ccb::Deq {
                    proc,
                    laddr,
                    lsync,
                    nbytes,
                    ..
                }) = ccb
                else {
                    debug_assert!(cs.crashes_possible, "DeqReply with no matching CCB");
                    return;
                };
                let take = (data.len() as u32).min(nbytes) as usize;
                move_data(node, cs, k, take as u32, false).await;
                write_mem(cs, proc, laddr, &data[..take]);
                if let Some(f) = lsync {
                    charge(cs, k.c).await;
                    set_flag(cs, proc, f);
                }
            }
            None => {
                // Remote queue empty: re-probe per the policy; a bounded
                // schedule eventually times the DEQ out.
                let Some(Ccb::Deq { proc, attempts, .. }) =
                    node.ccbs.borrow().get(&token).cloned()
                else {
                    return;
                };
                let policy = cs.spec.deq_retry;
                if policy.give_up_after(attempts + 1) {
                    node.ccbs.borrow_mut().remove(&token);
                    poison_proc(cs.proc(proc), CommError::Timeout);
                    return;
                }
                let wait = policy.delay_us(attempts);
                if let Some(Ccb::Deq { attempts, .. }) = node.ccbs.borrow_mut().get_mut(&token) {
                    *attempts += 1;
                }
                let ctx = cs.ctx.clone();
                let input = node.proxy_input.clone();
                cs.ctx.spawn(async move {
                    ctx.delay(Dur::from_us(wait)).await;
                    let _ = input.try_send(ProxyInput::RetryDeq(token));
                });
            }
        },
        WireMsg::Ack { token } => {
            let ccb = node.ccbs.borrow_mut().remove(&token);
            let Some(Ccb::PutAck { proc, lsync }) = ccb else {
                debug_assert!(cs.crashes_possible, "Ack with no matching CCB");
                return;
            };
            if let Some(f) = lsync {
                charge(cs, k.c).await;
                set_flag(cs, proc, f);
            }
        }
        WireMsg::LinkAck { .. }
        | WireMsg::LinkNack { .. }
        | WireMsg::Hello { .. }
        | WireMsg::HelloAck { .. } => {
            debug_assert!(false, "link control leaked into protocol handler");
        }
    }
}

async fn retry_deq(node: &NodeState, cs: &ClusterState, k: &Costs, token: u64) {
    let Some(Ccb::Deq {
        proc,
        target,
        nbytes,
        ..
    }) = node.ccbs.borrow().get(&token).cloned()
    else {
        return;
    };
    charge(cs, k.a).await;
    let dst_node = cs.proc(target.proc).node;
    send_wire(
        node,
        dst_node,
        WireMsg::DeqReq {
            dst: target.proc,
            rq: target.rq,
            nbytes,
            origin: node.id,
            token,
        },
        0,
        Some(proc),
    )
    .await;
}
