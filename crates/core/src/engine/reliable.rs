//! Reliable delivery over the (possibly faulty) interconnect.
//!
//! The paper assumes a lossless network; this module removes that
//! assumption so the fault-injection substrate (`mproxy_simnet::FaultPlan`)
//! can exercise the fabric. Each node's communication agent owns one
//! [`LinkLayer`] implementing a per-destination sliding protocol:
//!
//! * every data message carries a per-destination **sequence number**
//!   (starting at 1; 0 marks unsequenced control traffic) and a structural
//!   **checksum** of its payload;
//! * the receiving agent **acknowledges** every sequenced packet — also
//!   duplicates, so lost ACKs heal — **NACKs** checksum failures for an
//!   immediate resend, discards duplicates, and holds out-of-order
//!   arrivals in a reorder buffer until the gap fills, delivering
//!   **exactly once, in order**;
//! * the sender keeps unacknowledged messages in a pending table and
//!   retransmits on a timer following [`RetryPolicy`] exponential backoff;
//!   when the budget is exhausted the destination is declared dead and
//!   the submitting process is failed with [`CommError::Unreachable`]
//!   instead of waiting forever.
//!
//! The layer is engaged only when the cluster is built with a fault plan
//! ([`crate::Cluster::new_with_faults`]); fault-free clusters take the
//! original direct send path and their timing is bit-identical to before.
//!
//! Failure surfacing: the discrete-event executor has no cancellation, so
//! a failed process is *poisoned* — its [`CommError`] is recorded, every
//! synchronisation-flag counter is bumped past any realistic target to
//! wake waiters, and its receive queues are closed. Waiters using
//! [`crate::Proc::wait_flag_result`] observe the error; plain waits panic
//! with the error message rather than deadlock.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use crate::fxhash::FxHashMap;
use std::rc::Rc;

use mproxy_des::{Dur, SimCtx, SimTime, TimerHandle, TimerOutcome};
use mproxy_simnet::{NetPort, NodeId, Packet};

use crate::addr::ProcId;
use crate::cluster::{ClusterState, NodeState, ProcState};
use crate::engine::WireMsg;
use crate::error::CommError;
use crate::retry::RetryPolicy;

/// Flag counters of a poisoned process are advanced by this much, waking
/// any waiter regardless of its target.
pub(crate) const POISON_BUMP: u64 = 1 << 32;

/// Marks `ps` as failed with `err`: records the error, releases all flag
/// waiters, and closes receive queues. Idempotent (first error wins).
pub(crate) fn poison_proc(ps: &ProcState, err: CommError) {
    {
        let mut slot = ps.comm_error.borrow_mut();
        if slot.is_some() {
            return;
        }
        *slot = Some(err);
    }
    for c in ps.flags.borrow().iter() {
        c.add(POISON_BUMP);
    }
    for q in ps.queues.borrow().iter() {
        q.close();
    }
}

/// Structural FNV-1a checksum of a wire message. Covers every field the
/// receiver acts on; corruption is modelled by the packet's `corrupted`
/// flag, which receivers treat as a mismatch.
pub(crate) fn wire_checksum(msg: &WireMsg) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    struct Fnv(u64);
    impl Fnv {
        fn byte(&mut self, b: u8) {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(PRIME);
        }
        fn u64(&mut self, v: u64) {
            for b in v.to_le_bytes() {
                self.byte(b);
            }
        }
        fn u32(&mut self, v: u32) {
            self.u64(u64::from(v));
        }
        fn bytes(&mut self, data: &[u8]) {
            // Word-at-a-time: payloads dominate the hash cost, and a
            // structural checksum only needs to be deterministic and
            // sensitive, not byte-serial.
            self.u64(data.len() as u64);
            let mut chunks = data.chunks_exact(8);
            for c in chunks.by_ref() {
                let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
                self.0 = (self.0 ^ w).wrapping_mul(PRIME);
            }
            for &b in chunks.remainder() {
                self.byte(b);
            }
        }
        fn flag(&mut self, f: Option<crate::addr::FlagId>) {
            match f {
                Some(id) => {
                    self.byte(1);
                    self.u32(id.0);
                }
                None => self.byte(0),
            }
        }
        fn ack(&mut self, a: Option<(usize, u64)>) {
            match a {
                Some((node, token)) => {
                    self.byte(1);
                    self.u64(node as u64);
                    self.u64(token);
                }
                None => self.byte(0),
            }
        }
    }
    let mut h = Fnv(OFFSET);
    match msg {
        WireMsg::PutData {
            dst,
            raddr,
            data,
            rsync,
            ack,
            dma,
        } => {
            h.byte(1);
            h.u32(dst.0);
            h.u64(raddr.0);
            h.bytes(data);
            h.flag(*rsync);
            h.ack(*ack);
            h.byte(u8::from(*dma));
        }
        WireMsg::GetReq {
            dst,
            raddr,
            nbytes,
            rsync,
            origin,
            token,
            dma,
        } => {
            h.byte(2);
            h.u32(dst.0);
            h.u64(raddr.0);
            h.u32(*nbytes);
            h.flag(*rsync);
            h.u64(*origin as u64);
            h.u64(*token);
            h.byte(u8::from(*dma));
        }
        WireMsg::GetReply { token, data, dma } => {
            h.byte(3);
            h.u64(*token);
            h.bytes(data);
            h.byte(u8::from(*dma));
        }
        WireMsg::EnqData {
            dst,
            rq,
            data,
            rsync,
            ack,
        } => {
            h.byte(4);
            h.u32(dst.0);
            h.u32(rq.0);
            h.bytes(data);
            h.flag(*rsync);
            h.ack(*ack);
        }
        WireMsg::DeqReq {
            dst,
            rq,
            nbytes,
            origin,
            token,
        } => {
            h.byte(5);
            h.u32(dst.0);
            h.u32(rq.0);
            h.u32(*nbytes);
            h.u64(*origin as u64);
            h.u64(*token);
        }
        WireMsg::DeqReply { token, data } => {
            h.byte(6);
            h.u64(*token);
            match data {
                Some(d) => {
                    h.byte(1);
                    h.bytes(d);
                }
                None => h.byte(0),
            }
        }
        WireMsg::Ack { token } => {
            h.byte(7);
            h.u64(*token);
        }
        WireMsg::LinkAck { seq } => {
            h.byte(8);
            h.u64(*seq);
        }
        WireMsg::LinkNack { seq } => {
            h.byte(9);
            h.u64(*seq);
        }
    }
    h.0
}

/// Link-layer protocol counters of one node (inputs to
/// [`crate::FaultReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Timer- and NACK-driven retransmissions.
    pub retransmits: u64,
    /// Sequenced packets acknowledged on arrival.
    pub acks_sent: u64,
    /// Checksum failures NACKed back to the sender.
    pub nacks_sent: u64,
    /// Duplicate arrivals discarded by sequence check.
    pub dups_discarded: u64,
    /// Out-of-order arrivals parked in the reorder buffer.
    pub held_out_of_order: u64,
    /// Pending sends abandoned after budget exhaustion.
    pub unreachable: u64,
}

#[derive(Debug, Clone)]
struct Pending {
    msg: WireMsg,
    payload: u32,
    /// Process to fail if the budget runs out (None for replies whose
    /// originating process the responder does not know).
    owner: Option<ProcId>,
    /// Handle onto the current retransmission timer, so an ACK disarms it
    /// immediately instead of leaving a dead calendar event to churn
    /// through. Set by the retransmit loop once it arms its first timer.
    timer: Option<TimerHandle>,
}

/// Per-node reliable-delivery state. Self-contained (owns clones of the
/// sim context and network port) so retransmission timers capture only an
/// `Rc<LinkLayer>`.
pub(crate) struct LinkLayer {
    ctx: SimCtx,
    node: NodeId,
    port: NetPort<WireMsg>,
    policy: RetryPolicy,
    procs: Vec<Rc<ProcState>>,
    next_seq: RefCell<FxHashMap<NodeId, u64>>,
    pending: RefCell<FxHashMap<(NodeId, u64), Pending>>,
    /// Next expected sequence per source node (first is 1).
    expected: RefCell<FxHashMap<NodeId, u64>>,
    /// Out-of-order arrivals per source, keyed by sequence.
    held: RefCell<FxHashMap<NodeId, BTreeMap<u64, WireMsg>>>,
    stats: RefCell<LinkStats>,
    /// Set by [`LinkLayer::quiesce`] at cluster shutdown: later sends go
    /// out untracked (fire-and-forget) instead of arming retransmission
    /// timers against peers that no longer service their input.
    closed: Cell<bool>,
}

impl LinkLayer {
    pub(crate) fn new(
        ctx: SimCtx,
        node: NodeId,
        port: NetPort<WireMsg>,
        policy: RetryPolicy,
        procs: Vec<Rc<ProcState>>,
    ) -> Rc<LinkLayer> {
        Rc::new(LinkLayer {
            ctx,
            node,
            port,
            policy,
            procs,
            next_seq: RefCell::new(FxHashMap::default()),
            pending: RefCell::new(FxHashMap::default()),
            expected: RefCell::new(FxHashMap::default()),
            held: RefCell::new(FxHashMap::default()),
            stats: RefCell::new(LinkStats::default()),
            closed: Cell::new(false),
        })
    }

    pub(crate) fn stats(&self) -> LinkStats {
        *self.stats.borrow()
    }

    /// Sends `msg` under reliable delivery: stamp the next sequence for
    /// `dst`, remember it as pending, transmit, and arm the first
    /// retransmission timer.
    pub(crate) async fn send_reliable(
        self: Rc<Self>,
        dst: NodeId,
        msg: WireMsg,
        payload: u32,
        owner: Option<ProcId>,
    ) {
        let seq = {
            let mut m = self.next_seq.borrow_mut();
            let slot = m.entry(dst).or_insert(0);
            *slot += 1;
            *slot
        };
        let checksum = wire_checksum(&msg);
        if self.closed.get() {
            // Shutdown linger: a stalled engine draining its backlog after
            // the run ended may still answer peers that are already gone.
            // Transmit once, never retry, never declare anyone unreachable.
            self.port
                .send_tagged(dst, msg, payload, seq, checksum)
                .await;
            return;
        }
        self.pending.borrow_mut().insert(
            (dst, seq),
            Pending {
                msg: msg.clone(),
                payload,
                owner,
                timer: None,
            },
        );
        self.port
            .send_tagged(dst, msg, payload, seq, checksum)
            .await;
        self.arm_retransmit_loop(dst, seq);
    }

    /// Spawns the retransmission loop for `(dst, seq)`: one task for the
    /// whole lifetime of the pending entry, sleeping on a cancellable
    /// [`mproxy_des::Timer`] per attempt. An arriving ACK disarms the
    /// current timer through the handle stashed in the pending table, so
    /// the loop ends at the instant of acknowledgment and the calendar
    /// never fires a dead retransmission event — the common case on a
    /// mostly-healthy network.
    fn arm_retransmit_loop(self: &Rc<Self>, dst: NodeId, seq: u64) {
        let link = Rc::clone(self);
        self.ctx.clone().spawn(async move {
            let mut attempt: u32 = 0;
            loop {
                let timer = link
                    .ctx
                    .timer(Dur::from_us(link.policy.delay_us(attempt)));
                {
                    let mut pending = link.pending.borrow_mut();
                    let Some(p) = pending.get_mut(&(dst, seq)) else {
                        // Acknowledged before the timer was even armed.
                        break;
                    };
                    p.timer = Some(timer.handle());
                }
                if timer.await == TimerOutcome::Cancelled {
                    // Acknowledged (or quiesced); the entry is gone.
                    break;
                }
                // Fired. The entry can still be gone: an ACK processed at
                // the very instant of the deadline finds the timer already
                // in its fired state, and cancelling is then a no-op.
                let entry = link
                    .pending
                    .borrow()
                    .get(&(dst, seq))
                    .map(|p| (p.msg.clone(), p.payload));
                let Some((msg, payload)) = entry else { break };
                let sent_so_far = attempt + 1;
                if link.policy.give_up_after(sent_so_far) {
                    let owner = link
                        .pending
                        .borrow_mut()
                        .remove(&(dst, seq))
                        .and_then(|p| p.owner);
                    link.stats.borrow_mut().unreachable += 1;
                    if let Some(p) = owner {
                        poison_proc(
                            &link.procs[p.0 as usize],
                            CommError::Unreachable {
                                dst,
                                attempts: sent_so_far,
                            },
                        );
                    }
                    break;
                }
                link.stats.borrow_mut().retransmits += 1;
                let checksum = wire_checksum(&msg);
                link.port.send_tagged(dst, msg, payload, seq, checksum).await;
                attempt += 1;
                // Give the engine one scheduling round before re-arming,
                // mirroring the queue round-trip of the former
                // spawn-a-task-per-attempt design so event ordering (and
                // every results reproduction) stays byte-identical.
                link.ctx.yield_now().await;
            }
        });
    }

    /// Abandons all retransmission state. Called at cluster shutdown:
    /// once every process body has finished, all message-level results
    /// have provably arrived, so any still-pending entry is only a
    /// link-level ACK the peer never echoed (the peer may already be
    /// gone). Draining the map and cancelling every retransmission timer
    /// ends the retry loops at this very instant instead of letting them
    /// retransmit into closed engines until they declare the node
    /// unreachable.
    pub(crate) fn quiesce(&self) {
        self.closed.set(true);
        for (_, p) in self.pending.borrow_mut().drain() {
            if let Some(t) = p.timer {
                t.cancel();
            }
        }
        self.held.borrow_mut().clear();
    }

    /// Sends unsequenced control traffic (ACK/NACK). Not retransmitted:
    /// a lost ACK is healed by the peer's timer plus our duplicate re-ACK;
    /// a lost NACK by the peer's timer alone.
    async fn send_control(&self, dst: NodeId, msg: WireMsg) {
        let checksum = wire_checksum(&msg);
        self.port.send_tagged(dst, msg, 0, 0, checksum).await;
    }

    /// Processes one arriving packet, returning the data messages now
    /// deliverable to the protocol engine (in order; possibly several when
    /// a gap closes, possibly none).
    pub(crate) async fn accept(&self, pkt: Packet<WireMsg>) -> Vec<WireMsg> {
        let Packet {
            src,
            seq,
            checksum,
            corrupted,
            message,
            ..
        } = pkt;
        let valid = !corrupted && checksum == wire_checksum(&message);
        match message {
            WireMsg::LinkAck { seq: acked } => {
                // Corrupted control is dropped; recovery is timer-driven.
                if valid {
                    let entry = self.pending.borrow_mut().remove(&(src, acked));
                    if let Some(t) = entry.and_then(|p| p.timer) {
                        // Disarm the retransmission timer right now: its
                        // calendar entry is discarded lazily and never
                        // fires as an event.
                        t.cancel();
                    }
                }
                Vec::new()
            }
            WireMsg::LinkNack { seq: nacked } => {
                if valid {
                    self.stats.borrow_mut().retransmits += 1;
                    let entry = self
                        .pending
                        .borrow()
                        .get(&(src, nacked))
                        .map(|p| (p.msg.clone(), p.payload));
                    if let Some((msg, payload)) = entry {
                        let ck = wire_checksum(&msg);
                        self.port.send_tagged(src, msg, payload, nacked, ck).await;
                    }
                }
                Vec::new()
            }
            message if seq == 0 => {
                // Unsequenced data only occurs when reliability is off for
                // the sender; deliver as-is (nothing to ACK or dedup).
                if valid {
                    vec![message]
                } else {
                    Vec::new()
                }
            }
            message => {
                if !valid {
                    self.stats.borrow_mut().nacks_sent += 1;
                    self.send_control(src, WireMsg::LinkNack { seq }).await;
                    return Vec::new();
                }
                // ACK everything valid — including duplicates, so the
                // sender stops retransmitting even if its first ACK died.
                self.stats.borrow_mut().acks_sent += 1;
                self.send_control(src, WireMsg::LinkAck { seq }).await;
                let expected = *self.expected.borrow().get(&src).unwrap_or(&1);
                if seq < expected {
                    self.stats.borrow_mut().dups_discarded += 1;
                    return Vec::new();
                }
                if seq > expected {
                    // Re-inserting a duplicate of a held seq just overwrites
                    // it with identical content.
                    self.stats.borrow_mut().held_out_of_order += 1;
                    self.held
                        .borrow_mut()
                        .entry(src)
                        .or_default()
                        .insert(seq, message);
                    return Vec::new();
                }
                let mut out = vec![message];
                let mut next = expected + 1;
                {
                    let mut held = self.held.borrow_mut();
                    if let Some(h) = held.get_mut(&src) {
                        while let Some(m) = h.remove(&next) {
                            out.push(m);
                            next += 1;
                        }
                    }
                }
                self.expected.borrow_mut().insert(src, next);
                out
            }
        }
    }
}

impl std::fmt::Debug for LinkLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkLayer")
            .field("node", &self.node)
            .field("pending", &self.pending.borrow().len())
            .finish()
    }
}

/// Sends a wire message from `node`, through its link layer when
/// reliability is engaged, directly otherwise. `owner` names the process
/// to fail if the destination never acknowledges.
pub(crate) async fn send_wire(
    node: &NodeState,
    dst: NodeId,
    msg: WireMsg,
    payload: u32,
    owner: Option<ProcId>,
) {
    match &node.link {
        Some(link) => Rc::clone(link).send_reliable(dst, msg, payload, owner).await,
        None => node.port.send(dst, msg, payload).await,
    }
}

/// If the fault plan stalls `node` right now, freezes the caller (the
/// node's communication agent) until the window ends.
pub(crate) async fn stall_gate(node: &NodeState, cs: &ClusterState) {
    let Some(faults) = &cs.faults else { return };
    // Re-check after waking: windows may overlap or abut.
    while let Some(end_us) = faults.stall_end(node.id, cs.ctx.now().as_us()) {
        cs.ctx
            .delay_until(SimTime::ZERO + Dur::from_us(end_us))
            .await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Addr, FlagId};
    use bytes::Bytes;

    fn put(data: &'static [u8], rsync: Option<FlagId>) -> WireMsg {
        WireMsg::PutData {
            dst: ProcId(1),
            raddr: Addr(64),
            data: Bytes::from_static(data),
            rsync,
            ack: None,
            dma: false,
        }
    }

    #[test]
    fn checksum_distinguishes_fields_and_variants() {
        let a = wire_checksum(&put(b"hello", None));
        let b = wire_checksum(&put(b"hellp", None));
        let c = wire_checksum(&put(b"hello", Some(FlagId(0))));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(
            wire_checksum(&WireMsg::Ack { token: 5 }),
            wire_checksum(&WireMsg::LinkAck { seq: 5 })
        );
        // Deterministic.
        assert_eq!(a, wire_checksum(&put(b"hello", None)));
    }

    #[test]
    fn checksum_covers_deq_reply_none_vs_empty() {
        let none = wire_checksum(&WireMsg::DeqReply {
            token: 1,
            data: None,
        });
        let empty = wire_checksum(&WireMsg::DeqReply {
            token: 1,
            data: Some(Bytes::new()),
        });
        assert_ne!(none, empty);
    }
}
