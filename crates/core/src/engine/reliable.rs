//! Reliable delivery over the (possibly faulty) interconnect.
//!
//! The paper assumes a lossless network; this module removes that
//! assumption so the fault-injection substrate (`mproxy_simnet::FaultPlan`)
//! can exercise the fabric. Each node's communication agent owns one
//! [`LinkLayer`] implementing a per-destination sliding protocol:
//!
//! * every data message carries a per-destination **sequence number**
//!   (starting at 1; 0 marks unsequenced control traffic) and a structural
//!   **checksum** of its payload;
//! * the receiving agent **acknowledges** every sequenced packet — also
//!   duplicates, so lost ACKs heal — **NACKs** checksum failures for an
//!   immediate resend, discards duplicates, and holds out-of-order
//!   arrivals in a reorder buffer until the gap fills, delivering
//!   **exactly once, in order**;
//! * acknowledgements are **cumulative**: an ACK carries the receiver's
//!   in-order delivery watermark and retires every pending entry at or
//!   below it, so the sender's retransmit buffer reflects exactly what the
//!   receiver has *consumed* (an out-of-order packet parked in the reorder
//!   buffer stays the sender's responsibility until its gap fills — which
//!   is what makes crash recovery sound);
//! * the sender keeps unacknowledged messages in a **bounded** pending
//!   table (at most [`crate::ClusterSpec::link_window`] per destination;
//!   overflow parks in a FIFO backlog and is promoted as ACKs free slots,
//!   so memory stays O(window) under sustained drop storms) and
//!   retransmits on a timer following [`RetryPolicy`] exponential backoff;
//!   when the budget is exhausted the destination is declared dead and
//!   the submitting process is failed with [`CommError::Unreachable`]
//!   instead of waiting forever;
//! * every connection carries an **epoch** (the upper [`EPOCH_BITS`] bits
//!   of the wire sequence). A proxy crash ([`FaultPlan::crash`]) loses all
//!   volatile link state — sequence counters, the retransmit buffer, the
//!   backlog — and restarts into the next epoch, announcing itself with a
//!   `HELLO { epoch, last_delivered }` handshake: survivors prune their
//!   retransmit buffers to the reported watermark, replay the remainder
//!   idempotently, purge stale-epoch holds, and answer `HELLO-ACK` with
//!   their own watermark so the restarted node resumes numbering where
//!   they expect it. Work that was in flight from the crashed node and
//!   never acknowledged is unrecoverable; its owners are failed with
//!   [`CommError::EpochReset`].
//!
//! The layer is engaged only when the cluster is built with a fault plan
//! ([`crate::Cluster::new_with_faults`]); fault-free clusters take the
//! original direct send path and their timing is bit-identical to before.
//! Epochs start at 0, so runs without crash windows put identical bits on
//! the wire as before the epoch field existed.
//!
//! Failure surfacing: the discrete-event executor has no cancellation, so
//! a failed process is *poisoned* — its [`CommError`] is recorded, every
//! synchronisation-flag counter is bumped past any realistic target to
//! wake waiters, and its receive queues are closed. Waiters using
//! [`crate::Proc::wait_flag_result`] observe the error; plain waits panic
//! with the error message rather than deadlock.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};

use crate::fxhash::FxHashMap;
use std::rc::Rc;

use mproxy_des::{Dur, SimCtx, SimTime, TimerHandle, TimerOutcome};
use mproxy_simnet::{CrashWindow, NetPort, NodeId, Packet};

use crate::addr::ProcId;
use crate::cluster::{ClusterState, NodeState, ProcState};
use crate::engine::{Ccb, ProxyInput, WireMsg};
use crate::error::CommError;
use crate::retry::RetryPolicy;

/// Flag counters of a poisoned process are advanced by this much, waking
/// any waiter regardless of its target.
pub(crate) const POISON_BUMP: u64 = 1 << 32;

/// Upper bits of the wire sequence that carry the sender's epoch.
pub(crate) const EPOCH_BITS: u32 = 16;
const EPOCH_SHIFT: u32 = 64 - EPOCH_BITS;
const SEQ_MASK: u64 = (1 << EPOCH_SHIFT) - 1;

/// Interval at which a restarted proxy re-sends its HELLO until the peer
/// answers (the wire may eat either side of the handshake).
const HELLO_RETRY_US: f64 = 50.0;

/// Encodes `(epoch, seq)` into the one wire sequence field.
fn wire_seq(epoch: u32, seq: u64) -> u64 {
    debug_assert!(seq <= SEQ_MASK, "sequence overflow");
    (u64::from(epoch) << EPOCH_SHIFT) | seq
}

/// Splits a wire sequence into `(epoch, seq)`.
fn split_seq(wire: u64) -> (u32, u64) {
    ((wire >> EPOCH_SHIFT) as u32, wire & SEQ_MASK)
}

/// Marks `ps` as failed with `err`: records the error, releases all flag
/// waiters, and closes receive queues. Idempotent (first error wins).
pub(crate) fn poison_proc(ps: &ProcState, err: CommError) {
    {
        let mut slot = ps.comm_error.borrow_mut();
        if slot.is_some() {
            return;
        }
        *slot = Some(err);
    }
    for c in ps.flags.borrow().iter() {
        c.add(POISON_BUMP);
    }
    for q in ps.queues.borrow().iter() {
        q.close();
    }
    // Wake submitters blocked on command-queue credits.
    if let Some(c) = &ps.credits {
        c.close();
    }
}

/// Structural FNV-1a checksum of a wire message. Covers every field the
/// receiver acts on; corruption is modelled by the packet's `corrupted`
/// flag, which receivers treat as a mismatch.
pub(crate) fn wire_checksum(msg: &WireMsg) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    struct Fnv(u64);
    impl Fnv {
        fn byte(&mut self, b: u8) {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(PRIME);
        }
        fn u64(&mut self, v: u64) {
            for b in v.to_le_bytes() {
                self.byte(b);
            }
        }
        fn u32(&mut self, v: u32) {
            self.u64(u64::from(v));
        }
        fn bytes(&mut self, data: &[u8]) {
            // Word-at-a-time: payloads dominate the hash cost, and a
            // structural checksum only needs to be deterministic and
            // sensitive, not byte-serial.
            self.u64(data.len() as u64);
            let mut chunks = data.chunks_exact(8);
            for c in chunks.by_ref() {
                let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
                self.0 = (self.0 ^ w).wrapping_mul(PRIME);
            }
            for &b in chunks.remainder() {
                self.byte(b);
            }
        }
        fn flag(&mut self, f: Option<crate::addr::FlagId>) {
            match f {
                Some(id) => {
                    self.byte(1);
                    self.u32(id.0);
                }
                None => self.byte(0),
            }
        }
        fn ack(&mut self, a: Option<(usize, u64)>) {
            match a {
                Some((node, token)) => {
                    self.byte(1);
                    self.u64(node as u64);
                    self.u64(token);
                }
                None => self.byte(0),
            }
        }
    }
    let mut h = Fnv(OFFSET);
    match msg {
        WireMsg::PutData {
            dst,
            raddr,
            data,
            rsync,
            ack,
            dma,
        } => {
            h.byte(1);
            h.u32(dst.0);
            h.u64(raddr.0);
            h.bytes(data);
            h.flag(*rsync);
            h.ack(*ack);
            h.byte(u8::from(*dma));
        }
        WireMsg::GetReq {
            dst,
            raddr,
            nbytes,
            rsync,
            origin,
            token,
            dma,
        } => {
            h.byte(2);
            h.u32(dst.0);
            h.u64(raddr.0);
            h.u32(*nbytes);
            h.flag(*rsync);
            h.u64(*origin as u64);
            h.u64(*token);
            h.byte(u8::from(*dma));
        }
        WireMsg::GetReply { token, data, dma } => {
            h.byte(3);
            h.u64(*token);
            h.bytes(data);
            h.byte(u8::from(*dma));
        }
        WireMsg::EnqData {
            dst,
            rq,
            data,
            rsync,
            ack,
        } => {
            h.byte(4);
            h.u32(dst.0);
            h.u32(rq.0);
            h.bytes(data);
            h.flag(*rsync);
            h.ack(*ack);
        }
        WireMsg::DeqReq {
            dst,
            rq,
            nbytes,
            origin,
            token,
        } => {
            h.byte(5);
            h.u32(dst.0);
            h.u32(rq.0);
            h.u32(*nbytes);
            h.u64(*origin as u64);
            h.u64(*token);
        }
        WireMsg::DeqReply { token, data } => {
            h.byte(6);
            h.u64(*token);
            match data {
                Some(d) => {
                    h.byte(1);
                    h.bytes(d);
                }
                None => h.byte(0),
            }
        }
        WireMsg::Ack { token } => {
            h.byte(7);
            h.u64(*token);
        }
        WireMsg::LinkAck { seq } => {
            h.byte(8);
            h.u64(*seq);
        }
        WireMsg::LinkNack { seq } => {
            h.byte(9);
            h.u64(*seq);
        }
        WireMsg::Hello {
            epoch,
            last_delivered,
        } => {
            h.byte(10);
            h.u32(*epoch);
            h.u64(*last_delivered);
        }
        WireMsg::HelloAck {
            epoch,
            last_delivered,
        } => {
            h.byte(11);
            h.u32(*epoch);
            h.u64(*last_delivered);
        }
    }
    h.0
}

/// One node's reliable-link state digest: its current epoch plus, per
/// peer and sorted by peer, `(peer, last sequence sent, next expected)`.
/// Compared across serial/parallel/repeat runs by the crash-recovery
/// determinism checks.
pub type LinkSnapshot = (u32, Vec<(NodeId, u64, u64)>);

/// Link-layer protocol counters of one node (inputs to
/// [`crate::FaultReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Timer- and NACK-driven retransmissions.
    pub retransmits: u64,
    /// Sequenced packets acknowledged on arrival.
    pub acks_sent: u64,
    /// Checksum failures NACKed back to the sender.
    pub nacks_sent: u64,
    /// Duplicate arrivals discarded by sequence check.
    pub dups_discarded: u64,
    /// Out-of-order arrivals parked in the reorder buffer.
    pub held_out_of_order: u64,
    /// Pending sends abandoned after budget exhaustion.
    pub unreachable: u64,
    /// Highest simultaneous retransmit-buffer occupancy towards any one
    /// destination (bounded by the configured window).
    pub peak_pending: u64,
    /// Sends parked in the bounded-window backlog instead of entering the
    /// retransmit buffer immediately.
    pub backlogged: u64,
    /// HELLO announcements transmitted after crash restarts (including
    /// retries).
    pub hellos_sent: u64,
    /// Retransmit-buffer entries replayed for a restarted peer.
    pub replayed: u64,
    /// Packets discarded because their epoch did not match the sender's
    /// current incarnation.
    pub stale_discarded: u64,
    /// Epoch resyncs completed (HELLO-ACK accepted after a restart).
    pub epoch_resyncs: u64,
}

#[derive(Debug, Clone)]
struct Pending {
    msg: WireMsg,
    payload: u32,
    /// Process to fail if the budget runs out (None for replies whose
    /// originating process the responder does not know).
    owner: Option<ProcId>,
    /// Handle onto the current retransmission timer, so an ACK disarms it
    /// immediately instead of leaving a dead calendar event to churn
    /// through. Set by the retransmit loop once it arms its first timer.
    timer: Option<TimerHandle>,
}

/// A send parked behind a full window (or an unfinished epoch resync),
/// not yet assigned a sequence number.
#[derive(Debug)]
struct Parked {
    msg: WireMsg,
    payload: u32,
    owner: Option<ProcId>,
}

/// Per-node reliable-delivery state. Self-contained (owns clones of the
/// sim context and network port) so retransmission timers capture only an
/// `Rc<LinkLayer>`.
pub(crate) struct LinkLayer {
    ctx: SimCtx,
    node: NodeId,
    port: NetPort<WireMsg>,
    policy: RetryPolicy,
    procs: Vec<Rc<ProcState>>,
    /// Retransmit-buffer cap per destination; overflow parks in `backlog`.
    window: usize,
    /// This node's incarnation; bumped by [`LinkLayer::crash`].
    epoch: Cell<u32>,
    /// Last epoch observed per peer (via its sequenced traffic and HELLOs).
    peer_epoch: RefCell<FxHashMap<NodeId, u32>>,
    next_seq: RefCell<FxHashMap<NodeId, u64>>,
    /// Un-ACKed sends per destination, ordered by sequence so cumulative
    /// ACK pruning and crash replay walk them in order.
    pending: RefCell<FxHashMap<NodeId, BTreeMap<u64, Pending>>>,
    /// FIFO of sends awaiting a window slot (or the end of a resync).
    backlog: RefCell<FxHashMap<NodeId, VecDeque<Parked>>>,
    /// Peers this (restarted) node still owes a HELLO-ACK from; data sends
    /// towards them park in the backlog until the handshake completes.
    resyncing: RefCell<Vec<NodeId>>,
    /// Next expected sequence per source node (first is 1). Survives a
    /// crash: delivered data lives in process memory, which the crash does
    /// not erase, and the watermark is journaled with it.
    expected: RefCell<FxHashMap<NodeId, u64>>,
    /// Out-of-order arrivals per source, keyed by sequence.
    held: RefCell<FxHashMap<NodeId, BTreeMap<u64, WireMsg>>>,
    stats: RefCell<LinkStats>,
    /// Set by [`LinkLayer::quiesce`] at cluster shutdown: later sends go
    /// out untracked (fire-and-forget) instead of arming retransmission
    /// timers against peers that no longer service their input.
    closed: Cell<bool>,
}

impl LinkLayer {
    pub(crate) fn new(
        ctx: SimCtx,
        node: NodeId,
        port: NetPort<WireMsg>,
        policy: RetryPolicy,
        procs: Vec<Rc<ProcState>>,
        window: usize,
    ) -> Rc<LinkLayer> {
        assert!(window >= 1, "link window must be at least 1");
        Rc::new(LinkLayer {
            ctx,
            node,
            port,
            policy,
            procs,
            window,
            epoch: Cell::new(0),
            peer_epoch: RefCell::new(FxHashMap::default()),
            next_seq: RefCell::new(FxHashMap::default()),
            pending: RefCell::new(FxHashMap::default()),
            backlog: RefCell::new(FxHashMap::default()),
            resyncing: RefCell::new(Vec::new()),
            expected: RefCell::new(FxHashMap::default()),
            held: RefCell::new(FxHashMap::default()),
            stats: RefCell::new(LinkStats::default()),
            closed: Cell::new(false),
        })
    }

    pub(crate) fn stats(&self) -> LinkStats {
        *self.stats.borrow()
    }

    /// This node's current epoch and, per peer it has link state with,
    /// the last sequence sent and the next expected — sorted by peer for
    /// byte-stable determinism checks.
    pub(crate) fn snapshot(&self) -> LinkSnapshot {
        let next_seq = self.next_seq.borrow();
        let expected = self.expected.borrow();
        let mut peers: Vec<NodeId> = next_seq.keys().chain(expected.keys()).copied().collect();
        peers.sort_unstable();
        peers.dedup();
        let rows = peers
            .into_iter()
            .map(|p| {
                (
                    p,
                    next_seq.get(&p).copied().unwrap_or(0),
                    expected.get(&p).copied().unwrap_or(1),
                )
            })
            .collect();
        (self.epoch.get(), rows)
    }

    fn is_resyncing(&self, dst: NodeId) -> bool {
        self.resyncing.borrow().contains(&dst)
    }

    /// Sends `msg` under reliable delivery. If the window towards `dst`
    /// has a free slot (and no epoch resync is in progress), the message
    /// is stamped with the next sequence, remembered as pending, and
    /// transmitted with its first retransmission timer armed; otherwise it
    /// parks in the FIFO backlog and is promoted when ACKs free slots.
    pub(crate) async fn send_reliable(
        self: Rc<Self>,
        dst: NodeId,
        msg: WireMsg,
        payload: u32,
        owner: Option<ProcId>,
    ) {
        if self.closed.get() {
            // Shutdown linger: a stalled engine draining its backlog after
            // the run ended may still answer peers that are already gone.
            // Transmit once, never retry, never declare anyone unreachable.
            let seq = self.bump_seq(dst);
            let checksum = wire_checksum(&msg);
            self.port
                .send_tagged(dst, msg, payload, wire_seq(self.epoch.get(), seq), checksum)
                .await;
            return;
        }
        let has_slot = !self.is_resyncing(dst)
            && self.backlog.borrow().get(&dst).is_none_or(VecDeque::is_empty)
            && self.pending.borrow().get(&dst).map_or(0, BTreeMap::len) < self.window;
        if !has_slot {
            self.stats.borrow_mut().backlogged += 1;
            self.backlog
                .borrow_mut()
                .entry(dst)
                .or_default()
                .push_back(Parked {
                    msg,
                    payload,
                    owner,
                });
            return;
        }
        self.transmit_new(dst, msg, payload, owner).await;
    }

    fn bump_seq(&self, dst: NodeId) -> u64 {
        let mut m = self.next_seq.borrow_mut();
        let slot = m.entry(dst).or_insert(0);
        *slot += 1;
        *slot
    }

    /// Assigns the next sequence towards `dst`, records the pending entry,
    /// transmits, and arms the retransmission loop.
    async fn transmit_new(
        self: &Rc<Self>,
        dst: NodeId,
        msg: WireMsg,
        payload: u32,
        owner: Option<ProcId>,
    ) {
        let seq = self.bump_seq(dst);
        let checksum = wire_checksum(&msg);
        {
            let mut pending = self.pending.borrow_mut();
            let m = pending.entry(dst).or_default();
            m.insert(
                seq,
                Pending {
                    msg: msg.clone(),
                    payload,
                    owner,
                    timer: None,
                },
            );
            let occupancy = m.len() as u64;
            let mut stats = self.stats.borrow_mut();
            if occupancy > stats.peak_pending {
                stats.peak_pending = occupancy;
            }
        }
        self.port
            .send_tagged(dst, msg, payload, wire_seq(self.epoch.get(), seq), checksum)
            .await;
        self.arm_retransmit_loop(dst, seq);
    }

    /// Promotes parked sends towards `dst` while window slots are free.
    async fn pump_backlog(self: &Rc<Self>, dst: NodeId) {
        loop {
            if self.is_resyncing(dst)
                || self.pending.borrow().get(&dst).map_or(0, BTreeMap::len) >= self.window
            {
                return;
            }
            let next = self
                .backlog
                .borrow_mut()
                .get_mut(&dst)
                .and_then(VecDeque::pop_front);
            let Some(p) = next else { return };
            self.transmit_new(dst, p.msg, p.payload, p.owner).await;
        }
    }

    /// Spawns the retransmission loop for `(dst, seq)`: one task for the
    /// whole lifetime of the pending entry, sleeping on a cancellable
    /// [`mproxy_des::Timer`] per attempt. An arriving ACK disarms the
    /// current timer through the handle stashed in the pending table, so
    /// the loop ends at the instant of acknowledgment and the calendar
    /// never fires a dead retransmission event — the common case on a
    /// mostly-healthy network. A crash drains the pending table and
    /// cancels every timer, ending the loop the same way.
    fn arm_retransmit_loop(self: &Rc<Self>, dst: NodeId, seq: u64) {
        let link = Rc::clone(self);
        self.ctx.clone().spawn(async move {
            let mut attempt: u32 = 0;
            loop {
                let timer = link
                    .ctx
                    .timer(Dur::from_us(link.policy.delay_us(attempt)));
                {
                    let mut pending = link.pending.borrow_mut();
                    let Some(p) = pending.get_mut(&dst).and_then(|m| m.get_mut(&seq)) else {
                        // Acknowledged before the timer was even armed.
                        break;
                    };
                    p.timer = Some(timer.handle());
                }
                if timer.await == TimerOutcome::Cancelled {
                    // Acknowledged (or quiesced, or crashed); the entry is
                    // gone.
                    break;
                }
                // Fired. The entry can still be gone: an ACK processed at
                // the very instant of the deadline finds the timer already
                // in its fired state, and cancelling is then a no-op.
                let entry = link
                    .pending
                    .borrow()
                    .get(&dst)
                    .and_then(|m| m.get(&seq))
                    .map(|p| (p.msg.clone(), p.payload));
                let Some((msg, payload)) = entry else { break };
                let sent_so_far = attempt + 1;
                if link.policy.give_up_after(sent_so_far) {
                    link.give_up(dst, sent_so_far);
                    break;
                }
                link.stats.borrow_mut().retransmits += 1;
                let checksum = wire_checksum(&msg);
                link.port
                    .send_tagged(dst, msg, payload, wire_seq(link.epoch.get(), seq), checksum)
                    .await;
                attempt += 1;
                // Give the engine one scheduling round before re-arming,
                // mirroring the queue round-trip of the former
                // spawn-a-task-per-attempt design so event ordering (and
                // every results reproduction) stays byte-identical.
                link.ctx.yield_now().await;
            }
        });
    }

    /// Declares `dst` dead after `attempts` unacknowledged transmissions:
    /// abandons *everything* queued towards it — the whole pending window
    /// and the parked backlog — and fails every owning process, so no
    /// parked send waits forever behind a peer that will never ACK again.
    fn give_up(&self, dst: NodeId, attempts: u32) {
        let drained = self.pending.borrow_mut().remove(&dst).unwrap_or_default();
        let parked = self.backlog.borrow_mut().remove(&dst).unwrap_or_default();
        let mut abandoned: u64 = 0;
        let mut owners = Vec::new();
        for (_, p) in drained {
            if let Some(t) = p.timer {
                t.cancel();
            }
            if let Some(o) = p.owner {
                owners.push(o);
            }
            abandoned += 1;
        }
        for p in parked {
            if let Some(o) = p.owner {
                owners.push(o);
            }
            abandoned += 1;
        }
        self.stats.borrow_mut().unreachable += abandoned;
        for o in owners {
            poison_proc(
                &self.procs[o.0 as usize],
                CommError::Unreachable { dst, attempts },
            );
        }
    }

    /// Abandons all retransmission state. Called at cluster shutdown:
    /// once every process body has finished, all message-level results
    /// have provably arrived, so any still-pending entry is only a
    /// link-level ACK the peer never echoed (the peer may already be
    /// gone). Draining the map and cancelling every retransmission timer
    /// ends the retry loops at this very instant instead of letting them
    /// retransmit into closed engines until they declare the node
    /// unreachable.
    pub(crate) fn quiesce(&self) {
        self.closed.set(true);
        for (_, m) in self.pending.borrow_mut().drain() {
            for (_, p) in m {
                if let Some(t) = p.timer {
                    t.cancel();
                }
            }
        }
        self.backlog.borrow_mut().clear();
        self.resyncing.borrow_mut().clear();
        self.held.borrow_mut().clear();
    }

    /// Simulates a proxy crash: every piece of volatile link state — the
    /// retransmit buffer, the backlog, outbound sequence counters, the
    /// reorder buffer, any unfinished resync — is lost, and the node moves
    /// into the next epoch. Owners of un-ACKed sends are failed with
    /// [`CommError::EpochReset`]: their operations may or may not have
    /// taken effect remotely and cannot be replayed transparently. The
    /// delivery watermarks (`expected`) and observed peer epochs survive:
    /// delivered data lives in process memory, which the crash does not
    /// erase, and the watermark is journaled with it.
    ///
    /// Every peer is marked as resyncing *immediately*: a command queued
    /// behind the crash instant is serviced the moment the engine thaws at
    /// restart, and without the mark it could race ahead of
    /// [`LinkLayer::restart`], transmit under the new epoch with a reset
    /// sequence counter, be silently discarded by the peer's epoch filter,
    /// and then be pruned as "delivered" by a stale watermark — a silent
    /// loss. Parked in the backlog instead, it drains after the HELLO-ACK
    /// restores sequence agreement.
    ///
    /// Returns the new epoch.
    pub(crate) fn crash(&self, nodes: usize) -> u32 {
        let epoch = self.epoch.get() + 1;
        assert!(u64::from(epoch) < (1 << EPOCH_BITS), "epoch overflow");
        self.epoch.set(epoch);
        let drained: Vec<_> = self.pending.borrow_mut().drain().collect();
        for (_, m) in drained {
            for (_, p) in m {
                if let Some(t) = p.timer {
                    t.cancel();
                }
                if let Some(o) = p.owner {
                    poison_proc(
                        &self.procs[o.0 as usize],
                        CommError::EpochReset {
                            node: self.node,
                            epoch,
                        },
                    );
                }
            }
        }
        let parked: Vec<_> = self.backlog.borrow_mut().drain().collect();
        for (_, q) in parked {
            for p in q {
                if let Some(o) = p.owner {
                    poison_proc(
                        &self.procs[o.0 as usize],
                        CommError::EpochReset {
                            node: self.node,
                            epoch,
                        },
                    );
                }
            }
        }
        self.next_seq.borrow_mut().clear();
        self.held.borrow_mut().clear();
        let mut resyncing = self.resyncing.borrow_mut();
        resyncing.clear();
        resyncing.extend((0..nodes).filter(|&p| p != self.node));
        epoch
    }

    /// Brings a crashed node back into service: starts a HELLO retry task
    /// per peer (all marked resyncing since the crash instant; data sends
    /// park in the backlog meanwhile) that announces the new epoch and
    /// this node's surviving delivery watermark until the peer's
    /// HELLO-ACK arrives — the wire may eat either side of the handshake,
    /// so it retries every [`HELLO_RETRY_US`].
    pub(crate) fn restart(self: &Rc<Self>) {
        let epoch = self.epoch.get();
        for peer in self.resyncing.borrow().clone() {
            let link = Rc::clone(self);
            self.ctx.clone().spawn(async move {
                loop {
                    if link.closed.get()
                        || link.epoch.get() != epoch
                        || !link.is_resyncing(peer)
                    {
                        break;
                    }
                    let wm = link.expected.borrow().get(&peer).copied().unwrap_or(1) - 1;
                    link.stats.borrow_mut().hellos_sent += 1;
                    link.send_control(
                        peer,
                        WireMsg::Hello {
                            epoch,
                            last_delivered: wm,
                        },
                    )
                    .await;
                    link.ctx.delay(Dur::from_us(HELLO_RETRY_US)).await;
                }
            });
        }
    }

    /// Survivor-side HELLO handling: adopt the restarted peer's new epoch,
    /// discard reorder-buffer holds from its dead incarnation, retire
    /// pending sends it reports as delivered, replay the remainder
    /// idempotently (original sequences, this node's unchanged epoch), and
    /// answer with this node's own delivery watermark so the peer resumes
    /// numbering where it is expected. Idempotent, so HELLO retries are
    /// harmless.
    async fn handle_hello(self: &Rc<Self>, src: NodeId, e: u32, last_delivered: u64) {
        let known = self.peer_epoch.borrow().get(&src).copied().unwrap_or(0);
        if e < known {
            self.stats.borrow_mut().stale_discarded += 1;
            return;
        }
        if e > known {
            self.peer_epoch.borrow_mut().insert(src, e);
            self.held.borrow_mut().remove(&src);
        }
        let (timers, replay) = {
            let mut pending = self.pending.borrow_mut();
            match pending.get_mut(&src) {
                Some(m) => {
                    let keep = m.split_off(&(last_delivered + 1));
                    let acked = std::mem::replace(m, keep);
                    let timers: Vec<_> = acked.into_values().filter_map(|p| p.timer).collect();
                    let replay: Vec<(u64, WireMsg, u32)> = m
                        .iter()
                        .map(|(s, p)| (*s, p.msg.clone(), p.payload))
                        .collect();
                    (timers, replay)
                }
                None => (Vec::new(), Vec::new()),
            }
        };
        for t in timers {
            t.cancel();
        }
        let epoch = self.epoch.get();
        self.stats.borrow_mut().replayed += replay.len() as u64;
        for (s, msg, payload) in replay {
            let ck = wire_checksum(&msg);
            self.port
                .send_tagged(src, msg, payload, wire_seq(epoch, s), ck)
                .await;
        }
        let wm = self.expected.borrow().get(&src).copied().unwrap_or(1) - 1;
        self.send_control(
            src,
            WireMsg::HelloAck {
                epoch: e,
                last_delivered: wm,
            },
        )
        .await;
        self.pump_backlog(src).await;
    }

    /// Sends unsequenced control traffic (ACK/NACK/HELLO). Not
    /// retransmitted here: a lost ACK is healed by the peer's timer plus
    /// our duplicate re-ACK; a lost NACK by the peer's timer alone; a lost
    /// HELLO or HELLO-ACK by the restart task's retry loop.
    async fn send_control(&self, dst: NodeId, msg: WireMsg) {
        let checksum = wire_checksum(&msg);
        self.port.send_tagged(dst, msg, 0, 0, checksum).await;
    }

    /// Processes one arriving packet, returning the data messages now
    /// deliverable to the protocol engine (in order; possibly several when
    /// a gap closes, possibly none).
    pub(crate) async fn accept(self: &Rc<Self>, pkt: Packet<WireMsg>) -> Vec<WireMsg> {
        let Packet {
            src,
            seq,
            checksum,
            corrupted,
            message,
            ..
        } = pkt;
        let valid = !corrupted && checksum == wire_checksum(&message);
        match message {
            WireMsg::LinkAck { seq: acked } => {
                // Corrupted control is dropped; recovery is timer-driven.
                if valid {
                    let (e, wm) = split_seq(acked);
                    if e == self.epoch.get() {
                        // Cumulative: the watermark retires every pending
                        // entry the receiver has consumed in order.
                        let timers: Vec<TimerHandle> = {
                            let mut pending = self.pending.borrow_mut();
                            match pending.get_mut(&src) {
                                Some(m) => {
                                    let keep = m.split_off(&(wm + 1));
                                    let acked_entries = std::mem::replace(m, keep);
                                    acked_entries
                                        .into_values()
                                        .filter_map(|p| p.timer)
                                        .collect()
                                }
                                None => Vec::new(),
                            }
                        };
                        for t in timers {
                            // Disarm the retransmission timers right now:
                            // their calendar entries are discarded lazily
                            // and never fire as events.
                            t.cancel();
                        }
                        self.pump_backlog(src).await;
                    } else {
                        // An echo of a dead incarnation's traffic.
                        self.stats.borrow_mut().stale_discarded += 1;
                    }
                }
                Vec::new()
            }
            WireMsg::LinkNack { seq: nacked } => {
                if valid {
                    let (e, s) = split_seq(nacked);
                    if e == self.epoch.get() {
                        let entry = self
                            .pending
                            .borrow()
                            .get(&src)
                            .and_then(|m| m.get(&s))
                            .map(|p| (p.msg.clone(), p.payload));
                        if let Some((msg, payload)) = entry {
                            self.stats.borrow_mut().retransmits += 1;
                            let ck = wire_checksum(&msg);
                            self.port.send_tagged(src, msg, payload, nacked, ck).await;
                        }
                    } else {
                        self.stats.borrow_mut().stale_discarded += 1;
                    }
                }
                Vec::new()
            }
            WireMsg::Hello {
                epoch,
                last_delivered,
            } => {
                if valid {
                    self.handle_hello(src, epoch, last_delivered).await;
                }
                Vec::new()
            }
            WireMsg::HelloAck {
                epoch,
                last_delivered,
            } => {
                if valid {
                    if epoch == self.epoch.get() && self.is_resyncing(src) {
                        // Resume numbering where the survivor expects it.
                        self.resyncing.borrow_mut().retain(|&p| p != src);
                        self.next_seq.borrow_mut().insert(src, last_delivered);
                        self.stats.borrow_mut().epoch_resyncs += 1;
                        self.pump_backlog(src).await;
                    } else {
                        self.stats.borrow_mut().stale_discarded += 1;
                    }
                }
                Vec::new()
            }
            message if seq == 0 => {
                // Unsequenced data only occurs when reliability is off for
                // the sender; deliver as-is (nothing to ACK or dedup).
                if valid {
                    vec![message]
                } else {
                    Vec::new()
                }
            }
            message => {
                if !valid {
                    self.stats.borrow_mut().nacks_sent += 1;
                    self.send_control(src, WireMsg::LinkNack { seq }).await;
                    return Vec::new();
                }
                let (e, s) = split_seq(seq);
                let known = self.peer_epoch.borrow().get(&src).copied().unwrap_or(0);
                if e != known {
                    // A dead incarnation's packet — or a new incarnation's
                    // data racing ahead of its HELLO under reordering.
                    // Discard without ACK; the sender's timer (and the
                    // handshake) heal it.
                    self.stats.borrow_mut().stale_discarded += 1;
                    return Vec::new();
                }
                let expected = *self.expected.borrow().get(&src).unwrap_or(&1);
                let mut out = Vec::new();
                if s < expected {
                    self.stats.borrow_mut().dups_discarded += 1;
                } else if s > expected {
                    // Re-inserting a duplicate of a held seq just overwrites
                    // it with identical content.
                    self.stats.borrow_mut().held_out_of_order += 1;
                    self.held
                        .borrow_mut()
                        .entry(src)
                        .or_default()
                        .insert(s, message);
                } else {
                    out.push(message);
                    let mut next = expected + 1;
                    {
                        let mut held = self.held.borrow_mut();
                        if let Some(h) = held.get_mut(&src) {
                            while let Some(m) = h.remove(&next) {
                                out.push(m);
                                next += 1;
                            }
                        }
                    }
                    self.expected.borrow_mut().insert(src, next);
                }
                // ACK everything valid — including duplicates, so the
                // sender stops retransmitting even if its first ACK died.
                // Sent *after* delivery bookkeeping: the ACK carries the
                // in-order watermark, so the sender retires exactly what
                // has been consumed — an out-of-order hold stays the
                // sender's responsibility until its gap fills, which is
                // what makes a receiver crash recoverable.
                self.stats.borrow_mut().acks_sent += 1;
                let wm = *self.expected.borrow().get(&src).unwrap_or(&1) - 1;
                self.send_control(
                    src,
                    WireMsg::LinkAck {
                        seq: wire_seq(known, wm),
                    },
                )
                .await;
                out
            }
        }
    }
}

impl std::fmt::Debug for LinkLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkLayer")
            .field("node", &self.node)
            .field("pending", &self.pending.borrow().len())
            .finish()
    }
}

/// Sends a wire message from `node`, through its link layer when
/// reliability is engaged, directly otherwise. `owner` names the process
/// to fail if the destination never acknowledges.
pub(crate) async fn send_wire(
    node: &NodeState,
    dst: NodeId,
    msg: WireMsg,
    payload: u32,
    owner: Option<ProcId>,
) {
    match &node.link {
        Some(link) => Rc::clone(link).send_reliable(dst, msg, payload, owner).await,
        None => node.port.send(dst, msg, payload).await,
    }
}

/// If the fault plan stalls `node` right now — or its proxy is down inside
/// a crash window — freezes the caller (the node's communication agent)
/// until the window ends.
pub(crate) async fn stall_gate(node: &NodeState, cs: &ClusterState) {
    let Some(faults) = &cs.faults else { return };
    // Re-check after waking: windows may abut or interleave.
    loop {
        let now = cs.ctx.now();
        let now_us = now.as_us();
        let stall = faults.stall_end(node.id, now_us);
        let crash = faults.crash_end(node.id, now_us);
        let end_us = match (stall, crash) {
            (Some(s), Some(c)) => s.max(c),
            (Some(s), None) => s,
            (None, Some(c)) => c,
            (None, None) => return,
        };
        // The window bounds are f64 microseconds but the calendar ticks in
        // integer nanoseconds, so `end_us` can round to an instant at or
        // before `now` (the wake-up from the previous iteration): the rest
        // of the window is unrepresentable, hence already over. Without
        // this tick-domain check the `delay_until` below completes
        // immediately and the loop re-reads the same window forever — a
        // synchronous livelock that never yields to the executor.
        let end = SimTime::ZERO + Dur::from_us(end_us);
        if end <= now {
            return;
        }
        cs.ctx.delay_until(end).await;
    }
}

/// Drives the crash windows of one node: at each `at_us` the node's link
/// layer [`LinkLayer::crash`]es (volatile state lost, epoch bumped) and
/// the proxy's in-memory work is wiped — queued commands fail their
/// submitters with [`CommError::EpochReset`], queued packets vanish (the
/// senders' retransmit timers re-deliver them), and every outstanding CCB
/// fails its owner (its reply can no longer be matched). The engine task
/// itself is frozen across the window by [`stall_gate`]; at `restart_us`
/// the link layer [`LinkLayer::restart`]s and opens the HELLO handshake.
pub(crate) async fn crash_driver(
    cs: Rc<ClusterState>,
    node: usize,
    windows: Vec<CrashWindow>,
) {
    for w in windows {
        cs.ctx
            .delay_until(SimTime::ZERO + Dur::from_us(w.at_us))
            .await;
        let ns = &cs.nodes[node];
        let Some(link) = &ns.link else { return };
        let epoch = link.crash(cs.spec.nodes);
        while let Some(input) = ns.proxy_input.try_recv() {
            match input {
                ProxyInput::Cmd(cmd, _) => poison_proc(
                    cs.proc(cmd.src()),
                    CommError::EpochReset { node, epoch },
                ),
                // Undelivered packets and re-probe ticks die with the
                // proxy's memory image.
                ProxyInput::Pkt(_) | ProxyInput::RetryDeq(_) => {}
            }
        }
        let ccbs: Vec<Ccb> = ns.ccbs.borrow_mut().drain().map(|(_, c)| c).collect();
        for ccb in ccbs {
            let proc = match ccb {
                Ccb::Get { proc, .. } | Ccb::PutAck { proc, .. } | Ccb::Deq { proc, .. } => proc,
            };
            poison_proc(cs.proc(proc), CommError::EpochReset { node, epoch });
        }
        cs.ctx
            .delay_until(SimTime::ZERO + Dur::from_us(w.restart_us))
            .await;
        link.restart();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Addr, FlagId};
    use bytes::Bytes;

    fn put(data: &'static [u8], rsync: Option<FlagId>) -> WireMsg {
        WireMsg::PutData {
            dst: ProcId(1),
            raddr: Addr(64),
            data: Bytes::from_static(data),
            rsync,
            ack: None,
            dma: false,
        }
    }

    #[test]
    fn checksum_distinguishes_fields_and_variants() {
        let a = wire_checksum(&put(b"hello", None));
        let b = wire_checksum(&put(b"hellp", None));
        let c = wire_checksum(&put(b"hello", Some(FlagId(0))));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(
            wire_checksum(&WireMsg::Ack { token: 5 }),
            wire_checksum(&WireMsg::LinkAck { seq: 5 })
        );
        // Deterministic.
        assert_eq!(a, wire_checksum(&put(b"hello", None)));
    }

    #[test]
    fn checksum_covers_deq_reply_none_vs_empty() {
        let none = wire_checksum(&WireMsg::DeqReply {
            token: 1,
            data: None,
        });
        let empty = wire_checksum(&WireMsg::DeqReply {
            token: 1,
            data: Some(Bytes::new()),
        });
        assert_ne!(none, empty);
    }
}
