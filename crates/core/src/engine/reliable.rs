//! Reliable delivery over the (possibly faulty) interconnect.
//!
//! The paper assumes a lossless network; this module removes that
//! assumption so the fault-injection substrate (`mproxy_simnet::FaultPlan`)
//! can exercise the fabric. Each node's communication agent owns one
//! [`LinkLayer`] implementing a per-destination sliding protocol:
//!
//! * every data message carries a per-destination **sequence number**
//!   (starting at 1; 0 marks unsequenced control traffic) and a structural
//!   **checksum** of its payload;
//! * the receiving agent **acknowledges** every sequenced packet — also
//!   duplicates, so lost ACKs heal — **NACKs** checksum failures for an
//!   immediate resend, discards duplicates, and holds out-of-order
//!   arrivals in a reorder buffer until the gap fills, delivering
//!   **exactly once, in order**;
//! * the sender keeps unacknowledged messages in a pending table and
//!   retransmits on a timer following [`RetryPolicy`] exponential backoff;
//!   when the budget is exhausted the destination is declared dead and
//!   the submitting process is failed with [`CommError::Unreachable`]
//!   instead of waiting forever.
//!
//! The layer is engaged only when the cluster is built with a fault plan
//! ([`crate::Cluster::new_with_faults`]); fault-free clusters take the
//! original direct send path and their timing is bit-identical to before.
//!
//! Failure surfacing: the discrete-event executor has no cancellation, so
//! a failed process is *poisoned* — its [`CommError`] is recorded, every
//! synchronisation-flag counter is bumped past any realistic target to
//! wake waiters, and its receive queues are closed. Waiters using
//! [`crate::Proc::wait_flag_result`] observe the error; plain waits panic
//! with the error message rather than deadlock.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use mproxy_des::{Dur, SimCtx, SimTime};
use mproxy_simnet::{NetPort, NodeId, Packet};

use crate::addr::ProcId;
use crate::cluster::{ClusterState, NodeState, ProcState};
use crate::engine::WireMsg;
use crate::error::CommError;
use crate::retry::RetryPolicy;

/// Flag counters of a poisoned process are advanced by this much, waking
/// any waiter regardless of its target.
pub(crate) const POISON_BUMP: u64 = 1 << 32;

/// Marks `ps` as failed with `err`: records the error, releases all flag
/// waiters, and closes receive queues. Idempotent (first error wins).
pub(crate) fn poison_proc(ps: &ProcState, err: CommError) {
    {
        let mut slot = ps.comm_error.borrow_mut();
        if slot.is_some() {
            return;
        }
        *slot = Some(err);
    }
    for c in ps.flags.borrow().iter() {
        c.add(POISON_BUMP);
    }
    for q in ps.queues.borrow().iter() {
        q.close();
    }
}

/// Structural FNV-1a checksum of a wire message. Covers every field the
/// receiver acts on; corruption is modelled by the packet's `corrupted`
/// flag, which receivers treat as a mismatch.
pub(crate) fn wire_checksum(msg: &WireMsg) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    struct Fnv(u64);
    impl Fnv {
        fn byte(&mut self, b: u8) {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(PRIME);
        }
        fn u64(&mut self, v: u64) {
            for b in v.to_le_bytes() {
                self.byte(b);
            }
        }
        fn u32(&mut self, v: u32) {
            self.u64(u64::from(v));
        }
        fn bytes(&mut self, data: &[u8]) {
            self.u64(data.len() as u64);
            for &b in data {
                self.byte(b);
            }
        }
        fn flag(&mut self, f: Option<crate::addr::FlagId>) {
            match f {
                Some(id) => {
                    self.byte(1);
                    self.u32(id.0);
                }
                None => self.byte(0),
            }
        }
        fn ack(&mut self, a: Option<(usize, u64)>) {
            match a {
                Some((node, token)) => {
                    self.byte(1);
                    self.u64(node as u64);
                    self.u64(token);
                }
                None => self.byte(0),
            }
        }
    }
    let mut h = Fnv(OFFSET);
    match msg {
        WireMsg::PutData {
            dst,
            raddr,
            data,
            rsync,
            ack,
            dma,
        } => {
            h.byte(1);
            h.u32(dst.0);
            h.u64(raddr.0);
            h.bytes(data);
            h.flag(*rsync);
            h.ack(*ack);
            h.byte(u8::from(*dma));
        }
        WireMsg::GetReq {
            dst,
            raddr,
            nbytes,
            rsync,
            origin,
            token,
            dma,
        } => {
            h.byte(2);
            h.u32(dst.0);
            h.u64(raddr.0);
            h.u32(*nbytes);
            h.flag(*rsync);
            h.u64(*origin as u64);
            h.u64(*token);
            h.byte(u8::from(*dma));
        }
        WireMsg::GetReply { token, data, dma } => {
            h.byte(3);
            h.u64(*token);
            h.bytes(data);
            h.byte(u8::from(*dma));
        }
        WireMsg::EnqData {
            dst,
            rq,
            data,
            rsync,
            ack,
        } => {
            h.byte(4);
            h.u32(dst.0);
            h.u32(rq.0);
            h.bytes(data);
            h.flag(*rsync);
            h.ack(*ack);
        }
        WireMsg::DeqReq {
            dst,
            rq,
            nbytes,
            origin,
            token,
        } => {
            h.byte(5);
            h.u32(dst.0);
            h.u32(rq.0);
            h.u32(*nbytes);
            h.u64(*origin as u64);
            h.u64(*token);
        }
        WireMsg::DeqReply { token, data } => {
            h.byte(6);
            h.u64(*token);
            match data {
                Some(d) => {
                    h.byte(1);
                    h.bytes(d);
                }
                None => h.byte(0),
            }
        }
        WireMsg::Ack { token } => {
            h.byte(7);
            h.u64(*token);
        }
        WireMsg::LinkAck { seq } => {
            h.byte(8);
            h.u64(*seq);
        }
        WireMsg::LinkNack { seq } => {
            h.byte(9);
            h.u64(*seq);
        }
    }
    h.0
}

/// Link-layer protocol counters of one node (inputs to
/// [`crate::FaultReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Timer- and NACK-driven retransmissions.
    pub retransmits: u64,
    /// Sequenced packets acknowledged on arrival.
    pub acks_sent: u64,
    /// Checksum failures NACKed back to the sender.
    pub nacks_sent: u64,
    /// Duplicate arrivals discarded by sequence check.
    pub dups_discarded: u64,
    /// Out-of-order arrivals parked in the reorder buffer.
    pub held_out_of_order: u64,
    /// Pending sends abandoned after budget exhaustion.
    pub unreachable: u64,
}

#[derive(Debug, Clone)]
struct Pending {
    msg: WireMsg,
    payload: u32,
    /// Retransmissions performed so far (the original send is not counted).
    attempts: u32,
    /// Process to fail if the budget runs out (None for replies whose
    /// originating process the responder does not know).
    owner: Option<ProcId>,
}

/// Per-node reliable-delivery state. Self-contained (owns clones of the
/// sim context and network port) so retransmission timers capture only an
/// `Rc<LinkLayer>`.
pub(crate) struct LinkLayer {
    ctx: SimCtx,
    node: NodeId,
    port: NetPort<WireMsg>,
    policy: RetryPolicy,
    procs: Vec<Rc<ProcState>>,
    next_seq: RefCell<HashMap<NodeId, u64>>,
    pending: RefCell<HashMap<(NodeId, u64), Pending>>,
    /// Next expected sequence per source node (first is 1).
    expected: RefCell<HashMap<NodeId, u64>>,
    /// Out-of-order arrivals per source, keyed by sequence.
    held: RefCell<HashMap<NodeId, BTreeMap<u64, WireMsg>>>,
    stats: RefCell<LinkStats>,
    /// Set by [`LinkLayer::quiesce`] at cluster shutdown: later sends go
    /// out untracked (fire-and-forget) instead of arming retransmission
    /// timers against peers that no longer service their input.
    closed: Cell<bool>,
}

impl LinkLayer {
    pub(crate) fn new(
        ctx: SimCtx,
        node: NodeId,
        port: NetPort<WireMsg>,
        policy: RetryPolicy,
        procs: Vec<Rc<ProcState>>,
    ) -> Rc<LinkLayer> {
        Rc::new(LinkLayer {
            ctx,
            node,
            port,
            policy,
            procs,
            next_seq: RefCell::new(HashMap::new()),
            pending: RefCell::new(HashMap::new()),
            expected: RefCell::new(HashMap::new()),
            held: RefCell::new(HashMap::new()),
            stats: RefCell::new(LinkStats::default()),
            closed: Cell::new(false),
        })
    }

    pub(crate) fn stats(&self) -> LinkStats {
        *self.stats.borrow()
    }

    /// Sends `msg` under reliable delivery: stamp the next sequence for
    /// `dst`, remember it as pending, transmit, and arm the first
    /// retransmission timer.
    pub(crate) async fn send_reliable(
        self: Rc<Self>,
        dst: NodeId,
        msg: WireMsg,
        payload: u32,
        owner: Option<ProcId>,
    ) {
        let seq = {
            let mut m = self.next_seq.borrow_mut();
            let slot = m.entry(dst).or_insert(0);
            *slot += 1;
            *slot
        };
        let checksum = wire_checksum(&msg);
        if self.closed.get() {
            // Shutdown linger: a stalled engine draining its backlog after
            // the run ended may still answer peers that are already gone.
            // Transmit once, never retry, never declare anyone unreachable.
            self.port
                .send_tagged(dst, msg, payload, seq, checksum)
                .await;
            return;
        }
        self.pending.borrow_mut().insert(
            (dst, seq),
            Pending {
                msg: msg.clone(),
                payload,
                attempts: 0,
                owner,
            },
        );
        self.port
            .send_tagged(dst, msg, payload, seq, checksum)
            .await;
        self.arm_timer(dst, seq, 0);
    }

    /// Spawns the retransmission timer for `(dst, seq)` at retry `attempt`.
    fn arm_timer(self: &Rc<Self>, dst: NodeId, seq: u64, attempt: u32) {
        let link = Rc::clone(self);
        self.ctx.clone().spawn(async move {
            link.ctx
                .delay(Dur::from_us(link.policy.delay_us(attempt)))
                .await;
            // Still pending at the same retry generation? (An ACK removes
            // the entry; a NACK resend leaves the generation unchanged, so
            // this timer stays the single backstop.)
            let entry = link
                .pending
                .borrow()
                .get(&(dst, seq))
                .filter(|p| p.attempts == attempt)
                .map(|p| (p.msg.clone(), p.payload));
            let Some((msg, payload)) = entry else { return };
            let sent_so_far = attempt + 1;
            if link.policy.give_up_after(sent_so_far) {
                let owner = link
                    .pending
                    .borrow_mut()
                    .remove(&(dst, seq))
                    .and_then(|p| p.owner);
                link.stats.borrow_mut().unreachable += 1;
                if let Some(p) = owner {
                    poison_proc(
                        &link.procs[p.0 as usize],
                        CommError::Unreachable {
                            dst,
                            attempts: sent_so_far,
                        },
                    );
                }
                return;
            }
            let next = attempt + 1;
            if let Some(p) = link.pending.borrow_mut().get_mut(&(dst, seq)) {
                p.attempts = next;
            }
            link.stats.borrow_mut().retransmits += 1;
            let checksum = wire_checksum(&msg);
            link.port.send_tagged(dst, msg, payload, seq, checksum).await;
            link.arm_timer(dst, seq, next);
        });
    }

    /// Abandons all retransmission state. Called at cluster shutdown:
    /// once every process body has finished, all message-level results
    /// have provably arrived, so any still-pending entry is only a
    /// link-level ACK the peer never echoed (the peer may already be
    /// gone). Clearing the map lets outstanding timers expire silently
    /// instead of retransmitting into closed engines until they declare
    /// the node unreachable.
    pub(crate) fn quiesce(&self) {
        self.closed.set(true);
        self.pending.borrow_mut().clear();
        self.held.borrow_mut().clear();
    }

    /// Sends unsequenced control traffic (ACK/NACK). Not retransmitted:
    /// a lost ACK is healed by the peer's timer plus our duplicate re-ACK;
    /// a lost NACK by the peer's timer alone.
    async fn send_control(&self, dst: NodeId, msg: WireMsg) {
        let checksum = wire_checksum(&msg);
        self.port.send_tagged(dst, msg, 0, 0, checksum).await;
    }

    /// Processes one arriving packet, returning the data messages now
    /// deliverable to the protocol engine (in order; possibly several when
    /// a gap closes, possibly none).
    pub(crate) async fn accept(&self, pkt: Packet<WireMsg>) -> Vec<WireMsg> {
        let Packet {
            src,
            seq,
            checksum,
            corrupted,
            message,
            ..
        } = pkt;
        let valid = !corrupted && checksum == wire_checksum(&message);
        match message {
            WireMsg::LinkAck { seq: acked } => {
                // Corrupted control is dropped; recovery is timer-driven.
                if valid {
                    self.pending.borrow_mut().remove(&(src, acked));
                }
                Vec::new()
            }
            WireMsg::LinkNack { seq: nacked } => {
                if valid {
                    self.stats.borrow_mut().retransmits += 1;
                    let entry = self
                        .pending
                        .borrow()
                        .get(&(src, nacked))
                        .map(|p| (p.msg.clone(), p.payload));
                    if let Some((msg, payload)) = entry {
                        let ck = wire_checksum(&msg);
                        self.port.send_tagged(src, msg, payload, nacked, ck).await;
                    }
                }
                Vec::new()
            }
            message if seq == 0 => {
                // Unsequenced data only occurs when reliability is off for
                // the sender; deliver as-is (nothing to ACK or dedup).
                if valid {
                    vec![message]
                } else {
                    Vec::new()
                }
            }
            message => {
                if !valid {
                    self.stats.borrow_mut().nacks_sent += 1;
                    self.send_control(src, WireMsg::LinkNack { seq }).await;
                    return Vec::new();
                }
                // ACK everything valid — including duplicates, so the
                // sender stops retransmitting even if its first ACK died.
                self.stats.borrow_mut().acks_sent += 1;
                self.send_control(src, WireMsg::LinkAck { seq }).await;
                let expected = *self.expected.borrow().get(&src).unwrap_or(&1);
                if seq < expected {
                    self.stats.borrow_mut().dups_discarded += 1;
                    return Vec::new();
                }
                if seq > expected {
                    // Re-inserting a duplicate of a held seq just overwrites
                    // it with identical content.
                    self.stats.borrow_mut().held_out_of_order += 1;
                    self.held
                        .borrow_mut()
                        .entry(src)
                        .or_default()
                        .insert(seq, message);
                    return Vec::new();
                }
                let mut out = vec![message];
                let mut next = expected + 1;
                {
                    let mut held = self.held.borrow_mut();
                    if let Some(h) = held.get_mut(&src) {
                        while let Some(m) = h.remove(&next) {
                            out.push(m);
                            next += 1;
                        }
                    }
                }
                self.expected.borrow_mut().insert(src, next);
                out
            }
        }
    }
}

impl std::fmt::Debug for LinkLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkLayer")
            .field("node", &self.node)
            .field("pending", &self.pending.borrow().len())
            .finish()
    }
}

/// Sends a wire message from `node`, through its link layer when
/// reliability is engaged, directly otherwise. `owner` names the process
/// to fail if the destination never acknowledges.
pub(crate) async fn send_wire(
    node: &NodeState,
    dst: NodeId,
    msg: WireMsg,
    payload: u32,
    owner: Option<ProcId>,
) {
    match &node.link {
        Some(link) => Rc::clone(link).send_reliable(dst, msg, payload, owner).await,
        None => node.port.send(dst, msg, payload).await,
    }
}

/// If the fault plan stalls `node` right now, freezes the caller (the
/// node's communication agent) until the window ends.
pub(crate) async fn stall_gate(node: &NodeState, cs: &ClusterState) {
    let Some(faults) = &cs.faults else { return };
    // Re-check after waking: windows may overlap or abut.
    while let Some(end_us) = faults.stall_end(node.id, cs.ctx.now().as_us()) {
        cs.ctx
            .delay_until(SimTime::ZERO + Dur::from_us(end_us))
            .await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Addr, FlagId};
    use bytes::Bytes;

    fn put(data: &'static [u8], rsync: Option<FlagId>) -> WireMsg {
        WireMsg::PutData {
            dst: ProcId(1),
            raddr: Addr(64),
            data: Bytes::from_static(data),
            rsync,
            ack: None,
            dma: false,
        }
    }

    #[test]
    fn checksum_distinguishes_fields_and_variants() {
        let a = wire_checksum(&put(b"hello", None));
        let b = wire_checksum(&put(b"hellp", None));
        let c = wire_checksum(&put(b"hello", Some(FlagId(0))));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(
            wire_checksum(&WireMsg::Ack { token: 5 }),
            wire_checksum(&WireMsg::LinkAck { seq: 5 })
        );
        // Deterministic.
        assert_eq!(a, wire_checksum(&put(b"hello", None)));
    }

    #[test]
    fn checksum_covers_deq_reply_none_vs_empty() {
        let none = wire_checksum(&WireMsg::DeqReply {
            token: 1,
            data: None,
        });
        let empty = wire_checksum(&WireMsg::DeqReply {
            token: 1,
            data: Some(Bytes::new()),
        });
        assert_ne!(none, empty);
    }
}
