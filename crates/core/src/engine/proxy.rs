//! The message-proxy engine — the paper's contribution (Sections 2 and 4).
//!
//! One trusted proxy task runs per SMP node on a dedicated processor. It
//! executes the Figure 5 loop: poll the registered user command queues and
//! the network input FIFO round robin, decode, and dispatch. The
//! implementation properties called out in Section 4 hold here too:
//!
//! * **strictly polling** — no interrupts anywhere;
//! * **lock-free** — command queues are single-producer single-consumer;
//! * **zero-copy** — data moves source buffer → FIFO → destination buffer;
//! * **forward progress** — the proxy continuously drains network input;
//! * **protocol offload** — all RMA/RQ protocol runs on the proxy, leaving
//!   the user only the three cache misses of command submission.
//!
//! Every handler charges simulated time according to the Table 1/Table 2
//! cost model: `C'` for proxy↔compute cache misses (0.25 µs under MP2's
//! cache update), `C` for adapter-data misses, `U` per uncached FIFO
//! access, `V` per `vm_att`, `P` per polling scan, instruction work
//! scaled by `1/S`.

use std::rc::Rc;

use mproxy_des::Dur;

use crate::addr::{ProcId, RemoteQueue};
use crate::cluster::{ClusterState, NodeState};
use crate::engine::reliable::{poison_proc, send_wire, stall_gate};
use crate::engine::{
    charge, lines, queue_channel, read_mem, set_flag, write_mem, BusyScope, Ccb, Command,
    ProxyInput, WireMsg,
};
use crate::error::CommError;

struct Costs {
    cq: f64, // C': proxy <-> compute miss
    c: f64,  // C: adapter-data miss
    u: f64,  // uncached access
    v: f64,  // vm_att
    p: f64,  // polling delay
    s: f64,  // speed
}

impl Costs {
    fn of(cs: &ClusterState) -> Costs {
        let d = cs.design();
        Costs {
            cq: d.shared_miss_us,
            c: d.machine.cache_miss_us,
            u: d.machine.uncached_us,
            v: d.machine.vm_att_us,
            p: d.polling_us(),
            s: d.machine.speed,
        }
    }

    fn instr(&self, us: f64) -> f64 {
        us / self.s
    }
}

/// The per-node proxy main loop.
pub(crate) async fn proxy_main(node: Rc<NodeState>, cs: Rc<ClusterState>) {
    let input = node.proxy_input.clone();
    let k = Costs::of(&cs);
    while let Some(ev) = input.recv().await {
        // A stalled proxy stops servicing (and acknowledging) everything
        // until its window ends; input keeps queueing meanwhile.
        stall_gate(&node, &cs).await;
        let busy = BusyScope::begin(&node, &cs);
        match ev {
            ProxyInput::Cmd(cmd, submitted) => {
                // Service start: record the queueing delay and hand the
                // submitter's flow-control credit back.
                node.record_cmd_wait(cs.ctx.now().since(submitted));
                if let Some(c) = &cs.proc(cmd.src()).credits {
                    let _ = c.try_send(());
                }
                handle_command(&node, &cs, &k, cmd).await;
            }
            ProxyInput::Pkt(pkt) => match node.link.clone() {
                Some(link) => {
                    for msg in link.accept(pkt).await {
                        handle_packet(&node, &cs, &k, msg).await;
                    }
                }
                None => handle_packet(&node, &cs, &k, pkt.message).await,
            },
            ProxyInput::RetryDeq(token) => retry_deq(&node, &cs, &k, token).await,
        }
        drop(busy);
    }
}

/// Transfers outgoing data: pinned DMA for large blocks, per-line PIO for
/// small ones (charged to the proxy).
async fn push_data(node: &NodeState, cs: &ClusterState, k: &Costs, nbytes: u32, dma: bool) {
    if dma {
        node.dma.transfer(nbytes).await;
    } else {
        charge(cs, f64::from(lines(nbytes)) * (k.cq + k.u)).await;
    }
}

/// Receives incoming data into memory. For DMA-sized blocks the engine
/// streams concurrently with the wire, so the proxy pays only the dynamic
/// pin/unpin cost; small blocks are stored by PIO per line.
async fn pull_data(node: &NodeState, cs: &ClusterState, k: &Costs, nbytes: u32, dma: bool) {
    if dma {
        charge(cs, node.dma.params().pinning_us(nbytes)).await;
    } else {
        charge(cs, f64::from(lines(nbytes)) * (k.u + k.cq)).await;
    }
}

async fn handle_command(node: &NodeState, cs: &ClusterState, k: &Costs, cmd: Command) {
    // Common dispatch path: polling delay, attach the user's queue,
    // dequeue (read miss), decode and allocate a CCB, dispatch.
    charge(cs, k.p + k.v + k.cq + k.instr(0.5) + k.instr(0.1)).await;
    let d = cs.design();
    match cmd {
        Command::Put {
            src,
            dst,
            laddr,
            raddr,
            nbytes,
            lsync,
            rsync,
            inline,
        } => {
            let dma = nbytes > d.pio_threshold_bytes;
            // Set up the packet header, then move the data.
            charge(cs, k.u + k.instr(0.6)).await;
            let data = inline.unwrap_or_else(|| read_mem(cs, src, laddr, nbytes));
            push_data(node, cs, k, nbytes, dma).await;
            charge(cs, k.u).await; // launch
            let ack = lsync.map(|_| {
                let token = node.new_token();
                node.ccbs
                    .borrow_mut()
                    .insert(token, Ccb::PutAck { proc: src, lsync });
                (node.id, token)
            });
            let dst_node = cs.proc(dst).node;
            send_wire(
                node,
                dst_node,
                WireMsg::PutData {
                    dst,
                    raddr,
                    data,
                    rsync,
                    ack,
                    dma,
                },
                0,
                Some(src),
            )
            .await;
        }
        Command::Get {
            src,
            dst,
            laddr,
            raddr,
            nbytes,
            lsync,
            rsync,
        } => {
            let dma = nbytes > d.pio_threshold_bytes;
            charge(cs, k.u + k.instr(0.6) + k.u).await; // header + launch
            let token = node.new_token();
            node.ccbs.borrow_mut().insert(
                token,
                Ccb::Get {
                    proc: src,
                    laddr,
                    lsync,
                },
            );
            let dst_node = cs.proc(dst).node;
            send_wire(
                node,
                dst_node,
                WireMsg::GetReq {
                    dst,
                    raddr,
                    nbytes,
                    rsync,
                    origin: node.id,
                    token,
                    dma,
                },
                0,
                Some(src),
            )
            .await;
        }
        Command::Enq {
            src,
            dst,
            rq,
            laddr,
            nbytes,
            lsync,
            rsync,
            inline,
        } => {
            charge(cs, k.u + k.instr(0.6)).await;
            let data = inline.unwrap_or_else(|| read_mem(cs, src, laddr, nbytes));
            push_data(node, cs, k, nbytes, false).await;
            charge(cs, k.u).await;
            let ack = lsync.map(|_| {
                let token = node.new_token();
                node.ccbs
                    .borrow_mut()
                    .insert(token, Ccb::PutAck { proc: src, lsync });
                (node.id, token)
            });
            let dst_node = cs.proc(dst).node;
            send_wire(
                node,
                dst_node,
                WireMsg::EnqData {
                    dst,
                    rq,
                    data,
                    rsync,
                    ack,
                },
                0,
                Some(src),
            )
            .await;
        }
        Command::Deq {
            src,
            dst,
            rq,
            laddr,
            nbytes,
            lsync,
        } => {
            charge(cs, k.u + k.instr(0.6) + k.u).await;
            let token = node.new_token();
            node.ccbs.borrow_mut().insert(
                token,
                Ccb::Deq {
                    proc: src,
                    laddr,
                    lsync,
                    target: RemoteQueue { proc: dst, rq },
                    nbytes,
                    attempts: 0,
                },
            );
            let dst_node = cs.proc(dst).node;
            send_wire(
                node,
                dst_node,
                WireMsg::DeqReq {
                    dst,
                    rq,
                    nbytes,
                    origin: node.id,
                    token,
                },
                0,
                Some(src),
            )
            .await;
        }
    }
}

async fn handle_packet(node: &NodeState, cs: &ClusterState, k: &Costs, msg: WireMsg) {
    // Common receive path: polling delay + read the input packet header
    // (an adapter-data miss) + decode/dispatch.
    charge(cs, k.p + k.c + k.instr(0.4)).await;
    match msg {
        WireMsg::PutData {
            dst,
            raddr,
            data,
            rsync,
            ack,
            dma,
        } => {
            charge(cs, k.instr(0.1) + k.v + k.instr(0.3)).await;
            pull_data(node, cs, k, data.len() as u32, dma).await;
            write_mem(cs, dst, raddr, &data);
            if let Some(f) = rsync {
                charge(cs, k.cq).await;
                set_flag(cs, dst, f);
            }
            if let Some((origin, token)) = ack {
                charge(cs, k.u + k.instr(0.6) + k.u).await;
                send_wire(node, origin, WireMsg::Ack { token }, 0, None).await;
            }
        }
        WireMsg::GetReq {
            dst,
            raddr,
            nbytes,
            rsync,
            origin,
            token,
            dma,
        } => {
            charge(cs, k.instr(0.1) + k.v + k.instr(0.3)).await;
            charge(cs, k.u + k.instr(0.7)).await; // reply header
            let data = read_mem(cs, dst, raddr, nbytes);
            push_data(node, cs, k, nbytes, dma).await;
            if let Some(f) = rsync {
                charge(cs, k.cq).await;
                set_flag(cs, dst, f);
            }
            charge(cs, k.u).await; // launch
            send_wire(node, origin, WireMsg::GetReply { token, data, dma }, 0, None).await;
        }
        WireMsg::GetReply { token, data, dma } => {
            charge(cs, k.v + k.instr(0.5)).await; // attach + CCB lookup
            let ccb = node.ccbs.borrow_mut().remove(&token);
            let Some(Ccb::Get { proc, laddr, lsync }) = ccb else {
                // After a proxy crash wiped the CCB table, a reply to a
                // pre-crash request is an expected orphan.
                debug_assert!(cs.crashes_possible, "GetReply with no matching CCB");
                return;
            };
            pull_data(node, cs, k, data.len() as u32, dma).await;
            write_mem(cs, proc, laddr, &data);
            if let Some(f) = lsync {
                charge(cs, k.cq).await;
                set_flag(cs, proc, f);
            }
        }
        WireMsg::EnqData {
            dst,
            rq,
            data,
            rsync,
            ack,
        } => {
            charge(cs, k.instr(0.1) + k.v + k.instr(0.3)).await;
            pull_data(node, cs, k, data.len() as u32, false).await;
            // Queue-pointer update.
            charge(cs, k.cq + k.instr(0.2)).await;
            let _ = queue_channel(cs.proc(dst), rq).try_send(data);
            if let Some(f) = rsync {
                charge(cs, k.cq).await;
                set_flag(cs, dst, f);
            }
            if let Some((origin, token)) = ack {
                charge(cs, k.u + k.instr(0.6) + k.u).await;
                send_wire(node, origin, WireMsg::Ack { token }, 0, None).await;
            }
        }
        WireMsg::DeqReq {
            dst,
            rq,
            nbytes,
            origin,
            token,
        } => {
            charge(cs, k.instr(0.1) + k.v + k.instr(0.3)).await;
            let popped = queue_channel(cs.proc(dst), rq).try_recv();
            match popped {
                Some(data) => {
                    charge(cs, k.cq + k.instr(0.2)).await; // pointer update
                    charge(cs, k.u + k.instr(0.7)).await; // reply header
                    push_data(node, cs, k, nbytes.min(data.len() as u32), false).await;
                    charge(cs, k.u).await;
                    send_wire(
                        node,
                        origin,
                        WireMsg::DeqReply {
                            token,
                            data: Some(data),
                        },
                        0,
                        None,
                    )
                    .await;
                }
                None => {
                    charge(cs, k.u + k.instr(0.3) + k.u).await;
                    send_wire(node, origin, WireMsg::DeqReply { token, data: None }, 0, None)
                        .await;
                }
            }
        }
        WireMsg::DeqReply { token, data } => {
            charge(cs, k.v + k.instr(0.5)).await;
            match data {
                Some(data) => {
                    let ccb = node.ccbs.borrow_mut().remove(&token);
                    let Some(Ccb::Deq {
                        proc,
                        laddr,
                        lsync,
                        nbytes,
                        ..
                    }) = ccb
                    else {
                        debug_assert!(cs.crashes_possible, "DeqReply with no matching CCB");
                        return;
                    };
                    let take = (data.len() as u32).min(nbytes) as usize;
                    pull_data(node, cs, k, take as u32, false).await;
                    write_mem(cs, proc, laddr, &data[..take]);
                    if let Some(f) = lsync {
                        charge(cs, k.cq).await;
                        set_flag(cs, proc, f);
                    }
                }
                None => {
                    // Remote queue empty: re-probe after the policy's
                    // backoff without burning proxy time in between; a
                    // bounded schedule eventually times the DEQ out.
                    let Some(Ccb::Deq { proc, attempts, .. }) =
                        node.ccbs.borrow().get(&token).cloned()
                    else {
                        return;
                    };
                    let policy = cs.spec.deq_retry;
                    if policy.give_up_after(attempts + 1) {
                        node.ccbs.borrow_mut().remove(&token);
                        poison_proc(cs.proc(proc), CommError::Timeout);
                        return;
                    }
                    let wait = policy.delay_us(attempts);
                    if let Some(Ccb::Deq { attempts, .. }) =
                        node.ccbs.borrow_mut().get_mut(&token)
                    {
                        *attempts += 1;
                    }
                    let ctx = cs.ctx.clone();
                    let input = node.proxy_input.clone();
                    cs.ctx.spawn(async move {
                        ctx.delay(Dur::from_us(wait)).await;
                        let _ = input.try_send(ProxyInput::RetryDeq(token));
                    });
                }
            }
        }
        WireMsg::Ack { token } => {
            charge(cs, k.instr(0.5)).await;
            let ccb = node.ccbs.borrow_mut().remove(&token);
            let Some(Ccb::PutAck { proc, lsync }) = ccb else {
                debug_assert!(cs.crashes_possible, "Ack with no matching CCB");
                return;
            };
            if let Some(f) = lsync {
                charge(cs, k.cq).await;
                set_flag(cs, proc, f);
            }
        }
        // Link-layer control never reaches the protocol handlers: it is
        // consumed by `LinkLayer::accept`, and without a link layer it is
        // never sent.
        WireMsg::LinkAck { .. }
        | WireMsg::LinkNack { .. }
        | WireMsg::Hello { .. }
        | WireMsg::HelloAck { .. } => {
            debug_assert!(false, "link control leaked into protocol handler");
        }
    }
}

async fn retry_deq(node: &NodeState, cs: &ClusterState, k: &Costs, token: u64) {
    let Some(Ccb::Deq {
        proc,
        target,
        nbytes,
        ..
    }) = node.ccbs.borrow().get(&token).cloned()
    else {
        return;
    };
    charge(cs, k.instr(0.2) + k.u + k.u).await; // rebuild request + launch
    let dst_node = cs.proc(target.proc).node;
    send_wire(
        node,
        dst_node,
        WireMsg::DeqReq {
            dst: target.proc,
            rq: target.rq,
            nbytes,
            origin: node.id,
            token,
        },
        0,
        Some(proc),
    )
    .await;
}

/// Re-export for `ProcId` visibility in doc links.
#[allow(unused)]
fn _doc(_: ProcId) {}
