//! The system-call engine (Section 2, "System-Level Communication").
//!
//! Outgoing operations cross the user/kernel boundary with a system call
//! and execute the protocol on the *compute* processor; incoming messages
//! raise an interrupt on the target process's compute processor. Both
//! steal compute cycles — the reason the paper finds 37–100% slowdowns on
//! latency-bound applications despite its very aggressive 6.5 µs
//! syscall/interrupt assumption. Locking costs (needed on a real SMP
//! kernel) are *not* charged, matching the paper's favourable-to-SW1 bias.

use std::rc::Rc;

use mproxy_des::Dur;

use crate::addr::{ProcId, RemoteQueue};
use crate::cluster::{ClusterState, NodeState};
use crate::engine::reliable::{poison_proc, send_wire, stall_gate};
use crate::engine::{
    charge, lines, queue_channel, read_mem, set_flag, write_mem, Ccb, Command, WireMsg,
};
use crate::error::CommError;

struct Costs {
    sys: f64,  // system-call overhead
    intr: f64, // interrupt overhead
    kp: f64,   // in-kernel protocol work per crossing
    c: f64,    // cache miss
    u: f64,    // uncached FIFO access
}

impl Costs {
    fn of(cs: &ClusterState) -> Costs {
        let d = cs.design();
        Costs {
            sys: d.syscall_us,
            intr: d.interrupt_us,
            kp: d.kernel_proto_us,
            c: d.machine.cache_miss_us,
            u: d.machine.uncached_us,
        }
    }
}

/// User-side submission: runs on (and charges) the calling process's
/// compute processor. The caller already holds that CPU.
pub(crate) async fn user_submit(node: &Rc<NodeState>, cs: &Rc<ClusterState>, cmd: Command) {
    let k = Costs::of(cs);
    // Kernel entry + protocol.
    charge(cs, k.sys + k.kp).await;
    let d = cs.design();
    match cmd {
        Command::Put {
            src,
            dst,
            laddr,
            raddr,
            nbytes,
            lsync,
            rsync,
            inline,
        } => {
            let dma = nbytes > d.pio_threshold_bytes;
            let data = inline.unwrap_or_else(|| read_mem(cs, src, laddr, nbytes));
            if dma {
                node.dma.transfer(nbytes).await;
            } else {
                charge(cs, f64::from(lines(nbytes)) * (k.c + k.u)).await;
            }
            let ack = lsync.map(|_| {
                let token = node.new_token();
                node.ccbs
                    .borrow_mut()
                    .insert(token, Ccb::PutAck { proc: src, lsync });
                (node.id, token)
            });
            let dst_node = cs.proc(dst).node;
            send_wire(
                node,
                dst_node,
                WireMsg::PutData {
                    dst,
                    raddr,
                    data,
                    rsync,
                    ack,
                    dma,
                },
                0,
                Some(src),
            )
            .await;
        }
        Command::Get {
            src,
            dst,
            laddr,
            raddr,
            nbytes,
            lsync,
            rsync,
        } => {
            let dma = nbytes > d.pio_threshold_bytes;
            let token = node.new_token();
            node.ccbs.borrow_mut().insert(
                token,
                Ccb::Get {
                    proc: src,
                    laddr,
                    lsync,
                },
            );
            charge(cs, k.u).await;
            let dst_node = cs.proc(dst).node;
            send_wire(
                node,
                dst_node,
                WireMsg::GetReq {
                    dst,
                    raddr,
                    nbytes,
                    rsync,
                    origin: node.id,
                    token,
                    dma,
                },
                0,
                Some(src),
            )
            .await;
        }
        Command::Enq {
            src,
            dst,
            rq,
            laddr,
            nbytes,
            lsync,
            rsync,
            inline,
        } => {
            let data = inline.unwrap_or_else(|| read_mem(cs, src, laddr, nbytes));
            charge(cs, f64::from(lines(nbytes)) * (k.c + k.u)).await;
            let ack = lsync.map(|_| {
                let token = node.new_token();
                node.ccbs
                    .borrow_mut()
                    .insert(token, Ccb::PutAck { proc: src, lsync });
                (node.id, token)
            });
            let dst_node = cs.proc(dst).node;
            send_wire(
                node,
                dst_node,
                WireMsg::EnqData {
                    dst,
                    rq,
                    data,
                    rsync,
                    ack,
                },
                0,
                Some(src),
            )
            .await;
        }
        Command::Deq {
            src,
            dst,
            rq,
            laddr,
            nbytes,
            lsync,
        } => {
            let token = node.new_token();
            node.ccbs.borrow_mut().insert(
                token,
                Ccb::Deq {
                    proc: src,
                    laddr,
                    lsync,
                    target: RemoteQueue { proc: dst, rq },
                    nbytes,
                    attempts: 0,
                },
            );
            charge(cs, k.u).await;
            let dst_node = cs.proc(dst).node;
            send_wire(
                node,
                dst_node,
                WireMsg::DeqReq {
                    dst,
                    rq,
                    nbytes,
                    origin: node.id,
                    token,
                },
                0,
                Some(src),
            )
            .await;
        }
    }
}

/// Per-node receive dispatcher: every arriving packet raises an interrupt
/// on the compute processor of the process it concerns.
pub(crate) async fn dispatch_main(node: Rc<NodeState>, cs: Rc<ClusterState>) {
    let port = node.port.clone();
    loop {
        let Some(pkt) = port.recv().await else { break };
        // A stalled node's kernel services no interrupts until the window
        // ends; arrivals keep queueing in the FIFO.
        stall_gate(&node, &cs).await;
        match node.link.clone() {
            Some(link) => {
                for msg in link.accept(pkt).await {
                    let node = Rc::clone(&node);
                    let cs2 = Rc::clone(&cs);
                    cs.ctx
                        .spawn(async move { handle_interrupt(&node, &cs2, msg).await });
                }
            }
            None => {
                let node = Rc::clone(&node);
                let cs2 = Rc::clone(&cs);
                cs.ctx
                    .spawn(async move { handle_interrupt(&node, &cs2, pkt.message).await });
            }
        }
    }
}

/// Which process's CPU takes the interrupt for a message.
fn target_proc(node: &NodeState, msg: &WireMsg) -> Option<ProcId> {
    match msg {
        WireMsg::PutData { dst, .. }
        | WireMsg::GetReq { dst, .. }
        | WireMsg::EnqData { dst, .. }
        | WireMsg::DeqReq { dst, .. } => Some(*dst),
        WireMsg::GetReply { token, .. }
        | WireMsg::DeqReply { token, .. }
        | WireMsg::Ack { token } => match node.ccbs.borrow().get(token) {
            Some(Ccb::Get { proc, .. })
            | Some(Ccb::PutAck { proc, .. })
            | Some(Ccb::Deq { proc, .. }) => Some(*proc),
            None => None,
        },
        // Consumed by the link layer before dispatch.
        WireMsg::LinkAck { .. }
        | WireMsg::LinkNack { .. }
        | WireMsg::Hello { .. }
        | WireMsg::HelloAck { .. } => None,
    }
}

async fn handle_interrupt(node: &Rc<NodeState>, cs: &Rc<ClusterState>, msg: WireMsg) {
    let k = Costs::of(cs);
    let Some(proc) = target_proc(node, &msg) else {
        // A reply whose CCB a crash wiped has no process to interrupt.
        debug_assert!(cs.crashes_possible, "interrupt for unknown CCB");
        return;
    };
    // Steal the target's compute processor for the handler. The busy time
    // is also accounted as communication-interface work for reporting.
    let cpu = cs.proc(proc).cpu.clone();
    let guard = cpu.acquire().await;
    let start = cs.ctx.now();
    charge(cs, k.intr + k.kp).await;
    match msg {
        WireMsg::PutData {
            dst,
            raddr,
            data,
            rsync,
            ack,
            dma,
        } => {
            if dma {
                charge(cs, node.dma.params().pinning_us(data.len() as u32)).await;
            } else {
                charge(cs, f64::from(lines(data.len() as u32)) * (k.u + k.c)).await;
            }
            write_mem(cs, dst, raddr, &data);
            if let Some(f) = rsync {
                charge(cs, k.c).await;
                set_flag(cs, dst, f);
            }
            if let Some((origin, token)) = ack {
                charge(cs, k.u).await;
                send_wire(node, origin, WireMsg::Ack { token }, 0, None).await;
            }
        }
        WireMsg::GetReq {
            dst,
            raddr,
            nbytes,
            rsync,
            origin,
            token,
            dma,
        } => {
            let data = read_mem(cs, dst, raddr, nbytes);
            if dma {
                node.dma.transfer(nbytes).await;
            } else {
                charge(cs, f64::from(lines(nbytes)) * (k.c + k.u)).await;
            }
            if let Some(f) = rsync {
                charge(cs, k.c).await;
                set_flag(cs, dst, f);
            }
            send_wire(node, origin, WireMsg::GetReply { token, data, dma }, 0, None).await;
        }
        WireMsg::GetReply { token, data, dma } => {
            let ccb = node.ccbs.borrow_mut().remove(&token);
            if let Some(Ccb::Get { proc, laddr, lsync }) = ccb {
                if dma {
                    charge(cs, node.dma.params().pinning_us(data.len() as u32)).await;
                } else {
                    charge(cs, f64::from(lines(data.len() as u32)) * (k.u + k.c)).await;
                }
                write_mem(cs, proc, laddr, &data);
                if let Some(f) = lsync {
                    charge(cs, k.c).await;
                    set_flag(cs, proc, f);
                }
            }
        }
        WireMsg::EnqData {
            dst,
            rq,
            data,
            rsync,
            ack,
        } => {
            charge(cs, f64::from(lines(data.len() as u32)) * (k.u + k.c) + k.c).await;
            let _ = queue_channel(cs.proc(dst), rq).try_send(data);
            if let Some(f) = rsync {
                charge(cs, k.c).await;
                set_flag(cs, dst, f);
            }
            if let Some((origin, token)) = ack {
                charge(cs, k.u).await;
                send_wire(node, origin, WireMsg::Ack { token }, 0, None).await;
            }
        }
        WireMsg::DeqReq {
            dst,
            rq,
            nbytes,
            origin,
            token,
        } => {
            let popped = queue_channel(cs.proc(dst), rq).try_recv();
            match popped {
                Some(data) => {
                    charge(
                        cs,
                        k.c + f64::from(lines(nbytes.min(data.len() as u32))) * (k.c + k.u),
                    )
                    .await;
                    send_wire(
                        node,
                        origin,
                        WireMsg::DeqReply {
                            token,
                            data: Some(data),
                        },
                        0,
                        None,
                    )
                    .await;
                }
                None => {
                    send_wire(node, origin, WireMsg::DeqReply { token, data: None }, 0, None)
                        .await;
                }
            }
        }
        WireMsg::DeqReply { token, data } => match data {
            Some(data) => {
                let ccb = node.ccbs.borrow_mut().remove(&token);
                if let Some(Ccb::Deq {
                    proc,
                    laddr,
                    lsync,
                    nbytes,
                    ..
                }) = ccb
                {
                    let take = (data.len() as u32).min(nbytes) as usize;
                    charge(cs, f64::from(lines(take as u32)) * (k.u + k.c)).await;
                    write_mem(cs, proc, laddr, &data[..take]);
                    if let Some(f) = lsync {
                        charge(cs, k.c).await;
                        set_flag(cs, proc, f);
                    }
                }
            }
            None => {
                // Kernel timer re-issues the probe after the policy's
                // backoff; a bounded schedule eventually times out.
                let Some(Ccb::Deq { proc, attempts, .. }) =
                    node.ccbs.borrow().get(&token).cloned()
                else {
                    return;
                };
                let policy = cs.spec.deq_retry;
                if policy.give_up_after(attempts + 1) {
                    node.ccbs.borrow_mut().remove(&token);
                    poison_proc(cs.proc(proc), CommError::Timeout);
                    return;
                }
                let wait = policy.delay_us(attempts);
                if let Some(Ccb::Deq { attempts, .. }) = node.ccbs.borrow_mut().get_mut(&token) {
                    *attempts += 1;
                }
                let ctx = cs.ctx.clone();
                let node = Rc::clone(node);
                let cs2 = Rc::clone(cs);
                cs.ctx.spawn(async move {
                    ctx.delay(Dur::from_us(wait)).await;
                    let target = match node.ccbs.borrow().get(&token) {
                        Some(Ccb::Deq { target, nbytes, .. }) => Some((*target, *nbytes)),
                        _ => None,
                    };
                    let Some((target, nbytes)) = target else {
                        return;
                    };
                    let kk = Costs::of(&cs2);
                    let dst_node = cs2.proc(target.proc).node;
                    ctx.delay(Dur::from_us(kk.kp)).await;
                    send_wire(
                        &node,
                        dst_node,
                        WireMsg::DeqReq {
                            dst: target.proc,
                            rq: target.rq,
                            nbytes,
                            origin: node.id,
                            token,
                        },
                        0,
                        Some(proc),
                    )
                    .await;
                });
            }
        },
        WireMsg::Ack { token } => {
            let ccb = node.ccbs.borrow_mut().remove(&token);
            if let Some(Ccb::PutAck {
                proc,
                lsync: Some(f),
            }) = ccb
            {
                charge(cs, k.c).await;
                set_flag(cs, proc, f);
            }
        }
        WireMsg::LinkAck { .. }
        | WireMsg::LinkNack { .. }
        | WireMsg::Hello { .. }
        | WireMsg::HelloAck { .. } => {
            debug_assert!(false, "link control leaked into interrupt handler");
        }
    }
    node.add_busy(cs.ctx.now().since(start));
    drop(guard);
}
