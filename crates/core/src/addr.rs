//! Identifiers of the communication model (Section 3).
//!
//! Remote addresses are named relative to an *address-space identifier*
//! (`asid`), "a logical identifier that maps to a memory segment in some
//! process within the SMP cluster"; remote queues are named by queue ids
//! within an asid; completion flags are named flag slots within an asid.

use core::fmt;

/// Global rank of a user process in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

/// Logical address-space identifier (Section 3). Each user process owns
/// exactly one address space; the mapping is fixed at initialisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asid(pub u32);

impl From<ProcId> for Asid {
    fn from(p: ProcId) -> Asid {
        Asid(p.0)
    }
}

impl From<Asid> for ProcId {
    fn from(a: Asid) -> ProcId {
        ProcId(a.0)
    }
}

/// A byte offset within an address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Offsets the address by `bytes`.
    #[must_use]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }

    /// Offsets the address by `index` elements of `elem_bytes` each.
    #[must_use]
    pub fn index(self, index: u64, elem_bytes: u64) -> Addr {
        Addr(self.0 + index * elem_bytes)
    }
}

/// A remote queue identifier within an address space (Section 3, RQ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RqId(pub u32);

/// A synchronisation-flag slot within an address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlagId(pub u32);

/// A fully qualified remote flag: which process, which flag slot. Used as
/// the `rsync` argument of PUT/GET/ENQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteFlag {
    /// The process whose flag is set.
    pub proc: ProcId,
    /// The flag slot within that process.
    pub flag: FlagId,
}

/// A fully qualified remote queue: which process, which queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteQueue {
    /// The process owning the queue.
    pub proc: ProcId,
    /// The queue id within that process.
    pub rq: RqId,
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asid{}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asid_proc_round_trip() {
        assert_eq!(Asid::from(ProcId(7)), Asid(7));
        assert_eq!(ProcId::from(Asid(3)), ProcId(3));
    }

    #[test]
    fn addr_arithmetic() {
        let a = Addr(16);
        assert_eq!(a.offset(8), Addr(24));
        assert_eq!(a.index(3, 8), Addr(40));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcId(2).to_string(), "p2");
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(Asid(1).to_string(), "asid1");
    }
}
