//! Communication errors.

use core::fmt;

use crate::addr::{Addr, Asid, ProcId, RqId};

/// Errors surfaced when submitting or validating a communication operation.
///
/// The paper's semantics: "the system faults a process that tries to access
/// an address space without first getting permission to do so". In the
/// simulator the fault is surfaced as an error at submission time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The submitting process has not been granted access to the target
    /// address space.
    PermissionDenied {
        /// Who attempted the access.
        src: ProcId,
        /// The protected address space.
        target: Asid,
    },
    /// The target address space does not exist.
    UnknownAsid(Asid),
    /// An address range falls outside its address space.
    OutOfBounds {
        /// The offending space.
        asid: Asid,
        /// Start of the attempted access.
        addr: Addr,
        /// Length of the attempted access.
        nbytes: u32,
        /// Size of the space.
        size: u64,
    },
    /// The named remote queue does not exist in the target space.
    UnknownQueue {
        /// The space that was searched.
        asid: Asid,
        /// The missing queue.
        rq: RqId,
    },
    /// A DEQ found the queue empty and was asked not to wait.
    QueueEmpty(RqId),
    /// A zero-byte transfer was requested where data is required.
    EmptyTransfer,
    /// The destination node stopped responding: the reliable link layer
    /// exhausted its retransmission budget without an acknowledgement.
    Unreachable {
        /// The unresponsive node.
        dst: usize,
        /// Transmissions attempted before giving up.
        attempts: u32,
    },
    /// A bounded wait or retry schedule ran out of attempts.
    Timeout,
    /// The peer node's proxy crashed and restarted into a new epoch;
    /// operations that were in flight but never acknowledged may or may
    /// not have taken effect and cannot be replayed transparently.
    EpochReset {
        /// The node whose proxy crashed.
        node: usize,
        /// The epoch the connection resynchronised into.
        epoch: u32,
    },
    /// The submitting process exhausted its command-queue credits and
    /// asked to fail fast rather than block for a free slot.
    CreditsExhausted {
        /// Who attempted the submission.
        src: ProcId,
        /// The configured per-process credit limit.
        limit: u32,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::PermissionDenied { src, target } => {
                write!(f, "{src} has no permission to access {target}")
            }
            CommError::UnknownAsid(a) => write!(f, "no such address space: {a}"),
            CommError::OutOfBounds {
                asid,
                addr,
                nbytes,
                size,
            } => write!(
                f,
                "access [{addr}, +{nbytes}) exceeds {asid} of size {size}"
            ),
            CommError::UnknownQueue { asid, rq } => {
                write!(f, "no queue {rq:?} in {asid}")
            }
            CommError::QueueEmpty(rq) => write!(f, "queue {rq:?} is empty"),
            CommError::EmptyTransfer => write!(f, "zero-byte transfer"),
            CommError::Unreachable { dst, attempts } => {
                write!(f, "node {dst} unreachable after {attempts} transmissions")
            }
            CommError::Timeout => write!(f, "operation timed out"),
            CommError::EpochReset { node, epoch } => {
                write!(
                    f,
                    "node {node} proxy crashed; connection reset into epoch {epoch}"
                )
            }
            CommError::CreditsExhausted { src, limit } => {
                write!(f, "{src} exhausted its {limit} command-queue credits")
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_usefully() {
        let e = CommError::PermissionDenied {
            src: ProcId(1),
            target: Asid(2),
        };
        assert_eq!(e.to_string(), "p1 has no permission to access asid2");
        let e = CommError::OutOfBounds {
            asid: Asid(0),
            addr: Addr(100),
            nbytes: 8,
            size: 64,
        };
        assert!(e.to_string().contains("exceeds asid0"));
        let e = CommError::Unreachable {
            dst: 3,
            attempts: 8,
        };
        assert_eq!(e.to_string(), "node 3 unreachable after 8 transmissions");
        assert_eq!(CommError::Timeout.to_string(), "operation timed out");
        let e = CommError::EpochReset { node: 1, epoch: 2 };
        assert_eq!(
            e.to_string(),
            "node 1 proxy crashed; connection reset into epoch 2"
        );
        let e = CommError::CreditsExhausted {
            src: ProcId(4),
            limit: 16,
        };
        assert_eq!(e.to_string(), "p4 exhausted its 16 command-queue credits");
    }
}
