//! A fast, deterministic hasher for the engine's hot-path maps.
//!
//! The reliable link layer does several map operations per message
//! (sequence allocation, pending-ACK tracking, in-order delivery); the
//! standard SipHash hasher is a measurable fraction of that cost. This
//! is the multiply-xor hash used by the Rust compiler's internal tables:
//! not DoS-resistant, which is fine for keys the simulation generates
//! itself, and fully deterministic, so map behaviour is identical on
//! every run.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher (FxHash).
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    fn word(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            self.word(u64::from_le_bytes(w));
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.word(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.word(v);
    }

    fn write_usize(&mut self, v: usize) {
        self.word(v as u64);
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` keyed by [`FxHasher`].
pub(crate) type FxHashMap<K, V> =
    std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spread() {
        let mut m: FxHashMap<(usize, u64), u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((i as usize % 7, i), i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(3, 3)], 3);
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write(b"hello world");
        h2.write(b"hello world");
        assert_eq!(h1.finish(), h2.finish());
        assert_ne!(h1.finish(), 0);
    }
}
