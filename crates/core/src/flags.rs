//! Synchronisation flags (Section 3).
//!
//! RMA and RQ operations are asynchronous; completion is signalled through
//! flags. `lsync` names a flag in the caller's space, `rsync` a flag in
//! the target space. Flags are monotone counters, so a batch of `n`
//! operations completes when the flag reaches `n` — the idiom every
//! split-phase layer (Split-C, CRL, collectives) builds on.

use mproxy_des::Counter;

use crate::addr::{FlagId, ProcId, RemoteFlag};

/// A completion flag owned by one process.
///
/// Created with [`crate::Proc::new_flag`]; flag slots are allocated in
/// deterministic order, so SPMD peers can name each other's flags by index
/// via [`SyncFlag::remote`]-style references.
#[derive(Debug, Clone)]
pub struct SyncFlag {
    pub(crate) proc: ProcId,
    pub(crate) id: FlagId,
    pub(crate) counter: Counter,
}

impl SyncFlag {
    /// The owning process.
    #[must_use]
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// The flag slot within the owner's address space.
    #[must_use]
    pub fn id(&self) -> FlagId {
        self.id
    }

    /// Current completion count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counter.get()
    }

    /// A remote reference to this flag, usable as an `rsync` argument by
    /// peers.
    #[must_use]
    pub fn remote(&self) -> RemoteFlag {
        RemoteFlag {
            proc: self.proc,
            flag: self.id,
        }
    }
}
