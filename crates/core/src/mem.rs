//! Per-process simulated memory.
//!
//! Each user process owns one address space — a flat, byte-addressable,
//! growable segment with a bump allocator. Application data really lives
//! here and really travels through the simulated network, so functional
//! results (sorted keys, factored matrices, ...) are checkable.

use bytes::Bytes;

use crate::addr::{Addr, Asid};
use crate::error::CommError;

/// Default alignment for allocations: one cache line.
pub const CACHE_LINE_BYTES: u64 = 64;

/// A process's address space.
#[derive(Debug, Default)]
pub struct Memory {
    bytes: Vec<u8>,
    next: u64,
}

impl Memory {
    /// Creates an empty address space.
    #[must_use]
    pub fn new() -> Self {
        Memory::default()
    }

    /// Current size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Allocates `nbytes`, cache-line aligned, growing the space.
    pub fn alloc(&mut self, nbytes: u64) -> Addr {
        self.alloc_aligned(nbytes, CACHE_LINE_BYTES)
    }

    /// Allocates `nbytes` with the given power-of-two alignment.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc_aligned(&mut self, nbytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let start = self.next.next_multiple_of(align);
        self.next = start + nbytes;
        if self.next > self.bytes.len() as u64 {
            self.bytes.resize(self.next as usize, 0);
        }
        Addr(start)
    }

    /// Validates that `[addr, addr + nbytes)` lies within the space.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::OutOfBounds`] otherwise; `asid` is only used to
    /// label the error.
    pub fn check(&self, asid: Asid, addr: Addr, nbytes: u32) -> Result<(), CommError> {
        let end = addr.0 + u64::from(nbytes);
        if end > self.size() {
            Err(CommError::OutOfBounds {
                asid,
                addr,
                nbytes,
                size: self.size(),
            })
        } else {
            Ok(())
        }
    }

    /// Reads `nbytes` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds — engines validate before reading.
    #[must_use]
    pub fn read(&self, addr: Addr, nbytes: u32) -> Bytes {
        let s = addr.0 as usize;
        Bytes::copy_from_slice(&self.bytes[s..s + nbytes as usize])
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds — engines validate before writing.
    pub fn write(&mut self, addr: Addr, data: &[u8]) {
        let s = addr.0 as usize;
        self.bytes[s..s + data.len()].copy_from_slice(data);
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let s = addr.0 as usize;
        u64::from_le_bytes(self.bytes[s..s + 8].try_into().expect("8 bytes"))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    #[must_use]
    pub fn read_u32(&self, addr: Addr) -> u32 {
        let s = addr.0 as usize;
        u32::from_le_bytes(self.bytes[s..s + 4].try_into().expect("4 bytes"))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: Addr, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads an `f64`.
    #[must_use]
    pub fn read_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    pub fn write_f64(&mut self, addr: Addr, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// Reads `count` consecutive `f64`s.
    #[must_use]
    pub fn read_f64_slice(&self, addr: Addr, count: usize) -> Vec<f64> {
        (0..count)
            .map(|i| self.read_f64(addr.index(i as u64, 8)))
            .collect()
    }

    /// Writes consecutive `f64`s.
    pub fn write_f64_slice(&mut self, addr: Addr, values: &[f64]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f64(addr.index(i as u64, 8), *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_grows() {
        let mut m = Memory::new();
        let a = m.alloc(10);
        let b = m.alloc(1);
        assert_eq!(a, Addr(0));
        assert_eq!(b, Addr(64)); // next cache line
        assert!(m.size() >= 65);
    }

    #[test]
    fn alloc_custom_alignment() {
        let mut m = Memory::new();
        let _ = m.alloc_aligned(3, 1);
        let a = m.alloc_aligned(8, 8);
        assert_eq!(a.0 % 8, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        Memory::new().alloc_aligned(1, 3);
    }

    #[test]
    fn typed_round_trips() {
        let mut m = Memory::new();
        let a = m.alloc(64);
        m.write_u64(a, 0xdead_beef_0123);
        assert_eq!(m.read_u64(a), 0xdead_beef_0123);
        m.write_f64(a.offset(8), -2.5);
        assert_eq!(m.read_f64(a.offset(8)), -2.5);
        m.write_u32(a.offset(16), 77);
        assert_eq!(m.read_u32(a.offset(16)), 77);
    }

    #[test]
    fn slice_round_trip() {
        let mut m = Memory::new();
        let a = m.alloc(80);
        let xs = [1.0, -1.5, 3.25];
        m.write_f64_slice(a, &xs);
        assert_eq!(m.read_f64_slice(a, 3), xs.to_vec());
    }

    #[test]
    fn bounds_check() {
        let mut m = Memory::new();
        let a = m.alloc(16);
        assert!(m.check(Asid(0), a, 16).is_ok());
        let far = Addr(m.size());
        assert!(matches!(
            m.check(Asid(0), far, 1),
            Err(CommError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn raw_read_write() {
        let mut m = Memory::new();
        let a = m.alloc(8);
        m.write(a, b"abcd");
        assert_eq!(&m.read(a, 4)[..], b"abcd");
    }
}
