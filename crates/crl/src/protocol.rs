//! The home-directory MSI protocol.
//!
//! Every region has a *home*; the home's directory entry tracks the
//! sharer set and the exclusive owner, and serialises requests per region
//! (busy flag + pending queue). Handlers are event-driven and never wait
//! for other protocol messages, so a process always makes progress while
//! polling — including a home node with its own request outstanding.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::rc::{Rc, Weak};

use mproxy::{Addr, Proc, ProcId};
use mproxy_am::{Am, AmMsg, HandlerId};
use mproxy_des::Counter;

/// Globally unique name of a region: its home process and a per-home
/// creation index (deterministic under SPMD creation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId {
    /// The process whose directory manages this region.
    pub home: ProcId,
    /// Creation index at the home.
    pub idx: u32,
}

/// A mapped region: local buffer plus identity.
#[derive(Debug, Clone, Copy)]
pub struct Region {
    rid: RegionId,
    size: u32,
    addr: Addr,
}

impl Region {
    /// The region's identity.
    #[must_use]
    pub fn rid(&self) -> RegionId {
        self.rid
    }

    /// Region size in bytes.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Local buffer address — valid application data between `start_*`
    /// and `end_*`.
    #[must_use]
    pub fn addr(&self) -> Addr {
        self.addr
    }
}

/// Coherence statistics for one process (misses drive Table 6's traffic).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CrlStats {
    /// `start_*` calls satisfied from the valid local copy.
    pub hits: u64,
    /// `start_*` calls that required the home directory.
    pub misses: u64,
    /// Invalidation messages sent by this home.
    pub invalidations: u64,
    /// Writeback requests sent by this home.
    pub writebacks: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Invalid,
    Shared,
    Exclusive,
}

struct LocalEntry {
    state: State,
    addr: Addr,
    size: u32,
    wake: Counter,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqKind {
    Read,
    Write,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    kind: ReqKind,
    requester: u32,
    buf: Addr,
}

struct DirEntry {
    size: u32,
    master: Addr,
    copyset: BTreeSet<u32>,
    owner: Option<u32>,
    busy: bool,
    acks: u32,
    cur: Option<Pending>,
    queue: VecDeque<Pending>,
}

struct Inner {
    p: Proc,
    am: Am,
    me: u32,
    local: RefCell<HashMap<RegionId, LocalEntry>>,
    dir: RefCell<HashMap<u32, DirEntry>>,
    next_idx: Cell<u32>,
    stats: RefCell<CrlStats>,
    h_read: HandlerId,
    h_write: HandlerId,
    h_inv: HandlerId,
    h_inv_ack: HandlerId,
    h_wb: HandlerId,
    h_wb_done: HandlerId,
    h_data: HandlerId,
}

/// The CRL endpoint of one process. See the crate docs for an example.
#[derive(Clone)]
pub struct Crl {
    inner: Rc<Inner>,
}

fn u32_at(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("u32"))
}
fn u64_at(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("u64"))
}

/// Boxed handler future (the shape `Am::register` expects).
type HandlerFut = std::pin::Pin<Box<dyn std::future::Future<Output = ()>>>;

impl Crl {
    /// Creates the endpoint and registers its protocol handlers on `am`
    /// (all ranks must do this in the same order).
    #[must_use]
    pub fn new(p: &Proc, am: &Am) -> Crl {
        // Reserve handler slots first so ids are fixed, then fill them via
        // a weak back-reference.
        let cell: Rc<RefCell<Weak<Inner>>> = Rc::new(RefCell::new(Weak::new()));
        let mk = |f: fn(Crl, AmMsg) -> HandlerFut| {
            let cell = Rc::clone(&cell);
            move |_am: Am, msg: AmMsg| -> HandlerFut {
                let inner = cell.borrow().upgrade().expect("CRL endpoint dropped");
                f(Crl { inner }, msg)
            }
        };
        let h_read = am.register(mk(|c, m| Box::pin(async move { c.on_read_req(m).await })));
        let h_write = am.register(mk(|c, m| Box::pin(async move { c.on_write_req(m).await })));
        let h_inv = am.register(mk(|c, m| Box::pin(async move { c.on_inv(m).await })));
        let h_inv_ack = am.register(mk(|c, m| Box::pin(async move { c.on_ack(m).await })));
        let h_wb = am.register(mk(|c, m| Box::pin(async move { c.on_wb_req(m).await })));
        let h_wb_done = am.register(mk(|c, m| Box::pin(async move { c.on_ack(m).await })));
        let h_data = am.register(mk(|c, m| Box::pin(async move { c.on_data(m) })));
        let inner = Rc::new(Inner {
            p: p.clone(),
            am: am.clone(),
            me: p.rank().0,
            local: RefCell::new(HashMap::new()),
            dir: RefCell::new(HashMap::new()),
            next_idx: Cell::new(0),
            stats: RefCell::new(CrlStats::default()),
            h_read,
            h_write,
            h_inv,
            h_inv_ack,
            h_wb,
            h_wb_done,
            h_data,
        });
        *cell.borrow_mut() = Rc::downgrade(&inner);
        Crl { inner }
    }

    /// The owning process.
    #[must_use]
    pub fn proc(&self) -> &Proc {
        &self.inner.p
    }

    /// Coherence statistics so far.
    #[must_use]
    pub fn stats(&self) -> CrlStats {
        *self.inner.stats.borrow()
    }

    /// Creates a region of `size` bytes homed at this process. Returns its
    /// global id (`idx` increments per creation, so SPMD peers can name it
    /// deterministically).
    pub fn create(&self, size: u32) -> RegionId {
        let i = &self.inner;
        let idx = i.next_idx.get();
        i.next_idx.set(idx + 1);
        let master = i.p.alloc(u64::from(size));
        i.dir.borrow_mut().insert(
            idx,
            DirEntry {
                size,
                master,
                copyset: BTreeSet::new(),
                owner: None,
                busy: false,
                acks: 0,
                cur: None,
                queue: VecDeque::new(),
            },
        );
        RegionId {
            home: i.p.rank(),
            idx,
        }
    }

    /// Maps a region into this process: allocates the local buffer (the
    /// home maps the master copy itself). `size` must match the creation
    /// size.
    #[must_use]
    pub fn map(&self, rid: RegionId, size: u32) -> Region {
        let i = &self.inner;
        let addr = if rid.home.0 == i.me {
            let dir = i.dir.borrow();
            let e = dir.get(&rid.idx).expect("mapping an uncreated region");
            assert_eq!(e.size, size, "map size mismatch");
            e.master
        } else {
            i.p.alloc(u64::from(size))
        };
        i.local.borrow_mut().insert(
            rid,
            LocalEntry {
                state: State::Invalid,
                addr,
                size,
                wake: Counter::new(),
            },
        );
        Region { rid, size, addr }
    }

    fn local_state(&self, rid: RegionId) -> State {
        self.inner.local.borrow()[&rid].state
    }

    /// Begins a read: returns once a coherent copy is valid locally.
    pub async fn start_read(&self, rgn: &Region) {
        match self.local_state(rgn.rid) {
            State::Shared | State::Exclusive => {
                self.inner.stats.borrow_mut().hits += 1;
                self.inner.p.compute_us(0.3).await; // library hit path
            }
            State::Invalid => {
                self.inner.stats.borrow_mut().misses += 1;
                self.request(rgn, ReqKind::Read).await;
            }
        }
    }

    /// Ends a read (the copy stays cached until invalidated).
    pub async fn end_read(&self, _rgn: &Region) {
        self.inner.p.compute_us(0.2).await;
    }

    /// Begins a write: returns once this process holds the region
    /// exclusively.
    pub async fn start_write(&self, rgn: &Region) {
        match self.local_state(rgn.rid) {
            State::Exclusive => {
                self.inner.stats.borrow_mut().hits += 1;
                self.inner.p.compute_us(0.3).await;
            }
            _ => {
                self.inner.stats.borrow_mut().misses += 1;
                self.request(rgn, ReqKind::Write).await;
            }
        }
    }

    /// Ends a write (modifications stay local until the protocol fetches
    /// them).
    pub async fn end_write(&self, _rgn: &Region) {
        self.inner.p.compute_us(0.2).await;
    }

    async fn request(&self, rgn: &Region, kind: ReqKind) {
        let i = &self.inner;
        let target = {
            let local = i.local.borrow();
            local[&rgn.rid].wake.get() + 1
        };
        let req = Pending {
            kind,
            requester: i.me,
            buf: rgn.addr,
        };
        if rgn.rid.home.0 == i.me {
            self.dir_request(rgn.rid.idx, req).await;
        } else {
            let mut args = [0u8; 16];
            args[0..4].copy_from_slice(&rgn.rid.idx.to_le_bytes());
            args[4..8].copy_from_slice(&i.me.to_le_bytes());
            args[8..16].copy_from_slice(&rgn.addr.0.to_le_bytes());
            let h = match kind {
                ReqKind::Read => i.h_read,
                ReqKind::Write => i.h_write,
            };
            i.am.request(rgn.rid.home, h, &args).await;
        }
        let wake = i.local.borrow()[&rgn.rid].wake.clone();
        i.am.poll_while(|| wake.get() >= target).await;
    }

    // ---- home directory ---------------------------------------------------

    async fn on_read_req(&self, m: AmMsg) {
        let idx = u32_at(&m.args, 0);
        let requester = u32_at(&m.args, 4);
        let buf = Addr(u64_at(&m.args, 8));
        self.dir_request(
            idx,
            Pending {
                kind: ReqKind::Read,
                requester,
                buf,
            },
        )
        .await;
    }

    async fn on_write_req(&self, m: AmMsg) {
        let idx = u32_at(&m.args, 0);
        let requester = u32_at(&m.args, 4);
        let buf = Addr(u64_at(&m.args, 8));
        self.dir_request(
            idx,
            Pending {
                kind: ReqKind::Write,
                requester,
                buf,
            },
        )
        .await;
    }

    async fn dir_request(&self, idx: u32, req: Pending) {
        let start = {
            let mut dir = self.inner.dir.borrow_mut();
            let e = dir.get_mut(&idx).expect("directory entry");
            e.queue.push_back(req);
            if e.busy {
                false
            } else {
                e.busy = true;
                true
            }
        };
        if start {
            self.dir_advance(idx).await;
        }
    }

    /// Services queued requests until one is left waiting for acks or the
    /// queue drains.
    async fn dir_advance(&self, idx: u32) {
        loop {
            enum Step {
                Grant,
                Wait(Vec<Msg>),
            }
            enum Msg {
                Inv(u32),
                Wb(u32, u8),
            }
            let step = {
                let i = &self.inner;
                let mut dir = i.dir.borrow_mut();
                let e = dir.get_mut(&idx).expect("directory entry");
                debug_assert!(e.busy && e.cur.is_none());
                let Some(req) = e.queue.pop_front() else {
                    e.busy = false;
                    break;
                };
                e.cur = Some(req);
                let mut msgs = Vec::new();
                match req.kind {
                    ReqKind::Read => {
                        if let Some(o) = e.owner.take() {
                            if o == req.requester {
                                // Reading its own exclusive copy — treat as
                                // a grant refresh.
                                e.owner = Some(o);
                            } else if o == i.me {
                                // Home is owner: master is current.
                                self.downgrade_self(idx, State::Shared);
                                e.copyset.insert(o);
                            } else {
                                msgs.push(Msg::Wb(o, 1)); // downgrade to shared
                                e.copyset.insert(o);
                            }
                        }
                    }
                    ReqKind::Write => {
                        if let Some(o) = e.owner.take() {
                            if o != req.requester {
                                if o == i.me {
                                    self.downgrade_self(idx, State::Invalid);
                                } else {
                                    msgs.push(Msg::Wb(o, 0)); // invalidate
                                }
                            }
                        }
                        let sharers: Vec<u32> = e
                            .copyset
                            .iter()
                            .copied()
                            .filter(|&s| s != req.requester)
                            .collect();
                        for s in sharers {
                            if s == i.me {
                                self.downgrade_self(idx, State::Invalid);
                                e.copyset.remove(&i.me);
                            } else {
                                msgs.push(Msg::Inv(s));
                            }
                        }
                    }
                }
                e.acks = msgs.len() as u32;
                if msgs.is_empty() {
                    Step::Grant
                } else {
                    Step::Wait(msgs)
                }
            };
            match step {
                Step::Grant => {
                    self.dir_grant(idx).await;
                    // Loop to service the next queued request, if any.
                }
                Step::Wait(msgs) => {
                    let i = &self.inner;
                    let (master, size) = {
                        let dir = i.dir.borrow();
                        let e = &dir[&idx];
                        (e.master, e.size)
                    };
                    let _ = size;
                    for msg in msgs {
                        match msg {
                            Msg::Inv(s) => {
                                i.stats.borrow_mut().invalidations += 1;
                                let mut args = [0u8; 8];
                                args[0..4].copy_from_slice(&idx.to_le_bytes());
                                args[4..8].copy_from_slice(&i.me.to_le_bytes());
                                i.am.request(ProcId(s), i.h_inv, &args).await;
                            }
                            Msg::Wb(o, downgrade) => {
                                i.stats.borrow_mut().writebacks += 1;
                                let mut args = [0u8; 17];
                                args[0..4].copy_from_slice(&idx.to_le_bytes());
                                args[4..8].copy_from_slice(&i.me.to_le_bytes());
                                args[8..16].copy_from_slice(&master.0.to_le_bytes());
                                args[16] = downgrade;
                                i.am.request(ProcId(o), i.h_wb, &args).await;
                            }
                        }
                    }
                    break; // resume from on_ack when all acks arrive
                }
            }
        }
    }

    fn downgrade_self(&self, idx: u32, to: State) {
        let i = &self.inner;
        let rid = RegionId {
            home: ProcId(i.me),
            idx,
        };
        if let Some(entry) = i.local.borrow_mut().get_mut(&rid) {
            entry.state = to;
        }
    }

    async fn dir_grant(&self, idx: u32) {
        let i = &self.inner;
        let (req, master, size) = {
            let mut dir = i.dir.borrow_mut();
            let e = dir.get_mut(&idx).expect("directory entry");
            let req = e.cur.take().expect("grant without request");
            match req.kind {
                ReqKind::Read => {
                    e.copyset.insert(req.requester);
                }
                ReqKind::Write => {
                    e.copyset.clear();
                    e.owner = Some(req.requester);
                }
            }
            (req, e.master, e.size)
        };
        let state = match req.kind {
            ReqKind::Read => State::Shared,
            ReqKind::Write => State::Exclusive,
        };
        if req.requester == i.me {
            let rid = RegionId {
                home: ProcId(i.me),
                idx,
            };
            let mut local = i.local.borrow_mut();
            let entry = local.get_mut(&rid).expect("home maps its regions");
            entry.state = state;
            entry.wake.incr();
        } else {
            let mut args = [0u8; 9];
            args[0..4].copy_from_slice(&idx.to_le_bytes());
            args[4..8].copy_from_slice(&i.me.to_le_bytes());
            args[8] = match state {
                State::Shared => 1,
                State::Exclusive => 2,
                State::Invalid => unreachable!("never grant Invalid"),
            };
            i.am.store(
                ProcId(req.requester),
                master,
                req.buf,
                size,
                i.h_data,
                &args,
            )
            .await;
        }
    }

    /// Handles both invalidation acks and writeback completions at the
    /// home.
    async fn on_ack(&self, m: AmMsg) {
        let idx = u32_at(&m.args, 0);
        let granted = {
            let mut dir = self.inner.dir.borrow_mut();
            let e = dir.get_mut(&idx).expect("directory entry");
            debug_assert!(e.acks > 0, "spurious ack");
            e.acks -= 1;
            e.acks == 0 && e.cur.is_some()
        };
        if granted {
            self.dir_grant(idx).await;
            self.dir_advance(idx).await;
        }
    }

    // ---- remote-side handlers ----------------------------------------------

    async fn on_inv(&self, m: AmMsg) {
        let i = &self.inner;
        let idx = u32_at(&m.args, 0);
        let home = u32_at(&m.args, 4);
        let rid = RegionId {
            home: ProcId(home),
            idx,
        };
        if let Some(entry) = i.local.borrow_mut().get_mut(&rid) {
            entry.state = State::Invalid;
        }
        let args = idx.to_le_bytes();
        i.am.reply(ProcId(home), i.h_inv_ack, &args).await;
    }

    async fn on_wb_req(&self, m: AmMsg) {
        let i = &self.inner;
        let idx = u32_at(&m.args, 0);
        let home = u32_at(&m.args, 4);
        let master = Addr(u64_at(&m.args, 8));
        let downgrade_shared = m.args[16] == 1;
        let rid = RegionId {
            home: ProcId(home),
            idx,
        };
        let (addr, size) = {
            let mut local = i.local.borrow_mut();
            let entry = local.get_mut(&rid).expect("writeback for unmapped region");
            entry.state = if downgrade_shared {
                State::Shared
            } else {
                State::Invalid
            };
            (entry.addr, entry.size)
        };
        // Flush the dirty copy into the home's master, then signal.
        let args = idx.to_le_bytes();
        i.am.store(ProcId(home), addr, master, size, i.h_wb_done, &args)
            .await;
    }

    fn on_data(&self, m: AmMsg) {
        let i = &self.inner;
        let idx = u32_at(&m.args, 0);
        let home = u32_at(&m.args, 4);
        let state = if m.args[8] == 2 {
            State::Exclusive
        } else {
            State::Shared
        };
        let rid = RegionId {
            home: ProcId(home),
            idx,
        };
        let mut local = i.local.borrow_mut();
        let entry = local.get_mut(&rid).expect("data for unmapped region");
        entry.state = state;
        entry.wake.incr();
    }
}

impl std::fmt::Debug for Crl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Crl")
            .field("proc", &self.inner.p.rank())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mproxy::{Cluster, ClusterSpec};
    use mproxy_am::Coll;
    use mproxy_des::Simulation;
    use mproxy_model::{HW1, MP1, SW1};
    use std::future::Future;

    fn run_crl<F, Fut>(design: mproxy_model::DesignPoint, nodes: usize, ppn: usize, body: F)
    where
        F: Fn(Proc, Crl, Coll) -> Fut,
        Fut: Future<Output = ()> + 'static,
    {
        let sim = Simulation::new();
        let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(design, nodes, ppn)).unwrap();
        cluster.spawn_spmd(move |p| {
            let am = Am::new(&p);
            let crl = Crl::new(&p, &am);
            let coll = Coll::new(&p, Some(am));
            body(p, crl, coll)
        });
        let report = cluster.run(&sim);
        assert!(report.completed_cleanly(), "CRL test deadlocked");
    }

    #[test]
    fn exclusive_counter_is_coherent() {
        for design in [MP1, HW1, SW1] {
            run_crl(design, 4, 1, |p, crl, coll| async move {
                let rid = RegionId {
                    home: ProcId(0),
                    idx: 0,
                };
                if p.rank() == rid.home {
                    crl.create(8);
                }
                let rgn = crl.map(rid, 8);
                coll.barrier().await;
                for _round in 0..3 {
                    crl.start_write(&rgn).await;
                    let v = p.read_u64(rgn.addr());
                    p.write_u64(rgn.addr(), v + 1);
                    crl.end_write(&rgn).await;
                }
                coll.barrier().await;
                crl.start_read(&rgn).await;
                assert_eq!(p.read_u64(rgn.addr()), 12, "{}", design.name);
                crl.end_read(&rgn).await;
                coll.barrier().await;
            });
        }
    }

    #[test]
    fn readers_cache_until_invalidated() {
        run_crl(MP1, 3, 1, |p, crl, coll| async move {
            let rid = RegionId {
                home: ProcId(0),
                idx: 0,
            };
            if p.rank() == rid.home {
                crl.create(16);
            }
            let rgn = crl.map(rid, 16);
            coll.barrier().await;
            if p.rank().0 == 0 {
                crl.start_write(&rgn).await;
                p.write_u64(rgn.addr(), 111);
                crl.end_write(&rgn).await;
            }
            coll.barrier().await;
            // Everyone reads twice; the second read must be a hit.
            crl.start_read(&rgn).await;
            assert_eq!(p.read_u64(rgn.addr()), 111);
            crl.end_read(&rgn).await;
            let misses_before = crl.stats().misses;
            crl.start_read(&rgn).await;
            crl.end_read(&rgn).await;
            assert_eq!(crl.stats().misses, misses_before, "second read must hit");
            coll.barrier().await;
            // A writer invalidates all readers.
            if p.rank().0 == 2 {
                crl.start_write(&rgn).await;
                p.write_u64(rgn.addr(), 222);
                crl.end_write(&rgn).await;
            }
            coll.barrier().await;
            crl.start_read(&rgn).await;
            assert_eq!(p.read_u64(rgn.addr()), 222);
            crl.end_read(&rgn).await;
            coll.barrier().await;
        });
    }

    #[test]
    fn multiple_regions_and_homes() {
        run_crl(MP1, 4, 1, |p, crl, coll| async move {
            let n = p.nprocs();
            // Every rank homes one region; all map all of them.
            let my_rid = crl.create(8);
            assert_eq!(my_rid.home, p.rank());
            let regions: Vec<Region> = (0..n)
                .map(|h| {
                    crl.map(
                        RegionId {
                            home: ProcId(h as u32),
                            idx: 0,
                        },
                        8,
                    )
                })
                .collect();
            coll.barrier().await;
            // Each rank writes its successor's region.
            let next = (p.rank().0 as usize + 1) % n;
            crl.start_write(&regions[next]).await;
            p.write_u64(regions[next].addr(), 1000 + next as u64);
            crl.end_write(&regions[next]).await;
            coll.barrier().await;
            // Everyone reads every region and checks.
            for (h, rgn) in regions.iter().enumerate() {
                crl.start_read(rgn).await;
                assert_eq!(p.read_u64(rgn.addr()), 1000 + h as u64);
                crl.end_read(rgn).await;
            }
            coll.barrier().await;
        });
    }

    #[test]
    fn contended_writes_serialize_correctly() {
        // All ranks hammer one region concurrently; total must equal the
        // number of increments (atomicity through exclusivity).
        run_crl(MP1, 4, 2, |p, crl, coll| async move {
            let rid = RegionId {
                home: ProcId(3),
                idx: 0,
            };
            if p.rank() == rid.home {
                crl.create(8);
            }
            let rgn = crl.map(rid, 8);
            coll.barrier().await;
            for _ in 0..4 {
                crl.start_write(&rgn).await;
                let v = p.read_u64(rgn.addr());
                p.write_u64(rgn.addr(), v + 1);
                crl.end_write(&rgn).await;
            }
            coll.barrier().await;
            crl.start_read(&rgn).await;
            assert_eq!(p.read_u64(rgn.addr()), 32);
            crl.end_read(&rgn).await;
            coll.barrier().await;
        });
    }

    #[test]
    fn stats_track_protocol_activity() {
        run_crl(MP1, 2, 1, |p, crl, coll| async move {
            let rid = RegionId {
                home: ProcId(0),
                idx: 0,
            };
            if p.rank() == rid.home {
                crl.create(8);
            }
            let rgn = crl.map(rid, 8);
            coll.barrier().await;
            crl.start_read(&rgn).await;
            crl.end_read(&rgn).await;
            coll.barrier().await;
            if p.rank().0 == 1 {
                crl.start_write(&rgn).await;
                crl.end_write(&rgn).await;
                assert!(crl.stats().misses >= 2);
            } else {
                // Home sent an invalidation to itself? No — to rank 1's
                // write, home invalidates its own copy locally and rank 0's
                // stats count no message; but the read by rank 1 earlier
                // came through this directory.
                assert_eq!(crl.stats().hits + crl.stats().misses, 1);
            }
            coll.barrier().await;
        });
    }
}
