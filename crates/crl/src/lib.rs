//! # mproxy-crl — all-software region-based distributed shared memory
//!
//! A reimplementation of the CRL programming model the paper uses for LU,
//! Barnes-Hut and Water (Johnson, Kaashoek & Wallach, SOSP'95): an
//! "all-software shared-memory programming system that relies on explicit
//! library calls to trigger coherency management operations", providing
//! "a global address space for shared data \[and\] coherent caching of
//! data".
//!
//! Shared data lives in *regions*. Each region has a *home* process whose
//! directory runs an MSI protocol over Active Messages:
//!
//! * [`Crl::start_read`] — acquire a coherent shared copy (cache hit if
//!   the local copy is still valid).
//! * [`Crl::start_write`] — acquire exclusive ownership (invalidating
//!   other copies via the home directory).
//! * [`Crl::end_read`] / [`Crl::end_write`] — release; data stays cached
//!   until the protocol invalidates it.
//!
//! The directory is event-driven (handlers never block), so a home node
//! services coherence traffic even while one of its own requests is
//! outstanding — processes poll their AM endpoint whenever they wait.
//!
//! # Examples
//!
//! A shared counter region, home at rank 0, incremented by everyone:
//!
//! ```
//! use mproxy::{Cluster, ClusterSpec, ProcId};
//! use mproxy_am::{Am, Coll};
//! use mproxy_crl::{Crl, RegionId};
//! use mproxy_des::Simulation;
//! use mproxy_model::MP1;
//!
//! let sim = Simulation::new();
//! let cluster = Cluster::new(&sim.ctx(), ClusterSpec::new(MP1, 2, 1)).unwrap();
//! cluster.spawn_spmd(|p| async move {
//!     let am = Am::new(&p);
//!     let crl = Crl::new(&p, &am);
//!     let coll = Coll::new(&p, Some(am));
//!     let rid = RegionId { home: ProcId(0), idx: 0 };
//!     if p.rank() == rid.home {
//!         crl.create(8);
//!     }
//!     let rgn = crl.map(rid, 8);
//!     // Let every rank finish setup before communicating.
//!     p.ctx().yield_now().await;
//!     coll.barrier().await;
//!     for turn in 0..p.nprocs() as u32 {
//!         if turn == p.rank().0 {
//!             crl.start_write(&rgn).await;
//!             let v = p.read_u64(rgn.addr());
//!             p.write_u64(rgn.addr(), v + 1);
//!             crl.end_write(&rgn).await;
//!         }
//!         coll.barrier().await;
//!     }
//!     crl.start_read(&rgn).await;
//!     assert_eq!(p.read_u64(rgn.addr()), 2);
//!     crl.end_read(&rgn).await;
//!     coll.barrier().await;
//! });
//! assert!(cluster.run(&sim).completed_cleanly());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod protocol;

pub use protocol::{Crl, CrlStats, Region, RegionId};
