//! The shared adaptive idle policy: spin → yield → park.
//!
//! Every wait in the runtime used to carry its own hand-rolled
//! "500 spins then `yield_now`" loop (the proxy idle scan, the command
//! queue's backpressure spin, flag waits). They are all replaced by two
//! primitives:
//!
//! * [`Backoff`] — a per-wait escalation counter: a few exponentially
//!   growing `spin_loop` bursts (cheap, keeps the latency of the common
//!   "data arrives within a microsecond" case), then `yield_now` (an
//!   oversubscribed host must let the producer run), and after enough
//!   fruitless yields the wait reports itself [`Backoff::is_parkable`];
//! * [`Parker`] — an explicit sleep/wake cell for waits that *have* a
//!   waker (the proxy thread: every enqueue onto one of its queues calls
//!   [`Parker::wake`]). Waits without a waker — user flag waits, whose
//!   flags are bumped by a proxy that does not know who is watching —
//!   simply stay in the yield phase.
//!
//! Parking keeps the §5.4 watchdog's busy-fraction sampling meaningful:
//! a parked proxy accrues no busy time *and* no longer burns a host CPU
//! converting idleness into scheduler noise.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Chunk length for [`sleep_unless`] — the longest an interruptible
/// sleeper can overshoot the abort signal.
const SLEEP_CHUNK: Duration = Duration::from_micros(200);

/// Sleeps for `dur` in small chunks, aborting early once `abort` reads
/// true. Returns `true` if the full duration elapsed, `false` on abort.
/// Used by every long runtime sleep that must still honour the cluster
/// stop signal: the supervisor's restart backoff, interruptible injected
/// stalls, the watchdog's sampling period — so none of them can wedge
/// shutdown for longer than one chunk.
pub fn sleep_unless(dur: Duration, abort: &AtomicBool) -> bool {
    let deadline = Instant::now() + dur;
    loop {
        if abort.load(Ordering::Relaxed) {
            return false;
        }
        let Some(left) = deadline.checked_duration_since(Instant::now()) else {
            return true;
        };
        if left.is_zero() {
            return true;
        }
        std::thread::sleep(left.min(SLEEP_CHUNK));
    }
}

/// Spin-phase length: `2^0 + 2^1 + ... + 2^SPIN_LIMIT` pause
/// instructions before the first yield.
const SPIN_LIMIT: u32 = 6;
/// Yields after the spin phase before the wait is parkable.
const YIELD_LIMIT: u32 = 16;

/// Escalating backoff for a single wait. Create one per wait (or
/// [`Backoff::reset`] after progress) and call [`Backoff::snooze`] each
/// time the awaited condition is still false.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// A fresh backoff at the start of its spin phase.
    #[must_use]
    pub fn new() -> Backoff {
        Backoff { step: 0 }
    }

    /// Restarts the spin phase (call after the wait made progress).
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Waits a little: an exponentially growing `spin_loop` burst while
    /// in the spin phase, one `yield_now` afterwards.
    pub fn snooze(&mut self) {
        if self.step < SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        self.step = self.step.saturating_add(1);
    }

    /// True once the spin and yield phases are exhausted; a wait with a
    /// waker should now park instead of yielding forever.
    #[must_use]
    pub fn is_parkable(&self) -> bool {
        self.step >= SPIN_LIMIT + YIELD_LIMIT
    }
}

/// Consumer states of a [`Parker`].
const AWAKE: u32 = 0;
const PARKED: u32 = 1;

/// A sleep/wake cell binding one sleeping consumer to many producers.
///
/// The consumer calls [`Parker::register`] once from its own thread,
/// then brackets each sleep with [`Parker::prepare_park`] → *re-check
/// the queues* → [`Parker::park`] (or [`Parker::cancel`] if the re-check
/// found work). Producers call [`Parker::wake`] after every enqueue; the
/// fast path when the consumer is running is a single atomic load.
///
/// The prepare/re-check/park order makes the handoff race-free: the
/// producer's enqueue precedes its wake-check of the state flag, and the
/// consumer publishes `PARKED` before re-checking the queues — whichever
/// side acts second sees the other (both accesses are `SeqCst`, so the
/// store and the opposing load cannot reorder). `std::thread`'s unpark
/// token is sticky, so a wake landing between the re-check and the
/// actual `park` just makes the park return immediately. A bounded park
/// timeout backstops the (impossible, but cheap to insure against)
/// missed wake.
#[derive(Debug, Default)]
pub struct Parker {
    state: AtomicU32,
    sleeper: Mutex<Option<Thread>>,
}

impl Parker {
    /// A new parker with no registered consumer.
    #[must_use]
    pub fn new() -> Parker {
        Parker::default()
    }

    /// Binds the calling thread as the consumer.
    pub fn register(&self) {
        *self
            .sleeper
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(std::thread::current());
    }

    /// Announces intent to sleep. Re-check every input queue *after*
    /// this, then call [`Parker::park`] or [`Parker::cancel`].
    pub fn prepare_park(&self) {
        self.state.store(PARKED, Ordering::SeqCst);
    }

    /// Abandons a prepared sleep (the re-check found work).
    pub fn cancel(&self) {
        self.state.store(AWAKE, Ordering::SeqCst);
    }

    /// Sleeps until woken or `timeout` elapses. Only the registered
    /// consumer thread may call this, after [`Parker::prepare_park`].
    pub fn park(&self, timeout: Duration) {
        std::thread::park_timeout(timeout);
        self.state.store(AWAKE, Ordering::SeqCst);
    }

    /// Wakes the consumer if it is parked (or about to park). Producers
    /// call this after enqueuing; when the consumer is awake this is one
    /// atomic load.
    pub fn wake(&self) {
        if self.state.load(Ordering::SeqCst) == PARKED {
            if let Some(t) = self
                .sleeper
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .as_ref()
            {
                t.unpark();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backoff_escalates_to_parkable() {
        let mut b = Backoff::new();
        assert!(!b.is_parkable());
        for _ in 0..SPIN_LIMIT + YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_parkable());
        b.reset();
        assert!(!b.is_parkable());
    }

    #[test]
    fn wake_interrupts_park() {
        let parker = Arc::new(Parker::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (p2, f2) = (Arc::clone(&parker), Arc::clone(&flag));
        let consumer = std::thread::spawn(move || {
            p2.register();
            loop {
                p2.prepare_park();
                if f2.load(Ordering::SeqCst) {
                    p2.cancel();
                    break;
                }
                p2.park(Duration::from_secs(60));
            }
        });
        // Give the consumer time to park, then hand it the flag.
        std::thread::sleep(Duration::from_millis(50));
        flag.store(true, Ordering::SeqCst);
        parker.wake();
        consumer.join().unwrap();
    }

    #[test]
    fn sleep_unless_completes_and_aborts() {
        let abort = AtomicBool::new(false);
        assert!(sleep_unless(Duration::from_millis(1), &abort));
        abort.store(true, Ordering::Relaxed);
        let t0 = Instant::now();
        assert!(!sleep_unless(Duration::from_secs(30), &abort));
        assert!(t0.elapsed() < Duration::from_secs(5), "abort ignored");
    }

    #[test]
    fn wake_before_park_is_not_lost() {
        let parker = Arc::new(Parker::new());
        parker.register();
        parker.prepare_park();
        parker.wake(); // sticky token
        let t0 = std::time::Instant::now();
        parker.park(Duration::from_secs(10));
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "sticky unpark token must make park return immediately"
        );
    }
}
