//! Proxy supervision: respawn-with-resync under a restart budget.
//!
//! The proxy is a node's trusted communication agent (one per shard
//! lane); if a lane dies, the processes it serves are cut off. The
//! supervisor thread watches each lane's `panicked` bit (raised by
//! `run_proxy` after the dead incarnation has returned its seat and
//! recorded its panic payload) and brings the lane back:
//!
//! 1. **Backoff** — `backoff · 2^restarts_so_far`, interruptible by the
//!    cluster stop signal. A deterministic crash re-triggers quickly at
//!    first and progressively slower, so a crash loop does not become a
//!    spawn storm.
//! 2. **Budget** — at most `max_restarts` respawns per lane; past that
//!    the lane is *condemned* (fail-fast): peers purge traffic towards
//!    it, bounded waits report [`crate::RtError::ProxyDown`], shutdown
//!    stops waiting for its acknowledgements.
//! 3. **Respawn** — bump the lane's epoch, mark a Hello owed to every
//!    peer, clear the panic bit, and spawn a fresh incarnation. The new
//!    proxy resumes from the lane's surviving [`NodeState`] — watermarks,
//!    retention, CCBs — so nothing acknowledged is lost or re-applied;
//!    the Hello makes peers re-ack and retransmit immediately, bounding
//!    resync to one round trip instead of a retransmit timeout.
//!
//! On shutdown the supervisor makes one last pass condemning any lane
//! that is dead at that moment, so surviving proxies' drain loops
//! converge instead of waiting for acks that will never come.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use mproxy_obs::{Ctr, EventKind};

use crate::cluster::{condemn, run_proxy, Shared};
use crate::idle::sleep_unless;

/// How often the supervisor polls the panic bits.
const POLL: Duration = Duration::from_micros(200);

/// Supervision policy ([`crate::RtClusterBuilder::supervise`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SupervisorCfg {
    /// Respawns allowed per lane before condemnation.
    pub(crate) max_restarts: u32,
    /// Base restart delay; doubles with each restart of the same node.
    pub(crate) backoff: Duration,
}

/// The supervisor loop.
pub(crate) fn supervisor_main(shared: &Arc<Shared>) {
    let cfg = shared
        .supervision
        .expect("supervisor spawned without a supervision policy");
    let lanes = shared.panicked.len();
    let mut restarts = vec![0u32; lanes];
    'run: while !shared.stop.load(Ordering::Relaxed) {
        for (lane, restarted) in restarts.iter_mut().enumerate() {
            if !shared.panicked[lane].load(Ordering::Acquire)
                || shared.condemned[lane].load(Ordering::Acquire)
            {
                continue;
            }
            if *restarted >= cfg.max_restarts {
                eprintln!(
                    "mproxy-rt: {} proxy is crash-looping \
                     ({} restarts exhausted) — condemning it",
                    lane_label(shared, lane),
                    cfg.max_restarts
                );
                condemn(shared, lane);
                continue;
            }
            let delay = cfg.backoff.saturating_mul(1u32 << (*restarted).min(16));
            if !sleep_unless(delay, &shared.stop) {
                break 'run;
            }
            *restarted += 1;
            shared.restarts_total.fetch_add(1, Ordering::Relaxed);
            respawn(shared, lane, *restarted);
        }
        if !sleep_unless(POLL, &shared.stop) {
            break;
        }
    }
    // Shutdown pass: anything dead right now stays dead — condemn it so
    // peers stop retaining traffic for it and the drain loops converge.
    for lane in 0..lanes {
        if shared.panicked[lane].load(Ordering::Acquire)
            && !shared.condemned[lane].load(Ordering::Acquire)
        {
            condemn(shared, lane);
        }
    }
}

/// Human-facing name for a lane: `node N` unsharded, `node N shard S`
/// otherwise.
fn lane_label(shared: &Shared, lane: usize) -> String {
    if shared.sharded() {
        format!(
            "node {} shard {}",
            shared.lane_node(lane),
            lane % shared.shards
        )
    } else {
        format!("node {lane}")
    }
}

/// Brings up a fresh proxy incarnation for `lane`.
fn respawn(shared: &Arc<Shared>, lane: usize, restart_no: u32) {
    let epoch = {
        // The dead incarnation released the lane-state lock on its way
        // out (run_proxy drops the guard before raising the panic bit),
        // so this lock is uncontended.
        let mut st = shared.node_state[lane]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        st.epoch += 1;
        st.hello_pending = true;
        st.epoch
    };
    shared.epochs[lane].store(epoch, Ordering::Relaxed);
    let obs = &shared.obs[lane];
    obs.inc(Ctr::EpochBumps);
    obs.inc(Ctr::Respawns);
    obs.trace(EventKind::EpochBump, lane as u16, epoch as u32);
    obs.trace(EventKind::Respawn, lane as u16, restart_no);
    shared.panicked[lane].store(false, Ordering::Release);
    let reason = shared.panic_reasons[lane]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_else(|| "<unknown>".to_string());
    eprintln!(
        "mproxy-rt: {} proxy died ({reason}); \
         respawning on epoch {epoch} (restart {restart_no})",
        lane_label(shared, lane)
    );
    let name = if shared.sharded() {
        format!(
            "mproxy-{}s{}e{epoch}",
            shared.lane_node(lane),
            lane % shared.shards
        )
    } else {
        format!("mproxy-{lane}e{epoch}")
    };
    let sh = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(name)
        .spawn(move || run_proxy(lane, sh))
        .expect("spawn respawned proxy thread");
    let old = {
        let mut handles = shared.handles.lock().unwrap_or_else(|e| e.into_inner());
        handles[lane].replace(handle)
    };
    if let Some(old) = old {
        // The dead incarnation has already unwound past its body (the
        // panic bit said so); joining it is instant.
        let _ = old.join();
    }
}
