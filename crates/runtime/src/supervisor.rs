//! Proxy supervision: respawn-with-resync under a restart budget.
//!
//! The proxy is the node's single trusted communication agent; if it
//! dies, every process on the node is cut off. The supervisor thread
//! watches each node's `panicked` bit (raised by `run_proxy` after the
//! dead incarnation has returned its seat and recorded its panic
//! payload) and brings the node back:
//!
//! 1. **Backoff** — `backoff · 2^restarts_so_far`, interruptible by the
//!    cluster stop signal. A deterministic crash re-triggers quickly at
//!    first and progressively slower, so a crash loop does not become a
//!    spawn storm.
//! 2. **Budget** — at most `max_restarts` respawns per node; past that
//!    the node is *condemned* (fail-fast): peers purge traffic towards
//!    it, bounded waits report [`crate::RtError::ProxyDown`], shutdown
//!    stops waiting for its acknowledgements.
//! 3. **Respawn** — bump the node's epoch, mark a Hello owed to every
//!    peer, clear the panic bit, and spawn a fresh incarnation. The new
//!    proxy resumes from the node's surviving [`NodeState`] — watermarks,
//!    retention, CCBs — so nothing acknowledged is lost or re-applied;
//!    the Hello makes peers re-ack and retransmit immediately, bounding
//!    resync to one round trip instead of a retransmit timeout.
//!
//! On shutdown the supervisor makes one last pass condemning any node
//! that is dead at that moment, so surviving proxies' drain loops
//! converge instead of waiting for acks that will never come.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use mproxy_obs::{Ctr, EventKind};

use crate::cluster::{condemn, run_proxy, Shared};
use crate::idle::sleep_unless;

/// How often the supervisor polls the panic bits.
const POLL: Duration = Duration::from_micros(200);

/// Supervision policy ([`crate::RtClusterBuilder::supervise`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SupervisorCfg {
    /// Respawns allowed per node before condemnation.
    pub(crate) max_restarts: u32,
    /// Base restart delay; doubles with each restart of the same node.
    pub(crate) backoff: Duration,
}

/// The supervisor loop.
pub(crate) fn supervisor_main(shared: &Arc<Shared>) {
    let cfg = shared
        .supervision
        .expect("supervisor spawned without a supervision policy");
    let nodes = shared.panicked.len();
    let mut restarts = vec![0u32; nodes];
    'run: while !shared.stop.load(Ordering::Relaxed) {
        for (node, restarted) in restarts.iter_mut().enumerate() {
            if !shared.panicked[node].load(Ordering::Acquire)
                || shared.condemned[node].load(Ordering::Acquire)
            {
                continue;
            }
            if *restarted >= cfg.max_restarts {
                eprintln!(
                    "mproxy-rt: node {node} proxy is crash-looping \
                     ({} restarts exhausted) — condemning the node",
                    cfg.max_restarts
                );
                condemn(shared, node);
                continue;
            }
            let delay = cfg.backoff.saturating_mul(1u32 << (*restarted).min(16));
            if !sleep_unless(delay, &shared.stop) {
                break 'run;
            }
            *restarted += 1;
            shared.restarts_total.fetch_add(1, Ordering::Relaxed);
            respawn(shared, node, *restarted);
        }
        if !sleep_unless(POLL, &shared.stop) {
            break;
        }
    }
    // Shutdown pass: anything dead right now stays dead — condemn it so
    // peers stop retaining traffic for it and the drain loops converge.
    for node in 0..nodes {
        if shared.panicked[node].load(Ordering::Acquire)
            && !shared.condemned[node].load(Ordering::Acquire)
        {
            condemn(shared, node);
        }
    }
}

/// Brings up a fresh proxy incarnation for `node`.
fn respawn(shared: &Arc<Shared>, node: usize, restart_no: u32) {
    let epoch = {
        // The dead incarnation released the node-state lock on its way
        // out (run_proxy drops the guard before raising the panic bit),
        // so this lock is uncontended.
        let mut st = shared.node_state[node]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        st.epoch += 1;
        st.hello_pending = true;
        st.epoch
    };
    shared.epochs[node].store(epoch, Ordering::Relaxed);
    let obs = &shared.obs[node];
    obs.inc(Ctr::EpochBumps);
    obs.inc(Ctr::Respawns);
    obs.trace(EventKind::EpochBump, node as u16, epoch as u32);
    obs.trace(EventKind::Respawn, node as u16, restart_no);
    shared.panicked[node].store(false, Ordering::Release);
    let reason = shared.panic_reasons[node]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_else(|| "<unknown>".to_string());
    eprintln!(
        "mproxy-rt: node {node} proxy died ({reason}); \
         respawning on epoch {epoch} (restart {restart_no})"
    );
    let sh = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("mproxy-{node}e{epoch}"))
        .spawn(move || run_proxy(node, sh))
        .expect("spawn respawned proxy thread");
    let old = {
        let mut handles = shared.handles.lock().unwrap_or_else(|e| e.into_inner());
        handles[node].replace(handle)
    };
    if let Some(old) = old {
        // The dead incarnation has already unwound past its body (the
        // panic bit said so); joining it is instant.
        let _ = old.join();
    }
}
