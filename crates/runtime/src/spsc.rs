//! The lock-free single-producer single-consumer command queue.
//!
//! Exactly the structure Section 4 describes: "the command queues are
//! single-producer, single-consumer queues, \[so\] the queue synchronization
//! can be enforced by a full/empty flag in each queue entry". Neither side
//! shares its ring index — the *only* shared state is the per-entry flag
//! (plus the entry payload, published by the flag's release store). Every
//! field is a plain atomic; the implementation contains no unsafe code and
//! no locks.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::idle::Backoff;
use crate::ring::CachePadded;

/// A fixed command record: opcode plus four operand words — the shape of
/// a real proxy queue entry (opcode, addresses, size, sync descriptor) —
/// plus a submit timestamp for the command-queue-wait telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Entry {
    /// Operation code (interpreted by the consumer).
    pub op: u32,
    /// Operand words (addresses, lengths, flag ids...).
    pub args: [u64; 4],
    /// Submit timestamp, ns since an epoch the producer and consumer
    /// agree on (the cluster start). `0` means unstamped — telemetry
    /// recording was off at submit time, and the consumer must not
    /// derive a wait time from it.
    pub t_ns: u64,
}

struct Slot {
    /// 0 = empty, 1 = full. The producer's release store publishes the
    /// payload; the consumer's release store returns the slot.
    valid: AtomicU32,
    op: AtomicU32,
    args: [AtomicU64; 4],
    t_ns: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            valid: AtomicU32::new(0),
            op: AtomicU32::new(0),
            args: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
            t_ns: AtomicU64::new(0),
        }
    }
}

/// The shared ring. Split into a [`Producer`] / [`Consumer`] pair with
/// [`channel`].
#[derive(Debug)]
pub struct Ring {
    slots: Box<[CachePadded<Slot>]>,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot")
            .field("valid", &self.valid.load(Ordering::Relaxed))
            .finish()
    }
}

/// Creates a command queue of `capacity` entries, returning the two
/// endpoints.
///
/// # Panics
///
/// Panics if `capacity` is zero.
///
/// # Examples
///
/// ```
/// use mproxy_rt::spsc::{channel, Entry};
///
/// let (mut tx, mut rx) = channel(8);
/// assert!(tx.try_send(Entry { op: 1, args: [2, 3, 4, 5], ..Entry::default() }));
/// assert_eq!(rx.try_recv().unwrap().op, 1);
/// assert!(rx.try_recv().is_none());
/// ```
#[must_use]
pub fn channel(capacity: usize) -> (Producer, Consumer) {
    assert!(capacity > 0, "queue capacity must be > 0");
    let slots: Vec<CachePadded<Slot>> = (0..capacity).map(|_| CachePadded(Slot::new())).collect();
    let ring = std::sync::Arc::new(Ring {
        slots: slots.into_boxed_slice(),
    });
    (
        Producer {
            ring: std::sync::Arc::clone(&ring),
            head: 0,
        },
        Consumer { ring, tail: 0 },
    )
}

/// The user-process side of a command queue.
#[derive(Debug)]
pub struct Producer {
    ring: std::sync::Arc<Ring>,
    /// Private ring index — never shared with the consumer.
    head: usize,
}

impl Producer {
    /// Attempts to enqueue; returns false if the queue is full (the entry
    /// at the head still carries its full flag).
    pub fn try_send(&mut self, e: Entry) -> bool {
        let slot = &self.ring.slots[self.head];
        if slot.valid.load(Ordering::Acquire) != 0 {
            return false;
        }
        slot.op.store(e.op, Ordering::Relaxed);
        for (dst, src) in slot.args.iter().zip(e.args) {
            dst.store(src, Ordering::Relaxed);
        }
        slot.t_ns.store(e.t_ns, Ordering::Relaxed);
        // Publish: everything above happens-before a consumer that
        // acquires the flag.
        slot.valid.store(1, Ordering::Release);
        self.head = (self.head + 1) % self.ring.slots.len();
        true
    }

    /// Waits until the entry is accepted (bounded command queues provide
    /// natural backpressure on a runaway producer), backing off
    /// adaptively while the queue stays full.
    pub fn send(&mut self, e: Entry) {
        let mut backoff = Backoff::new();
        while !self.try_send(e) {
            backoff.snooze();
        }
    }

    /// Queue capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }
}

/// The proxy side of a command queue.
#[derive(Debug)]
pub struct Consumer {
    ring: std::sync::Arc<Ring>,
    tail: usize,
}

impl Consumer {
    /// Polls the queue head: one acquire load when empty (the probe the
    /// polling-delay model charges `C` for).
    pub fn try_recv(&mut self) -> Option<Entry> {
        let slot = &self.ring.slots[self.tail];
        if slot.valid.load(Ordering::Acquire) == 0 {
            return None;
        }
        let e = Entry {
            op: slot.op.load(Ordering::Relaxed),
            args: [
                slot.args[0].load(Ordering::Relaxed),
                slot.args[1].load(Ordering::Relaxed),
                slot.args[2].load(Ordering::Relaxed),
                slot.args[3].load(Ordering::Relaxed),
            ],
            t_ns: slot.t_ns.load(Ordering::Relaxed),
        };
        // Return the slot to the producer.
        slot.valid.store(0, Ordering::Release);
        self.tail = (self.tail + 1) % self.ring.slots.len();
        Some(e)
    }

    /// Drains up to `max` entries into `out` (appending), returning how
    /// many were taken. One acquire probe per entry plus one when the
    /// queue runs dry — the batched drain the proxy loop is built on.
    pub fn pop_burst(&mut self, out: &mut Vec<Entry>, max: usize) -> usize {
        let mut taken = 0;
        while taken < max {
            let Some(e) = self.try_recv() else { break };
            out.push(e);
            taken += 1;
        }
        taken
    }

    /// True if the head slot holds a command (non-destructive probe).
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.ring.slots[self.tail].valid.load(Ordering::Acquire) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_capacity() {
        let (mut tx, mut rx) = channel(4);
        for i in 0..4 {
            assert!(tx.try_send(Entry {
                op: i,
                args: [u64::from(i); 4],
                ..Entry::default()
            }));
        }
        assert!(
            !tx.try_send(Entry {
                op: 9,
                args: [0; 4],
                ..Entry::default()
            }),
            "must be full"
        );
        for i in 0..4 {
            let e = rx.try_recv().unwrap();
            assert_eq!(e.op, i);
            assert_eq!(e.args[3], u64::from(i));
        }
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut tx, mut rx) = channel(3);
        for round in 0..100u32 {
            assert!(tx.try_send(Entry {
                op: round,
                args: [u64::from(round), 0, 0, 0],
                ..Entry::default()
            }));
            assert_eq!(rx.try_recv().unwrap().op, round);
        }
    }

    #[test]
    fn cross_thread_stress_preserves_sequence() {
        let (mut tx, mut rx) = channel(16);
        const N: u32 = 100_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.send(Entry {
                    op: i,
                    args: [u64::from(i).wrapping_mul(0x9e37), 0, 0, 0],
                    ..Entry::default()
                });
            }
        });
        let mut expected = 0u32;
        while expected < N {
            if let Some(e) = rx.try_recv() {
                assert_eq!(e.op, expected);
                assert_eq!(e.args[0], u64::from(expected).wrapping_mul(0x9e37));
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn pop_burst_drains_up_to_max() {
        let (mut tx, mut rx) = channel(8);
        for i in 0..6 {
            assert!(tx.try_send(Entry {
                op: i,
                args: [0; 4],
                ..Entry::default()
            }));
        }
        let mut out = Vec::new();
        assert_eq!(rx.pop_burst(&mut out, 4), 4);
        assert_eq!(rx.pop_burst(&mut out, 4), 2, "queue runs dry mid-burst");
        assert_eq!(
            out.iter().map(|e| e.op).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4, 5]
        );
        assert_eq!(rx.pop_burst(&mut out, 4), 0);
        // Freed slots are reusable immediately.
        assert!(tx.try_send(Entry {
            op: 9,
            args: [0; 4],
                ..Entry::default()
        }));
        assert_eq!(rx.try_recv().unwrap().op, 9);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = channel(0);
    }
}
