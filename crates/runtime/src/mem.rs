//! Shared-memory segments for the threaded runtime.
//!
//! Each user process owns one [`Segment`] — the runtime analogue of an
//! address space (`asid`). Segments are atomic word arrays, so the proxy
//! thread can move data without locks; release/acquire ordering on the
//! synchronisation flags publishes the payload bytes, exactly like a
//! real shared-memory mailbox protocol.
//!
//! Storage is word-granular (`AtomicU64`), not byte-granular: payload
//! copies are the proxy's per-message service cost, and copying whole
//! words needs one eighth of the atomic operations. Byte addressing is
//! preserved at the API — unaligned edges of a transfer are merged into
//! their word with a compare-and-swap loop so a neighbouring write to
//! the *other* bytes of the same word is never lost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

const WORD: usize = 8;

/// A byte-addressable shared segment.
#[derive(Clone)]
pub struct Segment {
    words: Arc<[AtomicU64]>,
    size: usize,
}

impl Segment {
    /// Allocates a zeroed segment of `size` bytes.
    #[must_use]
    pub fn new(size: usize) -> Segment {
        let v: Vec<AtomicU64> = (0..size.div_ceil(WORD))
            .map(|_| AtomicU64::new(0))
            .collect();
        Segment {
            words: v.into(),
            size,
        }
    }

    /// Segment size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// True if `[addr, addr+n)` lies inside the segment.
    #[must_use]
    pub fn check(&self, addr: u64, n: usize) -> bool {
        (addr as usize)
            .checked_add(n)
            .is_some_and(|end| end <= self.size)
    }

    /// Copies `n` bytes out of the segment into a shared buffer.
    ///
    /// The snapshot is taken once; the returned [`Bytes`] can then travel
    /// through wire queues and be cloned per hop without further copies.
    /// Words are snapshotted atomically; a transfer spanning several
    /// words observes each word at a single instant (the flag protocol,
    /// not the copy, orders whole payloads).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds (callers validate first).
    #[must_use]
    pub fn read(&self, addr: u64, n: usize) -> Bytes {
        assert!(self.check(addr, n), "segment read out of bounds");
        let mut v = vec![0u8; n];
        let start = addr as usize;
        let mut i = 0;
        while i < n {
            let byte = start + i;
            let off = byte % WORD;
            let take = (WORD - off).min(n - i);
            let w = self.words[byte / WORD]
                .load(Ordering::Relaxed)
                .to_le_bytes();
            v[i..i + take].copy_from_slice(&w[off..off + take]);
            i += take;
        }
        Bytes::from(v)
    }

    /// Copies `data` into the segment.
    ///
    /// Aligned full words are plain atomic stores; partial words at the
    /// edges merge via a CAS loop so concurrent writes to the other
    /// bytes of the word survive.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds (callers validate first).
    pub fn write(&self, addr: u64, data: &[u8]) {
        assert!(self.check(addr, data.len()), "segment write out of bounds");
        let start = addr as usize;
        let n = data.len();
        let mut i = 0;
        while i < n {
            let byte = start + i;
            let off = byte % WORD;
            let take = (WORD - off).min(n - i);
            let slot = &self.words[byte / WORD];
            if take == WORD {
                let w = u64::from_le_bytes(data[i..i + WORD].try_into().expect("word"));
                slot.store(w, Ordering::Relaxed);
            } else {
                let _ = slot.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
                    let mut w = old.to_le_bytes();
                    w[off..off + take].copy_from_slice(&data[i..i + take]);
                    Some(u64::from_le_bytes(w))
                });
            }
            i += take;
        }
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read(addr, 8)[..].try_into().expect("8 bytes"))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads an `f64`.
    #[must_use]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    pub fn write_f64(&self, addr: u64, v: f64) {
        self.write_u64(addr, v.to_bits());
    }
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("size", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let s = Segment::new(64);
        s.write(0, b"hello");
        assert_eq!(&s.read(0, 5)[..], b"hello");
        s.write_u64(8, 0xfeed);
        assert_eq!(s.read_u64(8), 0xfeed);
        s.write_f64(16, -1.25);
        assert_eq!(s.read_f64(16), -1.25);
    }

    #[test]
    fn bounds_checking() {
        let s = Segment::new(16);
        assert!(s.check(0, 16));
        assert!(!s.check(1, 16));
        assert!(!s.check(u64::MAX, 1));
        assert!(s.check(16, 0));
    }

    #[test]
    fn clones_share_storage() {
        let a = Segment::new(8);
        let b = a.clone();
        a.write_u64(0, 7);
        assert_eq!(b.read_u64(0), 7);
    }

    #[test]
    fn unaligned_edges_merge_into_words() {
        let s = Segment::new(32);
        s.write(0, &[0xAA; 32]);
        // A 5-byte write at offset 3 spans the first word's tail and the
        // second word's head; surrounding bytes must survive.
        s.write(3, &[1, 2, 3, 4, 5]);
        let got = s.read(0, 32);
        assert_eq!(&got[..3], &[0xAA; 3]);
        assert_eq!(&got[3..8], &[1, 2, 3, 4, 5]);
        assert_eq!(&got[8..], &[0xAA; 24]);
        // Unaligned read of the same span.
        assert_eq!(&s.read(3, 5)[..], &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn odd_sized_segment_reaches_last_byte() {
        let s = Segment::new(13);
        assert!(s.check(12, 1));
        assert!(!s.check(12, 2));
        s.write(10, b"end");
        assert_eq!(&s.read(10, 3)[..], b"end");
    }

    #[test]
    fn concurrent_writers_to_adjacent_bytes_both_land() {
        let s = Segment::new(16);
        let s2 = s.clone();
        // Two threads hammer disjoint halves of the same word.
        let t = std::thread::spawn(move || {
            for i in 0..10_000u32 {
                s2.write(0, &(i as u8).to_le_bytes()[..1]);
            }
        });
        for i in 0..10_000u32 {
            s.write(4, &i.to_le_bytes());
        }
        t.join().unwrap();
        assert_eq!(s.read(4, 4)[..], 9_999u32.to_le_bytes());
    }
}
