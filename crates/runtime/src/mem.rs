//! Shared-memory segments for the threaded runtime.
//!
//! Each user process owns one [`Segment`] — the runtime analogue of an
//! address space (`asid`). Segments are plain atomic byte arrays, so the
//! proxy thread can move data without locks; release/acquire ordering on
//! the synchronisation flags publishes the payload bytes, exactly like a
//! real shared-memory mailbox protocol.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use bytes::Bytes;

/// A byte-addressable shared segment.
#[derive(Clone)]
pub struct Segment {
    bytes: Arc<[AtomicU8]>,
}

impl Segment {
    /// Allocates a zeroed segment of `size` bytes.
    #[must_use]
    pub fn new(size: usize) -> Segment {
        let v: Vec<AtomicU8> = (0..size).map(|_| AtomicU8::new(0)).collect();
        Segment { bytes: v.into() }
    }

    /// Segment size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// True if `[addr, addr+n)` lies inside the segment.
    #[must_use]
    pub fn check(&self, addr: u64, n: usize) -> bool {
        (addr as usize)
            .checked_add(n)
            .is_some_and(|end| end <= self.bytes.len())
    }

    /// Copies `n` bytes out of the segment into a shared buffer.
    ///
    /// The snapshot is taken once; the returned [`Bytes`] can then travel
    /// through wire queues and be cloned per hop without further copies.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds (callers validate first).
    #[must_use]
    pub fn read(&self, addr: u64, n: usize) -> Bytes {
        let s = addr as usize;
        let v: Vec<u8> = self.bytes[s..s + n]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        Bytes::from(v)
    }

    /// Copies `data` into the segment.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds (callers validate first).
    pub fn write(&self, addr: u64, data: &[u8]) {
        let s = addr as usize;
        for (slot, &b) in self.bytes[s..s + data.len()].iter().zip(data) {
            slot.store(b, Ordering::Relaxed);
        }
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read(addr, 8)[..].try_into().expect("8 bytes"))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads an `f64`.
    #[must_use]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    pub fn write_f64(&self, addr: u64, v: f64) {
        self.write_u64(addr, v.to_bits());
    }
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("size", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let s = Segment::new(64);
        s.write(0, b"hello");
        assert_eq!(&s.read(0, 5)[..], b"hello");
        s.write_u64(8, 0xfeed);
        assert_eq!(s.read_u64(8), 0xfeed);
        s.write_f64(16, -1.25);
        assert_eq!(s.read_f64(16), -1.25);
    }

    #[test]
    fn bounds_checking() {
        let s = Segment::new(16);
        assert!(s.check(0, 16));
        assert!(!s.check(1, 16));
        assert!(!s.check(u64::MAX, 1));
        assert!(s.check(16, 0));
    }

    #[test]
    fn clones_share_storage() {
        let a = Segment::new(8);
        let b = a.clone();
        a.write_u64(0, 7);
        assert_eq!(b.read_u64(0), 7);
    }
}
