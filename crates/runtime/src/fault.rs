//! Seeded fault injection for the *native* (threaded) runtime.
//!
//! An [`RtFaultPlan`] mirrors `mproxy-simnet`'s `FaultPlan` semantics on
//! real threads: per-packet drop / duplication / corruption Bernoulli
//! draws (reordering is omitted — the wire rings are FIFO by
//! construction, so the transport cannot reorder), plus the time-domain
//! faults that matter to a supervisor: **stalls** (the proxy freezes for
//! a wall-clock window) and **kills** (the proxy panics after servicing
//! a given number of operations, deterministically reproducible because
//! the trigger is an op count, not a clock).
//!
//! The per-packet draws come from the shared fate core
//! ([`mproxy_model::fate`]), one [`SplitMix64`] stream per *sending*
//! proxy lane (`seed ^ lane·φ`, where `lane = node·shards + shard`; at
//! one shard per node a lane is exactly a node, so pre-sharding seeds
//! reproduce bit-for-bit), so each proxy's fault stream is a pure
//! function of the seed and of how many packets that proxy has judged.
//! Cross-node interleaving is still scheduler-dependent — these are real
//! threads — which is exactly the nondeterminism the chaos harness is
//! meant to soak; the per-lane streams keep any *single* proxy's fate
//! sequence reproducible. Kills and stalls target a (node, shard) lane;
//! the plain builders target shard 0.
//!
//! When no plan is installed the cluster carries `None` and the hot path
//! pays one never-taken branch per loop — zero cost in the sense that
//! matters for the `rt_throughput` gate.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use mproxy_model::fate::{check_probability, windows_overlap, Fate, PacketFates, SplitMix64};

/// Golden-ratio increment used to derive per-node PRNG streams.
const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

/// A wall-clock window during which one node's proxy freezes (services
/// nothing, acknowledges nothing). `interruptible` stalls still observe
/// the cluster stop signal — the proxy wakes early at shutdown; a
/// non-interruptible stall ("wedge") models a proxy stuck in foreign
/// code and is the test vehicle for the bounded-shutdown path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtStall {
    /// The stalled node.
    pub node: usize,
    /// The stalled shard on that node (0 when the node is unsharded).
    pub shard: usize,
    /// Window start, relative to cluster start.
    pub start: Duration,
    /// Window length.
    pub dur: Duration,
    /// Whether the stalled proxy still honours the stop signal.
    pub interruptible: bool,
}

/// A deterministic proxy kill: the proxy for `node` panics at the top of
/// its service loop once it has serviced at least `after_ops` operations
/// (commands + packets, cumulative across respawns — so several kills on
/// one node fire in `after_ops` order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtKill {
    /// The node whose proxy dies.
    pub node: usize,
    /// The shard lane on that node that dies (0 when unsharded).
    pub shard: usize,
    /// Ops-serviced threshold that triggers the panic.
    pub after_ops: u64,
}

/// A seeded description of the faults to inject into a running cluster.
///
/// Built with the fluent methods, installed via
/// `RtClusterBuilder::fault_plan`; all probabilities are per transmitted
/// data packet and independent. Control traffic (acknowledgement
/// watermarks, NACKs, HELLOs) is never judged — the injector models a
/// lossy transport under a reliable protocol, not a broken protocol.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use mproxy_rt::RtFaultPlan;
///
/// let plan = RtFaultPlan::new(42)
///     .drop(0.01)
///     .duplicate(0.005)
///     .corrupt(0.002)
///     .kill(1, 5_000)
///     .stall(0, Duration::from_millis(10), Duration::from_millis(5));
/// assert_eq!(plan.seed, 42);
/// assert!(!plan.is_benign());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RtFaultPlan {
    /// PRNG seed; per-node streams are derived as `seed ^ node·φ`.
    pub seed: u64,
    /// Per-packet Bernoulli fates (shared fate-core representation).
    pub fates: PacketFates,
    /// Proxy stall windows.
    pub stalls: Vec<RtStall>,
    /// Deterministic proxy kills.
    pub kills: Vec<RtKill>,
}

impl RtFaultPlan {
    /// A plan with the given seed and no faults.
    #[must_use]
    pub fn new(seed: u64) -> RtFaultPlan {
        RtFaultPlan {
            seed,
            fates: PacketFates::NONE,
            stalls: Vec::new(),
            kills: Vec::new(),
        }
    }

    /// Sets the per-packet drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn drop(mut self, p: f64) -> RtFaultPlan {
        self.fates.drop_p = check_probability(p, "drop");
        self
    }

    /// Sets the per-packet duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn duplicate(mut self, p: f64) -> RtFaultPlan {
        self.fates.dup_p = check_probability(p, "duplicate");
        self
    }

    /// Sets the per-packet payload-corruption probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn corrupt(mut self, p: f64) -> RtFaultPlan {
        self.fates.corrupt_p = check_probability(p, "corrupt");
        self
    }

    /// Adds an interruptible stall window for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `dur` is zero or the window overlaps an existing stall
    /// window on the same node.
    #[must_use]
    pub fn stall(self, node: usize, start: Duration, dur: Duration) -> RtFaultPlan {
        self.add_stall(node, 0, start, dur, true)
    }

    /// Adds an interruptible stall window targeting one shard lane of
    /// `node` (shard 0 is the lane [`RtFaultPlan::stall`] targets).
    ///
    /// # Panics
    ///
    /// Same conditions as [`RtFaultPlan::stall`].
    #[must_use]
    pub fn stall_shard(
        self,
        node: usize,
        shard: usize,
        start: Duration,
        dur: Duration,
    ) -> RtFaultPlan {
        self.add_stall(node, shard, start, dur, true)
    }

    /// Adds a **non-interruptible** stall ("wedge") for `node`: the
    /// proxy sleeps through the stop signal, which is how a wedged proxy
    /// is simulated for the bounded-shutdown tests.
    ///
    /// # Panics
    ///
    /// Same conditions as [`RtFaultPlan::stall`].
    #[must_use]
    pub fn wedge(self, node: usize, start: Duration, dur: Duration) -> RtFaultPlan {
        self.add_stall(node, 0, start, dur, false)
    }

    fn add_stall(
        mut self,
        node: usize,
        shard: usize,
        start: Duration,
        dur: Duration,
        interruptible: bool,
    ) -> RtFaultPlan {
        assert!(!dur.is_zero(), "empty stall window");
        let (s, e) = (start.as_secs_f64(), (start + dur).as_secs_f64());
        if let Some(w) = self.stalls.iter().find(|w| {
            w.node == node
                && w.shard == shard
                && windows_overlap(
                    w.start.as_secs_f64(),
                    (w.start + w.dur).as_secs_f64(),
                    s,
                    e,
                )
        }) {
            panic!(
                "stall window [{s}s, {e}s) overlaps [{:?}, {:?}) on node {node}",
                w.start,
                w.start + w.dur
            );
        }
        self.stalls.push(RtStall {
            node,
            shard,
            start,
            dur,
            interruptible,
        });
        self
    }

    /// Adds a kill: `node`'s proxy panics once it has serviced
    /// `after_ops` operations. Multiple kills on one node fire one at a
    /// time, in `after_ops` order, against the node's *cumulative*
    /// (cross-epoch) op count.
    #[must_use]
    pub fn kill(mut self, node: usize, after_ops: u64) -> RtFaultPlan {
        self.kills.push(RtKill {
            node,
            shard: 0,
            after_ops,
        });
        self.kills.sort_by_key(|k| k.after_ops);
        self
    }

    /// Adds a kill targeting one shard lane of `node` (shard 0 is the
    /// lane [`RtFaultPlan::kill`] targets): that lane's proxy panics
    /// once *it* has serviced `after_ops` operations (the op count is
    /// per lane, cumulative across that lane's respawns).
    #[must_use]
    pub fn kill_shard(mut self, node: usize, shard: usize, after_ops: u64) -> RtFaultPlan {
        self.kills.push(RtKill {
            node,
            shard,
            after_ops,
        });
        self.kills.sort_by_key(|k| k.after_ops);
        self
    }

    /// True if the plan injects nothing at all.
    #[must_use]
    pub fn is_benign(&self) -> bool {
        self.fates.is_benign() && self.stalls.is_empty() && self.kills.is_empty()
    }

    /// Largest node index the plan references, if any (for validation
    /// against the cluster size at start).
    #[must_use]
    pub fn max_node(&self) -> Option<usize> {
        self.stalls
            .iter()
            .map(|s| s.node)
            .chain(self.kills.iter().map(|k| k.node))
            .max()
    }

    /// Largest shard index the plan references, if any (for validation
    /// against the cluster's shard width at start).
    #[must_use]
    pub fn max_shard(&self) -> Option<usize> {
        self.stalls
            .iter()
            .map(|s| s.shard)
            .chain(self.kills.iter().map(|k| k.shard))
            .max()
    }
}

/// Counters of injected runtime faults, for reports and the chaos
/// harness's sanity assertions ("the injector actually fired").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RtFaultCounts {
    /// Data packets judged.
    pub packets: u64,
    /// Data packets dropped at the sending proxy.
    pub dropped: u64,
    /// Data packets transmitted twice.
    pub duplicated: u64,
    /// Data packets delivered with the corrupt flag set.
    pub corrupted: u64,
    /// Proxy kills fired.
    pub kills: u64,
    /// Stall windows served.
    pub stalls: u64,
}

/// What a stall check asks the proxy to do right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StallOrder {
    pub remaining: Duration,
    pub interruptible: bool,
}

/// Live injector state shared by every proxy thread. Indexed by *lane*
/// (`node * shards + shard`); at `shards == 1` a lane is exactly a node
/// and every stream matches the pre-sharding injector bit-for-bit.
#[derive(Debug)]
pub(crate) struct RtFaultState {
    plan: RtFaultPlan,
    shards: usize,
    rngs: Vec<Mutex<SplitMix64>>,
    kill_fired: Vec<AtomicBool>,
    stall_done: Vec<AtomicBool>,
    packets: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    corrupted: AtomicU64,
    kills: AtomicU64,
    stalls: AtomicU64,
}

impl RtFaultState {
    pub(crate) fn new(plan: RtFaultPlan, nodes: usize, shards: usize) -> RtFaultState {
        if let Some(max) = plan.max_node() {
            assert!(max < nodes, "fault plan references node {max} of {nodes}");
        }
        if let Some(max) = plan.max_shard() {
            assert!(
                max < shards,
                "fault plan references shard {max} of {shards}"
            );
        }
        RtFaultState {
            shards,
            rngs: (0..nodes * shards)
                .map(|l| Mutex::new(SplitMix64::new(plan.seed ^ (l as u64).wrapping_mul(PHI))))
                .collect(),
            kill_fired: plan.kills.iter().map(|_| AtomicBool::new(false)).collect(),
            stall_done: plan.stalls.iter().map(|_| AtomicBool::new(false)).collect(),
            packets: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            kills: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            plan,
        }
    }

    /// True if no per-packet fault can ever fire — lets the send path
    /// skip the RNG entirely for stall/kill-only plans.
    pub(crate) fn packet_faults_possible(&self) -> bool {
        !self.plan.fates.is_benign()
    }

    /// Judges one outgoing data packet from `lane` and counts what was
    /// injected. The lane's own proxy is the only caller, so the mutex
    /// is uncontended.
    pub(crate) fn judge(&self, lane: usize) -> Fate {
        let fate = self
            .plan
            .fates
            .judge(&mut self.rngs[lane].lock().unwrap_or_else(|e| e.into_inner()));
        self.packets.fetch_add(1, Ordering::Relaxed);
        if fate.drop {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            if fate.duplicate {
                self.duplicated.fetch_add(1, Ordering::Relaxed);
            }
            if fate.corrupt {
                self.corrupted.fetch_add(1, Ordering::Relaxed);
            }
        }
        fate
    }

    /// If a kill is due on `lane` given its cumulative op count, marks
    /// it fired and returns its threshold (at most one kill per call, so
    /// each respawn can be killed again by a later entry).
    pub(crate) fn kill_due(&self, lane: usize, ops: u64) -> Option<u64> {
        for (i, k) in self.plan.kills.iter().enumerate() {
            if k.node * self.shards + k.shard == lane
                && ops >= k.after_ops
                && !self.kill_fired[i].swap(true, Ordering::Relaxed)
            {
                self.kills.fetch_add(1, Ordering::Relaxed);
                return Some(k.after_ops);
            }
        }
        None
    }

    /// If `lane` sits inside an unserved stall window at `elapsed` since
    /// cluster start, marks the window served and returns how long to
    /// freeze (the remainder of the window).
    pub(crate) fn stall_due(&self, lane: usize, elapsed: Duration) -> Option<StallOrder> {
        for (i, s) in self.plan.stalls.iter().enumerate() {
            if s.node * self.shards + s.shard == lane
                && elapsed >= s.start
                && elapsed < s.start + s.dur
                && !self.stall_done[i].swap(true, Ordering::Relaxed)
            {
                self.stalls.fetch_add(1, Ordering::Relaxed);
                return Some(StallOrder {
                    remaining: (s.start + s.dur).saturating_sub(elapsed),
                    interruptible: s.interruptible,
                });
            }
        }
        None
    }

    /// Whether any time-domain fault is configured (gates the per-loop
    /// clock check).
    pub(crate) fn has_timed_faults(&self) -> bool {
        !self.plan.stalls.is_empty() || !self.plan.kills.is_empty()
    }

    /// Snapshot of the injection counters.
    pub(crate) fn counts(&self) -> RtFaultCounts {
        RtFaultCounts {
            packets: self.packets.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            kills: self.kills.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_node_streams_are_independent_and_seeded() {
        let plan = RtFaultPlan::new(9).drop(0.5);
        let (a, b) = (
            RtFaultState::new(plan.clone(), 2, 1),
            RtFaultState::new(plan, 2, 1),
        );
        let fa: Vec<Fate> = (0..50).map(|_| a.judge(0)).collect();
        let fb: Vec<Fate> = (0..50).map(|_| b.judge(0)).collect();
        assert_eq!(fa, fb, "same seed, same per-node stream");
        // Node 1's stream differs from node 0's.
        let f1: Vec<Fate> = (0..50).map(|_| a.judge(1)).collect();
        assert_ne!(fa, f1);
    }

    #[test]
    fn kills_fire_once_each_in_order() {
        let plan = RtFaultPlan::new(0).kill(1, 100).kill(1, 50);
        let st = RtFaultState::new(plan, 2, 1);
        assert_eq!(st.kill_due(0, 1_000), None, "other nodes unaffected");
        assert_eq!(st.kill_due(1, 49), None);
        assert_eq!(st.kill_due(1, 60), Some(50), "lowest threshold first");
        assert_eq!(st.kill_due(1, 60), None, "second kill not yet due");
        assert_eq!(st.kill_due(1, 120), Some(100), "fires at its threshold");
        assert_eq!(st.kill_due(1, 1_000_000), None, "each fires once");
        assert_eq!(st.counts().kills, 2);
    }

    #[test]
    fn stalls_serve_once_with_remaining_time() {
        let plan = RtFaultPlan::new(0)
            .stall(0, Duration::from_millis(10), Duration::from_millis(20))
            .wedge(1, Duration::ZERO, Duration::from_millis(5));
        let st = RtFaultState::new(plan, 2, 1);
        assert_eq!(st.stall_due(0, Duration::from_millis(5)), None);
        let o = st.stall_due(0, Duration::from_millis(15)).unwrap();
        assert_eq!(o.remaining, Duration::from_millis(15));
        assert!(o.interruptible);
        assert_eq!(st.stall_due(0, Duration::from_millis(16)), None);
        let w = st.stall_due(1, Duration::ZERO).unwrap();
        assert!(!w.interruptible);
        assert_eq!(st.counts().stalls, 2);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_stalls_rejected() {
        let _ = RtFaultPlan::new(0)
            .stall(0, Duration::from_millis(0), Duration::from_millis(10))
            .stall(0, Duration::from_millis(5), Duration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "references node")]
    fn plan_validated_against_cluster_size() {
        let _ = RtFaultState::new(RtFaultPlan::new(0).kill(7, 10), 2, 1);
    }

    #[test]
    #[should_panic(expected = "references shard")]
    fn plan_validated_against_shard_width() {
        let _ = RtFaultState::new(RtFaultPlan::new(0).kill_shard(0, 3, 10), 2, 2);
    }

    #[test]
    fn shard_targeted_kills_key_on_the_lane() {
        // 2 nodes x 2 shards; kill (node 1, shard 1) => lane 3 only.
        let plan = RtFaultPlan::new(0).kill_shard(1, 1, 10);
        let st = RtFaultState::new(plan, 2, 2);
        assert_eq!(st.kill_due(2, 1_000), None, "sibling shard unaffected");
        assert_eq!(st.kill_due(3, 9), None);
        assert_eq!(st.kill_due(3, 10), Some(10));
        assert_eq!(st.kill_due(3, 10), None, "fires once");
    }

    #[test]
    fn benign_plan_counts_nothing() {
        let st = RtFaultState::new(RtFaultPlan::new(3), 1, 1);
        assert!(st.plan.is_benign());
        assert!(!st.packet_faults_possible());
        assert!(!st.has_timed_faults());
        let f = st.judge(0);
        assert!(!f.drop && !f.duplicate && !f.corrupt);
        assert_eq!(st.counts().packets, 1);
    }
}
