//! # mproxy-rt — the message-proxy architecture on real threads
//!
//! The paper's design, a quarter century on, is the standard recipe of
//! DPDK, SPDK and seastar: dedicate a core to a *polling* communication
//! agent, talk to it through lock-free single-producer single-consumer
//! queues, never take an interrupt or a lock on the data path. This crate
//! is that system in miniature, structured exactly like Section 4's
//! implementation:
//!
//! * [`spsc`] — command queues whose only shared state is a full/empty
//!   flag per entry;
//! * [`ring`] — bounded lock-free rings for the rest of the data plane:
//!   one MPSC wire ring per node (peer proxies → pinned proxy) and SPSC
//!   reply rings (proxy → user process), with a selectable locked
//!   baseline ([`RtClusterBuilder::locked_data_plane`]) for A/B
//!   measurement;
//! * [`idle`] — the shared adaptive idle policy (spin → yield → park
//!   with explicit wake on enqueue) every wait in the runtime uses;
//! * a proxy thread per node running the Figure 5 loop in batched
//!   drains (ACKs coalesced per peer per batch), with the §4.1
//!   shared ready-bit vector accelerating the idle scan;
//! * protected RMA (`put`/`get`) and remote queues (`enq`) between
//!   processes, with asid permission checks enforced *in the proxy*;
//! * an in-process "network" of FIFO channels standing in for the SP
//!   switch adapter (see DESIGN.md's substitution notes);
//! * an overload **watchdog** sampling each proxy's busy fraction and
//!   flagging violations of the paper's §5.4 stability rule (a proxy past
//!   50% utilisation has unbounded expected queueing delay), with
//!   opt-in request shedding
//!   ([`RtClusterBuilder::enable_shedding`]);
//! * a sequenced, acknowledged **wire layer** between proxies (go-back-N
//!   with cumulative acks and sender-side retention) making "an op whose
//!   `lsync` fired was applied exactly once" hold under packet loss,
//!   duplication, corruption, shedding, and proxy crashes;
//! * [`fault`] — a seeded **fault injector**
//!   ([`RtClusterBuilder::fault_plan`]): per-packet drop / duplicate /
//!   corrupt verdicts plus injected proxy stalls and kills, sharing its
//!   deterministic fate core with the simulator's `simnet::FaultPlan`;
//! * proxy **supervision** ([`RtClusterBuilder::supervise`]): a dead
//!   proxy is respawned on a fresh epoch against the node's surviving
//!   protocol state, under a restart budget with exponential backoff;
//!   crash-looping nodes are *condemned* and reported through
//!   [`RtError::ProxyDown`] and the deadline-bounded
//!   [`RtCluster::shutdown`]'s [`ShutdownReport`];
//! * **multi-proxy sharding** ([`RtClusterBuilder::shards`]): each
//!   node's command-queue service partitioned over up to [`MAX_SHARDS`]
//!   proxy shard threads by a per-node shard table, with optional
//!   **elastic scaling** ([`RtClusterBuilder::elastic_shards`]) that
//!   grows and shrinks the active shard count off the watchdog's §5.4
//!   busy-fraction signal, migrating queues between shards with a
//!   quiesce → drain → retarget handoff that preserves the exactly-once
//!   contract.
//!
//! # Examples
//!
//! ```
//! use mproxy_rt::{FlagId, RtClusterBuilder};
//!
//! let mut b = RtClusterBuilder::new(2);
//! let p0 = b.add_process(0, 4096);
//! let p1 = b.add_process(1, 4096);
//! let (cluster, mut eps) = b.start();
//! let mut e1 = eps.pop().unwrap();
//! let mut e0 = eps.pop().unwrap();
//! assert_eq!((e0.asid(), e1.asid()), (p0, p1));
//!
//! // PUT 8 bytes from process 0 into process 1's segment and wait for
//! // the acknowledgement.
//! e0.seg().write_u64(0, 42);
//! e0.put(0, p1, 128, 8, Some(FlagId(0)), None);
//! e0.wait_flag(FlagId(0), 1);
//! assert_eq!(e1.seg().read_u64(128), 42);
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
pub mod fault;
pub mod idle;
mod mem;
pub mod ring;
pub mod spsc;
mod supervisor;

pub use cluster::{
    Endpoint, FlagId, ProxyPanic, RqId, RtCluster, RtClusterBuilder, RtError, ShutdownReport,
    CMDQ_DEPTH, MAX_SHARDS, NUM_FLAGS, NUM_QUEUES, RECOVERY_UTILIZATION, RQ_DEPTH, SHED_BACKLOG,
    WIRE_DEPTH,
};
pub use fault::{RtFaultCounts, RtFaultPlan, RtKill, RtStall};
pub use mem::Segment;
pub use mproxy_obs as obs;

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_pair() -> (RtCluster, Endpoint, Endpoint) {
        let mut b = RtClusterBuilder::new(2);
        let _p0 = b.add_process(0, 1 << 16);
        let _p1 = b.add_process(1, 1 << 16);
        let (cluster, mut eps) = b.start();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        (cluster, e0, e1)
    }

    #[test]
    fn put_reaches_remote_segment() {
        let (cluster, mut e0, e1) = two_node_pair();
        e0.seg().write_f64(0, 2.75);
        e0.put(0, e1.asid(), 64, 8, Some(FlagId(0)), Some(FlagId(1)));
        e0.wait_flag(FlagId(0), 1);
        assert_eq!(e1.seg().read_f64(64), 2.75);
        assert_eq!(e1.flag(FlagId(1)), 1);
        cluster.shutdown();
    }

    #[test]
    fn get_fetches_remote_data() {
        let (cluster, mut e0, e1) = two_node_pair();
        e1.seg().write_u64(256, 0xabcd);
        let dst = e1.asid();
        e0.get_blocking(8, dst, 256, 8);
        assert_eq!(e0.seg().read_u64(8), 0xabcd);
        cluster.shutdown();
    }

    #[test]
    fn enq_lands_in_remote_queue() {
        let (cluster, mut e0, e1) = two_node_pair();
        e0.seg().write(0, b"ping!");
        e0.enq(0, e1.asid(), RqId(2), 5, Some(FlagId(3)), Some(FlagId(4)));
        e0.wait_flag(FlagId(3), 1);
        e1.wait_flag(FlagId(4), 1);
        assert_eq!(&e1.rq_try_recv(RqId(2)).unwrap()[..], b"ping!");
        assert!(e1.rq_try_recv(RqId(2)).is_none());
        cluster.shutdown();
    }

    #[test]
    fn protection_faults_denied_access() {
        let (cluster, mut e0, e1) = two_node_pair();
        cluster.restrict();
        e0.seg().write_u64(0, 7);
        e0.put(0, e1.asid(), 0, 8, None, Some(FlagId(0)));
        // The op is dropped; wait until the fault is visible.
        let mut backoff = idle::Backoff::new();
        while e0.faults() == 0 {
            backoff.snooze();
        }
        assert_eq!(e1.flag(FlagId(0)), 0, "no data may land");
        // Grant and retry.
        cluster.grant(e0.asid(), e1.asid());
        e0.put(0, e1.asid(), 0, 8, None, Some(FlagId(0)));
        e1.wait_flag(FlagId(0), 1);
        assert_eq!(e1.seg().read_u64(0), 7);
        cluster.shutdown();
    }

    #[test]
    fn out_of_bounds_put_faults() {
        let (cluster, mut e0, e1) = two_node_pair();
        let huge = e1.seg().size() as u64;
        e0.put(0, e1.asid(), huge, 8, None, Some(FlagId(0)));
        // Remote store silently dropped (bounds-checked at delivery);
        // meanwhile a local out-of-bounds source faults at the proxy.
        e0.put(u64::MAX, e1.asid(), 0, 8, None, None);
        let mut backoff = idle::Backoff::new();
        while e0.faults() == 0 {
            backoff.snooze();
        }
        cluster.shutdown();
    }

    #[test]
    fn many_processes_share_one_proxy() {
        // Four processes on one node, all PUT into process 0's segment.
        let mut b = RtClusterBuilder::new(1);
        for _ in 0..4 {
            b.add_process(0, 4096);
        }
        let (cluster, mut eps) = b.start();
        let mut rest = eps.split_off(1);
        let e0 = eps.pop().unwrap();
        for (i, e) in rest.iter_mut().enumerate() {
            e.seg().write_u64(0, 100 + i as u64);
            e.put(0, 0, 64 * (i as u64 + 1), 8, None, Some(FlagId(0)));
        }
        e0.wait_flag(FlagId(0), 3);
        for i in 0..3 {
            assert_eq!(e0.seg().read_u64(64 * (i + 1)), 100 + i);
        }
        assert!(cluster.ops_serviced(0) >= 3);
        cluster.shutdown();
    }

    #[test]
    fn pingpong_many_rounds() {
        let (cluster, mut e0, mut e1) = two_node_pair();
        let rounds = 200u64;
        let a1 = e1.asid();
        let a0 = e0.asid();
        let t = std::thread::spawn(move || {
            for i in 1..=rounds {
                e1.wait_flag(FlagId(0), i);
                let v = e1.seg().read_u64(0);
                e1.seg().write_u64(8, v + 1);
                e1.put(8, a0, 0, 8, None, Some(FlagId(0)));
            }
            e1
        });
        for i in 1..=rounds {
            e0.seg().write_u64(8, i * 10);
            e0.put(8, a1, 0, 8, None, Some(FlagId(0)));
            e0.wait_flag(FlagId(0), i);
            assert_eq!(e0.seg().read_u64(0), i * 10 + 1);
        }
        let _e1 = t.join().unwrap();
        cluster.shutdown();
    }

    #[test]
    fn alloc_is_bump_and_bounded() {
        let mut b = RtClusterBuilder::new(1);
        b.add_process(0, 256);
        let (cluster, mut eps) = b.start();
        let mut e = eps.pop().unwrap();
        let a = e.alloc(10);
        let b2 = e.alloc(10);
        assert_eq!(a, 0);
        assert_eq!(b2, 64);
        cluster.shutdown();
    }
}
