//! Bounded lock-free rings for the proxy data plane.
//!
//! The paper's case (§3–§4) is that a pinned proxy polling lock-free
//! shared-memory queues beats both system calls and lock-protected
//! software queues. The per-user *command* queues already honour that
//! ([`crate::spsc`]); this module extends the property to the other two
//! edges of the data plane:
//!
//! * the **wire ring** — one bounded multi-producer single-consumer ring
//!   per node, written by peer proxies and drained by the node's pinned
//!   proxy thread (the software analogue of the SP adapter's receive
//!   frame FIFO);
//! * the **reply rings** — single-producer single-consumer rings carrying
//!   remote-queue payloads from the local proxy back to a user process.
//!
//! Both are instances of [`Ring`], a bounded ring buffer using the
//! classic sequence-number scheme (Vyukov's bounded queue, the same
//! design as the LMAX Disruptor's sequenced slots): every slot carries an
//! atomic sequence counter, producers claim slots with a single
//! compare-and-swap on the head counter, and the slot's release store of
//! its sequence publishes the payload to the consumer. The head and tail
//! counters live on their own cache lines so producers and the consumer
//! never false-share.
//!
//! # Safety and progress
//!
//! The crate forbids `unsafe`, so the slot payload cell is a
//! `Mutex<Option<T>>` standing in for the `UnsafeCell` an unsafe
//! implementation would use. The sequence protocol guarantees the mutex
//! is **never contended**: a producer touches a slot's cell only between
//! winning the head CAS and releasing the slot's sequence, and the
//! consumer only between observing that release and retiring the slot —
//! the two windows cannot overlap, so every `lock()` succeeds without
//! waiting and the cell behaves as an exclusive-access payload box, not a
//! lock anyone blocks on. `try_push`/`try_pop` never wait for another
//! thread: a full or empty ring returns immediately.
//!
//! # Memory-ordering contract
//!
//! * producer: payload write (inside the cell) *happens-before* the
//!   `Release` store of `seq = pos + 1`;
//! * consumer: the `Acquire` load of `seq` observing `pos + 1` makes the
//!   payload visible; the `Release` store of `seq = pos + capacity`
//!   returns the slot and *happens-before* the producer that next claims
//!   it (via its `Acquire` sequence load).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Pads and aligns a value to 128 bytes so hot counters and adjacent
/// slots never share a cache line (two lines to defeat adjacent-line
/// prefetchers) — a local stand-in for `crossbeam_utils::CachePadded`.
#[derive(Debug, Default)]
#[repr(align(128))]
pub(crate) struct CachePadded<T>(pub(crate) T);

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

#[derive(Debug)]
struct Slot<T> {
    /// Sequence counter: `pos` = empty and claimable by the producer of
    /// ticket `pos`, `pos + 1` = full and readable by the consumer of
    /// ticket `pos`, `pos + capacity` = retired, claimable next lap.
    seq: AtomicUsize,
    /// Payload cell; see the module docs for why this `Mutex` is never
    /// contended (it is a safe-Rust stand-in for `UnsafeCell`).
    cell: Mutex<Option<T>>,
}

/// A bounded lock-free multi-producer single-consumer ring.
///
/// Also usable single-producer (the head CAS then never retries) and
/// multi-consumer (pops race on the tail CAS); the data plane uses it in
/// MPSC (wire) and SPSC (reply) configurations.
///
/// # Examples
///
/// ```
/// use mproxy_rt::ring::Ring;
///
/// let r: Ring<u32> = Ring::new(4);
/// assert!(r.try_push(7).is_ok());
/// assert_eq!(r.try_pop(), Some(7));
/// assert_eq!(r.try_pop(), None);
/// ```
#[derive(Debug)]
pub struct Ring<T> {
    slots: Box<[CachePadded<Slot<T>>]>,
    /// Next ticket a producer claims.
    head: CachePadded<AtomicUsize>,
    /// Next ticket the consumer retires.
    tail: CachePadded<AtomicUsize>,
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2`: the sequence scheme distinguishes a
    /// slot's "published" (`pos + 1`) and "retired" (`pos + capacity`)
    /// states by value, and with one slot the two collide — a producer
    /// one lap ahead could claim a still-unconsumed entry.
    #[must_use]
    pub fn new(capacity: usize) -> Ring<T> {
        assert!(capacity >= 2, "ring capacity must be at least 2");
        let slots: Vec<CachePadded<Slot<T>>> = (0..capacity)
            .map(|i| {
                CachePadded(Slot {
                    seq: AtomicUsize::new(i),
                    cell: Mutex::new(None),
                })
            })
            .collect();
        Ring {
            slots: slots.into_boxed_slice(),
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Ring capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Entries currently queued (approximate under concurrent access,
    /// exact when quiescent). Never exceeds [`Ring::capacity`] by more
    /// than the number of in-flight producers.
    #[must_use]
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        head.saturating_sub(tail)
    }

    /// True when no entry is queued (approximate; see [`Ring::len`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn cell_take(&self, idx: usize) -> Option<T> {
        self.slots[idx]
            .cell
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }

    fn cell_put(&self, idx: usize, v: T) {
        *self.slots[idx]
            .cell
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
    }

    /// Attempts to enqueue; on a full ring the value is handed back.
    ///
    /// Never blocks: producers race only on the head counter CAS, and a
    /// loser immediately retries against the fresh value.
    ///
    /// # Errors
    ///
    /// Returns `Err(v)` when the ring is full.
    pub fn try_push(&self, v: T) -> Result<(), T> {
        let cap = self.slots.len();
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos % cap];
            let seq = slot.seq.load(Ordering::Acquire);
            // Wrapping-aware comparison (tickets grow without bound).
            let dif = seq.wrapping_sub(pos) as isize;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        self.cell_put(pos % cap, v);
                        // Publish: the payload write happens-before any
                        // consumer that acquires this sequence.
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(cur) => pos = cur,
                }
            } else if dif < 0 {
                // The slot has not been retired since last lap: full.
                return Err(v);
            } else {
                // Another producer claimed this ticket; chase the head.
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue the oldest entry. Never blocks.
    #[must_use]
    pub fn try_pop(&self) -> Option<T> {
        let cap = self.slots.len();
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos % cap];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq.wrapping_sub(pos.wrapping_add(1)) as isize;
            if dif == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let v = self.cell_take(pos % cap);
                        // Retire: the slot becomes claimable one lap out.
                        slot.seq.store(pos.wrapping_add(cap), Ordering::Release);
                        return v;
                    }
                    Err(cur) => pos = cur,
                }
            } else if dif < 0 {
                // The producer of this ticket has not published yet (or
                // the ring is empty): nothing to take *in order*.
                return None;
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_full_detection() {
        let r: Ring<u32> = Ring::new(4);
        for i in 0..4 {
            assert!(r.try_push(i).is_ok());
        }
        assert_eq!(r.try_push(99), Err(99), "must report full");
        assert_eq!(r.len(), 4);
        for i in 0..4 {
            assert_eq!(r.try_pop(), Some(i));
        }
        assert!(r.try_pop().is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn wraps_many_laps() {
        let r: Ring<u64> = Ring::new(3);
        for lap in 0..1000u64 {
            assert!(r.try_push(lap).is_ok());
            assert_eq!(r.try_pop(), Some(lap));
        }
    }

    #[test]
    fn minimum_capacity_alternates() {
        let r: Ring<&str> = Ring::new(2);
        assert!(r.try_push("a").is_ok());
        assert!(r.try_push("b").is_ok());
        assert!(r.try_push("c").is_err());
        assert_eq!(r.try_pop(), Some("a"));
        assert!(r.try_push("c").is_ok());
        assert_eq!(r.try_pop(), Some("b"));
        assert_eq!(r.try_pop(), Some("c"));
        assert!(r.try_pop().is_none());
    }

    #[test]
    fn multi_producer_preserves_per_producer_order() {
        let r = std::sync::Arc::new(Ring::<(u8, u32)>::new(16));
        const N: u32 = 20_000;
        let producers: Vec<_> = (0..3u8)
            .map(|id| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..N {
                        let mut v = (id, i);
                        loop {
                            match r.try_push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let mut next = [0u32; 3];
        let mut got = 0u64;
        while got < u64::from(N) * 3 {
            if let Some((id, i)) = r.try_pop() {
                assert_eq!(i, next[id as usize], "per-producer FIFO broken");
                next[id as usize] += 1;
                got += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn sub_minimum_capacity_rejected() {
        let _: Ring<u8> = Ring::new(1);
    }
}
