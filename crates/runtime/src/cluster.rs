//! The threaded message-proxy cluster.
//!
//! One proxy thread per node runs the Figure 5 loop for real: it polls the
//! registered per-user command queues and the node's network input, using
//! the §4.1 *shared bit vector* optimisation — producers set a per-queue
//! ready bit, so an idle proxy probes one word instead of scanning every
//! queue head. Protection checks (asid permission, bounds) run in the
//! proxy, never in user code; violations are counted as faults and the
//! operation is dropped, the runtime analogue of "the system faults a
//! process".
//!
//! The data plane is lock-free end to end (see DESIGN.md "Runtime data
//! plane"): user→proxy command queues are the paper's full/empty-flag
//! SPSC rings ([`crate::spsc`]), proxy↔proxy traffic flows through one
//! bounded MPSC wire ring per node, and remote-queue payloads return to
//! user processes over bounded SPSC reply rings (both
//! [`crate::ring::Ring`]). The proxy services everything in *batched
//! drains* — up to a burst per queue per pass, acknowledgements coalesced
//! per peer per batch — and idles through the shared spin → yield → park
//! policy ([`crate::idle`]), woken explicitly by the next enqueue. The
//! pre-ring `Mutex<VecDeque>` data plane is kept selectable
//! ([`RtClusterBuilder::locked_data_plane`]) as the A/B baseline for the
//! `rt_throughput` bench.
//!
//! Because the proxy is a shared, trusted agent, a node must survive its
//! failure without hanging every client: proxy threads carry a panic
//! sentinel, [`Endpoint::wait_flag_timeout`]/[`Endpoint::get_blocking_timeout`]
//! bound every wait, and [`RtCluster::shutdown`] reports which proxies (if
//! any) died instead of joining forever. All shared locks recover from
//! poisoning, so one panicked proxy cannot wedge the survivors.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use mproxy_model::contention::STABLE_UTILIZATION;

use crate::idle::{Backoff, Parker};
use crate::mem::Segment;
use crate::ring::Ring;
use crate::spsc::{self, Entry};

/// Synchronisation flags per process.
pub const NUM_FLAGS: usize = 64;
/// Remote queues per process.
pub const NUM_QUEUES: usize = 8;
/// Command queue depth per process.
pub const CMDQ_DEPTH: usize = 128;
/// Wire ring depth per node (packets queued by peer proxies).
pub const WIRE_DEPTH: usize = 512;
/// Reply ring depth per remote queue (payloads queued for a user process).
pub const RQ_DEPTH: usize = 256;

/// Utilisation below which a saturated proxy is considered recovered.
/// Sits under [`STABLE_UTILIZATION`] so the flag doesn't flap when load
/// hovers at the §5.4 bound.
pub const RECOVERY_UTILIZATION: f64 = 0.4;

/// Wire backlog (packets) past which a saturated, shedding-enabled proxy
/// starts dropping request traffic.
pub const SHED_BACKLOG: usize = CMDQ_DEPTH;

/// Most entries a proxy drains from one queue per loop iteration. When the
/// arrival rate exceeds the service rate a drain would otherwise never
/// terminate, and iteration boundaries are where busy-time accounting and
/// the shedding check run — an overloaded proxy must keep reaching them.
const SERVICE_BURST: usize = 2 * CMDQ_DEPTH;

/// Outbound packets a proxy holds privately (its wire rings to peers all
/// full) before it stops draining command queues; the bounded command
/// rings then backpressure the user processes, so total occupancy per
/// node stays bounded by `CMDQ_DEPTH·procs + WIRE_DEPTH + PENDING_CAP`.
const PENDING_CAP: usize = 2 * WIRE_DEPTH;

/// Longest a parked proxy sleeps before re-probing its queues (a missed
/// wake is designed out, this is insurance — see [`crate::idle::Parker`]).
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// The locked baseline's fixed idle budget: spin this many times, then
/// `yield_now` (the pre-adaptive-policy hand-rolled loop, preserved for
/// the A/B ablation).
const LEGACY_IDLE_SPINS: u32 = 500;

/// Loop passes a stopping proxy keeps retrying undeliverable outbound
/// packets (a peer's ring full and its proxy already gone) before
/// dropping them — in-flight traffic at shutdown is lossy by contract.
const STOP_FLUSH_TRIES: u32 = 10_000;

const OP_PUT: u32 = 1;
const OP_GET: u32 = 2;
const OP_ENQ: u32 = 3;

/// A synchronisation-flag slot (monotone counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlagId(pub u32);

/// A remote-queue slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RqId(pub u32);

/// A recoverable runtime communication failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtError {
    /// A bounded wait expired before the flag reached its target.
    Timeout {
        /// The flag waited on.
        flag: u32,
        /// The value waited for.
        target: u64,
        /// The value observed when the wait gave up.
        observed: u64,
    },
    /// A proxy thread died (panicked); the node is unreachable.
    ProxyDown {
        /// The node whose proxy is gone.
        node: usize,
    },
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::Timeout {
                flag,
                target,
                observed,
            } => write!(f, "wait on flag {flag} timed out at {observed}/{target}"),
            RtError::ProxyDown { node } => {
                write!(f, "proxy thread for node {node} has died")
            }
        }
    }
}

impl std::error::Error for RtError {}

/// What [`RtCluster::shutdown`] observed while joining the proxies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Nodes whose proxy thread terminated by panic rather than by the
    /// stop signal.
    pub panicked_nodes: Vec<usize>,
}

impl ShutdownReport {
    /// True if every proxy exited cleanly.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.panicked_nodes.is_empty()
    }
}

/// A multi-producer FIFO with poison recovery — the locked-baseline
/// remote-queue store and inter-node wire. A panicked proxy can never
/// wedge it.
#[derive(Debug)]
struct PolledFifo<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> Default for PolledFifo<T> {
    fn default() -> Self {
        PolledFifo {
            items: Mutex::new(VecDeque::new()),
        }
    }
}

impl<T> PolledFifo<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.items.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, v: T) {
        self.lock().push_back(v);
    }

    fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn len(&self) -> usize {
        self.lock().len()
    }
}

/// A node's wire input: peer proxies produce, the node's proxy consumes.
/// The ring variant is the lock-free data plane; the locked variant is
/// the pre-ring `Mutex<VecDeque>` baseline kept for A/B measurement.
#[derive(Debug)]
enum Wire {
    Locked(PolledFifo<WireMsg>),
    // Boxed: a Ring inlines two cache-padded counters (384 bytes), and
    // adjacent nodes' rings must not share lines anyway.
    Ring(Box<Ring<WireMsg>>),
}

impl Wire {
    fn new(locked: bool) -> Wire {
        if locked {
            Wire::Locked(PolledFifo::default())
        } else {
            Wire::Ring(Box::new(Ring::new(WIRE_DEPTH)))
        }
    }

    /// Enqueues a packet; the locked baseline is unbounded and always
    /// accepts, the ring hands the packet back when full.
    fn try_push(&self, m: WireMsg) -> Result<(), WireMsg> {
        match self {
            Wire::Locked(f) => {
                f.push(m);
                Ok(())
            }
            Wire::Ring(r) => r.try_push(m),
        }
    }

    fn pop(&self) -> Option<WireMsg> {
        match self {
            Wire::Locked(f) => f.pop(),
            Wire::Ring(r) => r.try_pop(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Wire::Locked(f) => f.is_empty(),
            Wire::Ring(r) => r.is_empty(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Wire::Locked(f) => f.len(),
            Wire::Ring(r) => r.len(),
        }
    }
}

/// One remote queue: the local proxy produces, the owning user process
/// consumes. Ring = lock-free reply ring, Locked = baseline.
#[derive(Debug)]
enum RqStore {
    Locked(PolledFifo<Bytes>),
    // Boxed for the same reason as [`Wire::Ring`].
    Ring(Box<Ring<Bytes>>),
}

impl RqStore {
    fn new(locked: bool) -> RqStore {
        if locked {
            RqStore::Locked(PolledFifo::default())
        } else {
            RqStore::Ring(Box::new(Ring::new(RQ_DEPTH)))
        }
    }

    fn try_push(&self, data: Bytes) -> Result<(), Bytes> {
        match self {
            RqStore::Locked(f) => {
                f.push(data);
                Ok(())
            }
            RqStore::Ring(r) => r.try_push(data),
        }
    }

    fn pop(&self) -> Option<Bytes> {
        match self {
            RqStore::Locked(f) => f.pop(),
            RqStore::Ring(r) => r.try_pop(),
        }
    }
}

/// Per-node load and overload state, written by the proxy and the
/// watchdog, read by anyone.
#[derive(Debug, Default)]
struct ProxyHealth {
    /// Nanoseconds the proxy has spent servicing work (not idle-spinning).
    busy_ns: AtomicU64,
    /// Bits of the watchdog's last utilisation sample (an `f64`).
    util_bits: AtomicU64,
    /// Set while the sampled utilisation sits above [`STABLE_UTILIZATION`];
    /// cleared once it falls back under [`RECOVERY_UTILIZATION`].
    saturated: AtomicBool,
    /// Times the proxy has crossed into saturation.
    saturation_events: AtomicU64,
    /// Request packets dropped by overload shedding.
    shed: AtomicU64,
}

struct ProcShared {
    asid: u32,
    node: usize,
    seg: Segment,
    flags: Vec<Arc<AtomicU64>>,
    queues: Vec<RqStore>,
    faults: Arc<AtomicU64>,
    timeouts: Arc<AtomicU64>,
}

#[derive(Debug)]
enum WireMsg {
    Put {
        dst: u32,
        raddr: u64,
        data: Bytes,
        rsync: Option<u32>,
        ack: Option<(usize, u64)>,
    },
    GetReq {
        src_asid: u32,
        dst: u32,
        raddr: u64,
        nbytes: u32,
        origin: usize,
        token: u64,
    },
    GetReply {
        token: u64,
        data: Option<Bytes>,
    },
    Enq {
        dst: u32,
        rq: u32,
        data: Bytes,
        rsync: Option<u32>,
        ack: Option<(usize, u64)>,
    },
    /// A single acknowledgement (the locked baseline's per-message form).
    Ack {
        token: u64,
    },
    /// Acknowledgements coalesced per peer per drain batch.
    AckBatch {
        tokens: Vec<u64>,
    },
}

impl WireMsg {
    /// Requests may be shed under overload; responses and acks may not —
    /// each one resolves a CCB or a client wait that has already been
    /// paid for, and dropping it would strand the waiter.
    fn is_request(&self) -> bool {
        !matches!(
            self,
            WireMsg::Ack { .. } | WireMsg::AckBatch { .. } | WireMsg::GetReply { .. }
        )
    }
}

enum Ccb {
    Get {
        proc: u32,
        laddr: u64,
        nbytes: u32,
        lsync: Option<u32>,
    },
    PutAck {
        proc: u32,
        lsync: Option<u32>,
    },
}

struct Shared {
    procs: Vec<Arc<ProcShared>>,
    perms: RwLock<HashSet<(u32, u32)>>,
    allow_all: AtomicBool,
    stop: AtomicBool,
    wires: Vec<Wire>,
    parkers: Vec<Parker>,              // per node, wakes the proxy thread
    ops_serviced: Vec<Arc<AtomicU64>>, // per node
    panicked: Vec<Arc<AtomicBool>>,    // per node
    health: Vec<Arc<ProxyHealth>>,     // per node
    shed_enabled: AtomicBool,
    /// True when running the locked `Mutex<VecDeque>` baseline plane.
    locked_plane: bool,
}

impl Shared {
    fn allowed(&self, src: u32, dst: u32) -> bool {
        src == dst
            || self.allow_all.load(Ordering::Relaxed)
            || self
                .perms
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .contains(&(src, dst))
    }

    fn fault(&self, src: u32) {
        self.procs[src as usize]
            .faults
            .fetch_add(1, Ordering::Relaxed);
    }

    fn set_flag(&self, proc: u32, flag: u32) {
        self.procs[proc as usize].flags[flag as usize].fetch_add(1, Ordering::Release);
    }

    /// First node whose proxy has died, if any.
    fn panicked_node(&self) -> Option<usize> {
        self.panicked.iter().position(|p| p.load(Ordering::Acquire))
    }
}

/// Sets the per-node panic bit if the proxy unwinds instead of returning.
struct PanicSentinel {
    flag: Arc<AtomicBool>,
}

impl Drop for PanicSentinel {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.flag.store(true, Ordering::Release);
        }
    }
}

/// Builds an [`RtCluster`]: declare nodes and processes, then
/// [`RtClusterBuilder::start`].
pub struct RtClusterBuilder {
    nodes: usize,
    procs: Vec<(usize, usize)>, // (node, segment bytes)
    shed: bool,
    locked: bool,
    watchdog_interval: Duration,
}

impl RtClusterBuilder {
    /// A cluster of `nodes` SMP nodes (each gets one dedicated proxy
    /// thread).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        RtClusterBuilder {
            nodes,
            procs: Vec::new(),
            shed: false,
            locked: false,
            watchdog_interval: Duration::from_millis(1),
        }
    }

    /// Enables overload shedding: while a proxy is saturated, its wire
    /// backlog is capped at [`SHED_BACKLOG`] by dropping the oldest
    /// *request* packets (puts, gets, enqueues). Responses and
    /// acknowledgements are never shed — they resolve waits that are
    /// already charged to a client. A shed request simply never happens;
    /// its submitter observes that through a bounded wait
    /// ([`Endpoint::wait_flag_timeout`]), exactly as if the wire had
    /// dropped it. Off by default: an unsaturated cluster behaves
    /// identically either way.
    pub fn enable_shedding(&mut self) -> &mut Self {
        self.shed = true;
        self
    }

    /// Selects the pre-ring **locked** data plane: `Mutex<VecDeque>`
    /// wire and reply queues, per-message acknowledgements (no batch
    /// coalescing), and the legacy fixed idle loop (500 spins, then
    /// `yield_now`, never parking) instead of the lock-free rings with
    /// the adaptive idle policy. This is the `--baseline-locked`
    /// ablation of the `rt_throughput` bench; the protocol and every
    /// observable behaviour are identical, only the data-plane mechanics
    /// differ. Off by default.
    pub fn locked_data_plane(&mut self) -> &mut Self {
        self.locked = true;
        self
    }

    /// Sets the watchdog's sampling period (default 1 ms). Shorter
    /// periods make saturation detection snappier at the cost of one
    /// extra wake-up per period.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn watchdog_interval(&mut self, interval: Duration) -> &mut Self {
        assert!(!interval.is_zero(), "watchdog interval must be positive");
        self.watchdog_interval = interval;
        self
    }

    /// Adds a user process on `node` with a segment of `mem_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn add_process(&mut self, node: usize, mem_bytes: usize) -> u32 {
        assert!(node < self.nodes, "node {node} out of range");
        self.procs.push((node, mem_bytes));
        (self.procs.len() - 1) as u32
    }

    /// Starts the proxy threads and returns the cluster handle plus one
    /// [`Endpoint`] per declared process (in declaration order).
    #[must_use]
    pub fn start(self) -> (RtCluster, Vec<Endpoint>) {
        let wires: Vec<Wire> = (0..self.nodes).map(|_| Wire::new(self.locked)).collect();
        let procs: Vec<Arc<ProcShared>> = self
            .procs
            .iter()
            .enumerate()
            .map(|(i, &(node, bytes))| {
                Arc::new(ProcShared {
                    asid: i as u32,
                    node,
                    seg: Segment::new(bytes),
                    flags: (0..NUM_FLAGS)
                        .map(|_| Arc::new(AtomicU64::new(0)))
                        .collect(),
                    queues: (0..NUM_QUEUES).map(|_| RqStore::new(self.locked)).collect(),
                    faults: Arc::new(AtomicU64::new(0)),
                    timeouts: Arc::new(AtomicU64::new(0)),
                })
            })
            .collect();
        let shared = Arc::new(Shared {
            procs,
            perms: RwLock::new(HashSet::new()),
            allow_all: AtomicBool::new(true),
            stop: AtomicBool::new(false),
            wires,
            parkers: (0..self.nodes).map(|_| Parker::new()).collect(),
            ops_serviced: (0..self.nodes)
                .map(|_| Arc::new(AtomicU64::new(0)))
                .collect(),
            panicked: (0..self.nodes)
                .map(|_| Arc::new(AtomicBool::new(false)))
                .collect(),
            health: (0..self.nodes)
                .map(|_| Arc::new(ProxyHealth::default()))
                .collect(),
            shed_enabled: AtomicBool::new(self.shed),
            locked_plane: self.locked,
        });

        // Per-process command queues, grouped by node, plus the §4.1
        // ready-bit vector per node.
        let mut endpoints = Vec::with_capacity(self.procs.len());
        let mut per_node: Vec<Vec<(u32, spsc::Consumer)>> =
            (0..self.nodes).map(|_| Vec::new()).collect();
        let masks: Vec<Arc<AtomicU64>> = (0..self.nodes)
            .map(|_| Arc::new(AtomicU64::new(0)))
            .collect();
        for (i, &(node, _)) in self.procs.iter().enumerate() {
            let (tx, rx) = spsc::channel(CMDQ_DEPTH);
            let qbit = per_node[node].len() as u32;
            assert!(qbit < 64, "at most 64 processes per node");
            per_node[node].push((i as u32, rx));
            endpoints.push(Endpoint {
                me: Arc::clone(&shared.procs[i]),
                shared: Arc::clone(&shared),
                cmd: tx,
                ready: Arc::clone(&masks[node]),
                qbit,
                next_alloc: 0,
            });
        }

        let joins = per_node
            .into_iter()
            .enumerate()
            .map(|(node, queues)| {
                let shared = Arc::clone(&shared);
                let mask = Arc::clone(&masks[node]);
                std::thread::Builder::new()
                    .name(format!("mproxy-{node}"))
                    .spawn(move || proxy_main(node, queues, &mask, &shared))
                    .expect("spawn proxy thread")
            })
            .collect();

        let watchdog = {
            let shared = Arc::clone(&shared);
            let interval = self.watchdog_interval;
            std::thread::Builder::new()
                .name("mproxy-watchdog".into())
                .spawn(move || watchdog_main(&shared, interval))
                .expect("spawn watchdog thread")
        };

        (
            RtCluster {
                shared,
                joins,
                watchdog: Some(watchdog),
            },
            endpoints,
        )
    }
}

/// A running cluster of proxy threads.
pub struct RtCluster {
    shared: Arc<Shared>,
    joins: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl RtCluster {
    /// Disables allow-all: only explicit grants pass the protection check.
    pub fn restrict(&self) {
        self.shared.allow_all.store(false, Ordering::Relaxed);
    }

    /// Grants `src` access to address space `dst`.
    pub fn grant(&self, src: u32, dst: u32) {
        self.shared
            .perms
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert((src, dst));
    }

    /// Revokes a grant.
    pub fn revoke(&self, src: u32, dst: u32) {
        self.shared
            .perms
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&(src, dst));
    }

    /// Total commands + packets serviced by node `node`'s proxy.
    #[must_use]
    pub fn ops_serviced(&self, node: usize) -> u64 {
        self.shared.ops_serviced[node].load(Ordering::Relaxed)
    }

    /// The watchdog's last utilisation sample for node `node`'s proxy:
    /// fraction of the sampling period spent servicing work rather than
    /// idle-polling, in `[0, 1]`. Zero until the first sample lands.
    #[must_use]
    pub fn utilization(&self, node: usize) -> f64 {
        f64::from_bits(self.shared.health[node].util_bits.load(Ordering::Relaxed))
    }

    /// True while node `node`'s proxy sits above the paper's stable
    /// utilisation bound (§5.4: past 50% the M/M/1 queueing delay grows
    /// without bound). Clears once utilisation falls back under
    /// [`RECOVERY_UTILIZATION`].
    #[must_use]
    pub fn saturated(&self, node: usize) -> bool {
        self.shared.health[node].saturated.load(Ordering::Acquire)
    }

    /// Number of times node `node`'s proxy has crossed into saturation.
    #[must_use]
    pub fn saturation_events(&self, node: usize) -> u64 {
        self.shared.health[node]
            .saturation_events
            .load(Ordering::Relaxed)
    }

    /// Request packets dropped on node `node` by overload shedding
    /// ([`RtClusterBuilder::enable_shedding`]).
    #[must_use]
    pub fn shed_count(&self, node: usize) -> u64 {
        self.shared.health[node].shed.load(Ordering::Relaxed)
    }

    /// Nodes whose proxy thread has already died (live query; a node
    /// appears here as soon as its proxy finishes unwinding).
    #[must_use]
    pub fn panicked_nodes(&self) -> Vec<usize> {
        self.shared
            .panicked
            .iter()
            .enumerate()
            .filter(|(_, p)| p.load(Ordering::Acquire))
            .map(|(n, _)| n)
            .collect()
    }

    /// Stops the proxy threads, waits for them to exit, and reports any
    /// that died by panic instead of the stop signal. Completes even with
    /// endpoint operations still in flight: surviving proxies drain their
    /// queues before exiting, dead ones are joined immediately.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.stop_and_join()
    }

    fn stop_and_join(&mut self) -> ShutdownReport {
        self.shared.stop.store(true, Ordering::Relaxed);
        for p in &self.shared.parkers {
            p.wake();
        }
        let mut report = ShutdownReport::default();
        for (node, j) in self.joins.drain(..).enumerate() {
            if j.join().is_err() {
                report.panicked_nodes.push(node);
            }
        }
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
        report
    }
}

impl Drop for RtCluster {
    fn drop(&mut self) {
        let _ = self.stop_and_join();
    }
}

/// A user process's handle: submits commands, reads/writes its own
/// segment, observes flags and queues. Not `Clone` — a command queue has
/// exactly one producer.
pub struct Endpoint {
    me: Arc<ProcShared>,
    shared: Arc<Shared>,
    cmd: spsc::Producer,
    ready: Arc<AtomicU64>,
    qbit: u32,
    next_alloc: u64,
}

impl Endpoint {
    /// This process's address-space id.
    #[must_use]
    pub fn asid(&self) -> u32 {
        self.me.asid
    }

    /// The node this process runs on.
    #[must_use]
    pub fn node(&self) -> usize {
        self.me.node
    }

    /// Bump-allocates `n` bytes in this process's segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment is exhausted.
    pub fn alloc(&mut self, n: u64) -> u64 {
        let addr = self.next_alloc.next_multiple_of(64);
        assert!(
            self.me.seg.check(addr, n as usize),
            "segment exhausted: need {n} at {addr} of {}",
            self.me.seg.size()
        );
        self.next_alloc = addr + n;
        addr
    }

    /// Local segment accessor.
    #[must_use]
    pub fn seg(&self) -> &Segment {
        &self.me.seg
    }

    /// Protection faults charged to this process.
    #[must_use]
    pub fn faults(&self) -> u64 {
        self.me.faults.load(Ordering::Relaxed)
    }

    /// Bounded waits that expired (or aborted on a dead proxy) for this
    /// process.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.me.timeouts.load(Ordering::Relaxed)
    }

    /// Current value of one of this process's flags.
    #[must_use]
    pub fn flag(&self, f: FlagId) -> u64 {
        self.me.flags[f.0 as usize].load(Ordering::Acquire)
    }

    /// Waits until flag `f` reaches `target` through the shared adaptive
    /// backoff (spin, then yield so oversubscribed hosts still make
    /// progress).
    pub fn wait_flag(&self, f: FlagId, target: u64) {
        let mut backoff = Backoff::new();
        while self.flag(f) < target {
            backoff.snooze();
        }
    }

    /// Bounded [`Endpoint::wait_flag`]: gives up after `timeout`, and
    /// aborts immediately if a proxy thread has died — the wait could
    /// otherwise never complete.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] when the deadline passes, [`RtError::ProxyDown`]
    /// when a proxy panicked. Both bump [`Endpoint::timeouts`].
    pub fn wait_flag_timeout(
        &self,
        f: FlagId,
        target: u64,
        timeout: Duration,
    ) -> Result<(), RtError> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Backoff::new();
        loop {
            let observed = self.flag(f);
            if observed >= target {
                return Ok(());
            }
            if let Some(node) = self.shared.panicked_node() {
                self.me.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(RtError::ProxyDown { node });
            }
            if Instant::now() >= deadline {
                self.me.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(RtError::Timeout {
                    flag: f.0,
                    target,
                    observed,
                });
            }
            backoff.snooze();
        }
    }

    /// Non-blocking dequeue from one of this process's own remote queues.
    /// The payload is a shared buffer: it was snapshotted once at the
    /// sender's proxy and travelled the wire without further copies.
    #[must_use]
    pub fn rq_try_recv(&self, rq: RqId) -> Option<Bytes> {
        self.me.queues[rq.0 as usize].pop()
    }

    fn submit(&mut self, e: Entry) {
        self.cmd.send(e);
        // §4.1: flip the shared ready bit so the proxy's idle scan probes
        // one word instead of every queue head — then wake the proxy in
        // case it parked.
        self.ready.fetch_or(1 << self.qbit, Ordering::Release);
        self.shared.parkers[self.me.node].wake();
    }

    fn pack_sync(lsync: Option<FlagId>, rsync: Option<FlagId>) -> u64 {
        let l = lsync.map_or(0, |f| u64::from(f.0) + 1);
        let r = rsync.map_or(0, |f| u64::from(f.0) + 1);
        (l << 32) | r
    }

    /// `PUT`: copy `nbytes` from local `laddr` to `raddr` in `dst`'s
    /// space. `lsync` increments on remote acknowledgement; `rsync` (a
    /// flag of `dst`) increments on delivery.
    pub fn put(
        &mut self,
        laddr: u64,
        dst: u32,
        raddr: u64,
        nbytes: u32,
        lsync: Option<FlagId>,
        rsync: Option<FlagId>,
    ) {
        self.submit(Entry {
            op: OP_PUT,
            args: [
                laddr,
                raddr,
                (u64::from(dst) << 32) | u64::from(nbytes),
                Self::pack_sync(lsync, rsync),
            ],
        });
    }

    /// `GET`: copy `nbytes` from `raddr` in `dst`'s space to local
    /// `laddr`; `lsync` increments when the data has landed.
    pub fn get(&mut self, laddr: u64, dst: u32, raddr: u64, nbytes: u32, lsync: Option<FlagId>) {
        self.submit(Entry {
            op: OP_GET,
            args: [
                laddr,
                raddr,
                (u64::from(dst) << 32) | u64::from(nbytes),
                Self::pack_sync(lsync, None),
            ],
        });
    }

    /// Blocking GET convenience: issues the get on flag 63 and waits
    /// (adaptive backoff) for completion.
    pub fn get_blocking(&mut self, laddr: u64, dst: u32, raddr: u64, nbytes: u32) {
        let f = FlagId((NUM_FLAGS - 1) as u32);
        let target = self.flag(f) + 1;
        self.get(laddr, dst, raddr, nbytes, Some(f));
        self.wait_flag(f, target);
    }

    /// Bounded [`Endpoint::get_blocking`].
    ///
    /// # Errors
    ///
    /// See [`Endpoint::wait_flag_timeout`]; on error the fetched data must
    /// be treated as absent (it may still land later).
    pub fn get_blocking_timeout(
        &mut self,
        laddr: u64,
        dst: u32,
        raddr: u64,
        nbytes: u32,
        timeout: Duration,
    ) -> Result<(), RtError> {
        let f = FlagId((NUM_FLAGS - 1) as u32);
        let target = self.flag(f) + 1;
        self.get(laddr, dst, raddr, nbytes, Some(f));
        self.wait_flag_timeout(f, target, timeout)
    }

    /// `ENQ`: append `nbytes` from local `laddr` to queue `rq` of `dst`.
    pub fn enq(
        &mut self,
        laddr: u64,
        dst: u32,
        rq: RqId,
        nbytes: u32,
        lsync: Option<FlagId>,
        rsync: Option<FlagId>,
    ) {
        self.submit(Entry {
            op: OP_ENQ,
            args: [
                laddr,
                u64::from(rq.0),
                (u64::from(dst) << 32) | u64::from(nbytes),
                Self::pack_sync(lsync, rsync),
            ],
        });
    }
}

fn unpack_sync(v: u64) -> (Option<u32>, Option<u32>) {
    let l = (v >> 32) as u32;
    let r = v as u32;
    ((l != 0).then(|| l - 1), (r != 0).then(|| r - 1))
}

/// The proxy's private working state: command control blocks, the
/// outbound overflow stash, and the per-batch ACK coalescing buffers.
struct ProxyCtx<'a> {
    node: usize,
    shared: &'a Shared,
    ccbs: HashMap<u64, Ccb>,
    next_token: u64,
    /// Outbound packets whose destination ring was full, per node.
    /// Flushed in FIFO order before anything new is pushed, so per-pair
    /// wire order is preserved.
    pending_wire: Vec<VecDeque<WireMsg>>,
    /// Local remote-queue deliveries whose reply ring was full.
    pending_rq: VecDeque<WireMsg>,
    /// Ack tokens per origin node, coalesced within one drain batch
    /// (lock-free plane only; the locked baseline acks per message).
    ack_batch: Vec<Vec<u64>>,
    coalesce: bool,
}

impl<'a> ProxyCtx<'a> {
    fn new(node: usize, shared: &'a Shared) -> ProxyCtx<'a> {
        let nodes = shared.wires.len();
        ProxyCtx {
            node,
            shared,
            ccbs: HashMap::new(),
            next_token: 0,
            pending_wire: (0..nodes).map(|_| VecDeque::new()).collect(),
            pending_rq: VecDeque::new(),
            ack_batch: (0..nodes).map(|_| Vec::new()).collect(),
            coalesce: !shared.locked_plane,
        }
    }

    /// Outbound packets stashed because their destination rings were full.
    fn backlogged(&self) -> usize {
        self.pending_wire.iter().map(VecDeque::len).sum::<usize>() + self.pending_rq.len()
    }

    fn outbox_empty(&self) -> bool {
        self.pending_rq.is_empty() && self.pending_wire.iter().all(VecDeque::is_empty)
    }

    /// Sends a packet towards `dst_node`, stashing it locally if the
    /// ring is full (or if earlier packets for that node are already
    /// stashed — FIFO per destination).
    fn send_wire(&mut self, dst_node: usize, msg: WireMsg) {
        if !self.pending_wire[dst_node].is_empty() {
            self.pending_wire[dst_node].push_back(msg);
            return;
        }
        match self.shared.wires[dst_node].try_push(msg) {
            Ok(()) => self.shared.parkers[dst_node].wake(),
            Err(back) => self.pending_wire[dst_node].push_back(back),
        }
    }

    /// Retries stashed outbound packets; true if any were delivered.
    fn flush_pending(&mut self) -> bool {
        let mut progressed = false;
        for (dst, q) in self.pending_wire.iter_mut().enumerate() {
            let mut pushed = false;
            while let Some(m) = q.pop_front() {
                match self.shared.wires[dst].try_push(m) {
                    Ok(()) => pushed = true,
                    Err(back) => {
                        q.push_front(back);
                        break;
                    }
                }
            }
            if pushed {
                self.shared.parkers[dst].wake();
                progressed = true;
            }
        }
        while let Some(m) = self.pending_rq.pop_front() {
            let WireMsg::Enq {
                dst,
                rq,
                data,
                rsync,
                ack,
            } = m
            else {
                unreachable!("pending_rq holds only Enq packets")
            };
            match self.shared.procs[dst as usize].queues[rq as usize].try_push(data) {
                Ok(()) => {
                    self.finish_enq(dst, rsync, ack);
                    progressed = true;
                }
                Err(data) => {
                    self.pending_rq.push_front(WireMsg::Enq {
                        dst,
                        rq,
                        data,
                        rsync,
                        ack,
                    });
                    break;
                }
            }
        }
        progressed
    }

    /// Delivery side effects of a completed ENQ: bump the receiver's
    /// flag, acknowledge the sender.
    fn finish_enq(&mut self, dst: u32, rsync: Option<u32>, ack: Option<(usize, u64)>) {
        if let Some(f) = rsync {
            self.shared.set_flag(dst, f);
        }
        if let Some((origin, token)) = ack {
            self.emit_ack(origin, token);
        }
    }

    /// Queues an acknowledgement: coalesced per peer per batch on the
    /// ring plane, one packet per message on the locked baseline.
    fn emit_ack(&mut self, origin: usize, token: u64) {
        if self.coalesce {
            self.ack_batch[origin].push(token);
        } else {
            self.send_wire(origin, WireMsg::Ack { token });
        }
    }

    /// Flushes the coalesced acknowledgements accumulated this batch:
    /// one `AckBatch` packet per peer that completed any sends.
    fn flush_acks(&mut self) {
        for origin in 0..self.ack_batch.len() {
            if self.ack_batch[origin].is_empty() {
                continue;
            }
            let tokens = std::mem::take(&mut self.ack_batch[origin]);
            self.send_wire(origin, WireMsg::AckBatch { tokens });
        }
    }

    fn resolve_ack(&mut self, token: u64) {
        if let Some(Ccb::PutAck {
            proc,
            lsync: Some(f),
        }) = self.ccbs.remove(&token)
        {
            self.shared.set_flag(proc, f);
        }
    }

    fn handle_command(&mut self, src: u32, e: Entry) {
        let shared = self.shared;
        let laddr = e.args[0];
        let dst = (e.args[2] >> 32) as u32;
        let nbytes = e.args[2] as u32;
        let (lsync, rsync) = unpack_sync(e.args[3]);
        if dst as usize >= shared.procs.len() || !shared.allowed(src, dst) {
            shared.fault(src);
            return;
        }
        let src_proc = &shared.procs[src as usize];
        match e.op {
            OP_PUT => {
                if !src_proc.seg.check(laddr, nbytes as usize) {
                    shared.fault(src);
                    return;
                }
                let data = src_proc.seg.read(laddr, nbytes as usize);
                let raddr = e.args[1];
                let ack = lsync.map(|l| {
                    let token = self.next_token;
                    self.next_token += 1;
                    self.ccbs.insert(
                        token,
                        Ccb::PutAck {
                            proc: src,
                            lsync: Some(l),
                        },
                    );
                    (self.node, token)
                });
                let dst_node = shared.procs[dst as usize].node;
                self.send_wire(
                    dst_node,
                    WireMsg::Put {
                        dst,
                        raddr,
                        data,
                        rsync,
                        ack,
                    },
                );
            }
            OP_GET => {
                if !src_proc.seg.check(laddr, nbytes as usize) {
                    shared.fault(src);
                    return;
                }
                let token = self.next_token;
                self.next_token += 1;
                self.ccbs.insert(
                    token,
                    Ccb::Get {
                        proc: src,
                        laddr,
                        nbytes,
                        lsync,
                    },
                );
                let dst_node = shared.procs[dst as usize].node;
                self.send_wire(
                    dst_node,
                    WireMsg::GetReq {
                        src_asid: src,
                        dst,
                        raddr: e.args[1],
                        nbytes,
                        origin: self.node,
                        token,
                    },
                );
            }
            OP_ENQ => {
                if !src_proc.seg.check(laddr, nbytes as usize) {
                    shared.fault(src);
                    return;
                }
                let data = src_proc.seg.read(laddr, nbytes as usize);
                let rq = e.args[1] as u32;
                if rq as usize >= NUM_QUEUES {
                    shared.fault(src);
                    return;
                }
                let ack = lsync.map(|l| {
                    let token = self.next_token;
                    self.next_token += 1;
                    self.ccbs.insert(
                        token,
                        Ccb::PutAck {
                            proc: src,
                            lsync: Some(l),
                        },
                    );
                    (self.node, token)
                });
                let dst_node = shared.procs[dst as usize].node;
                self.send_wire(
                    dst_node,
                    WireMsg::Enq {
                        dst,
                        rq,
                        data,
                        rsync,
                        ack,
                    },
                );
            }
            _ => shared.fault(src),
        }
    }

    fn handle_packet(&mut self, msg: WireMsg) {
        let shared = self.shared;
        match msg {
            WireMsg::Put {
                dst,
                raddr,
                data,
                rsync,
                ack,
            } => {
                let dp = &shared.procs[dst as usize];
                if dp.seg.check(raddr, data.len()) {
                    dp.seg.write(raddr, &data);
                    if let Some(f) = rsync {
                        shared.set_flag(dst, f);
                    }
                }
                if let Some((origin, token)) = ack {
                    self.emit_ack(origin, token);
                }
            }
            WireMsg::GetReq {
                src_asid,
                dst,
                raddr,
                nbytes,
                origin,
                token,
            } => {
                let dp = &shared.procs[dst as usize];
                let data = if dp.seg.check(raddr, nbytes as usize) {
                    Some(dp.seg.read(raddr, nbytes as usize))
                } else {
                    shared.fault(src_asid);
                    None
                };
                self.send_wire(origin, WireMsg::GetReply { token, data });
            }
            WireMsg::GetReply { token, data } => {
                if let Some(Ccb::Get {
                    proc,
                    laddr,
                    nbytes,
                    lsync,
                }) = self.ccbs.remove(&token)
                {
                    if let Some(data) = data {
                        let take = (nbytes as usize).min(data.len());
                        shared.procs[proc as usize].seg.write(laddr, &data[..take]);
                    }
                    if let Some(f) = lsync {
                        shared.set_flag(proc, f);
                    }
                }
            }
            WireMsg::Enq {
                dst,
                rq,
                data,
                rsync,
                ack,
            } => {
                // FIFO per queue: anything already stashed goes first.
                if !self.pending_rq.is_empty() {
                    self.pending_rq.push_back(WireMsg::Enq {
                        dst,
                        rq,
                        data,
                        rsync,
                        ack,
                    });
                    return;
                }
                match shared.procs[dst as usize].queues[rq as usize].try_push(data) {
                    Ok(()) => self.finish_enq(dst, rsync, ack),
                    Err(data) => self.pending_rq.push_back(WireMsg::Enq {
                        dst,
                        rq,
                        data,
                        rsync,
                        ack,
                    }),
                }
            }
            WireMsg::Ack { token } => self.resolve_ack(token),
            WireMsg::AckBatch { tokens } => {
                for token in tokens {
                    self.resolve_ack(token);
                }
            }
        }
    }
}

/// The proxy thread: the Figure 5 loop over real queues and wires.
fn proxy_main(
    node: usize,
    mut queues: Vec<(u32, spsc::Consumer)>,
    ready: &AtomicU64,
    shared: &Shared,
) {
    let _sentinel = PanicSentinel {
        flag: Arc::clone(&shared.panicked[node]),
    };
    let parker = &shared.parkers[node];
    parker.register();
    let wire_rx = &shared.wires[node];
    let health = Arc::clone(&shared.health[node]);
    let mut ctx = ProxyCtx::new(node, shared);
    let mut batch: Vec<Entry> = Vec::with_capacity(SERVICE_BURST);
    let mut backoff = Backoff::new();
    let mut legacy_idle_spins = 0u32;
    let mut stop_flush_tries = 0u32;
    loop {
        let mut progressed = false;
        let service_start = Instant::now();
        // Stashed outbound packets go first: per-destination FIFO.
        progressed |= ctx.flush_pending();
        // User command queues: consult the ready-bit vector, then drain a
        // burst per queue. While the outbound stash is deep the drain
        // pauses (bits stay set), so the bounded command rings
        // backpressure users and per-node occupancy stays bounded.
        if ctx.backlogged() < PENDING_CAP {
            let mask = ready.swap(0, Ordering::Acquire);
            if mask != 0 {
                for (qi, (src, q)) in queues.iter_mut().enumerate() {
                    if mask & (1 << qi) == 0 {
                        continue;
                    }
                    let taken = q.pop_burst(&mut batch, SERVICE_BURST);
                    let src = *src;
                    for e in batch.drain(..) {
                        ctx.handle_command(src, e);
                    }
                    if taken > 0 {
                        shared.ops_serviced[node].fetch_add(taken as u64, Ordering::Relaxed);
                        progressed = true;
                    }
                    if q.is_ready() {
                        // Entries remain past the burst; re-arm the bit so
                        // the next scan comes back.
                        ready.fetch_or(1 << qi, Ordering::Release);
                    }
                }
            }
        }
        // Overload control: a saturated proxy sheds its oldest request
        // packets (never responses or acks) before servicing the rest.
        if shared.shed_enabled.load(Ordering::Relaxed) && health.saturated.load(Ordering::Acquire) {
            let dropped = match wire_rx {
                Wire::Locked(fifo) => shed_excess(fifo, SHED_BACKLOG),
                Wire::Ring(ring) => {
                    // Pop-time shedding: drain the overflow, dropping
                    // requests and servicing the exempt packets.
                    let mut dropped = 0u64;
                    while ring.len() > SHED_BACKLOG {
                        let Some(msg) = ring.try_pop() else { break };
                        if msg.is_request() {
                            dropped += 1;
                        } else {
                            ctx.handle_packet(msg);
                            shared.ops_serviced[node].fetch_add(1, Ordering::Relaxed);
                            progressed = true;
                        }
                    }
                    dropped
                }
            };
            if dropped > 0 {
                health.shed.fetch_add(dropped, Ordering::Relaxed);
                progressed = true;
            }
        }
        // Network input (burst-bounded like the command queues: a flooded
        // wire refills faster than it drains, and this loop must not
        // become the whole iteration).
        let mut burst = 0;
        while burst < SERVICE_BURST {
            let Some(msg) = wire_rx.pop() else { break };
            ctx.handle_packet(msg);
            shared.ops_serviced[node].fetch_add(1, Ordering::Relaxed);
            progressed = true;
            burst += 1;
        }
        // One coalesced ACK packet per peer per batch.
        ctx.flush_acks();
        if progressed {
            // Busy time feeds the watchdog's utilisation samples; idle
            // polling scans are charged to nobody, exactly like the
            // simulator's per-node busy counter.
            health.busy_ns.fetch_add(
                u64::try_from(service_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
            backoff.reset();
            legacy_idle_spins = 0;
            stop_flush_tries = 0;
            continue;
        }
        if shared.stop.load(Ordering::Relaxed) {
            // Final drain pass (ready bits may have raced with stop).
            let drained = queues.iter_mut().all(|(_, q)| !q.is_ready());
            if drained && wire_rx.is_empty() {
                if ctx.outbox_empty() {
                    break;
                }
                // A peer's ring is full and may never drain (its proxy
                // may already be gone); bounded retries, then the
                // undeliverable in-flight packets are dropped.
                stop_flush_tries += 1;
                if stop_flush_tries > STOP_FLUSH_TRIES {
                    break;
                }
            }
            // Re-arm all bits so the next pass scans everything.
            ready.fetch_or(u64::MAX, Ordering::Release);
            std::thread::yield_now();
            continue;
        }
        if shared.locked_plane {
            // The baseline's idle loop, kept verbatim for the A/B: a
            // fixed spin budget, then yield forever — never parks, so an
            // idle proxy keeps taxing the host scheduler.
            if legacy_idle_spins < LEGACY_IDLE_SPINS {
                legacy_idle_spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            continue;
        }
        // Idle: escalate spin → yield → park. Parking is gated on an
        // empty outbound stash (stashed packets wait on a peer's ring,
        // which sends no wake when space frees up).
        if backoff.is_parkable() && ctx.outbox_empty() {
            parker.prepare_park();
            if ready.load(Ordering::SeqCst) != 0
                || !wire_rx.is_empty()
                || shared.stop.load(Ordering::Relaxed)
            {
                parker.cancel();
            } else {
                parker.park(PARK_TIMEOUT);
            }
            backoff.reset();
        } else {
            backoff.snooze();
        }
    }
}

/// Drops the oldest *request* packets from `fifo` until at most `cap`
/// remain, returning how many were shed (the locked baseline's shed
/// path). Works in place — retained packets are never reallocated or
/// copied into a fresh queue.
fn shed_excess(fifo: &PolledFifo<WireMsg>, cap: usize) -> u64 {
    let mut q = fifo.lock();
    let mut to_shed = q.len().saturating_sub(cap);
    if to_shed == 0 {
        return 0;
    }
    let mut shed = 0u64;
    q.retain(|m| {
        if to_shed > 0 && m.is_request() {
            to_shed -= 1;
            shed += 1;
            false
        } else {
            true
        }
    });
    shed
}

/// The overload watchdog: every `interval` it turns each proxy's busy-time
/// delta into a utilisation sample and applies the paper's §5.4 stability
/// rule — a proxy above [`STABLE_UTILIZATION`] has unbounded expected
/// queueing delay, so it is flagged saturated (with a one-time warning per
/// node) until the load falls back under [`RECOVERY_UTILIZATION`].
fn watchdog_main(shared: &Shared, interval: Duration) {
    let nodes = shared.health.len();
    let mut prev_busy = vec![0u64; nodes];
    let mut warned = vec![false; nodes];
    let mut prev_t = Instant::now();
    while !shared.stop.load(Ordering::Relaxed) {
        std::thread::sleep(interval);
        let now = Instant::now();
        let wall_ns = now.duration_since(prev_t).as_nanos();
        if wall_ns == 0 {
            continue;
        }
        prev_t = now;
        for (node, h) in shared.health.iter().enumerate() {
            let busy = h.busy_ns.load(Ordering::Relaxed);
            let delta = busy.saturating_sub(prev_busy[node]);
            prev_busy[node] = busy;
            let util = (u128::from(delta) as f64 / wall_ns as f64).min(1.0);
            h.util_bits.store(util.to_bits(), Ordering::Relaxed);
            // Two overload signals. Utilisation is the paper's §5.4 rule,
            // but it is a time-domain measure: on an oversubscribed host
            // the proxy thread may be descheduled and sample low even as
            // its input queue grows without bound. Backlog is the
            // space-domain symptom of the same instability and is immune
            // to scheduler noise, so either one trips the flag.
            let backlog = shared.wires[node].len();
            let was = h.saturated.load(Ordering::Acquire);
            if !was && (util > STABLE_UTILIZATION || backlog > SHED_BACKLOG) {
                h.saturation_events.fetch_add(1, Ordering::Relaxed);
                h.saturated.store(true, Ordering::Release);
                // A shedding proxy may be parked with its wire already
                // over the cap; make sure it sees the flag.
                shared.parkers[node].wake();
                if !warned[node] {
                    warned[node] = true;
                    eprintln!(
                        "mproxy-rt: node {node} proxy overloaded ({:.0}% utilisation, \
                         {backlog} queued) — past the 50% stability bound, queueing \
                         delay is now unbounded",
                        util * 100.0
                    );
                }
            } else if was && util < RECOVERY_UTILIZATION && backlog < SHED_BACKLOG / 2 {
                h.saturated.store(false, Ordering::Release);
            }
        }
    }
}
