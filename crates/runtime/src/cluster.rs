//! The threaded message-proxy cluster.
//!
//! One proxy thread per node runs the Figure 5 loop for real: it polls the
//! registered per-user command queues and the node's network input, using
//! the §4.1 *shared bit vector* optimisation — producers set a per-queue
//! ready bit, so an idle proxy probes one word instead of scanning every
//! queue head. Protection checks (asid permission, bounds) run in the
//! proxy, never in user code; violations are counted as faults and the
//! operation is dropped, the runtime analogue of "the system faults a
//! process".
//!
//! The data plane is lock-free end to end (see DESIGN.md "Runtime data
//! plane"): user→proxy command queues are the paper's full/empty-flag
//! SPSC rings ([`crate::spsc`]), proxy↔proxy traffic flows through one
//! bounded MPSC wire ring per node, and remote-queue payloads return to
//! user processes over bounded SPSC reply rings (both
//! [`crate::ring::Ring`]). The pre-ring `Mutex<VecDeque>` data plane is
//! kept selectable ([`RtClusterBuilder::locked_data_plane`]) as the A/B
//! baseline for the `rt_throughput` bench.
//!
//! # The sequenced wire layer
//!
//! Inter-proxy traffic is *reliable* over a transport that is allowed to
//! misbehave (the seeded injector of [`crate::fault`], or a proxy dying
//! mid-conversation). Every data packet from node `s` to node `d`
//! carries a per-pair monotone sequence number; the sender retains a
//! clone of each unacknowledged packet (payloads are [`Bytes`], so a
//! clone is a refcount, not a copy). The receiver delivers strictly in
//! order, answers each drain batch with one cumulative
//! [`WireMsg::AckUpto`] watermark, NACKs on a gap or a corrupt frame,
//! and drops duplicates (re-acking so the sender converges). A
//! retransmit timer backstops lost NACKs. Control frames (acks, nacks,
//! hellos) are never judged by the injector and never dropped: the model
//! is a lossy transport under a reliable protocol, not a broken
//! protocol.
//!
//! The invariant bought by all this: **an operation whose `lsync` flag
//! fired was applied at the destination exactly once** — under drops,
//! duplicates, corruption, overload shedding, and proxy respawns.
//! Overload shedding rides the same machinery: a saturated proxy *rejects*
//! excess requests by advancing its delivered watermark and reporting the
//! rejected sequence numbers on the ack, so the sender drops them from
//! retention without firing `lsync`.
//!
//! # Supervision and recovery
//!
//! A proxy is a shared, trusted agent; a node must survive its failure.
//! Each proxy body runs under `catch_unwind`: on panic the thread returns
//! its *seat* (the node's command-queue consumers), records the panic
//! payload, and raises the node's `panicked` bit. All protocol state
//! lives in a per-node [`NodeState`] owned by `Shared` and locked by the
//! proxy for its lifetime — so a respawned proxy resumes with the exact
//! watermarks, retention buffers and CCBs its predecessor held, and no
//! acknowledged operation can be lost or re-applied. With supervision
//! enabled ([`RtClusterBuilder::supervise`]) a supervisor thread respawns
//! dead proxies on a fresh epoch (bounded restarts, exponential backoff);
//! the newcomer broadcasts [`WireMsg::Hello`] so peers re-ack and
//! retransmit immediately instead of waiting out their timers. A node
//! that exhausts its restart budget — or dies without supervision — is
//! *condemned*: peers purge traffic towards it, bounded waits report
//! [`RtError::ProxyDown`] with the panic reason, and shutdown completes.
//! [`RtCluster::shutdown`] is deadline-bounded and reports wedged proxies
//! instead of joining them forever.
//!
//! # Sharded proxies
//!
//! A node may run several proxy *shard lanes*
//! ([`RtClusterBuilder::shards`] / [`RtClusterBuilder::elastic_shards`]):
//! every per-node structure above — wire ring, parker, [`NodeState`],
//! seat, epoch, health, telemetry scope — is really per *lane*
//! (`lane = node · shards + shard`), and the sequenced wire layer runs
//! per (sender-lane, destination-lane) stream, so the exactly-once
//! invariant is untouched by sharding. A per-node [`ShardTable`] maps
//! each local asid to its serving shard (stable jump-consistent hash of
//! the asid over the active shard count); senders route on the
//! *receive side's* table and pin a per-asid route until their in-flight
//! frames toward the old lane drain, which preserves per-(sender, asid)
//! FIFO across rebalancing. Asids migrate between lanes with a
//! quiesce → drain → retarget handoff (see `process_migrations`); an
//! elastic controller riding the watchdog scales the active shard count
//! within `[min, max]` off the per-shard busy-fraction signal. The
//! default is one shard per node, which is bit-for-bit the pre-sharding
//! topology.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use mproxy_model::contention::STABLE_UTILIZATION;
use mproxy_obs::{Ctr, EventKind, HistId, ObsHub, Scope as ObsScope, Snapshot, TraceEvent};

use crate::fault::{RtFaultCounts, RtFaultPlan, RtFaultState};
use crate::idle::{Backoff, Parker};
use crate::mem::Segment;
use crate::ring::Ring;
use crate::spsc::{self, Entry};
use crate::supervisor::SupervisorCfg;

/// One command-queue consumer held by a proxy lane, tagged with the
/// owning asid and the §4.1 ready bit it arms. Qbits are assigned per
/// *node* and stable for the process's lifetime, so a queue keeps its
/// bit when it migrates between the node's shard lanes.
pub(crate) struct SeatEntry {
    pub(crate) asid: u32,
    pub(crate) qbit: u32,
    pub(crate) q: spsc::Consumer,
}

/// A lane's command-queue consumers.
pub(crate) type Seat = Vec<SeatEntry>;

/// Synchronisation flags per process.
pub const NUM_FLAGS: usize = 64;
/// Remote queues per process.
pub const NUM_QUEUES: usize = 8;
/// Command queue depth per process.
pub const CMDQ_DEPTH: usize = 128;
/// Wire ring depth per node (packets queued by peer proxies).
pub const WIRE_DEPTH: usize = 512;
/// Reply ring depth per remote queue (payloads queued for a user process).
pub const RQ_DEPTH: usize = 256;

/// Utilisation below which a saturated proxy is considered recovered.
/// Sits under [`STABLE_UTILIZATION`] so the flag doesn't flap when load
/// hovers at the §5.4 bound.
pub const RECOVERY_UTILIZATION: f64 = 0.4;

/// Wire backlog (packets) past which a saturated, shedding-enabled proxy
/// starts rejecting request traffic.
pub const SHED_BACKLOG: usize = CMDQ_DEPTH;

/// Most entries a proxy drains from one queue per loop iteration. When the
/// arrival rate exceeds the service rate a drain would otherwise never
/// terminate, and iteration boundaries are where busy-time accounting and
/// the shedding check run — an overloaded proxy must keep reaching them.
const SERVICE_BURST: usize = 2 * CMDQ_DEPTH;

/// Outbound packets a proxy holds privately (its wire rings to peers all
/// full) before it stops draining command queues; the bounded command
/// rings then backpressure the user processes, so total occupancy per
/// node stays bounded by `CMDQ_DEPTH·procs + WIRE_DEPTH + PENDING_CAP`
/// (plus retention, which drains as fast as peers acknowledge).
const PENDING_CAP: usize = 2 * WIRE_DEPTH;

/// Retransmit timeout: a sender with unacknowledged packets and no ack
/// progress for this long re-sends from its retention buffer. Generous
/// against ack coalescing latency, tight enough that a dropped packet
/// costs milliseconds, not a stalled test.
const RTO: Duration = Duration::from_millis(2);

/// Most retained packets re-sent per destination per retransmit pass;
/// bounds the burst a recovering receiver takes all at once.
const RESEND_BURST: usize = 128;

/// Longest a parked proxy sleeps before re-probing its queues (a missed
/// wake is designed out, this is insurance — see [`crate::idle::Parker`]).
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// The locked baseline's fixed idle budget: spin this many times, then
/// `yield_now` (the pre-adaptive-policy hand-rolled loop, preserved for
/// the A/B ablation).
const LEGACY_IDLE_SPINS: u32 = 500;

/// Loop passes a stopping proxy keeps waiting for undeliverable or
/// unacknowledged outbound packets (a peer's ring full, or a peer dead
/// but not yet condemned) before giving up on them — in-flight traffic
/// at shutdown is lossy by contract.
const STOP_FLUSH_TRIES: u32 = 10_000;

/// Default deadline for [`RtCluster::shutdown`] (and `Drop`): a wedged
/// proxy thread is reported and detached rather than joined past this.
const DEFAULT_SHUTDOWN_DEADLINE: Duration = Duration::from_secs(10);

/// Most shard lanes a node may be configured with (the qbit word is the
/// binding limit for processes; this bounds thread count and the
/// per-lane stream tables).
pub const MAX_SHARDS: usize = 8;

/// Consecutive watchdog ticks every active lane of a node must sit
/// under [`RECOVERY_UTILIZATION`] before the elastic controller shrinks
/// the node by one shard (hysteresis against load dips).
const SHRINK_IDLE_TICKS: u32 = 8;

/// Watchdog ticks the elastic controller stays hands-off on a node
/// after any scaling action, letting migrations complete and the
/// utilisation signal re-settle before the next decision.
const SCALE_COOLDOWN_TICKS: u32 = 8;

const OP_PUT: u32 = 1;
const OP_GET: u32 = 2;
const OP_ENQ: u32 = 3;

/// Jump consistent hash (Lamping & Veach): maps `key` to a bucket in
/// `0..buckets` such that growing `buckets` by one moves only
/// `~1/(buckets+1)` of the keys and shrinking moves only the keys of
/// the removed bucket — the "stable hash" behind the shard table, so
/// elastic scaling migrates the minimum number of asids.
fn jump_hash(mut key: u64, buckets: u32) -> u32 {
    debug_assert!(buckets > 0);
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < i64::from(buckets) {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        {
            j = (((b + 1) as f64) * (f64::from(1u32 << 31) / (((key >> 33) + 1) as f64))) as i64;
        }
    }
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    {
        b as u32
    }
}

/// A synchronisation-flag slot (monotone counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlagId(pub u32);

/// A remote-queue slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RqId(pub u32);

/// A recoverable runtime communication failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// A bounded wait expired before the flag reached its target.
    Timeout {
        /// The flag waited on.
        flag: u32,
        /// The value waited for.
        target: u64,
        /// The value observed when the wait gave up.
        observed: u64,
    },
    /// A proxy thread died for good (condemned: it panicked and will not
    /// be — or can no longer be — respawned); the node is unreachable.
    ProxyDown {
        /// The node whose proxy is gone.
        node: usize,
        /// The panic payload, when it was a string.
        reason: Option<String>,
    },
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::Timeout {
                flag,
                target,
                observed,
            } => write!(f, "wait on flag {flag} timed out at {observed}/{target}"),
            RtError::ProxyDown {
                node,
                reason: Some(r),
            } => write!(f, "proxy thread for node {node} has died: {r}"),
            RtError::ProxyDown { node, reason: None } => {
                write!(f, "proxy thread for node {node} has died")
            }
        }
    }
}

impl std::error::Error for RtError {}

/// One dead proxy in a [`ShutdownReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyPanic {
    /// The node whose proxy was dead when the cluster shut down.
    pub node: usize,
    /// The shard lane on that node (0 on an unsharded cluster).
    pub shard: usize,
    /// Its panic payload, when it was a string.
    pub reason: Option<String>,
}

/// What [`RtCluster::shutdown`] observed while joining the proxies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Nodes whose proxy was dead (panicked, not respawned) at shutdown,
    /// with the captured panic payloads. A node whose proxy died but was
    /// respawned by supervision and exited cleanly is *not* listed.
    pub panicked_nodes: Vec<ProxyPanic>,
    /// Nodes whose proxy failed to exit within the shutdown deadline and
    /// was detached still running (e.g. stuck in foreign code).
    pub wedged_nodes: Vec<usize>,
    /// Total proxy respawns performed by supervision over the cluster's
    /// lifetime.
    pub restarts: u64,
}

impl ShutdownReport {
    /// True if every proxy exited cleanly at shutdown (recovered-then-
    /// clean nodes count as clean; see [`ShutdownReport::restarts`]).
    #[must_use]
    pub fn clean(&self) -> bool {
        self.panicked_nodes.is_empty() && self.wedged_nodes.is_empty()
    }

    /// Stable single-line JSON serialization (the shape `rt_chaos`
    /// embeds per scenario in `BENCH_chaos.json`):
    /// `{"clean":bool,"restarts":n,"panicked":[{"node":n,"shard":s,
    /// "reason":s?}],"wedged":[n]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64);
        let _ = write!(
            s,
            "{{\"clean\":{},\"restarts\":{},\"panicked\":[",
            self.clean(),
            self.restarts
        );
        for (i, p) in self.panicked_nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"node\":{},\"shard\":{}", p.node, p.shard);
            if let Some(r) = &p.reason {
                let _ = write!(s, ",\"reason\":\"{}\"", mproxy_obs::json::esc(r));
            }
            s.push('}');
        }
        s.push_str("],\"wedged\":[");
        for (i, n) in self.wedged_nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{n}");
        }
        s.push_str("]}");
        s
    }
}

/// A multi-producer FIFO with poison recovery — the locked-baseline
/// remote-queue store and inter-node wire. A panicked proxy can never
/// wedge it.
#[derive(Debug)]
struct PolledFifo<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> Default for PolledFifo<T> {
    fn default() -> Self {
        PolledFifo {
            items: Mutex::new(VecDeque::new()),
        }
    }
}

impl<T> PolledFifo<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.items.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, v: T) {
        self.lock().push_back(v);
    }

    fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn len(&self) -> usize {
        self.lock().len()
    }
}

/// A node's wire input: peer proxies produce, the node's proxy consumes.
/// The ring variant is the lock-free data plane; the locked variant is
/// the pre-ring `Mutex<VecDeque>` baseline kept for A/B measurement.
#[derive(Debug)]
enum Wire {
    Locked(PolledFifo<WireMsg>),
    // Boxed: a Ring inlines two cache-padded counters (384 bytes), and
    // adjacent nodes' rings must not share lines anyway.
    Ring(Box<Ring<WireMsg>>),
}

impl Wire {
    fn new(locked: bool) -> Wire {
        if locked {
            Wire::Locked(PolledFifo::default())
        } else {
            Wire::Ring(Box::new(Ring::new(WIRE_DEPTH)))
        }
    }

    /// Enqueues a packet; the locked baseline is unbounded and always
    /// accepts, the ring hands the packet back when full.
    fn try_push(&self, m: WireMsg) -> Result<(), WireMsg> {
        match self {
            Wire::Locked(f) => {
                f.push(m);
                Ok(())
            }
            Wire::Ring(r) => r.try_push(m),
        }
    }

    fn pop(&self) -> Option<WireMsg> {
        match self {
            Wire::Locked(f) => f.pop(),
            Wire::Ring(r) => r.try_pop(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Wire::Locked(f) => f.is_empty(),
            Wire::Ring(r) => r.is_empty(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Wire::Locked(f) => f.len(),
            Wire::Ring(r) => r.len(),
        }
    }
}

/// One remote queue: the local proxy produces, the owning user process
/// consumes. Ring = lock-free reply ring, Locked = baseline.
#[derive(Debug)]
enum RqStore {
    Locked(PolledFifo<Bytes>),
    // Boxed for the same reason as [`Wire::Ring`].
    Ring(Box<Ring<Bytes>>),
}

impl RqStore {
    fn new(locked: bool) -> RqStore {
        if locked {
            RqStore::Locked(PolledFifo::default())
        } else {
            RqStore::Ring(Box::new(Ring::new(RQ_DEPTH)))
        }
    }

    fn try_push(&self, data: Bytes) -> Result<(), Bytes> {
        match self {
            RqStore::Locked(f) => {
                f.push(data);
                Ok(())
            }
            RqStore::Ring(r) => r.try_push(data),
        }
    }

    fn pop(&self) -> Option<Bytes> {
        match self {
            RqStore::Locked(f) => f.pop(),
            RqStore::Ring(r) => r.try_pop(),
        }
    }
}

/// Per-node map from local asid to serving shard slot, plus the node's
/// active shard count. The table is *load-balancing*, not correctness:
/// any lane of a node can apply inbound operations for any local asid
/// (segments, flags and reply rings live in [`ProcShared`], shared by
/// all lanes); the slot decides which lane drains the asid's command
/// queue and which lane new inbound frames are routed to. Slots are
/// indexed by global asid and only meaningful for asids homed on this
/// node. Slot stores are `Release` (by the lane completing a handoff)
/// and loads `Acquire`, pairing with the seat-install in the new lane.
pub(crate) struct ShardTable {
    slots: Vec<AtomicU32>,
    active: AtomicU32,
}

impl ShardTable {
    fn new(procs: usize, active: u32) -> ShardTable {
        ShardTable {
            slots: (0..procs).map(|_| AtomicU32::new(0)).collect(),
            active: AtomicU32::new(active),
        }
    }

    #[inline]
    fn slot(&self, asid: u32) -> u32 {
        self.slots[asid as usize].load(Ordering::Acquire)
    }

    fn set_slot(&self, asid: u32, shard: u32) {
        self.slots[asid as usize].store(shard, Ordering::Release);
    }

    fn active(&self) -> u32 {
        self.active.load(Ordering::Acquire)
    }

    fn set_active(&self, n: u32) {
        self.active.store(n, Ordering::Release);
    }
}

/// A migration request mailed to an owning lane by the elastic
/// controller (or [`RtCluster::migrate_asid`]); lives in `Shared` so it
/// survives proxy incarnations.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MigrOrder {
    asid: u32,
    dst_lane: usize,
}

/// An in-progress handoff held by the owning lane. `marks[d]` is the
/// highest sequence this lane had sent toward lane `d` when the quiesce
/// began; once `acked >= marks[d]` for every live `d`, all frames the
/// migrating asid could have contributed are applied at their
/// destinations, so re-sourcing its commands from another lane cannot
/// reorder. Lives in [`NodeState`], so a mid-handoff proxy death
/// resumes the drain in the next incarnation.
struct Migration {
    asid: u32,
    qbit: u32,
    dst_lane: usize,
    marks: Vec<u64>,
}

/// Elastic scaling bounds ([`RtClusterBuilder::elastic_shards`]).
#[derive(Debug, Clone, Copy)]
struct ElasticRange {
    min: u32,
    max: u32,
}

/// Per-node load and overload state, written by the proxy and the
/// watchdog, read by anyone.
#[derive(Debug, Default)]
struct ProxyHealth {
    /// Nanoseconds the proxy has spent servicing work (not idle-spinning).
    busy_ns: AtomicU64,
    /// Bits of the watchdog's last utilisation sample (an `f64`).
    util_bits: AtomicU64,
    /// Set while the sampled utilisation sits above [`STABLE_UTILIZATION`];
    /// cleared once it falls back under [`RECOVERY_UTILIZATION`].
    saturated: AtomicBool,
    /// Times the proxy has crossed into saturation.
    saturation_events: AtomicU64,
    /// Request packets rejected by overload shedding.
    shed: AtomicU64,
}

struct ProcShared {
    asid: u32,
    node: usize,
    seg: Segment,
    flags: Vec<Arc<AtomicU64>>,
    queues: Vec<RqStore>,
    faults: Arc<AtomicU64>,
    timeouts: Arc<AtomicU64>,
}

/// An operation travelling the wire (the content of a sequenced
/// [`WireMsg::Data`] frame).
#[derive(Debug, Clone)]
enum Payload {
    Put {
        dst: u32,
        raddr: u64,
        data: Bytes,
        rsync: Option<u32>,
    },
    GetReq {
        src_asid: u32,
        dst: u32,
        raddr: u64,
        nbytes: u32,
        token: u64,
    },
    GetReply {
        token: u64,
        data: Option<Bytes>,
    },
    Enq {
        dst: u32,
        rq: u32,
        data: Bytes,
        rsync: Option<u32>,
    },
}

impl Payload {
    /// Requests may be rejected under overload; responses may not — each
    /// one resolves a CCB that has already been paid for, and rejecting
    /// it would strand the waiter.
    fn is_request(&self) -> bool {
        !matches!(self, Payload::GetReply { .. })
    }

    /// Application bytes carried (the bytes_in/bytes_out accounting
    /// unit; headers and control frames count zero).
    fn wire_bytes(&self) -> u64 {
        match self {
            Payload::Put { data, .. } | Payload::Enq { data, .. } => data.len() as u64,
            Payload::GetReq { .. } => 0,
            Payload::GetReply { data, .. } => data.as_ref().map_or(0, |d| d.len() as u64),
        }
    }
}

/// One frame on the inter-proxy wire. `Data` frames are sequenced per
/// (sender, destination) pair and subject to fault injection; the control
/// frames are the reliability layer itself and are never judged or lost.
#[derive(Debug)]
enum WireMsg {
    /// A sequenced operation. `corrupt` models payload damage in flight —
    /// set by the injector, detected "by checksum" at the receiver, which
    /// NACKs instead of delivering.
    Data {
        from: usize,
        seq: u64,
        corrupt: bool,
        body: Payload,
    },
    /// Cumulative acknowledgement: every `Data` frame from the receiver's
    /// peer with `seq <= upto` has been accounted for. Sequences listed in
    /// `rejected` were *shed* under overload: the sender must drop them
    /// from retention without firing their `lsync`.
    AckUpto {
        from: usize,
        upto: u64,
        rejected: Vec<u64>,
    },
    /// The receiver saw a gap or a corrupt frame after `since`; the
    /// sender should retransmit its retention buffer now rather than
    /// waiting out the RTO.
    Nack {
        from: usize,
        #[allow(dead_code)]
        since: u64,
    },
    /// A respawned proxy announcing itself: peers re-ack their watermark
    /// (so the newcomer's retention drains) and retransmit their own
    /// retained traffic immediately.
    Hello {
        from: usize,
        #[allow(dead_code)]
        epoch: u64,
    },
}

/// An outstanding GET command control block (lives in [`NodeState`] so a
/// respawned proxy can still complete or cancel it).
struct CcbGet {
    proc: u32,
    laddr: u64,
    nbytes: u32,
    lsync: Option<u32>,
}

/// A retained (sent, unacknowledged) data frame.
struct Retained {
    seq: u64,
    body: Payload,
    /// `(proc, flag)` to bump when the frame is acknowledged un-rejected.
    lsync: Option<(u32, u32)>,
    /// First-transmission time (cluster-relative ns) — the wire-RTT
    /// histogram measures from here to the releasing ack.
    sent_ns: u64,
    /// The originating command's submit stamp ([`Entry::t_ns`]; 0 when
    /// recording was off or the frame is proxy-originated) — the
    /// lsync-RTT histogram measures from here.
    submit_ns: u64,
}

/// Sender-side state towards one destination node.
struct TxPeer {
    /// Sequence number the next new frame will carry (first frame is 1).
    next_seq: u64,
    /// Highest acknowledged sequence.
    acked: u64,
    /// Sent-but-unacknowledged frames, in sequence order. Unbounded by
    /// type, bounded in practice by the receiver's ack cadence — even a
    /// *saturated* receiver advances its watermark (shed-reject), so
    /// retention drains at wire speed.
    retained: VecDeque<Retained>,
    /// Last time the ack watermark moved (or retention went non-empty);
    /// the RTO measures from here.
    last_progress: Instant,
    /// A NACK (or a peer Hello) asked for immediate retransmission.
    nack_hint: bool,
}

impl TxPeer {
    fn new(now: Instant) -> TxPeer {
        TxPeer {
            next_seq: 1,
            acked: 0,
            retained: VecDeque::new(),
            last_progress: now,
            nack_hint: false,
        }
    }
}

/// Receiver-side state from one source node.
#[derive(Default)]
struct RxPeer {
    /// Highest sequence delivered (or rejected) in order.
    delivered: u64,
    /// An ack should go out this pass.
    ack_pending: bool,
    /// A nack should go out this pass.
    nack_pending: bool,
    /// Sequences shed since the last ack, to ride out on it.
    rejected_new: Vec<u64>,
}

/// An accepted ENQ whose reply ring was full; delivery is owed (the
/// frame was already acknowledged), so this queue must survive a proxy
/// crash — it does, inside [`NodeState`].
struct PendingEnq {
    dst: u32,
    rq: u32,
    data: Bytes,
    rsync: Option<u32>,
}

/// Everything a node's proxy knows that must survive the proxy thread:
/// protocol watermarks, retention buffers, CCBs, stashed undeliverable
/// output. Owned by `Shared`, locked by the serving proxy for its
/// lifetime; the supervisor locks it briefly between incarnations to
/// bump the epoch.
/// Per-message hot-path telemetry — the `Send`/`Enqueue` trace events
/// and the cmd-wait / wire-RTT / lsync-RTT histogram samples — is
/// recorded one-in-32 (`tick & MASK == 0`). A histogram's shape survives
/// deterministic decimation, and sampling keeps the recording-armed cost
/// on the proxy's critical path inside the `rt_obs` 5% gate. Rare events
/// (kills, respawns, hellos, acks, sheds, faults) are never sampled, and
/// counters are always exact.
const OBS_SAMPLE_MASK: u64 = 31;

pub(crate) struct NodeState {
    /// Incarnation number; bumped by the supervisor on each respawn.
    pub(crate) epoch: u64,
    /// Respawn announcement owed to peers (set by the supervisor, cleared
    /// by the new incarnation once the Hellos are queued).
    pub(crate) hello_pending: bool,
    next_token: u64,
    ccbs: HashMap<u64, CcbGet>,
    tx: Vec<TxPeer>,
    rx: Vec<RxPeer>,
    /// Outbound frames whose destination ring was full, per node.
    /// Flushed in FIFO order before anything new is pushed, so per-pair
    /// wire order is preserved. Holds control frames too — an ack
    /// carrying rejections must never be lost.
    pending_wire: Vec<VecDeque<WireMsg>>,
    /// Accepted local deliveries whose reply ring was full.
    pending_rq: VecDeque<PendingEnq>,
    /// In-progress shard handoffs (quiescing/draining asids owned by
    /// this lane). Empty on an unsharded cluster.
    migr: Vec<Migration>,
    /// Sharded-send route pinning, keyed by destination asid:
    /// `(dst_lane, in_flight)`. A route is re-read from the destination
    /// node's shard table only when `in_flight == 0`, so all frames
    /// toward an asid drain through the old lane before the first frame
    /// takes the new one — per-(sender, asid) FIFO survives the asid
    /// migrating. Untouched (empty) when the cluster is unsharded.
    routes: HashMap<u32, (usize, u32)>,
    /// Decimation tick for sampled telemetry (see [`OBS_SAMPLE_MASK`]).
    obs_tick: u64,
}

impl NodeState {
    fn new(lanes: usize, now: Instant) -> NodeState {
        NodeState {
            epoch: 0,
            hello_pending: false,
            next_token: 0,
            ccbs: HashMap::new(),
            tx: (0..lanes).map(|_| TxPeer::new(now)).collect(),
            rx: (0..lanes).map(|_| RxPeer::default()).collect(),
            pending_wire: (0..lanes).map(|_| VecDeque::new()).collect(),
            pending_rq: VecDeque::new(),
            migr: Vec::new(),
            routes: HashMap::new(),
            obs_tick: 0,
        }
    }

    /// Outbound frames stashed because their destination rings were full.
    fn backlogged(&self) -> usize {
        self.pending_wire.iter().map(VecDeque::len).sum::<usize>() + self.pending_rq.len()
    }

    fn outbox_empty(&self) -> bool {
        self.pending_rq.is_empty() && self.pending_wire.iter().all(VecDeque::is_empty)
    }
}

pub(crate) struct Shared {
    procs: Vec<Arc<ProcShared>>,
    perms: RwLock<HashSet<(u32, u32)>>,
    allow_all: AtomicBool,
    pub(crate) stop: AtomicBool,
    /// Shard lanes per node (the *maximum*; lanes past a node's active
    /// count idle until the elastic controller grows into them). Every
    /// `Vec` below commented "per lane" is indexed by
    /// `lane = node · shards + shard`; at `shards == 1` a lane is a node.
    pub(crate) shards: usize,
    /// Elastic scaling bounds; `None` means the shard count is fixed.
    elastic: Option<ElasticRange>,
    /// Per node: the asid → shard map and active shard count.
    pub(crate) tables: Vec<ShardTable>,
    /// Per node: qbit → asid (the reverse of each seat entry's mapping;
    /// lets a lane forward a ready bit for a queue it no longer owns).
    node_qbits: Vec<Vec<u32>>,
    /// Per lane: migration orders mailed by the controller, taken by the
    /// owning lane at the top of its loop.
    migr_orders: Vec<Mutex<Vec<MigrOrder>>>,
    /// Per lane: cheap flag for the order mailbox.
    migr_pending: Vec<AtomicBool>,
    /// Per lane: consumers handed over by a completed migration, waiting
    /// for the destination lane to install them in its seat.
    shard_inbox: Vec<Mutex<Vec<SeatEntry>>>,
    /// Per lane: cheap flag for the handoff inbox.
    inbox_ready: Vec<AtomicBool>,
    /// Per node: migrations issued but not yet completed or aborted
    /// (the controller defers scaling while any are in flight).
    migr_outstanding: Vec<AtomicU64>,
    /// Completed shard migrations, cluster-wide.
    migrations_total: AtomicU64,
    wires: Vec<Wire>,                  // per lane
    pub(crate) parkers: Vec<Parker>,   // per lane, wakes the proxy thread
    ops_serviced: Vec<Arc<AtomicU64>>, // per lane
    /// Per lane: the proxy is currently dead (set after unwinding, after
    /// the seat and panic reason are back; cleared by a respawn).
    pub(crate) panicked: Vec<AtomicBool>,
    /// Per lane: permanently dead — no respawn will come. Peers purge
    /// traffic towards condemned lanes; waits abort against them.
    pub(crate) condemned: Vec<AtomicBool>,
    /// Cheap gate for the per-loop condemnation scan.
    any_condemned: AtomicBool,
    /// Mirror of each lane's epoch for lock-free queries.
    pub(crate) epochs: Vec<AtomicU64>,
    /// Times each lane's proxy has panicked.
    deaths: Vec<AtomicU64>,
    /// Total supervisor respawns.
    pub(crate) restarts_total: AtomicU64,
    /// Last panic payload per lane, when it was a string.
    pub(crate) panic_reasons: Vec<Mutex<Option<String>>>,
    /// The per-lane protocol state (see [`NodeState`]).
    pub(crate) node_state: Vec<Mutex<NodeState>>,
    /// Each lane's command-queue consumers, parked here whenever no
    /// proxy incarnation is running; each incarnation takes the seat and
    /// returns it on the way out (even by panic).
    pub(crate) seats: Vec<Mutex<Option<Seat>>>,
    /// The §4.1 ready-bit word per lane (shared with the endpoints).
    /// Bit positions are per-*node* qbits, so a queue's bit is stable
    /// across shard migrations; each lane only drains bits for queues
    /// its seat holds and forwards strays to the owning lane.
    ready_masks: Vec<Arc<AtomicU64>>,
    /// Proxy thread handles, replaced by the supervisor on respawn.
    pub(crate) handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    health: Vec<Arc<ProxyHealth>>, // per lane
    shed_enabled: AtomicBool,
    /// The installed fault injector, if any.
    faults: Option<RtFaultState>,
    /// Supervision policy; `None` means a dead proxy is condemned at once.
    pub(crate) supervision: Option<SupervisorCfg>,
    /// Cluster start time (stall windows are relative to this).
    started: Instant,
    /// True when running the locked `Mutex<VecDeque>` baseline plane.
    locked_plane: bool,
    /// Telemetry registry (see `mproxy-obs`): counters are always on;
    /// histograms and flight recorders follow the hub's recording flag.
    obs_hub: Arc<ObsHub>,
    /// One telemetry scope per lane, indexed like `wires`.
    pub(crate) obs: Vec<Arc<ObsScope>>,
}

impl Shared {
    /// Total shard lanes (`nodes · shards`).
    #[inline]
    pub(crate) fn lanes(&self) -> usize {
        self.wires.len()
    }

    /// The node a lane belongs to.
    #[inline]
    pub(crate) fn lane_node(&self, lane: usize) -> usize {
        lane / self.shards
    }

    /// True when more than one shard lane per node exists.
    #[inline]
    pub(crate) fn sharded(&self) -> bool {
        self.shards > 1
    }

    /// The lane for `(node, shard)`.
    #[inline]
    pub(crate) fn lane_of(&self, node: usize, shard: usize) -> usize {
        node * self.shards + shard
    }

    /// The lane currently assigned to serve `asid`'s command queue,
    /// per its node's shard table.
    #[inline]
    pub(crate) fn lane_of_asid(&self, asid: u32) -> usize {
        let node = self.procs[asid as usize].node;
        if self.shards == 1 {
            node
        } else {
            self.lane_of(node, self.tables[node].slot(asid) as usize)
        }
    }

    fn allowed(&self, src: u32, dst: u32) -> bool {
        src == dst
            || self.allow_all.load(Ordering::Relaxed)
            || self
                .perms
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .contains(&(src, dst))
    }

    fn fault(&self, src: u32) {
        self.procs[src as usize]
            .faults
            .fetch_add(1, Ordering::Relaxed);
    }

    fn set_flag(&self, proc: u32, flag: u32) {
        self.procs[proc as usize].flags[flag as usize].fetch_add(1, Ordering::Release);
    }

    /// First condemned node, if any (maps the condemned lane back to
    /// its node for error reporting).
    fn condemned_lane(&self) -> Option<usize> {
        if !self.any_condemned.load(Ordering::Acquire) {
            return None;
        }
        self.condemned.iter().position(|c| c.load(Ordering::Acquire))
    }

    fn panic_reason(&self, node: usize) -> Option<String> {
        self.panic_reasons[node]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Nanoseconds from cluster start to `now` — the telemetry timebase
    /// shared by every histogram sample and flight-recorder event (plain
    /// `Instant` arithmetic, no clock read).
    #[inline]
    pub(crate) fn rel_ns(&self, now: Instant) -> u64 {
        u64::try_from(now.duration_since(self.started).as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Marks `lane` permanently dead and wakes everything that might be
/// waiting on it (peer proxies purge their traffic towards it on their
/// next pass; bounded endpoint waits abort).
pub(crate) fn condemn(shared: &Shared, lane: usize) {
    shared.condemned[lane].store(true, Ordering::Release);
    shared.any_condemned.store(true, Ordering::Release);
    for p in &shared.parkers {
        p.wake();
    }
}

/// Builds an [`RtCluster`]: declare nodes and processes, then
/// [`RtClusterBuilder::start`].
pub struct RtClusterBuilder {
    nodes: usize,
    procs: Vec<(usize, usize)>, // (node, segment bytes)
    shed: bool,
    locked: bool,
    watchdog_interval: Duration,
    fault_plan: Option<RtFaultPlan>,
    supervision: Option<SupervisorCfg>,
    telemetry: bool,
    shards: usize,
    elastic: Option<ElasticRange>,
}

impl RtClusterBuilder {
    /// A cluster of `nodes` SMP nodes (each gets one dedicated proxy
    /// thread).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        RtClusterBuilder {
            nodes,
            procs: Vec::new(),
            shed: false,
            locked: false,
            watchdog_interval: Duration::from_millis(1),
            fault_plan: None,
            supervision: None,
            telemetry: true,
            shards: 1,
            elastic: None,
        }
    }

    /// Runs `n` proxy shard threads per node, each owning a disjoint
    /// slice of the node's command queues (partitioned by a per-node
    /// shard table). `shards(1)` — the default — is the classic one
    /// proxy per node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`MAX_SHARDS`].
    pub fn shards(&mut self, n: usize) -> &mut Self {
        assert!(
            (1..=MAX_SHARDS).contains(&n),
            "shards must be in 1..={MAX_SHARDS}"
        );
        self.shards = n;
        self.elastic = None;
        self
    }

    /// Enables elastic shard scaling: each node starts with `min`
    /// active shards and the watchdog-driven controller grows towards
    /// `max` under saturation / shrinks back when idle, migrating asids
    /// between shard lanes with a quiesce → drain → retarget handoff.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= min <= max <= MAX_SHARDS`.
    pub fn elastic_shards(&mut self, min: usize, max: usize) -> &mut Self {
        assert!(
            min >= 1 && min <= max && max <= MAX_SHARDS,
            "need 1 <= min <= max <= {MAX_SHARDS}"
        );
        self.shards = max;
        self.elastic = Some(ElasticRange {
            min: min as u32,
            max: max as u32,
        });
        self
    }

    /// Arms or disarms telemetry *recording* (histograms and the
    /// flight-recorder rings). Counters are always on either way — they
    /// are a handful of relaxed adds per operation. On by default; the
    /// `rt_obs` bench gates the recording-on overhead at ≤5% and uses
    /// `telemetry(false)` as its uninstrumented baseline.
    pub fn telemetry(&mut self, on: bool) -> &mut Self {
        self.telemetry = on;
        self
    }

    /// Enables overload shedding: while a proxy is saturated, its wire
    /// backlog is capped at [`SHED_BACKLOG`] by *rejecting* the oldest
    /// request frames (puts, gets, enqueues). Responses are never shed —
    /// they resolve waits already charged to a client. A rejected request
    /// simply never happens: its sequence number is acknowledged as
    /// rejected, so the sender drops it from retention *without* firing
    /// `lsync`, and the submitter observes the loss through a bounded
    /// wait ([`Endpoint::wait_flag_timeout`]). Off by default: an
    /// unsaturated cluster behaves identically either way.
    pub fn enable_shedding(&mut self) -> &mut Self {
        self.shed = true;
        self
    }

    /// Selects the pre-ring **locked** data plane: `Mutex<VecDeque>`
    /// wire and reply queues and the legacy fixed idle loop (500 spins,
    /// then `yield_now`, never parking) instead of the lock-free rings
    /// with the adaptive idle policy. This is the `--baseline-locked`
    /// ablation of the `rt_throughput` bench; the sequenced wire
    /// protocol and every observable behaviour are identical, only the
    /// data-plane mechanics differ. Off by default.
    pub fn locked_data_plane(&mut self) -> &mut Self {
        self.locked = true;
        self
    }

    /// Sets the watchdog's sampling period (default 1 ms). Shorter
    /// periods make saturation detection snappier at the cost of one
    /// extra wake-up per period.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn watchdog_interval(&mut self, interval: Duration) -> &mut Self {
        assert!(!interval.is_zero(), "watchdog interval must be positive");
        self.watchdog_interval = interval;
        self
    }

    /// Installs a seeded fault plan ([`RtFaultPlan`]): per-packet drop /
    /// duplication / corruption on data frames, plus proxy stalls and
    /// kills. With no plan installed the wire layer pays one never-taken
    /// branch per packet.
    ///
    /// # Panics
    ///
    /// [`RtClusterBuilder::start`] panics if the plan references a node
    /// outside the cluster.
    pub fn fault_plan(&mut self, plan: RtFaultPlan) -> &mut Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables proxy supervision: a dead proxy is respawned on a fresh
    /// epoch after an exponential backoff (`backoff · 2^restarts_so_far`),
    /// up to `max_restarts` times per node; past the budget the node is
    /// condemned (fail-fast on crash loops). Without supervision any
    /// proxy death condemns its node immediately.
    pub fn supervise(&mut self, max_restarts: u32, backoff: Duration) -> &mut Self {
        self.supervision = Some(SupervisorCfg {
            max_restarts,
            backoff,
        });
        self
    }

    /// Adds a user process on `node` with a segment of `mem_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn add_process(&mut self, node: usize, mem_bytes: usize) -> u32 {
        assert!(node < self.nodes, "node {node} out of range");
        self.procs.push((node, mem_bytes));
        (self.procs.len() - 1) as u32
    }

    /// Starts the proxy threads and returns the cluster handle plus one
    /// [`Endpoint`] per declared process (in declaration order).
    #[must_use]
    pub fn start(self) -> (RtCluster, Vec<Endpoint>) {
        let nodes = self.nodes;
        let shards = self.shards;
        let lanes = nodes * shards;
        let active0 = self.elastic.map_or(shards as u32, |e| e.min);
        let now = Instant::now();
        let obs_hub = ObsHub::new_at(self.telemetry, now);
        // Scope names stay `node{n}` in the classic one-proxy-per-node
        // configuration so existing dashboards / tests are unaffected;
        // sharded lanes get `node{n}s{s}` (merge with `merged_by`).
        let obs: Vec<Arc<ObsScope>> = (0..lanes)
            .map(|l| {
                let (n, s) = (l / shards, l % shards);
                let name = if shards == 1 {
                    format!("node{n}")
                } else {
                    format!("node{n}s{s}")
                };
                obs_hub.register(name, mproxy_obs::DEFAULT_RING_CAP)
            })
            .collect();
        let wires: Vec<Wire> = (0..lanes).map(|_| Wire::new(self.locked)).collect();
        let procs: Vec<Arc<ProcShared>> = self
            .procs
            .iter()
            .enumerate()
            .map(|(i, &(node, bytes))| {
                Arc::new(ProcShared {
                    asid: i as u32,
                    node,
                    seg: Segment::new(bytes),
                    flags: (0..NUM_FLAGS)
                        .map(|_| Arc::new(AtomicU64::new(0)))
                        .collect(),
                    queues: (0..NUM_QUEUES).map(|_| RqStore::new(self.locked)).collect(),
                    faults: Arc::new(AtomicU64::new(0)),
                    timeouts: Arc::new(AtomicU64::new(0)),
                })
            })
            .collect();

        // Per-node asid → shard tables; each asid's initial slot comes
        // from the jump consistent hash over the initially active count.
        let tables: Vec<ShardTable> = (0..nodes)
            .map(|_| ShardTable::new(self.procs.len(), active0))
            .collect();

        // Per-process command queues, grouped by the serving lane, plus
        // the §4.1 ready-bit vector per lane. Qbits are assigned per
        // *node*, so a queue's ready bit is stable across migrations.
        let mut per_lane: Vec<Seat> = (0..lanes).map(|_| Vec::new()).collect();
        let mut node_qbits: Vec<Vec<u32>> = (0..nodes).map(|_| Vec::new()).collect();
        let masks: Vec<Arc<AtomicU64>> =
            (0..lanes).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut cmd_txs = Vec::with_capacity(self.procs.len());
        for &(node, _) in &self.procs {
            let (tx, rx) = spsc::channel(CMDQ_DEPTH);
            let asid = cmd_txs.len() as u32;
            let qbit = node_qbits[node].len() as u32;
            assert!(qbit < 64, "at most 64 processes per node");
            node_qbits[node].push(asid);
            let shard = jump_hash(u64::from(asid), active0) as usize;
            tables[node].set_slot(asid, shard as u32);
            per_lane[node * shards + shard].push(SeatEntry { asid, qbit, q: rx });
            cmd_txs.push((tx, node, qbit));
        }

        let shared = Arc::new(Shared {
            procs,
            perms: RwLock::new(HashSet::new()),
            allow_all: AtomicBool::new(true),
            stop: AtomicBool::new(false),
            shards,
            elastic: self.elastic,
            tables,
            node_qbits,
            migr_orders: (0..lanes).map(|_| Mutex::new(Vec::new())).collect(),
            migr_pending: (0..lanes).map(|_| AtomicBool::new(false)).collect(),
            shard_inbox: (0..lanes).map(|_| Mutex::new(Vec::new())).collect(),
            inbox_ready: (0..lanes).map(|_| AtomicBool::new(false)).collect(),
            migr_outstanding: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            migrations_total: AtomicU64::new(0),
            wires,
            parkers: (0..lanes).map(|_| Parker::new()).collect(),
            ops_serviced: (0..lanes)
                .map(|_| Arc::new(AtomicU64::new(0)))
                .collect(),
            panicked: (0..lanes).map(|_| AtomicBool::new(false)).collect(),
            condemned: (0..lanes).map(|_| AtomicBool::new(false)).collect(),
            any_condemned: AtomicBool::new(false),
            epochs: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            deaths: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            restarts_total: AtomicU64::new(0),
            panic_reasons: (0..lanes).map(|_| Mutex::new(None)).collect(),
            node_state: (0..lanes)
                .map(|_| Mutex::new(NodeState::new(lanes, now)))
                .collect(),
            seats: per_lane
                .into_iter()
                .map(|s| Mutex::new(Some(s)))
                .collect(),
            ready_masks: masks,
            handles: Mutex::new((0..lanes).map(|_| None).collect()),
            health: (0..lanes)
                .map(|_| Arc::new(ProxyHealth::default()))
                .collect(),
            shed_enabled: AtomicBool::new(self.shed),
            faults: self
                .fault_plan
                .map(|plan| RtFaultState::new(plan, nodes, shards)),
            supervision: self.supervision,
            started: now,
            locked_plane: self.locked,
            obs_hub,
            obs,
        });

        let endpoints = cmd_txs
            .into_iter()
            .enumerate()
            .map(|(i, (tx, _node, qbit))| Endpoint {
                me: Arc::clone(&shared.procs[i]),
                shared: Arc::clone(&shared),
                cmd: tx,
                qbit,
                next_alloc: 0,
                obs_tick: 0,
            })
            .collect();

        {
            let mut handles = shared.handles.lock().unwrap_or_else(|e| e.into_inner());
            for (lane, slot) in handles.iter_mut().enumerate() {
                let sh = Arc::clone(&shared);
                let name = if shards == 1 {
                    format!("mproxy-{lane}")
                } else {
                    format!("mproxy-{}s{}", lane / shards, lane % shards)
                };
                *slot = Some(
                    std::thread::Builder::new()
                        .name(name)
                        .spawn(move || run_proxy(lane, sh))
                        .expect("spawn proxy thread"),
                );
            }
        }

        let watchdog = {
            let sh = Arc::clone(&shared);
            let interval = self.watchdog_interval;
            std::thread::Builder::new()
                .name("mproxy-watchdog".into())
                .spawn(move || watchdog_main(&sh, interval))
                .expect("spawn watchdog thread")
        };

        let supervisor = shared.supervision.map(|_| {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mproxy-supervisor".into())
                .spawn(move || crate::supervisor::supervisor_main(&sh))
                .expect("spawn supervisor thread")
        });

        (
            RtCluster {
                shared,
                watchdog: Some(watchdog),
                supervisor,
            },
            endpoints,
        )
    }
}

/// A running cluster of proxy threads.
pub struct RtCluster {
    shared: Arc<Shared>,
    watchdog: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl RtCluster {
    /// The shard lanes belonging to `node`.
    fn lanes_of(&self, node: usize) -> std::ops::Range<usize> {
        let s = self.shared.shards;
        node * s..(node + 1) * s
    }

    /// Disables allow-all: only explicit grants pass the protection check.
    pub fn restrict(&self) {
        self.shared.allow_all.store(false, Ordering::Relaxed);
    }

    /// Grants `src` access to address space `dst`.
    pub fn grant(&self, src: u32, dst: u32) {
        self.shared
            .perms
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert((src, dst));
    }

    /// Revokes a grant.
    pub fn revoke(&self, src: u32, dst: u32) {
        self.shared
            .perms
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&(src, dst));
    }

    /// Total commands + packets serviced by node `node`'s proxy lanes
    /// (cumulative across respawns, summed over shards).
    #[must_use]
    pub fn ops_serviced(&self, node: usize) -> u64 {
        self.lanes_of(node)
            .map(|l| self.shared.ops_serviced[l].load(Ordering::Relaxed))
            .sum()
    }

    /// The watchdog's last utilisation sample for node `node`: fraction
    /// of the sampling period spent servicing work rather than
    /// idle-polling, in `[0, 1]`. Zero until the first sample lands.
    /// With multiple shards this is the **max** over the node's lanes —
    /// the §5.4 stability bound binds per proxy, and an average would
    /// hide one saturated shard behind idle siblings.
    #[must_use]
    pub fn utilization(&self, node: usize) -> f64 {
        self.lanes_of(node)
            .map(|l| f64::from_bits(self.shared.health[l].util_bits.load(Ordering::Relaxed)))
            .fold(0.0, f64::max)
    }

    /// One shard lane's last utilisation sample (see
    /// [`RtCluster::utilization`]).
    #[must_use]
    pub fn shard_utilization(&self, node: usize, shard: usize) -> f64 {
        let lane = self.shared.lane_of(node, shard);
        f64::from_bits(self.shared.health[lane].util_bits.load(Ordering::Relaxed))
    }

    /// True while **any** of node `node`'s proxy lanes sits above the
    /// paper's stable utilisation bound (§5.4: past 50% the M/M/1
    /// queueing delay grows without bound). Clears once utilisation
    /// falls back under [`RECOVERY_UTILIZATION`].
    #[must_use]
    pub fn saturated(&self, node: usize) -> bool {
        self.lanes_of(node)
            .any(|l| self.shared.health[l].saturated.load(Ordering::Acquire))
    }

    /// Number of times node `node`'s proxy lanes have crossed into
    /// saturation (summed over shards).
    #[must_use]
    pub fn saturation_events(&self, node: usize) -> u64 {
        self.lanes_of(node)
            .map(|l| {
                self.shared.health[l]
                    .saturation_events
                    .load(Ordering::Relaxed)
            })
            .sum()
    }

    /// Request packets rejected on node `node` by overload shedding
    /// ([`RtClusterBuilder::enable_shedding`]).
    #[must_use]
    pub fn shed_count(&self, node: usize) -> u64 {
        self.lanes_of(node)
            .map(|l| self.shared.health[l].shed.load(Ordering::Relaxed))
            .sum()
    }

    /// Nodes with at least one proxy lane dead *right now* (panicked and
    /// not yet respawned; a live query).
    #[must_use]
    pub fn panicked_nodes(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .shared
            .panicked
            .iter()
            .enumerate()
            .filter(|(_, p)| p.load(Ordering::Acquire))
            .map(|(l, _)| self.shared.lane_node(l))
            .collect();
        out.dedup();
        out
    }

    /// Nodes with at least one lane condemned as permanently dead
    /// (crash-looped past the restart budget, or died without
    /// supervision).
    #[must_use]
    pub fn condemned_nodes(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .shared
            .condemned
            .iter()
            .enumerate()
            .filter(|(_, c)| c.load(Ordering::Acquire))
            .map(|(l, _)| self.shared.lane_node(l))
            .collect();
        out.dedup();
        out
    }

    /// Node `node`'s current proxy incarnation (0 until the first
    /// respawn; the max over its shard lanes).
    #[must_use]
    pub fn epoch(&self, node: usize) -> u64 {
        self.lanes_of(node)
            .map(|l| self.shared.epochs[l].load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Times node `node`'s proxy lanes have died by panic (summed over
    /// shards).
    #[must_use]
    pub fn deaths(&self, node: usize) -> u64 {
        self.lanes_of(node)
            .map(|l| self.shared.deaths[l].load(Ordering::Relaxed))
            .sum()
    }

    /// Total proxy respawns performed by supervision.
    #[must_use]
    pub fn restarts_total(&self) -> u64 {
        self.shared.restarts_total.load(Ordering::Relaxed)
    }

    /// The last panic payload recorded for node `node`'s proxy lanes,
    /// when it was a string (first lane with one recorded).
    #[must_use]
    pub fn panic_reason(&self, node: usize) -> Option<String> {
        self.lanes_of(node).find_map(|l| self.shared.panic_reason(l))
    }

    /// Shard lanes node `node` is currently serving commands on.
    #[must_use]
    pub fn active_shards(&self, node: usize) -> usize {
        self.shared.tables[node].active() as usize
    }

    /// The shard slot currently assigned to serve `asid`'s command
    /// queue on its home node.
    #[must_use]
    pub fn shard_of(&self, asid: u32) -> usize {
        let node = self.shared.procs[asid as usize].node;
        self.shared.tables[node].slot(asid) as usize
    }

    /// Completed shard migrations, cluster-wide.
    #[must_use]
    pub fn migrations_total(&self) -> u64 {
        self.shared.migrations_total.load(Ordering::Relaxed)
    }

    /// Requests a handoff of `asid`'s command queue to `shard` on its
    /// home node (quiesce → drain → retarget, executed by the owning
    /// lane). Returns `false` if the order was rejected up front — the
    /// asid already sits on `shard`, the shard is out of range, or
    /// either lane involved is condemned. A `true` return means the
    /// order was mailed; completion is observable through
    /// [`RtCluster::migrations_total`] / [`RtCluster::shard_of`].
    pub fn migrate_asid(&self, asid: u32, shard: usize) -> bool {
        issue_migration(&self.shared, asid, shard)
    }

    /// Injection counters of the installed fault plan, if any.
    #[must_use]
    pub fn fault_counts(&self) -> Option<RtFaultCounts> {
        self.shared.faults.as_ref().map(RtFaultState::counts)
    }

    /// Arms or disarms telemetry recording at runtime (histograms and
    /// flight recorders; counters are always on).
    pub fn set_telemetry(&self, on: bool) {
        self.shared.obs_hub.set_recording(on);
    }

    /// Whether telemetry recording is armed.
    #[must_use]
    pub fn telemetry(&self) -> bool {
        self.shared.obs_hub.recording()
    }

    /// Point-in-time telemetry snapshot of every node scope — counters
    /// and histograms, taken without stopping the proxies. Cross-node
    /// counter invariants (e.g. `msgs_out == ops_applied + sheds`) only
    /// hold on a quiesced cluster.
    #[must_use]
    pub fn obs_snapshot(&self, label: &str) -> Snapshot {
        self.shared.obs_hub.snapshot(label)
    }

    /// Like [`RtCluster::obs_snapshot`], but with each node's shard
    /// scopes (`node{n}s{s}`) merged into one `node{n}` scope —
    /// counters summed, histograms merged bucket-wise. At one shard per
    /// node this is identical to `obs_snapshot`.
    #[must_use]
    pub fn obs_snapshot_by_node(&self, label: &str) -> Snapshot {
        self.shared.obs_hub.snapshot(label).merged_by(|name| {
            match name.rfind('s') {
                Some(i) if i > 0 && name.starts_with("node") => name[..i].to_string(),
                _ => name.to_string(),
            }
        })
    }

    /// A handle on the telemetry hub that outlives the cluster — take it
    /// before [`RtCluster::shutdown`] to snapshot or dump traces *after*
    /// shutdown, when every proxy has exited and the cross-node counter
    /// invariants are exact.
    #[must_use]
    pub fn obs_handle(&self) -> Arc<ObsHub> {
        Arc::clone(&self.shared.obs_hub)
    }

    /// Dump every node's flight-recorder ring (oldest event first).
    #[must_use]
    pub fn trace_dump(&self) -> Vec<(String, Vec<TraceEvent>)> {
        self.shared.obs_hub.trace_dump()
    }

    /// Surviving flight-recorder events for one node (all of its shard
    /// lanes, merged in timestamp order).
    #[must_use]
    pub fn flight_events(&self, node: usize) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self
            .lanes_of(node)
            .flat_map(|l| self.shared.obs[l].events())
            .collect();
        out.sort_by_key(|e| e.t_ns);
        out
    }

    /// Render every node's flight recorder as a Chrome `trace_event`
    /// (Perfetto) JSON document.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        mproxy_obs::chrome::chrome_trace(&self.trace_dump())
    }

    /// Stops the proxy threads, waits for them to exit, and reports what
    /// it saw: proxies dead by panic, proxies wedged past the default
    /// 10 s deadline (detached, not joined), and the respawn total.
    /// Completes even with endpoint operations still in flight: surviving
    /// proxies drain their queues and retention buffers before exiting.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.stop_and_join(DEFAULT_SHUTDOWN_DEADLINE)
    }

    /// [`RtCluster::shutdown`] with an explicit deadline for the
    /// slowest proxy.
    pub fn shutdown_with_deadline(mut self, deadline: Duration) -> ShutdownReport {
        self.stop_and_join(deadline)
    }

    fn stop_and_join(&mut self, deadline: Duration) -> ShutdownReport {
        self.shared.stop.store(true, Ordering::Relaxed);
        for p in &self.shared.parkers {
            p.wake();
        }
        // The supervisor first: it observes stop promptly, condemns any
        // node that is dead right now (so surviving proxies stop waiting
        // for its acknowledgements), and exits.
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        let handles: Vec<Option<JoinHandle<()>>> = {
            let mut guard = self.shared.handles.lock().unwrap_or_else(|e| e.into_inner());
            guard.iter_mut().map(Option::take).collect()
        };
        let limit = Instant::now() + deadline;
        let mut report = ShutdownReport {
            restarts: self.shared.restarts_total.load(Ordering::Relaxed),
            ..ShutdownReport::default()
        };
        for (lane, handle) in handles.into_iter().enumerate() {
            let Some(handle) = handle else { continue };
            loop {
                if handle.is_finished() {
                    let _ = handle.join();
                    break;
                }
                if Instant::now() >= limit {
                    // Wedged (e.g. stuck in foreign code): report it,
                    // condemn it so nobody waits on it, detach the
                    // handle rather than hanging the shutdown.
                    let node = self.shared.lane_node(lane);
                    if report.wedged_nodes.last() != Some(&node) {
                        report.wedged_nodes.push(node);
                    }
                    condemn(&self.shared, lane);
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        for (lane, p) in self.shared.panicked.iter().enumerate() {
            if p.load(Ordering::Acquire) {
                report.panicked_nodes.push(ProxyPanic {
                    node: self.shared.lane_node(lane),
                    shard: lane % self.shared.shards,
                    reason: self.shared.panic_reason(lane),
                });
            }
        }
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
        report
    }
}

impl Drop for RtCluster {
    fn drop(&mut self) {
        let _ = self.stop_and_join(DEFAULT_SHUTDOWN_DEADLINE);
    }
}

/// A user process's handle: submits commands, reads/writes its own
/// segment, observes flags and queues. Not `Clone` — a command queue has
/// exactly one producer.
pub struct Endpoint {
    me: Arc<ProcShared>,
    shared: Arc<Shared>,
    cmd: spsc::Producer,
    qbit: u32,
    next_alloc: u64,
    /// Decimation tick for the sampled `Enqueue` trace (see
    /// [`OBS_SAMPLE_MASK`]).
    obs_tick: u64,
}

impl Endpoint {
    /// This process's address-space id.
    #[must_use]
    pub fn asid(&self) -> u32 {
        self.me.asid
    }

    /// The node this process runs on.
    #[must_use]
    pub fn node(&self) -> usize {
        self.me.node
    }

    /// Bump-allocates `n` bytes in this process's segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment is exhausted.
    pub fn alloc(&mut self, n: u64) -> u64 {
        let addr = self.next_alloc.next_multiple_of(64);
        assert!(
            self.me.seg.check(addr, n as usize),
            "segment exhausted: need {n} at {addr} of {}",
            self.me.seg.size()
        );
        self.next_alloc = addr + n;
        addr
    }

    /// Local segment accessor.
    #[must_use]
    pub fn seg(&self) -> &Segment {
        &self.me.seg
    }

    /// Protection faults charged to this process.
    #[must_use]
    pub fn faults(&self) -> u64 {
        self.me.faults.load(Ordering::Relaxed)
    }

    /// Bounded waits that expired (or aborted on a dead proxy) for this
    /// process.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.me.timeouts.load(Ordering::Relaxed)
    }

    /// Current value of one of this process's flags.
    #[must_use]
    pub fn flag(&self, f: FlagId) -> u64 {
        self.me.flags[f.0 as usize].load(Ordering::Acquire)
    }

    /// Waits until flag `f` reaches `target` through the shared adaptive
    /// backoff (spin, then yield so oversubscribed hosts still make
    /// progress).
    pub fn wait_flag(&self, f: FlagId, target: u64) {
        let mut backoff = Backoff::new();
        while self.flag(f) < target {
            backoff.snooze();
        }
    }

    /// Bounded [`Endpoint::wait_flag`]: gives up after `timeout`, and
    /// aborts early if a proxy has been condemned *and* the flag has
    /// stopped advancing — the wait could otherwise never complete. The
    /// progress grace matters on a sharded node: one condemned shard
    /// lane must not abort waits that a live sibling lane is still
    /// serving. A proxy that merely died *under supervision* does not
    /// abort the wait either way: its respawn may still complete the
    /// operation within the timeout.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] when the deadline passes,
    /// [`RtError::ProxyDown`] when a proxy is permanently gone. Both bump
    /// [`Endpoint::timeouts`].
    pub fn wait_flag_timeout(
        &self,
        f: FlagId,
        target: u64,
        timeout: Duration,
    ) -> Result<(), RtError> {
        /// How long a wait may sit without flag progress while some lane
        /// is condemned before concluding it depends on the dead lane.
        const CONDEMNED_GRACE: Duration = Duration::from_millis(250);
        let deadline = Instant::now() + timeout;
        let mut backoff = Backoff::new();
        let mut grace: Option<(Instant, u64)> = None;
        loop {
            let observed = self.flag(f);
            if observed >= target {
                return Ok(());
            }
            if let Some(lane) = self.shared.condemned_lane() {
                let now = Instant::now();
                let stalled = match &mut grace {
                    None => {
                        grace = Some((now, observed));
                        false
                    }
                    Some((since, seen)) if observed > *seen => {
                        (*since, *seen) = (now, observed);
                        false
                    }
                    Some((since, _)) => now.duration_since(*since) >= CONDEMNED_GRACE,
                };
                if stalled {
                    self.me.timeouts.fetch_add(1, Ordering::Relaxed);
                    return Err(RtError::ProxyDown {
                        node: self.shared.lane_node(lane),
                        reason: self.shared.panic_reason(lane),
                    });
                }
            }
            if Instant::now() >= deadline {
                self.me.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(RtError::Timeout {
                    flag: f.0,
                    target,
                    observed,
                });
            }
            backoff.snooze();
        }
    }

    /// Non-blocking dequeue from one of this process's own remote queues.
    /// The payload is a shared buffer: it was snapshotted once at the
    /// sender's proxy and travelled the wire without further copies.
    #[must_use]
    pub fn rq_try_recv(&self, rq: RqId) -> Option<Bytes> {
        self.me.queues[rq.0 as usize].pop()
    }

    fn submit(&mut self, mut e: Entry) {
        // Route to the lane currently serving this asid's queue. The
        // table read can race a migration — a bit flipped on the old
        // lane's mask is forwarded by that lane's stray-bit scan, so a
        // stale read costs one extra hop, never a lost wakeup.
        let lane = self.shared.lane_of_asid(self.me.asid);
        let obs = &self.shared.obs[lane];
        obs.inc(Ctr::OpsSubmitted);
        self.obs_tick = self.obs_tick.wrapping_add(1);
        if obs.recording() && self.obs_tick & OBS_SAMPLE_MASK == 0 {
            // Stamp for the command-queue-wait and lsync-RTT histograms.
            // The clock read itself is the dominant recording-on cost on
            // this path (kvm-clock reads are slow inside VMs), so the
            // stamp is taken on sampled submissions only; downstream
            // recorders key off `t_ns != 0` and inherit the decimation.
            e.t_ns = self.shared.rel_ns(Instant::now());
            obs.trace_at(e.t_ns, EventKind::Enqueue, self.me.asid as u16, e.op);
        }
        if !self.cmd.try_send(e) {
            // Queue full: the bounded ring is backpressuring us. Count
            // the stall, then fall back to the blocking send.
            obs.inc(Ctr::CreditStalls);
            obs.trace_at(
                self.shared.rel_ns(Instant::now()),
                EventKind::CreditStall,
                self.me.asid as u16,
                e.op,
            );
            self.cmd.send(e);
        }
        // §4.1: flip the shared ready bit so the proxy's idle scan probes
        // one word instead of every queue head — then wake the proxy in
        // case it parked.
        self.shared.ready_masks[lane].fetch_or(1 << self.qbit, Ordering::Release);
        self.shared.parkers[lane].wake();
    }

    fn pack_sync(lsync: Option<FlagId>, rsync: Option<FlagId>) -> u64 {
        let l = lsync.map_or(0, |f| u64::from(f.0) + 1);
        let r = rsync.map_or(0, |f| u64::from(f.0) + 1);
        (l << 32) | r
    }

    /// `PUT`: copy `nbytes` from local `laddr` to `raddr` in `dst`'s
    /// space. `lsync` increments on remote acknowledgement; `rsync` (a
    /// flag of `dst`) increments on delivery.
    pub fn put(
        &mut self,
        laddr: u64,
        dst: u32,
        raddr: u64,
        nbytes: u32,
        lsync: Option<FlagId>,
        rsync: Option<FlagId>,
    ) {
        self.submit(Entry {
            op: OP_PUT,
            args: [
                laddr,
                raddr,
                (u64::from(dst) << 32) | u64::from(nbytes),
                Self::pack_sync(lsync, rsync),
            ],
            t_ns: 0,
        });
    }

    /// `GET`: copy `nbytes` from `raddr` in `dst`'s space to local
    /// `laddr`; `lsync` increments when the data has landed.
    pub fn get(&mut self, laddr: u64, dst: u32, raddr: u64, nbytes: u32, lsync: Option<FlagId>) {
        self.submit(Entry {
            op: OP_GET,
            args: [
                laddr,
                raddr,
                (u64::from(dst) << 32) | u64::from(nbytes),
                Self::pack_sync(lsync, None),
            ],
            t_ns: 0,
        });
    }

    /// Blocking GET convenience: issues the get on flag 63 and waits
    /// (adaptive backoff) for completion.
    pub fn get_blocking(&mut self, laddr: u64, dst: u32, raddr: u64, nbytes: u32) {
        let f = FlagId((NUM_FLAGS - 1) as u32);
        let target = self.flag(f) + 1;
        self.get(laddr, dst, raddr, nbytes, Some(f));
        self.wait_flag(f, target);
    }

    /// Bounded [`Endpoint::get_blocking`].
    ///
    /// # Errors
    ///
    /// See [`Endpoint::wait_flag_timeout`]; on error the fetched data must
    /// be treated as absent (it may still land later).
    pub fn get_blocking_timeout(
        &mut self,
        laddr: u64,
        dst: u32,
        raddr: u64,
        nbytes: u32,
        timeout: Duration,
    ) -> Result<(), RtError> {
        let f = FlagId((NUM_FLAGS - 1) as u32);
        let target = self.flag(f) + 1;
        self.get(laddr, dst, raddr, nbytes, Some(f));
        self.wait_flag_timeout(f, target, timeout)
    }

    /// `ENQ`: append `nbytes` from local `laddr` to queue `rq` of `dst`.
    pub fn enq(
        &mut self,
        laddr: u64,
        dst: u32,
        rq: RqId,
        nbytes: u32,
        lsync: Option<FlagId>,
        rsync: Option<FlagId>,
    ) {
        self.submit(Entry {
            op: OP_ENQ,
            args: [
                laddr,
                u64::from(rq.0),
                (u64::from(dst) << 32) | u64::from(nbytes),
                Self::pack_sync(lsync, rsync),
            ],
            t_ns: 0,
        });
    }
}

fn unpack_sync(v: u64) -> (Option<u32>, Option<u32>) {
    let l = (v >> 32) as u32;
    let r = v as u32;
    ((l != 0).then(|| l - 1), (r != 0).then(|| r - 1))
}

/// Pushes one wire frame towards `dst`, stashing it in the caller's
/// pending queue if the ring is full or earlier frames are already
/// stashed (FIFO per destination).
fn push_wire(shared: &Shared, pending: &mut VecDeque<WireMsg>, dst: usize, msg: WireMsg) {
    if !pending.is_empty() {
        pending.push_back(msg);
        return;
    }
    match shared.wires[dst].try_push(msg) {
        Ok(()) => shared.parkers[dst].wake(),
        Err(back) => pending.push_back(back),
    }
}

/// Retries stashed outbound frames and owed local deliveries; true if
/// any progress was made. Pending output towards a condemned node is
/// discarded — nobody will ever drain that ring.
fn flush_pending(shared: &Shared, st: &mut NodeState) -> bool {
    let mut progressed = false;
    for (dst, q) in st.pending_wire.iter_mut().enumerate() {
        if q.is_empty() {
            continue;
        }
        if shared.condemned[dst].load(Ordering::Relaxed) {
            q.clear();
            continue;
        }
        let mut pushed = false;
        while let Some(m) = q.pop_front() {
            match shared.wires[dst].try_push(m) {
                Ok(()) => pushed = true,
                Err(back) => {
                    q.push_front(back);
                    break;
                }
            }
        }
        if pushed {
            shared.parkers[dst].wake();
            progressed = true;
        }
    }
    while let Some(p) = st.pending_rq.pop_front() {
        let PendingEnq {
            dst,
            rq,
            data,
            rsync,
        } = p;
        match shared.procs[dst as usize].queues[rq as usize].try_push(data) {
            Ok(()) => {
                if let Some(f) = rsync {
                    shared.set_flag(dst, f);
                }
                progressed = true;
            }
            Err(data) => {
                st.pending_rq.push_front(PendingEnq {
                    dst,
                    rq,
                    data,
                    rsync,
                });
                break;
            }
        }
    }
    progressed
}

/// Sequences, retains, and transmits one data frame from `node` towards
/// `dst_node`, applying the fault injector's verdict (drop / duplicate /
/// corrupt) to the transmission — never to the retained copy, which is
/// what retransmission re-sends.
#[allow(clippy::too_many_arguments)]
fn send_data(
    shared: &Shared,
    st: &mut NodeState,
    node: usize,
    now: Instant,
    dst_node: usize,
    body: Payload,
    lsync: Option<(u32, u32)>,
    submit_ns: u64,
) {
    if shared.condemned[dst_node].load(Ordering::Relaxed) {
        // The destination is permanently gone: the op is lost, its lsync
        // never fires (clients observe that through bounded waits), and
        // a GET's CCB is cancelled so the token can't dangle.
        if let Payload::GetReq { token, .. } = body {
            st.ccbs.remove(&token);
        }
        return;
    }
    let obs = &shared.obs[node];
    obs.inc(Ctr::MsgsOut);
    obs.add(Ctr::BytesOut, body.wire_bytes());
    let tx = &mut st.tx[dst_node];
    let seq = tx.next_seq;
    tx.next_seq += 1;
    if tx.retained.is_empty() {
        tx.last_progress = now;
    }
    tx.retained.push_back(Retained {
        seq,
        body: body.clone(),
        lsync,
        // The loop's `now` re-expressed on the shared epoch: pure
        // arithmetic, no extra clock read on the proxy's hot path.
        sent_ns: shared.rel_ns(now),
        submit_ns,
    });
    if shared.sharded() {
        // Route pinning: another frame for this destination asid is now
        // in flight on this stream (released by [`process_ack`]).
        if let Some(a) = route_asid(&body) {
            if let Some(e) = st.routes.get_mut(&a) {
                e.1 += 1;
            }
        }
    }
    let mut corrupt = false;
    let mut copies = 1;
    if let Some(faults) = &shared.faults {
        if faults.packet_faults_possible() {
            let fate = faults.judge(node);
            if fate.drop || fate.corrupt || fate.duplicate {
                obs.inc(Ctr::FaultsInjected);
                let kind = if fate.drop {
                    EventKind::FaultDrop
                } else if fate.corrupt {
                    EventKind::FaultCorrupt
                } else {
                    EventKind::FaultDup
                };
                obs.trace_at(shared.rel_ns(now), kind, dst_node as u16, seq as u32);
            }
            if fate.drop {
                return; // retention + RTO recover it
            }
            corrupt = fate.corrupt;
            if fate.duplicate {
                copies = 2;
            }
        }
    }
    st.obs_tick = st.obs_tick.wrapping_add(1);
    if st.obs_tick & OBS_SAMPLE_MASK == 0 {
        obs.trace_at(
            shared.rel_ns(now),
            EventKind::Send,
            dst_node as u16,
            seq as u32,
        );
    }
    for _ in 0..copies {
        push_wire(
            shared,
            &mut st.pending_wire[dst_node],
            dst_node,
            WireMsg::Data {
                from: node,
                seq,
                corrupt,
                body: body.clone(),
            },
        );
    }
}

/// Consumes one cumulative acknowledgement from `from`: advances the
/// watermark, releases retention, fires `lsync` flags for accepted
/// frames, and cancels the CCBs of rejected GETs.
fn process_ack(
    shared: &Shared,
    st: &mut NodeState,
    node: usize,
    now: Instant,
    from: usize,
    upto: u64,
    rejected: &[u64],
) {
    let NodeState {
        tx,
        ccbs,
        obs_tick,
        routes,
        ..
    } = st;
    let tx = &mut tx[from];
    if upto <= tx.acked {
        return;
    }
    tx.acked = upto;
    tx.last_progress = now;
    let obs = &shared.obs[node];
    let now_ns = shared.rel_ns(now);
    while tx.retained.front().is_some_and(|r| r.seq <= upto) {
        let r = tx.retained.pop_front().expect("front checked above");
        *obs_tick = obs_tick.wrapping_add(1);
        let sampled = *obs_tick & OBS_SAMPLE_MASK == 0;
        // Wire RTT: first transmission → the releasing cumulative ack.
        if sampled {
            obs.record(HistId::WireRttNs, now_ns.saturating_sub(r.sent_ns));
        }
        if shared.sharded() {
            // Release the route pin taken in [`send_data`] — rejected
            // frames release too; the op is gone either way.
            if let Some(a) = route_asid(&r.body) {
                if let Some(e) = routes.get_mut(&a) {
                    if e.0 == from && e.1 > 0 {
                        e.1 -= 1;
                    }
                }
            }
        }
        if rejected.contains(&r.seq) {
            // Shed at the receiver: the op never happened. No lsync; a
            // rejected GET's CCB is cancelled.
            if let Payload::GetReq { token, .. } = r.body {
                ccbs.remove(&token);
            }
        } else if let Some((proc, flag)) = r.lsync {
            // Lsync round trip: user submit stamp → the ack that fires
            // the flag (0 means the stamp predates recording — skip).
            if r.submit_ns != 0 {
                obs.record(HistId::LsyncRttNs, now_ns.saturating_sub(r.submit_ns));
            }
            shared.set_flag(proc, flag);
        }
    }
}

/// Applies one in-order, uncorrupted data frame from node `from`.
fn apply_data(
    shared: &Shared,
    st: &mut NodeState,
    node: usize,
    now: Instant,
    from: usize,
    body: Payload,
) {
    match body {
        Payload::Put {
            dst,
            raddr,
            data,
            rsync,
        } => {
            let dp = &shared.procs[dst as usize];
            if dp.seg.check(raddr, data.len()) {
                dp.seg.write(raddr, &data);
                if let Some(f) = rsync {
                    shared.set_flag(dst, f);
                }
            }
        }
        Payload::GetReq {
            src_asid,
            dst,
            raddr,
            nbytes,
            token,
        } => {
            let dp = &shared.procs[dst as usize];
            let data = if dp.seg.check(raddr, nbytes as usize) {
                Some(dp.seg.read(raddr, nbytes as usize))
            } else {
                shared.fault(src_asid);
                None
            };
            send_data(
                shared,
                st,
                node,
                now,
                from,
                Payload::GetReply { token, data },
                None,
                0,
            );
        }
        Payload::GetReply { token, data } => {
            if let Some(ccb) = st.ccbs.remove(&token) {
                if let Some(data) = data {
                    let take = (ccb.nbytes as usize).min(data.len());
                    shared.procs[ccb.proc as usize]
                        .seg
                        .write(ccb.laddr, &data[..take]);
                }
                if let Some(f) = ccb.lsync {
                    shared.set_flag(ccb.proc, f);
                }
            }
        }
        Payload::Enq {
            dst,
            rq,
            data,
            rsync,
        } => {
            // FIFO per queue: anything already owed goes first.
            if !st.pending_rq.is_empty() {
                st.pending_rq.push_back(PendingEnq {
                    dst,
                    rq,
                    data,
                    rsync,
                });
                return;
            }
            match shared.procs[dst as usize].queues[rq as usize].try_push(data) {
                Ok(()) => {
                    if let Some(f) = rsync {
                        shared.set_flag(dst, f);
                    }
                }
                Err(data) => st.pending_rq.push_back(PendingEnq {
                    dst,
                    rq,
                    data,
                    rsync,
                }),
            }
        }
    }
}

/// Handles one inbound wire frame on node `node`.
fn handle_packet(shared: &Shared, st: &mut NodeState, node: usize, now: Instant, msg: WireMsg) {
    let obs = &shared.obs[node];
    match msg {
        WireMsg::Data {
            from,
            seq,
            corrupt,
            body,
        } => {
            obs.inc(Ctr::MsgsIn);
            obs.add(Ctr::BytesIn, body.wire_bytes());
            let rx = &mut st.rx[from];
            if seq <= rx.delivered {
                // Duplicate (injected, or a retransmission racing the
                // ack): drop it, re-ack so the sender converges.
                obs.inc(Ctr::DedupDrops);
                obs.trace_at(
                    shared.rel_ns(now),
                    EventKind::DedupDrop,
                    from as u16,
                    seq as u32,
                );
                rx.ack_pending = true;
                return;
            }
            if corrupt || seq != rx.delivered + 1 {
                // Damaged or out of order (a gap means an earlier frame
                // was dropped): don't deliver, ask for retransmission.
                obs.inc(Ctr::DamagedDrops);
                rx.nack_pending = true;
                return;
            }
            rx.delivered = seq;
            rx.ack_pending = true;
            obs.inc(Ctr::OpsApplied);
            apply_data(shared, st, node, now, from, body);
        }
        WireMsg::AckUpto {
            from,
            upto,
            rejected,
        } => {
            obs.inc(Ctr::AcksIn);
            // Acks arrive roughly per service batch under load, so this
            // trace is decimated like the other hot-path events. The
            // resync span in the Chrome exporter tolerates a missed ack:
            // it falls back to the (never-sampled) Hello event.
            st.obs_tick = st.obs_tick.wrapping_add(1);
            if st.obs_tick & OBS_SAMPLE_MASK == 0 {
                obs.trace_at(
                    shared.rel_ns(now),
                    EventKind::AckIn,
                    from as u16,
                    upto as u32,
                );
            }
            process_ack(shared, st, node, now, from, upto, &rejected);
        }
        WireMsg::Nack { from, since } => {
            obs.inc(Ctr::NacksIn);
            obs.trace_at(
                shared.rel_ns(now),
                EventKind::NackIn,
                from as u16,
                since as u32,
            );
            st.tx[from].nack_hint = true;
        }
        WireMsg::Hello { from, epoch } => {
            // A peer's proxy respawned. Re-ack our watermark so its
            // retention drains, and retransmit ours immediately — its
            // wire ring may hold our frames from before the crash, but
            // timers would cover any gap slowly; the hello bounds the
            // resync to one round trip.
            obs.trace_at(
                shared.rel_ns(now),
                EventKind::Hello,
                from as u16,
                epoch as u32,
            );
            st.rx[from].ack_pending = true;
            st.tx[from].nack_hint = true;
        }
    }
}

/// Retransmission pass: for every destination with unacknowledged
/// retention, re-send from the buffer head if a NACK asked for it or the
/// RTO expired. Frames go straight to the destination ring (never the
/// pending stash — retransmits are redundant by design; the stash must
/// stay FIFO-clean for new traffic).
fn retransmit(shared: &Shared, st: &mut NodeState, node: usize, now: Instant) {
    let NodeState {
        tx, pending_wire, ..
    } = st;
    for (dst, tx) in tx.iter_mut().enumerate() {
        if tx.retained.is_empty() {
            tx.nack_hint = false;
            continue;
        }
        if !pending_wire[dst].is_empty() || shared.condemned[dst].load(Ordering::Relaxed) {
            continue;
        }
        if !tx.nack_hint && now.duration_since(tx.last_progress) < RTO {
            continue;
        }
        tx.nack_hint = false;
        tx.last_progress = now;
        let obs = &shared.obs[node];
        let mut pushed = false;
        let mut resent = 0u32;
        'frames: for r in tx.retained.iter().take(RESEND_BURST) {
            let mut corrupt = false;
            let mut copies = 1;
            if let Some(faults) = &shared.faults {
                if faults.packet_faults_possible() {
                    let fate = faults.judge(node);
                    if fate.drop || fate.corrupt || fate.duplicate {
                        obs.inc(Ctr::FaultsInjected);
                    }
                    if fate.drop {
                        continue; // the *retransmit* was dropped; next pass retries
                    }
                    corrupt = fate.corrupt;
                    if fate.duplicate {
                        copies = 2;
                    }
                }
            }
            for _ in 0..copies {
                let frame = WireMsg::Data {
                    from: node,
                    seq: r.seq,
                    corrupt,
                    body: r.body.clone(),
                };
                if shared.wires[dst].try_push(frame).is_err() {
                    break 'frames;
                }
                pushed = true;
            }
            resent += 1;
        }
        if resent > 0 {
            obs.add(Ctr::Retransmits, u64::from(resent));
            obs.trace_at(shared.rel_ns(now), EventKind::Retransmit, dst as u16, resent);
        }
        if pushed {
            shared.parkers[dst].wake();
        }
    }
}

/// Emits the acknowledgement state accumulated this pass: one cumulative
/// [`WireMsg::AckUpto`] per source that delivered (or was shed) anything,
/// one [`WireMsg::Nack`] per source that sent a gap or corrupt frame.
fn flush_acks(shared: &Shared, st: &mut NodeState, node: usize) {
    let NodeState {
        rx, pending_wire, ..
    } = st;
    let obs = &shared.obs[node];
    for (src, rx) in rx.iter_mut().enumerate() {
        if rx.ack_pending || !rx.rejected_new.is_empty() {
            rx.ack_pending = false;
            let rejected = std::mem::take(&mut rx.rejected_new);
            obs.inc(Ctr::AcksOut);
            push_wire(
                shared,
                &mut pending_wire[src],
                src,
                WireMsg::AckUpto {
                    from: node,
                    upto: rx.delivered,
                    rejected,
                },
            );
        }
        if rx.nack_pending {
            rx.nack_pending = false;
            obs.inc(Ctr::NacksOut);
            push_wire(
                shared,
                &mut pending_wire[src],
                src,
                WireMsg::Nack {
                    from: node,
                    since: rx.delivered,
                },
            );
        }
    }
}

/// The destination asid a request payload is routed by, if any.
/// Replies are not routed — they return on the requester's stream.
fn route_asid(body: &Payload) -> Option<u32> {
    match body {
        Payload::Put { dst, .. } | Payload::Enq { dst, .. } | Payload::GetReq { dst, .. } => {
            Some(*dst)
        }
        Payload::GetReply { .. } => None,
    }
}

/// Picks the destination lane for a request towards `dst`. Unsharded,
/// that is simply the destination's node. Sharded, it is the lane the
/// destination node's shard table names — *pinned* while this sender
/// still has frames for `dst` in flight on a previous lane, so one
/// sender's operations on one asid stay on one sequenced stream across
/// a migration (adopting the new lane mid-stream would let the two
/// streams race and reorder). The pin lifts as soon as `in_flight`
/// drains to zero ([`process_ack`]).
fn route_request(shared: &Shared, st: &mut NodeState, dst: u32) -> usize {
    let node = shared.procs[dst as usize].node;
    if !shared.sharded() {
        return node;
    }
    let table_lane = shared.lane_of(node, shared.tables[node].slot(dst) as usize);
    let e = st.routes.entry(dst).or_insert((table_lane, 0));
    if e.1 == 0 {
        e.0 = table_lane;
    }
    e.0
}

/// Decodes and executes one user command on node `node` (protection and
/// bounds checks, then a sequenced transmission towards the destination).
fn handle_command(
    shared: &Shared,
    st: &mut NodeState,
    node: usize,
    now: Instant,
    src: u32,
    e: Entry,
) {
    let laddr = e.args[0];
    let dst = (e.args[2] >> 32) as u32;
    let nbytes = e.args[2] as u32;
    let (lsync, rsync) = unpack_sync(e.args[3]);
    if dst as usize >= shared.procs.len() || !shared.allowed(src, dst) {
        shared.fault(src);
        return;
    }
    let src_proc = &shared.procs[src as usize];
    match e.op {
        OP_PUT => {
            if !src_proc.seg.check(laddr, nbytes as usize) {
                shared.fault(src);
                return;
            }
            let data = src_proc.seg.read(laddr, nbytes as usize);
            let raddr = e.args[1];
            let dst_lane = route_request(shared, st, dst);
            send_data(
                shared,
                st,
                node,
                now,
                dst_lane,
                Payload::Put {
                    dst,
                    raddr,
                    data,
                    rsync,
                },
                lsync.map(|l| (src, l)),
                e.t_ns,
            );
        }
        OP_GET => {
            if !src_proc.seg.check(laddr, nbytes as usize) {
                shared.fault(src);
                return;
            }
            let token = st.next_token;
            st.next_token += 1;
            st.ccbs.insert(
                token,
                CcbGet {
                    proc: src,
                    laddr,
                    nbytes,
                    lsync,
                },
            );
            let dst_lane = route_request(shared, st, dst);
            send_data(
                shared,
                st,
                node,
                now,
                dst_lane,
                Payload::GetReq {
                    src_asid: src,
                    dst,
                    raddr: e.args[1],
                    nbytes,
                    token,
                },
                None,
                e.t_ns,
            );
        }
        OP_ENQ => {
            if !src_proc.seg.check(laddr, nbytes as usize) {
                shared.fault(src);
                return;
            }
            let rq = e.args[1] as u32;
            if rq as usize >= NUM_QUEUES {
                shared.fault(src);
                return;
            }
            let data = src_proc.seg.read(laddr, nbytes as usize);
            let dst_lane = route_request(shared, st, dst);
            send_data(
                shared,
                st,
                node,
                now,
                dst_lane,
                Payload::Enq {
                    dst,
                    rq,
                    data,
                    rsync,
                },
                lsync.map(|l| (src, l)),
                e.t_ns,
            );
        }
        _ => shared.fault(src),
    }
}

/// Mails a migration order for `asid` towards shard `shard` of its
/// home node. Returns `false` when rejected up front: the cluster is
/// unsharded, the shard is out of range, the move is a no-op, or either
/// lane involved is condemned. Acceptance means the order reaches the
/// owning lane's mailbox; the lane itself re-validates on intake.
fn issue_migration(shared: &Shared, asid: u32, shard: usize) -> bool {
    if !shared.sharded() || asid as usize >= shared.procs.len() || shard >= shared.shards {
        return false;
    }
    let node = shared.procs[asid as usize].node;
    let src_lane = shared.lane_of(node, shared.tables[node].slot(asid) as usize);
    let dst_lane = shared.lane_of(node, shard);
    if src_lane == dst_lane
        || shared.condemned[src_lane].load(Ordering::Relaxed)
        || shared.condemned[dst_lane].load(Ordering::Relaxed)
    {
        return false;
    }
    shared.migr_outstanding[node].fetch_add(1, Ordering::Relaxed);
    shared.migr_orders[src_lane]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(MigrOrder { asid, dst_lane });
    shared.migr_pending[src_lane].store(true, Ordering::Release);
    shared.parkers[src_lane].wake();
    true
}

/// The ready bits a seat's queues answer to.
fn seat_mask(seat: &[SeatEntry]) -> u64 {
    seat.iter().fold(0, |m, e| m | (1 << e.qbit))
}

/// The ready bits of queues quiesced by an in-progress handoff.
fn quiesce_mask_of(st: &NodeState) -> u64 {
    st.migr.iter().fold(0, |m, g| m | (1 << g.qbit))
}

/// Takes mailed migration orders and begins the quiesce for each
/// accepted one: snapshot the per-destination send high-water marks;
/// the handoff completes once every mark is acknowledged
/// ([`progress_migrations`]). Invalid or stale orders are dropped.
fn intake_migrations(shared: &Shared, st: &mut NodeState, lane: usize, seat: &[SeatEntry]) {
    let orders: Vec<MigrOrder> = {
        let mut g = shared.migr_orders[lane]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        shared.migr_pending[lane].store(false, Ordering::Release);
        std::mem::take(&mut *g)
    };
    let node = shared.lane_node(lane);
    for o in orders {
        let entry = seat.iter().find(|e| e.asid == o.asid);
        let valid = entry.is_some()
            && o.dst_lane != lane
            && o.dst_lane < shared.lanes()
            && shared.lane_node(o.dst_lane) == node
            && !shared.condemned[o.dst_lane].load(Ordering::Relaxed)
            && st.migr.iter().all(|m| m.asid != o.asid);
        if !valid {
            shared.migr_outstanding[node].fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        let qbit = entry.expect("validated above").qbit;
        // Quiesce begins here: the asid's queue is no longer drained by
        // this lane, and everything it already contributed is bounded
        // by these marks.
        let marks = st.tx.iter().map(|t| t.next_seq.saturating_sub(1)).collect();
        st.migr.push(Migration {
            asid: o.asid,
            qbit,
            dst_lane: o.dst_lane,
            marks,
        });
    }
}

/// Advances in-progress handoffs: aborts ones whose destination lane
/// was condemned; completes ones whose drain finished (every mark
/// acknowledged by a live peer) by moving the seat entry into the
/// destination's inbox and flipping the shard-table slot. Returns true
/// if the seat or the migration set changed.
fn progress_migrations(
    shared: &Shared,
    st: &mut NodeState,
    lane: usize,
    seat: &mut Vec<SeatEntry>,
    now: Instant,
) -> bool {
    let node = shared.lane_node(lane);
    let mut changed = false;
    let mut i = 0;
    while i < st.migr.len() {
        if shared.condemned[st.migr[i].dst_lane].load(Ordering::Relaxed) {
            st.migr.swap_remove(i);
            shared.migr_outstanding[node].fetch_sub(1, Ordering::Relaxed);
            changed = true;
            continue;
        }
        let drained = {
            let m = &st.migr[i];
            st.tx
                .iter()
                .zip(&m.marks)
                .enumerate()
                .all(|(d, (tx, &mark))| {
                    tx.acked >= mark || shared.condemned[d].load(Ordering::Relaxed)
                })
        };
        if !drained {
            i += 1;
            continue;
        }
        let m = st.migr.swap_remove(i);
        changed = true;
        let Some(pos) = seat.iter().position(|e| e.asid == m.asid) else {
            // The entry left the seat since intake (stale state from a
            // previous incarnation): nothing to hand over.
            shared.migr_outstanding[node].fetch_sub(1, Ordering::Relaxed);
            continue;
        };
        let entry = seat.swap_remove(pos);
        // Retarget: inbox first, then the table flip (`Release`), so a
        // submitter reading the new slot finds the consumer already in
        // (or on its way into) the destination's hands.
        shared.shard_inbox[m.dst_lane]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(entry);
        shared.tables[node].set_slot(m.asid, (m.dst_lane % shared.shards) as u32);
        shared.inbox_ready[m.dst_lane].store(true, Ordering::Release);
        // Hand the ready bit over armed: commands may be pending.
        shared.ready_masks[m.dst_lane].fetch_or(1 << m.qbit, Ordering::Release);
        shared.parkers[m.dst_lane].wake();
        shared.migr_outstanding[node].fetch_sub(1, Ordering::Relaxed);
        shared.migrations_total.fetch_add(1, Ordering::Relaxed);
        let obs = &shared.obs[lane];
        obs.inc(Ctr::Migrations);
        obs.trace_at(
            shared.rel_ns(now),
            EventKind::MigrateOut,
            m.asid as u16,
            m.dst_lane as u32,
        );
    }
    changed
}

/// One incarnation of a lane's proxy: takes the lane's seat (command
/// consumers) and protocol state, runs the service loop under
/// `catch_unwind`, and on panic returns the seat, records the payload,
/// and raises the panic bit — so a supervisor can respawn a successor
/// that resumes from the exact same state.
pub(crate) fn run_proxy(lane: usize, shared: Arc<Shared>) {
    let Some(mut seat) = shared.seats[lane]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
    else {
        return; // a racing incarnation holds the seat; let it serve
    };
    let mut guard = shared.node_state[lane]
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        proxy_main(lane, &mut seat, &mut guard, &shared);
    }));
    // The guard is dropped here, *outside* any unwinding — the node-state
    // mutex is never poisoned by a proxy death.
    drop(guard);
    *shared.seats[lane].lock().unwrap_or_else(|e| e.into_inner()) = Some(seat);
    if let Err(payload) = result {
        let reason = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        let obs = &shared.obs[lane];
        obs.inc(Ctr::Kills);
        obs.trace(EventKind::Kill, lane as u16, 0);
        if std::env::var_os("MPROXY_OBS_DUMP_ON_PANIC").is_some() {
            eprintln!(
                "mproxy-rt: {} flight recorder at death:\n{}",
                obs.name(),
                obs.events()
                    .iter()
                    .map(|e| format!(
                        "  t={}ns {} a={} b={}",
                        e.t_ns,
                        e.kind.name(),
                        e.a,
                        e.b
                    ))
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
        shared.deaths[lane].fetch_add(1, Ordering::Relaxed);
        *shared.panic_reasons[lane]
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(reason);
        if shared.supervision.is_none() || shared.stop.load(Ordering::Relaxed) {
            // Nobody will respawn this lane (no supervisor, or it is
            // already shutting down): condemn so waits and drains abort.
            condemn(&shared, lane);
        }
        // Last: the panic bit is what the supervisor polls, and every
        // observer must already see the seat, the reason and (possibly)
        // the condemnation when it flips.
        shared.panicked[lane].store(true, Ordering::Release);
    }
}

/// The proxy service loop: the Figure 5 loop over real queues and wires,
/// plus the reliability layer (retention, acks, retransmission), the
/// fault injector's time-domain hooks, condemned-peer purging, and —
/// when sharded — handoff intake, drain tracking, and stray ready-bit
/// forwarding.
#[allow(clippy::too_many_lines)]
fn proxy_main(lane: usize, seat: &mut Vec<SeatEntry>, st: &mut NodeState, shared: &Shared) {
    let node = shared.lane_node(lane);
    let parker = &shared.parkers[lane];
    parker.register();
    let ready = &*shared.ready_masks[lane];
    let wire_rx = &shared.wires[lane];
    let health = &shared.health[lane];
    let mut batch: Vec<Entry> = Vec::with_capacity(SERVICE_BURST);
    let mut backoff = Backoff::new();
    let mut legacy_idle_spins = 0u32;
    let mut stop_flush_tries = 0u32;
    // Which of this node's ready bits the seat answers to, and which are
    // frozen by an in-progress handoff. Both the seat and `st.migr`
    // survive incarnations, so recompute on entry.
    let mut owned_mask = seat_mask(seat);
    let mut quiesce_mask = quiesce_mask_of(st);
    // Bits actually assigned to queues on this node (the stop path
    // re-arms all 64; unassigned ones must not be "forwarded").
    let qbits = shared.node_qbits[node].len();
    let valid_mask = if qbits >= 64 { u64::MAX } else { (1u64 << qbits) - 1 };
    loop {
        let now = Instant::now();
        // Injected time-domain faults: kills panic right here (the
        // catch_unwind in run_proxy turns that into a death the
        // supervisor can see); stalls freeze the loop wholesale.
        if let Some(faults) = &shared.faults {
            if faults.has_timed_faults() {
                let ops = shared.ops_serviced[lane].load(Ordering::Relaxed);
                if let Some(threshold) = faults.kill_due(lane, ops) {
                    if shared.sharded() {
                        panic!(
                            "injected kill: node {node} shard {shard} after {threshold} ops",
                            shard = lane % shared.shards
                        );
                    }
                    panic!("injected kill: node {node} after {threshold} ops");
                }
                if let Some(order) = faults.stall_due(lane, now.duration_since(shared.started)) {
                    if order.interruptible {
                        let _ = crate::idle::sleep_unless(order.remaining, &shared.stop);
                    } else {
                        // A wedge: models a proxy stuck in foreign code,
                        // deaf even to the stop signal.
                        std::thread::sleep(order.remaining);
                    }
                    continue;
                }
            }
        }
        // Purge traffic towards condemned peers: their rings will never
        // drain and their acks will never come. Retained GETs cancel
        // their CCBs; lsyncs never fire (the op is lost, and bounded
        // waits report it). Route pins towards a dead lane are lifted so
        // senders re-read the shard table.
        if shared.any_condemned.load(Ordering::Acquire) {
            for dst in 0..shared.lanes() {
                if dst == lane || !shared.condemned[dst].load(Ordering::Relaxed) {
                    continue;
                }
                st.pending_wire[dst].clear();
                let NodeState {
                    tx, ccbs, routes, ..
                } = &mut *st;
                for r in tx[dst].retained.drain(..) {
                    if let Payload::GetReq { token, .. } = r.body {
                        ccbs.remove(&token);
                    }
                }
                tx[dst].nack_hint = false;
                routes.retain(|_, e| e.0 != dst);
            }
        }
        // A fresh incarnation owes its peers a Hello (and owes itself a
        // retransmission pass — peers may have acked frames the wire
        // lost while the lane was down).
        if st.hello_pending {
            st.hello_pending = false;
            let epoch = st.epoch;
            let obs = &shared.obs[lane];
            obs.trace_at(shared.rel_ns(now), EventKind::Hello, lane as u16, epoch as u32);
            for dst in 0..shared.lanes() {
                if dst == lane {
                    continue;
                }
                st.tx[dst].nack_hint = true;
                if shared.condemned[dst].load(Ordering::Relaxed) {
                    continue;
                }
                obs.inc(Ctr::HellosOut);
                push_wire(
                    shared,
                    &mut st.pending_wire[dst],
                    dst,
                    WireMsg::Hello { from: lane, epoch },
                );
            }
        }
        // Shard bookkeeping: adopt queues handed over by a sibling,
        // then accept mailed orders and advance in-progress handoffs.
        if shared.sharded() {
            if shared.inbox_ready[lane].load(Ordering::Acquire) {
                let incoming: Vec<SeatEntry> = {
                    let mut g = shared.shard_inbox[lane]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    shared.inbox_ready[lane].store(false, Ordering::Release);
                    std::mem::take(&mut *g)
                };
                if !incoming.is_empty() {
                    let obs = &shared.obs[lane];
                    for e in incoming {
                        obs.trace_at(
                            shared.rel_ns(now),
                            EventKind::MigrateIn,
                            e.asid as u16,
                            e.qbit,
                        );
                        ready.fetch_or(1 << e.qbit, Ordering::Release);
                        seat.push(e);
                    }
                    owned_mask = seat_mask(seat);
                }
            }
            if !shared.stop.load(Ordering::Relaxed) {
                if shared.migr_pending[lane].load(Ordering::Acquire) {
                    intake_migrations(shared, st, lane, seat);
                    quiesce_mask = quiesce_mask_of(st);
                }
                if !st.migr.is_empty() && progress_migrations(shared, st, lane, seat, now) {
                    owned_mask = seat_mask(seat);
                    quiesce_mask = quiesce_mask_of(st);
                }
            }
        }
        let mut progressed = false;
        // Stashed outbound packets go first: per-destination FIFO.
        progressed |= flush_pending(shared, st);
        // User command queues: consult the ready-bit vector, then drain a
        // burst per queue. While the outbound stash is deep the drain
        // pauses (bits stay set), so the bounded command rings
        // backpressure users and per-lane occupancy stays bounded.
        if st.backlogged() < PENDING_CAP {
            let mask = ready.swap(0, Ordering::Acquire);
            if mask != 0 {
                // Bits for queues this lane does not own (a submitter
                // raced a migration, or a handoff arrived with its bit
                // already set): forward each to the serving lane.
                let strays = mask & !owned_mask & valid_mask;
                if strays != 0 && shared.sharded() {
                    for (qb, &asid) in shared.node_qbits[node].iter().enumerate() {
                        if strays & (1 << qb) == 0 {
                            continue;
                        }
                        let tgt = shared.lane_of_asid(asid);
                        if tgt == lane {
                            // Mid-handoff towards us: the seat entry is
                            // still in flight; re-arm, resolve next pass.
                            ready.fetch_or(1 << qb, Ordering::Release);
                        } else {
                            shared.ready_masks[tgt].fetch_or(1 << qb, Ordering::Release);
                            shared.parkers[tgt].wake();
                        }
                    }
                }
                let mut m = mask & owned_mask;
                if quiesce_mask != 0 {
                    // Quiesced queues wait out the handoff; keep their
                    // bits armed for the next owner.
                    ready.fetch_or(m & quiesce_mask, Ordering::Release);
                    m &= !quiesce_mask;
                }
                if m != 0 {
                    for e in seat.iter_mut() {
                        let bit = 1u64 << e.qbit;
                        if m & bit == 0 {
                            continue;
                        }
                        let taken = e.q.pop_burst(&mut batch, SERVICE_BURST);
                        let src = e.asid;
                        let obs = &shared.obs[lane];
                        let drain_ns = shared.rel_ns(now);
                        for entry in batch.drain(..) {
                            // Command-queue wait: submit stamp → this
                            // drain. `t_ns == 0` means the entry was
                            // unstamped (recording off at submit time).
                            if entry.t_ns != 0 {
                                obs.record(HistId::CmdWaitNs, drain_ns.saturating_sub(entry.t_ns));
                            }
                            handle_command(shared, st, lane, now, src, entry);
                        }
                        if taken > 0 {
                            st.obs_tick = st.obs_tick.wrapping_add(1);
                            if st.obs_tick & OBS_SAMPLE_MASK == 0 {
                                obs.trace_at(drain_ns, EventKind::Drain, src as u16, taken as u32);
                            }
                            shared.ops_serviced[lane].fetch_add(taken as u64, Ordering::Relaxed);
                            progressed = true;
                        }
                        if e.q.is_ready() {
                            // Entries remain past the burst; re-arm the
                            // bit so the next scan comes back.
                            ready.fetch_or(bit, Ordering::Release);
                        }
                    }
                }
            }
        }
        // Overload control: a saturated proxy rejects the oldest request
        // frames over the backlog cap. Rejection *advances the delivered
        // watermark* and reports the sequence on the next ack, so the
        // sender unretains without firing lsync — "acked ⇒ applied
        // exactly once" survives shedding. Control frames and responses
        // are serviced normally even over the cap.
        if shared.shed_enabled.load(Ordering::Relaxed) && health.saturated.load(Ordering::Acquire)
        {
            let mut rejected = 0u64;
            let obs = &shared.obs[lane];
            while wire_rx.len() > SHED_BACKLOG {
                let Some(msg) = wire_rx.pop() else { break };
                match msg {
                    WireMsg::Data {
                        from,
                        seq,
                        corrupt,
                        body,
                    } if body.is_request() => {
                        obs.inc(Ctr::MsgsIn);
                        obs.add(Ctr::BytesIn, body.wire_bytes());
                        let rx = &mut st.rx[from];
                        if seq <= rx.delivered {
                            obs.inc(Ctr::DedupDrops);
                            rx.ack_pending = true; // duplicate of old news
                        } else if !corrupt && seq == rx.delivered + 1 {
                            rx.delivered = seq;
                            rx.rejected_new.push(seq);
                            rx.ack_pending = true;
                            rejected += 1;
                            obs.trace_at(
                                shared.rel_ns(now),
                                EventKind::Shed,
                                from as u16,
                                seq as u32,
                            );
                        } else {
                            obs.inc(Ctr::DamagedDrops);
                            rx.nack_pending = true;
                        }
                    }
                    other => {
                        handle_packet(shared, st, lane, now, other);
                        shared.ops_serviced[lane].fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    }
                }
            }
            if rejected > 0 {
                obs.add(Ctr::Sheds, rejected);
                health.shed.fetch_add(rejected, Ordering::Relaxed);
                progressed = true;
            }
        }
        // Network input (burst-bounded like the command queues: a flooded
        // wire refills faster than it drains, and this loop must not
        // become the whole iteration).
        let mut burst = 0;
        while burst < SERVICE_BURST {
            let Some(msg) = wire_rx.pop() else { break };
            handle_packet(shared, st, lane, now, msg);
            shared.ops_serviced[lane].fetch_add(1, Ordering::Relaxed);
            progressed = true;
            burst += 1;
        }
        // Reliability upkeep: retransmit overdue retention, then emit the
        // acks and nacks this pass accumulated. Neither counts as
        // progress — an idle-but-unacked sender must still reach the
        // park below (its 1 ms timeout doubles as the retransmit clock).
        retransmit(shared, st, lane, now);
        flush_acks(shared, st, lane);
        if progressed {
            // Busy time feeds the watchdog's utilisation samples; idle
            // polling scans are charged to nobody, exactly like the
            // simulator's per-node busy counter.
            health.busy_ns.fetch_add(
                u64::try_from(now.elapsed().as_nanos()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
            backoff.reset();
            legacy_idle_spins = 0;
            stop_flush_tries = 0;
            continue;
        }
        if shared.stop.load(Ordering::Relaxed) {
            // Abort handoffs in flight — nothing will complete them now;
            // the queues stay (and drain) where they are.
            if shared.sharded() {
                let aborted = {
                    let mut g = shared.migr_orders[lane]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    shared.migr_pending[lane].store(false, Ordering::Release);
                    g.drain(..).count() + st.migr.drain(..).count()
                };
                if aborted > 0 {
                    shared.migr_outstanding[node].fetch_sub(aborted as u64, Ordering::Relaxed);
                    quiesce_mask = 0;
                }
                // A sibling may have completed a handoff towards us just
                // now: adopt it (at the loop top) before deciding we are
                // drained.
                if shared.inbox_ready[lane].load(Ordering::Acquire) {
                    continue;
                }
            }
            // Final drain pass (ready bits may have raced with stop).
            let drained = seat.iter_mut().all(|e| !e.q.is_ready());
            if drained && wire_rx.is_empty() {
                // Exit only once nothing is owed: no stashed output, and
                // no unacknowledged frames towards live peers (their
                // acks are what release our retention — and our lsyncs).
                let unacked = st
                    .tx
                    .iter()
                    .enumerate()
                    .any(|(d, tx)| {
                        !tx.retained.is_empty() && !shared.condemned[d].load(Ordering::Relaxed)
                    });
                if st.outbox_empty() && !unacked {
                    break;
                }
                // A peer may be gone without condemnation (or its ring
                // is full forever): bounded retries, then in-flight
                // traffic is abandoned — lossy at shutdown by contract.
                stop_flush_tries += 1;
                if stop_flush_tries > STOP_FLUSH_TRIES {
                    break;
                }
            }
            // Re-arm all bits so the next pass scans everything.
            ready.fetch_or(u64::MAX, Ordering::Release);
            std::thread::yield_now();
            continue;
        }
        if shared.locked_plane {
            // The baseline's idle loop, kept verbatim for the A/B: a
            // fixed spin budget, then yield forever — never parks, so an
            // idle proxy keeps taxing the host scheduler.
            if legacy_idle_spins < LEGACY_IDLE_SPINS {
                legacy_idle_spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            continue;
        }
        // Idle: escalate spin → yield → park. Parking is gated on an
        // empty outbound stash (stashed packets wait on a peer's ring,
        // which sends no wake when space frees up). Unacknowledged
        // retention does *not* block parking: the bounded park timeout
        // re-probes often enough to serve as the RTO clock.
        if backoff.is_parkable() && st.outbox_empty() {
            parker.prepare_park();
            if ready.load(Ordering::SeqCst) != 0
                || !wire_rx.is_empty()
                || shared.stop.load(Ordering::Relaxed)
            {
                parker.cancel();
            } else {
                parker.park(PARK_TIMEOUT);
            }
            backoff.reset();
        } else {
            backoff.snooze();
        }
    }
}

/// The overload watchdog: every `interval` it turns each proxy lane's
/// busy-time delta into a utilisation sample and applies the paper's
/// §5.4 stability rule *per lane* — a proxy above [`STABLE_UTILIZATION`]
/// has unbounded expected queueing delay, so it is flagged saturated
/// (with a one-time warning per lane) until the load falls back under
/// [`RECOVERY_UTILIZATION`]. The node-level view takes the max over
/// lanes ([`RtCluster::utilization`]): the bound binds per proxy
/// thread, and averaging would hide a hot shard behind idle siblings.
/// With elastic scaling enabled, the same samples drive the shard
/// controller ([`elastic_tick`]).
fn watchdog_main(shared: &Shared, interval: Duration) {
    let lanes = shared.lanes();
    let mut prev_busy = vec![0u64; lanes];
    let mut warned = vec![false; lanes];
    let mut utils = vec![0f64; lanes];
    let nodes = shared.tables.len();
    let mut cooldown = vec![0u32; nodes];
    let mut idle_ticks = vec![0u32; nodes];
    let mut prev_t = Instant::now();
    while crate::idle::sleep_unless(interval, &shared.stop) {
        let now = Instant::now();
        let wall_ns = now.duration_since(prev_t).as_nanos();
        if wall_ns == 0 {
            continue;
        }
        prev_t = now;
        for (lane, h) in shared.health.iter().enumerate() {
            let busy = h.busy_ns.load(Ordering::Relaxed);
            let delta = busy.saturating_sub(prev_busy[lane]);
            prev_busy[lane] = busy;
            let util = (u128::from(delta) as f64 / wall_ns as f64).min(1.0);
            utils[lane] = util;
            h.util_bits.store(util.to_bits(), Ordering::Relaxed);
            let obs = &shared.obs[lane];
            // Busy fraction as permille, one sample per watchdog tick.
            obs.record(HistId::BusyPermille, (util * 1000.0) as u64);
            // Two overload signals. Utilisation is the paper's §5.4 rule,
            // but it is a time-domain measure: on an oversubscribed host
            // the proxy thread may be descheduled and sample low even as
            // its input queue grows without bound. Backlog is the
            // space-domain symptom of the same instability and is immune
            // to scheduler noise, so either one trips the flag.
            let backlog = shared.wires[lane].len();
            let was = h.saturated.load(Ordering::Acquire);
            if !was && (util > STABLE_UTILIZATION || backlog > SHED_BACKLOG) {
                h.saturation_events.fetch_add(1, Ordering::Relaxed);
                obs.inc(Ctr::SaturationEvents);
                obs.trace(EventKind::SatEnter, lane as u16, backlog as u32);
                h.saturated.store(true, Ordering::Release);
                // A shedding proxy may be parked with its wire already
                // over the cap; make sure it sees the flag.
                shared.parkers[lane].wake();
                if !warned[lane] {
                    warned[lane] = true;
                    let who = if shared.sharded() {
                        format!(
                            "node {} shard {} proxy",
                            shared.lane_node(lane),
                            lane % shared.shards
                        )
                    } else {
                        format!("node {lane} proxy")
                    };
                    eprintln!(
                        "mproxy-rt: {who} overloaded ({:.0}% utilisation, \
                         {backlog} queued) — past the 50% stability bound, queueing \
                         delay is now unbounded",
                        util * 100.0
                    );
                }
            } else if was && util < RECOVERY_UTILIZATION && backlog < SHED_BACKLOG / 2 {
                obs.trace(EventKind::SatExit, lane as u16, backlog as u32);
                h.saturated.store(false, Ordering::Release);
            }
        }
        if let Some(range) = shared.elastic {
            elastic_tick(shared, range, &utils, &mut cooldown, &mut idle_ticks);
        }
    }
}

/// One elastic-controller decision pass, piggybacked on the watchdog
/// tick. Per node: grow by one shard when any active lane is saturated
/// (§5.4 — a single overloaded proxy already has unbounded delay);
/// shrink by one when *every* active lane has sat under
/// [`RECOVERY_UTILIZATION`] for [`SHRINK_IDLE_TICKS`] consecutive
/// ticks. Decisions wait out [`SCALE_COOLDOWN_TICKS`] after each scale
/// and defer entirely while any migration is outstanding, so the
/// controller never chases its own transients.
fn elastic_tick(
    shared: &Shared,
    range: ElasticRange,
    utils: &[f64],
    cooldown: &mut [u32],
    idle_ticks: &mut [u32],
) {
    for node in 0..shared.tables.len() {
        if cooldown[node] > 0 {
            cooldown[node] -= 1;
        }
        if shared.migr_outstanding[node].load(Ordering::Relaxed) > 0 {
            continue;
        }
        let active = shared.tables[node].active();
        let any_sat = (0..active as usize).any(|s| {
            shared.health[shared.lane_of(node, s)]
                .saturated
                .load(Ordering::Acquire)
        });
        if any_sat {
            idle_ticks[node] = 0;
            if active < range.max && cooldown[node] == 0 && rebalance(shared, node, active + 1)
            {
                cooldown[node] = SCALE_COOLDOWN_TICKS;
                let obs = &shared.obs[shared.lane_of(node, 0)];
                obs.inc(Ctr::ShardGrows);
                obs.trace(EventKind::ShardScale, node as u16, active + 1);
            }
            continue;
        }
        let all_idle =
            (0..active as usize).all(|s| utils[shared.lane_of(node, s)] < RECOVERY_UTILIZATION);
        if !all_idle || active <= range.min {
            idle_ticks[node] = 0;
            continue;
        }
        idle_ticks[node] += 1;
        if idle_ticks[node] >= SHRINK_IDLE_TICKS
            && cooldown[node] == 0
            && rebalance(shared, node, active - 1)
        {
            idle_ticks[node] = 0;
            cooldown[node] = SCALE_COOLDOWN_TICKS;
            let obs = &shared.obs[shared.lane_of(node, 0)];
            obs.inc(Ctr::ShardShrinks);
            obs.trace(EventKind::ShardScale, node as u16, active - 1);
        }
    }
}

/// Re-partitions `node`'s asids over `new_active` shards with the jump
/// consistent hash (minimal movement: only keys whose bucket changes
/// migrate) and flips the active count. Returns false — changing
/// nothing — if any target lane is condemned.
fn rebalance(shared: &Shared, node: usize, new_active: u32) -> bool {
    for s in 0..new_active as usize {
        if shared.condemned[shared.lane_of(node, s)].load(Ordering::Relaxed) {
            return false;
        }
    }
    shared.tables[node].set_active(new_active);
    for asid in 0..shared.procs.len() as u32 {
        if shared.procs[asid as usize].node != node {
            continue;
        }
        let want = jump_hash(u64::from(asid), new_active);
        if want != shared.tables[node].slot(asid) {
            let _ = issue_migration(shared, asid, want as usize);
        }
    }
    true
}
