//! The threaded message-proxy cluster.
//!
//! One proxy thread per node runs the Figure 5 loop for real: it polls the
//! registered per-user command queues and the node's network input, using
//! the §4.1 *shared bit vector* optimisation — producers set a per-queue
//! ready bit, so an idle proxy probes one word instead of scanning every
//! queue head. Protection checks (asid permission, bounds) run in the
//! proxy, never in user code; violations are counted as faults and the
//! operation is dropped, the runtime analogue of "the system faults a
//! process".
//!
//! The data plane is lock-free end to end (see DESIGN.md "Runtime data
//! plane"): user→proxy command queues are the paper's full/empty-flag
//! SPSC rings ([`crate::spsc`]), proxy↔proxy traffic flows through one
//! bounded MPSC wire ring per node, and remote-queue payloads return to
//! user processes over bounded SPSC reply rings (both
//! [`crate::ring::Ring`]). The pre-ring `Mutex<VecDeque>` data plane is
//! kept selectable ([`RtClusterBuilder::locked_data_plane`]) as the A/B
//! baseline for the `rt_throughput` bench.
//!
//! # The sequenced wire layer
//!
//! Inter-proxy traffic is *reliable* over a transport that is allowed to
//! misbehave (the seeded injector of [`crate::fault`], or a proxy dying
//! mid-conversation). Every data packet from node `s` to node `d`
//! carries a per-pair monotone sequence number; the sender retains a
//! clone of each unacknowledged packet (payloads are [`Bytes`], so a
//! clone is a refcount, not a copy). The receiver delivers strictly in
//! order, answers each drain batch with one cumulative
//! [`WireMsg::AckUpto`] watermark, NACKs on a gap or a corrupt frame,
//! and drops duplicates (re-acking so the sender converges). A
//! retransmit timer backstops lost NACKs. Control frames (acks, nacks,
//! hellos) are never judged by the injector and never dropped: the model
//! is a lossy transport under a reliable protocol, not a broken
//! protocol.
//!
//! The invariant bought by all this: **an operation whose `lsync` flag
//! fired was applied at the destination exactly once** — under drops,
//! duplicates, corruption, overload shedding, and proxy respawns.
//! Overload shedding rides the same machinery: a saturated proxy *rejects*
//! excess requests by advancing its delivered watermark and reporting the
//! rejected sequence numbers on the ack, so the sender drops them from
//! retention without firing `lsync`.
//!
//! # Supervision and recovery
//!
//! A proxy is a shared, trusted agent; a node must survive its failure.
//! Each proxy body runs under `catch_unwind`: on panic the thread returns
//! its *seat* (the node's command-queue consumers), records the panic
//! payload, and raises the node's `panicked` bit. All protocol state
//! lives in a per-node [`NodeState`] owned by `Shared` and locked by the
//! proxy for its lifetime — so a respawned proxy resumes with the exact
//! watermarks, retention buffers and CCBs its predecessor held, and no
//! acknowledged operation can be lost or re-applied. With supervision
//! enabled ([`RtClusterBuilder::supervise`]) a supervisor thread respawns
//! dead proxies on a fresh epoch (bounded restarts, exponential backoff);
//! the newcomer broadcasts [`WireMsg::Hello`] so peers re-ack and
//! retransmit immediately instead of waiting out their timers. A node
//! that exhausts its restart budget — or dies without supervision — is
//! *condemned*: peers purge traffic towards it, bounded waits report
//! [`RtError::ProxyDown`] with the panic reason, and shutdown completes.
//! [`RtCluster::shutdown`] is deadline-bounded and reports wedged proxies
//! instead of joining them forever.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use mproxy_model::contention::STABLE_UTILIZATION;
use mproxy_obs::{Ctr, EventKind, HistId, ObsHub, Scope as ObsScope, Snapshot, TraceEvent};

use crate::fault::{RtFaultCounts, RtFaultPlan, RtFaultState};
use crate::idle::{Backoff, Parker};
use crate::mem::Segment;
use crate::ring::Ring;
use crate::spsc::{self, Entry};
use crate::supervisor::SupervisorCfg;

/// A node's command-queue consumers, tagged with the owning asid.
pub(crate) type Seat = Vec<(u32, spsc::Consumer)>;

/// Synchronisation flags per process.
pub const NUM_FLAGS: usize = 64;
/// Remote queues per process.
pub const NUM_QUEUES: usize = 8;
/// Command queue depth per process.
pub const CMDQ_DEPTH: usize = 128;
/// Wire ring depth per node (packets queued by peer proxies).
pub const WIRE_DEPTH: usize = 512;
/// Reply ring depth per remote queue (payloads queued for a user process).
pub const RQ_DEPTH: usize = 256;

/// Utilisation below which a saturated proxy is considered recovered.
/// Sits under [`STABLE_UTILIZATION`] so the flag doesn't flap when load
/// hovers at the §5.4 bound.
pub const RECOVERY_UTILIZATION: f64 = 0.4;

/// Wire backlog (packets) past which a saturated, shedding-enabled proxy
/// starts rejecting request traffic.
pub const SHED_BACKLOG: usize = CMDQ_DEPTH;

/// Most entries a proxy drains from one queue per loop iteration. When the
/// arrival rate exceeds the service rate a drain would otherwise never
/// terminate, and iteration boundaries are where busy-time accounting and
/// the shedding check run — an overloaded proxy must keep reaching them.
const SERVICE_BURST: usize = 2 * CMDQ_DEPTH;

/// Outbound packets a proxy holds privately (its wire rings to peers all
/// full) before it stops draining command queues; the bounded command
/// rings then backpressure the user processes, so total occupancy per
/// node stays bounded by `CMDQ_DEPTH·procs + WIRE_DEPTH + PENDING_CAP`
/// (plus retention, which drains as fast as peers acknowledge).
const PENDING_CAP: usize = 2 * WIRE_DEPTH;

/// Retransmit timeout: a sender with unacknowledged packets and no ack
/// progress for this long re-sends from its retention buffer. Generous
/// against ack coalescing latency, tight enough that a dropped packet
/// costs milliseconds, not a stalled test.
const RTO: Duration = Duration::from_millis(2);

/// Most retained packets re-sent per destination per retransmit pass;
/// bounds the burst a recovering receiver takes all at once.
const RESEND_BURST: usize = 128;

/// Longest a parked proxy sleeps before re-probing its queues (a missed
/// wake is designed out, this is insurance — see [`crate::idle::Parker`]).
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// The locked baseline's fixed idle budget: spin this many times, then
/// `yield_now` (the pre-adaptive-policy hand-rolled loop, preserved for
/// the A/B ablation).
const LEGACY_IDLE_SPINS: u32 = 500;

/// Loop passes a stopping proxy keeps waiting for undeliverable or
/// unacknowledged outbound packets (a peer's ring full, or a peer dead
/// but not yet condemned) before giving up on them — in-flight traffic
/// at shutdown is lossy by contract.
const STOP_FLUSH_TRIES: u32 = 10_000;

/// Default deadline for [`RtCluster::shutdown`] (and `Drop`): a wedged
/// proxy thread is reported and detached rather than joined past this.
const DEFAULT_SHUTDOWN_DEADLINE: Duration = Duration::from_secs(10);

const OP_PUT: u32 = 1;
const OP_GET: u32 = 2;
const OP_ENQ: u32 = 3;

/// A synchronisation-flag slot (monotone counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlagId(pub u32);

/// A remote-queue slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RqId(pub u32);

/// A recoverable runtime communication failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// A bounded wait expired before the flag reached its target.
    Timeout {
        /// The flag waited on.
        flag: u32,
        /// The value waited for.
        target: u64,
        /// The value observed when the wait gave up.
        observed: u64,
    },
    /// A proxy thread died for good (condemned: it panicked and will not
    /// be — or can no longer be — respawned); the node is unreachable.
    ProxyDown {
        /// The node whose proxy is gone.
        node: usize,
        /// The panic payload, when it was a string.
        reason: Option<String>,
    },
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::Timeout {
                flag,
                target,
                observed,
            } => write!(f, "wait on flag {flag} timed out at {observed}/{target}"),
            RtError::ProxyDown {
                node,
                reason: Some(r),
            } => write!(f, "proxy thread for node {node} has died: {r}"),
            RtError::ProxyDown { node, reason: None } => {
                write!(f, "proxy thread for node {node} has died")
            }
        }
    }
}

impl std::error::Error for RtError {}

/// One dead proxy in a [`ShutdownReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyPanic {
    /// The node whose proxy was dead when the cluster shut down.
    pub node: usize,
    /// Its panic payload, when it was a string.
    pub reason: Option<String>,
}

/// What [`RtCluster::shutdown`] observed while joining the proxies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Nodes whose proxy was dead (panicked, not respawned) at shutdown,
    /// with the captured panic payloads. A node whose proxy died but was
    /// respawned by supervision and exited cleanly is *not* listed.
    pub panicked_nodes: Vec<ProxyPanic>,
    /// Nodes whose proxy failed to exit within the shutdown deadline and
    /// was detached still running (e.g. stuck in foreign code).
    pub wedged_nodes: Vec<usize>,
    /// Total proxy respawns performed by supervision over the cluster's
    /// lifetime.
    pub restarts: u64,
}

impl ShutdownReport {
    /// True if every proxy exited cleanly at shutdown (recovered-then-
    /// clean nodes count as clean; see [`ShutdownReport::restarts`]).
    #[must_use]
    pub fn clean(&self) -> bool {
        self.panicked_nodes.is_empty() && self.wedged_nodes.is_empty()
    }

    /// Stable single-line JSON serialization (the shape `rt_chaos`
    /// embeds per scenario in `BENCH_chaos.json`):
    /// `{"clean":bool,"restarts":n,"panicked":[{"node":n,"reason":s?}],
    /// "wedged":[n]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64);
        let _ = write!(
            s,
            "{{\"clean\":{},\"restarts\":{},\"panicked\":[",
            self.clean(),
            self.restarts
        );
        for (i, p) in self.panicked_nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"node\":{}", p.node);
            if let Some(r) = &p.reason {
                let _ = write!(s, ",\"reason\":\"{}\"", mproxy_obs::json::esc(r));
            }
            s.push('}');
        }
        s.push_str("],\"wedged\":[");
        for (i, n) in self.wedged_nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{n}");
        }
        s.push_str("]}");
        s
    }
}

/// A multi-producer FIFO with poison recovery — the locked-baseline
/// remote-queue store and inter-node wire. A panicked proxy can never
/// wedge it.
#[derive(Debug)]
struct PolledFifo<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> Default for PolledFifo<T> {
    fn default() -> Self {
        PolledFifo {
            items: Mutex::new(VecDeque::new()),
        }
    }
}

impl<T> PolledFifo<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.items.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, v: T) {
        self.lock().push_back(v);
    }

    fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn len(&self) -> usize {
        self.lock().len()
    }
}

/// A node's wire input: peer proxies produce, the node's proxy consumes.
/// The ring variant is the lock-free data plane; the locked variant is
/// the pre-ring `Mutex<VecDeque>` baseline kept for A/B measurement.
#[derive(Debug)]
enum Wire {
    Locked(PolledFifo<WireMsg>),
    // Boxed: a Ring inlines two cache-padded counters (384 bytes), and
    // adjacent nodes' rings must not share lines anyway.
    Ring(Box<Ring<WireMsg>>),
}

impl Wire {
    fn new(locked: bool) -> Wire {
        if locked {
            Wire::Locked(PolledFifo::default())
        } else {
            Wire::Ring(Box::new(Ring::new(WIRE_DEPTH)))
        }
    }

    /// Enqueues a packet; the locked baseline is unbounded and always
    /// accepts, the ring hands the packet back when full.
    fn try_push(&self, m: WireMsg) -> Result<(), WireMsg> {
        match self {
            Wire::Locked(f) => {
                f.push(m);
                Ok(())
            }
            Wire::Ring(r) => r.try_push(m),
        }
    }

    fn pop(&self) -> Option<WireMsg> {
        match self {
            Wire::Locked(f) => f.pop(),
            Wire::Ring(r) => r.try_pop(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Wire::Locked(f) => f.is_empty(),
            Wire::Ring(r) => r.is_empty(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Wire::Locked(f) => f.len(),
            Wire::Ring(r) => r.len(),
        }
    }
}

/// One remote queue: the local proxy produces, the owning user process
/// consumes. Ring = lock-free reply ring, Locked = baseline.
#[derive(Debug)]
enum RqStore {
    Locked(PolledFifo<Bytes>),
    // Boxed for the same reason as [`Wire::Ring`].
    Ring(Box<Ring<Bytes>>),
}

impl RqStore {
    fn new(locked: bool) -> RqStore {
        if locked {
            RqStore::Locked(PolledFifo::default())
        } else {
            RqStore::Ring(Box::new(Ring::new(RQ_DEPTH)))
        }
    }

    fn try_push(&self, data: Bytes) -> Result<(), Bytes> {
        match self {
            RqStore::Locked(f) => {
                f.push(data);
                Ok(())
            }
            RqStore::Ring(r) => r.try_push(data),
        }
    }

    fn pop(&self) -> Option<Bytes> {
        match self {
            RqStore::Locked(f) => f.pop(),
            RqStore::Ring(r) => r.try_pop(),
        }
    }
}

/// Per-node load and overload state, written by the proxy and the
/// watchdog, read by anyone.
#[derive(Debug, Default)]
struct ProxyHealth {
    /// Nanoseconds the proxy has spent servicing work (not idle-spinning).
    busy_ns: AtomicU64,
    /// Bits of the watchdog's last utilisation sample (an `f64`).
    util_bits: AtomicU64,
    /// Set while the sampled utilisation sits above [`STABLE_UTILIZATION`];
    /// cleared once it falls back under [`RECOVERY_UTILIZATION`].
    saturated: AtomicBool,
    /// Times the proxy has crossed into saturation.
    saturation_events: AtomicU64,
    /// Request packets rejected by overload shedding.
    shed: AtomicU64,
}

struct ProcShared {
    asid: u32,
    node: usize,
    seg: Segment,
    flags: Vec<Arc<AtomicU64>>,
    queues: Vec<RqStore>,
    faults: Arc<AtomicU64>,
    timeouts: Arc<AtomicU64>,
}

/// An operation travelling the wire (the content of a sequenced
/// [`WireMsg::Data`] frame).
#[derive(Debug, Clone)]
enum Payload {
    Put {
        dst: u32,
        raddr: u64,
        data: Bytes,
        rsync: Option<u32>,
    },
    GetReq {
        src_asid: u32,
        dst: u32,
        raddr: u64,
        nbytes: u32,
        token: u64,
    },
    GetReply {
        token: u64,
        data: Option<Bytes>,
    },
    Enq {
        dst: u32,
        rq: u32,
        data: Bytes,
        rsync: Option<u32>,
    },
}

impl Payload {
    /// Requests may be rejected under overload; responses may not — each
    /// one resolves a CCB that has already been paid for, and rejecting
    /// it would strand the waiter.
    fn is_request(&self) -> bool {
        !matches!(self, Payload::GetReply { .. })
    }

    /// Application bytes carried (the bytes_in/bytes_out accounting
    /// unit; headers and control frames count zero).
    fn wire_bytes(&self) -> u64 {
        match self {
            Payload::Put { data, .. } | Payload::Enq { data, .. } => data.len() as u64,
            Payload::GetReq { .. } => 0,
            Payload::GetReply { data, .. } => data.as_ref().map_or(0, |d| d.len() as u64),
        }
    }
}

/// One frame on the inter-proxy wire. `Data` frames are sequenced per
/// (sender, destination) pair and subject to fault injection; the control
/// frames are the reliability layer itself and are never judged or lost.
#[derive(Debug)]
enum WireMsg {
    /// A sequenced operation. `corrupt` models payload damage in flight —
    /// set by the injector, detected "by checksum" at the receiver, which
    /// NACKs instead of delivering.
    Data {
        from: usize,
        seq: u64,
        corrupt: bool,
        body: Payload,
    },
    /// Cumulative acknowledgement: every `Data` frame from the receiver's
    /// peer with `seq <= upto` has been accounted for. Sequences listed in
    /// `rejected` were *shed* under overload: the sender must drop them
    /// from retention without firing their `lsync`.
    AckUpto {
        from: usize,
        upto: u64,
        rejected: Vec<u64>,
    },
    /// The receiver saw a gap or a corrupt frame after `since`; the
    /// sender should retransmit its retention buffer now rather than
    /// waiting out the RTO.
    Nack {
        from: usize,
        #[allow(dead_code)]
        since: u64,
    },
    /// A respawned proxy announcing itself: peers re-ack their watermark
    /// (so the newcomer's retention drains) and retransmit their own
    /// retained traffic immediately.
    Hello {
        from: usize,
        #[allow(dead_code)]
        epoch: u64,
    },
}

/// An outstanding GET command control block (lives in [`NodeState`] so a
/// respawned proxy can still complete or cancel it).
struct CcbGet {
    proc: u32,
    laddr: u64,
    nbytes: u32,
    lsync: Option<u32>,
}

/// A retained (sent, unacknowledged) data frame.
struct Retained {
    seq: u64,
    body: Payload,
    /// `(proc, flag)` to bump when the frame is acknowledged un-rejected.
    lsync: Option<(u32, u32)>,
    /// First-transmission time (cluster-relative ns) — the wire-RTT
    /// histogram measures from here to the releasing ack.
    sent_ns: u64,
    /// The originating command's submit stamp ([`Entry::t_ns`]; 0 when
    /// recording was off or the frame is proxy-originated) — the
    /// lsync-RTT histogram measures from here.
    submit_ns: u64,
}

/// Sender-side state towards one destination node.
struct TxPeer {
    /// Sequence number the next new frame will carry (first frame is 1).
    next_seq: u64,
    /// Highest acknowledged sequence.
    acked: u64,
    /// Sent-but-unacknowledged frames, in sequence order. Unbounded by
    /// type, bounded in practice by the receiver's ack cadence — even a
    /// *saturated* receiver advances its watermark (shed-reject), so
    /// retention drains at wire speed.
    retained: VecDeque<Retained>,
    /// Last time the ack watermark moved (or retention went non-empty);
    /// the RTO measures from here.
    last_progress: Instant,
    /// A NACK (or a peer Hello) asked for immediate retransmission.
    nack_hint: bool,
}

impl TxPeer {
    fn new(now: Instant) -> TxPeer {
        TxPeer {
            next_seq: 1,
            acked: 0,
            retained: VecDeque::new(),
            last_progress: now,
            nack_hint: false,
        }
    }
}

/// Receiver-side state from one source node.
#[derive(Default)]
struct RxPeer {
    /// Highest sequence delivered (or rejected) in order.
    delivered: u64,
    /// An ack should go out this pass.
    ack_pending: bool,
    /// A nack should go out this pass.
    nack_pending: bool,
    /// Sequences shed since the last ack, to ride out on it.
    rejected_new: Vec<u64>,
}

/// An accepted ENQ whose reply ring was full; delivery is owed (the
/// frame was already acknowledged), so this queue must survive a proxy
/// crash — it does, inside [`NodeState`].
struct PendingEnq {
    dst: u32,
    rq: u32,
    data: Bytes,
    rsync: Option<u32>,
}

/// Everything a node's proxy knows that must survive the proxy thread:
/// protocol watermarks, retention buffers, CCBs, stashed undeliverable
/// output. Owned by `Shared`, locked by the serving proxy for its
/// lifetime; the supervisor locks it briefly between incarnations to
/// bump the epoch.
/// Per-message hot-path telemetry — the `Send`/`Enqueue` trace events
/// and the cmd-wait / wire-RTT / lsync-RTT histogram samples — is
/// recorded one-in-32 (`tick & MASK == 0`). A histogram's shape survives
/// deterministic decimation, and sampling keeps the recording-armed cost
/// on the proxy's critical path inside the `rt_obs` 5% gate. Rare events
/// (kills, respawns, hellos, acks, sheds, faults) are never sampled, and
/// counters are always exact.
const OBS_SAMPLE_MASK: u64 = 31;

pub(crate) struct NodeState {
    /// Incarnation number; bumped by the supervisor on each respawn.
    pub(crate) epoch: u64,
    /// Respawn announcement owed to peers (set by the supervisor, cleared
    /// by the new incarnation once the Hellos are queued).
    pub(crate) hello_pending: bool,
    next_token: u64,
    ccbs: HashMap<u64, CcbGet>,
    tx: Vec<TxPeer>,
    rx: Vec<RxPeer>,
    /// Outbound frames whose destination ring was full, per node.
    /// Flushed in FIFO order before anything new is pushed, so per-pair
    /// wire order is preserved. Holds control frames too — an ack
    /// carrying rejections must never be lost.
    pending_wire: Vec<VecDeque<WireMsg>>,
    /// Accepted local deliveries whose reply ring was full.
    pending_rq: VecDeque<PendingEnq>,
    /// Decimation tick for sampled telemetry (see [`OBS_SAMPLE_MASK`]).
    obs_tick: u64,
}

impl NodeState {
    fn new(nodes: usize, now: Instant) -> NodeState {
        NodeState {
            epoch: 0,
            hello_pending: false,
            next_token: 0,
            ccbs: HashMap::new(),
            tx: (0..nodes).map(|_| TxPeer::new(now)).collect(),
            rx: (0..nodes).map(|_| RxPeer::default()).collect(),
            pending_wire: (0..nodes).map(|_| VecDeque::new()).collect(),
            pending_rq: VecDeque::new(),
            obs_tick: 0,
        }
    }

    /// Outbound frames stashed because their destination rings were full.
    fn backlogged(&self) -> usize {
        self.pending_wire.iter().map(VecDeque::len).sum::<usize>() + self.pending_rq.len()
    }

    fn outbox_empty(&self) -> bool {
        self.pending_rq.is_empty() && self.pending_wire.iter().all(VecDeque::is_empty)
    }
}

pub(crate) struct Shared {
    procs: Vec<Arc<ProcShared>>,
    perms: RwLock<HashSet<(u32, u32)>>,
    allow_all: AtomicBool,
    pub(crate) stop: AtomicBool,
    wires: Vec<Wire>,
    pub(crate) parkers: Vec<Parker>, // per node, wakes the proxy thread
    ops_serviced: Vec<Arc<AtomicU64>>, // per node
    /// Per node: the proxy is currently dead (set after unwinding, after
    /// the seat and panic reason are back; cleared by a respawn).
    pub(crate) panicked: Vec<AtomicBool>,
    /// Per node: permanently dead — no respawn will come. Peers purge
    /// traffic towards condemned nodes; waits abort against them.
    pub(crate) condemned: Vec<AtomicBool>,
    /// Cheap gate for the per-loop condemnation scan.
    any_condemned: AtomicBool,
    /// Mirror of each node's epoch for lock-free queries.
    pub(crate) epochs: Vec<AtomicU64>,
    /// Times each node's proxy has panicked.
    deaths: Vec<AtomicU64>,
    /// Total supervisor respawns.
    pub(crate) restarts_total: AtomicU64,
    /// Last panic payload per node, when it was a string.
    pub(crate) panic_reasons: Vec<Mutex<Option<String>>>,
    /// The per-node protocol state (see [`NodeState`]).
    pub(crate) node_state: Vec<Mutex<NodeState>>,
    /// The node's command-queue consumers, parked here whenever no proxy
    /// incarnation is running; each incarnation takes the seat and
    /// returns it on the way out (even by panic).
    pub(crate) seats: Vec<Mutex<Option<Seat>>>,
    /// The §4.1 ready-bit word per node (shared with the endpoints).
    ready_masks: Vec<Arc<AtomicU64>>,
    /// Proxy thread handles, replaced by the supervisor on respawn.
    pub(crate) handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    health: Vec<Arc<ProxyHealth>>, // per node
    shed_enabled: AtomicBool,
    /// The installed fault injector, if any.
    faults: Option<RtFaultState>,
    /// Supervision policy; `None` means a dead proxy is condemned at once.
    pub(crate) supervision: Option<SupervisorCfg>,
    /// Cluster start time (stall windows are relative to this).
    started: Instant,
    /// True when running the locked `Mutex<VecDeque>` baseline plane.
    locked_plane: bool,
    /// Telemetry registry (see `mproxy-obs`): counters are always on;
    /// histograms and flight recorders follow the hub's recording flag.
    obs_hub: Arc<ObsHub>,
    /// One telemetry scope per node, indexed like `wires`.
    pub(crate) obs: Vec<Arc<ObsScope>>,
}

impl Shared {
    fn allowed(&self, src: u32, dst: u32) -> bool {
        src == dst
            || self.allow_all.load(Ordering::Relaxed)
            || self
                .perms
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .contains(&(src, dst))
    }

    fn fault(&self, src: u32) {
        self.procs[src as usize]
            .faults
            .fetch_add(1, Ordering::Relaxed);
    }

    fn set_flag(&self, proc: u32, flag: u32) {
        self.procs[proc as usize].flags[flag as usize].fetch_add(1, Ordering::Release);
    }

    /// First condemned node, if any.
    fn condemned_node(&self) -> Option<usize> {
        if !self.any_condemned.load(Ordering::Acquire) {
            return None;
        }
        self.condemned
            .iter()
            .position(|c| c.load(Ordering::Acquire))
    }

    fn panic_reason(&self, node: usize) -> Option<String> {
        self.panic_reasons[node]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Nanoseconds from cluster start to `now` — the telemetry timebase
    /// shared by every histogram sample and flight-recorder event (plain
    /// `Instant` arithmetic, no clock read).
    #[inline]
    pub(crate) fn rel_ns(&self, now: Instant) -> u64 {
        u64::try_from(now.duration_since(self.started).as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Marks `node` permanently dead and wakes everything that might be
/// waiting on it (peer proxies purge their traffic towards it on their
/// next pass; bounded endpoint waits abort).
pub(crate) fn condemn(shared: &Shared, node: usize) {
    shared.condemned[node].store(true, Ordering::Release);
    shared.any_condemned.store(true, Ordering::Release);
    for p in &shared.parkers {
        p.wake();
    }
}

/// Builds an [`RtCluster`]: declare nodes and processes, then
/// [`RtClusterBuilder::start`].
pub struct RtClusterBuilder {
    nodes: usize,
    procs: Vec<(usize, usize)>, // (node, segment bytes)
    shed: bool,
    locked: bool,
    watchdog_interval: Duration,
    fault_plan: Option<RtFaultPlan>,
    supervision: Option<SupervisorCfg>,
    telemetry: bool,
}

impl RtClusterBuilder {
    /// A cluster of `nodes` SMP nodes (each gets one dedicated proxy
    /// thread).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        RtClusterBuilder {
            nodes,
            procs: Vec::new(),
            shed: false,
            locked: false,
            watchdog_interval: Duration::from_millis(1),
            fault_plan: None,
            supervision: None,
            telemetry: true,
        }
    }

    /// Arms or disarms telemetry *recording* (histograms and the
    /// flight-recorder rings). Counters are always on either way — they
    /// are a handful of relaxed adds per operation. On by default; the
    /// `rt_obs` bench gates the recording-on overhead at ≤5% and uses
    /// `telemetry(false)` as its uninstrumented baseline.
    pub fn telemetry(&mut self, on: bool) -> &mut Self {
        self.telemetry = on;
        self
    }

    /// Enables overload shedding: while a proxy is saturated, its wire
    /// backlog is capped at [`SHED_BACKLOG`] by *rejecting* the oldest
    /// request frames (puts, gets, enqueues). Responses are never shed —
    /// they resolve waits already charged to a client. A rejected request
    /// simply never happens: its sequence number is acknowledged as
    /// rejected, so the sender drops it from retention *without* firing
    /// `lsync`, and the submitter observes the loss through a bounded
    /// wait ([`Endpoint::wait_flag_timeout`]). Off by default: an
    /// unsaturated cluster behaves identically either way.
    pub fn enable_shedding(&mut self) -> &mut Self {
        self.shed = true;
        self
    }

    /// Selects the pre-ring **locked** data plane: `Mutex<VecDeque>`
    /// wire and reply queues and the legacy fixed idle loop (500 spins,
    /// then `yield_now`, never parking) instead of the lock-free rings
    /// with the adaptive idle policy. This is the `--baseline-locked`
    /// ablation of the `rt_throughput` bench; the sequenced wire
    /// protocol and every observable behaviour are identical, only the
    /// data-plane mechanics differ. Off by default.
    pub fn locked_data_plane(&mut self) -> &mut Self {
        self.locked = true;
        self
    }

    /// Sets the watchdog's sampling period (default 1 ms). Shorter
    /// periods make saturation detection snappier at the cost of one
    /// extra wake-up per period.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn watchdog_interval(&mut self, interval: Duration) -> &mut Self {
        assert!(!interval.is_zero(), "watchdog interval must be positive");
        self.watchdog_interval = interval;
        self
    }

    /// Installs a seeded fault plan ([`RtFaultPlan`]): per-packet drop /
    /// duplication / corruption on data frames, plus proxy stalls and
    /// kills. With no plan installed the wire layer pays one never-taken
    /// branch per packet.
    ///
    /// # Panics
    ///
    /// [`RtClusterBuilder::start`] panics if the plan references a node
    /// outside the cluster.
    pub fn fault_plan(&mut self, plan: RtFaultPlan) -> &mut Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables proxy supervision: a dead proxy is respawned on a fresh
    /// epoch after an exponential backoff (`backoff · 2^restarts_so_far`),
    /// up to `max_restarts` times per node; past the budget the node is
    /// condemned (fail-fast on crash loops). Without supervision any
    /// proxy death condemns its node immediately.
    pub fn supervise(&mut self, max_restarts: u32, backoff: Duration) -> &mut Self {
        self.supervision = Some(SupervisorCfg {
            max_restarts,
            backoff,
        });
        self
    }

    /// Adds a user process on `node` with a segment of `mem_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn add_process(&mut self, node: usize, mem_bytes: usize) -> u32 {
        assert!(node < self.nodes, "node {node} out of range");
        self.procs.push((node, mem_bytes));
        (self.procs.len() - 1) as u32
    }

    /// Starts the proxy threads and returns the cluster handle plus one
    /// [`Endpoint`] per declared process (in declaration order).
    #[must_use]
    pub fn start(self) -> (RtCluster, Vec<Endpoint>) {
        let nodes = self.nodes;
        let now = Instant::now();
        let obs_hub = ObsHub::new_at(self.telemetry, now);
        let obs: Vec<Arc<ObsScope>> = (0..nodes)
            .map(|n| obs_hub.register(format!("node{n}"), mproxy_obs::DEFAULT_RING_CAP))
            .collect();
        let wires: Vec<Wire> = (0..nodes).map(|_| Wire::new(self.locked)).collect();
        let procs: Vec<Arc<ProcShared>> = self
            .procs
            .iter()
            .enumerate()
            .map(|(i, &(node, bytes))| {
                Arc::new(ProcShared {
                    asid: i as u32,
                    node,
                    seg: Segment::new(bytes),
                    flags: (0..NUM_FLAGS)
                        .map(|_| Arc::new(AtomicU64::new(0)))
                        .collect(),
                    queues: (0..NUM_QUEUES).map(|_| RqStore::new(self.locked)).collect(),
                    faults: Arc::new(AtomicU64::new(0)),
                    timeouts: Arc::new(AtomicU64::new(0)),
                })
            })
            .collect();

        // Per-process command queues, grouped by node, plus the §4.1
        // ready-bit vector per node.
        let mut per_node: Vec<Seat> = (0..nodes).map(|_| Vec::new()).collect();
        let masks: Vec<Arc<AtomicU64>> =
            (0..nodes).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut cmd_txs = Vec::with_capacity(self.procs.len());
        for &(node, _) in &self.procs {
            let (tx, rx) = spsc::channel(CMDQ_DEPTH);
            let qbit = per_node[node].len() as u32;
            assert!(qbit < 64, "at most 64 processes per node");
            per_node[node].push((cmd_txs.len() as u32, rx));
            cmd_txs.push((tx, node, qbit));
        }

        let shared = Arc::new(Shared {
            procs,
            perms: RwLock::new(HashSet::new()),
            allow_all: AtomicBool::new(true),
            stop: AtomicBool::new(false),
            wires,
            parkers: (0..nodes).map(|_| Parker::new()).collect(),
            ops_serviced: (0..nodes)
                .map(|_| Arc::new(AtomicU64::new(0)))
                .collect(),
            panicked: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
            condemned: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
            any_condemned: AtomicBool::new(false),
            epochs: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            deaths: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            restarts_total: AtomicU64::new(0),
            panic_reasons: (0..nodes).map(|_| Mutex::new(None)).collect(),
            node_state: (0..nodes)
                .map(|_| Mutex::new(NodeState::new(nodes, now)))
                .collect(),
            seats: per_node
                .into_iter()
                .map(|s| Mutex::new(Some(s)))
                .collect(),
            ready_masks: masks.clone(),
            handles: Mutex::new((0..nodes).map(|_| None).collect()),
            health: (0..nodes)
                .map(|_| Arc::new(ProxyHealth::default()))
                .collect(),
            shed_enabled: AtomicBool::new(self.shed),
            faults: self
                .fault_plan
                .map(|plan| RtFaultState::new(plan, nodes)),
            supervision: self.supervision,
            started: now,
            locked_plane: self.locked,
            obs_hub,
            obs,
        });

        let endpoints = cmd_txs
            .into_iter()
            .enumerate()
            .map(|(i, (tx, node, qbit))| Endpoint {
                me: Arc::clone(&shared.procs[i]),
                shared: Arc::clone(&shared),
                cmd: tx,
                ready: Arc::clone(&masks[node]),
                qbit,
                next_alloc: 0,
                obs_tick: 0,
            })
            .collect();

        {
            let mut handles = shared.handles.lock().unwrap_or_else(|e| e.into_inner());
            for (node, slot) in handles.iter_mut().enumerate() {
                let sh = Arc::clone(&shared);
                *slot = Some(
                    std::thread::Builder::new()
                        .name(format!("mproxy-{node}"))
                        .spawn(move || run_proxy(node, sh))
                        .expect("spawn proxy thread"),
                );
            }
        }

        let watchdog = {
            let sh = Arc::clone(&shared);
            let interval = self.watchdog_interval;
            std::thread::Builder::new()
                .name("mproxy-watchdog".into())
                .spawn(move || watchdog_main(&sh, interval))
                .expect("spawn watchdog thread")
        };

        let supervisor = shared.supervision.map(|_| {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mproxy-supervisor".into())
                .spawn(move || crate::supervisor::supervisor_main(&sh))
                .expect("spawn supervisor thread")
        });

        (
            RtCluster {
                shared,
                watchdog: Some(watchdog),
                supervisor,
            },
            endpoints,
        )
    }
}

/// A running cluster of proxy threads.
pub struct RtCluster {
    shared: Arc<Shared>,
    watchdog: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl RtCluster {
    /// Disables allow-all: only explicit grants pass the protection check.
    pub fn restrict(&self) {
        self.shared.allow_all.store(false, Ordering::Relaxed);
    }

    /// Grants `src` access to address space `dst`.
    pub fn grant(&self, src: u32, dst: u32) {
        self.shared
            .perms
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert((src, dst));
    }

    /// Revokes a grant.
    pub fn revoke(&self, src: u32, dst: u32) {
        self.shared
            .perms
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&(src, dst));
    }

    /// Total commands + packets serviced by node `node`'s proxy
    /// (cumulative across respawns).
    #[must_use]
    pub fn ops_serviced(&self, node: usize) -> u64 {
        self.shared.ops_serviced[node].load(Ordering::Relaxed)
    }

    /// The watchdog's last utilisation sample for node `node`'s proxy:
    /// fraction of the sampling period spent servicing work rather than
    /// idle-polling, in `[0, 1]`. Zero until the first sample lands.
    #[must_use]
    pub fn utilization(&self, node: usize) -> f64 {
        f64::from_bits(self.shared.health[node].util_bits.load(Ordering::Relaxed))
    }

    /// True while node `node`'s proxy sits above the paper's stable
    /// utilisation bound (§5.4: past 50% the M/M/1 queueing delay grows
    /// without bound). Clears once utilisation falls back under
    /// [`RECOVERY_UTILIZATION`].
    #[must_use]
    pub fn saturated(&self, node: usize) -> bool {
        self.shared.health[node].saturated.load(Ordering::Acquire)
    }

    /// Number of times node `node`'s proxy has crossed into saturation.
    #[must_use]
    pub fn saturation_events(&self, node: usize) -> u64 {
        self.shared.health[node]
            .saturation_events
            .load(Ordering::Relaxed)
    }

    /// Request packets rejected on node `node` by overload shedding
    /// ([`RtClusterBuilder::enable_shedding`]).
    #[must_use]
    pub fn shed_count(&self, node: usize) -> u64 {
        self.shared.health[node].shed.load(Ordering::Relaxed)
    }

    /// Nodes whose proxy is dead *right now* (panicked and not yet
    /// respawned; a live query).
    #[must_use]
    pub fn panicked_nodes(&self) -> Vec<usize> {
        self.shared
            .panicked
            .iter()
            .enumerate()
            .filter(|(_, p)| p.load(Ordering::Acquire))
            .map(|(n, _)| n)
            .collect()
    }

    /// Nodes condemned as permanently dead (crash-looped past the restart
    /// budget, or died without supervision).
    #[must_use]
    pub fn condemned_nodes(&self) -> Vec<usize> {
        self.shared
            .condemned
            .iter()
            .enumerate()
            .filter(|(_, c)| c.load(Ordering::Acquire))
            .map(|(n, _)| n)
            .collect()
    }

    /// Node `node`'s current proxy incarnation (0 until the first
    /// respawn).
    #[must_use]
    pub fn epoch(&self, node: usize) -> u64 {
        self.shared.epochs[node].load(Ordering::Relaxed)
    }

    /// Times node `node`'s proxy has died by panic.
    #[must_use]
    pub fn deaths(&self, node: usize) -> u64 {
        self.shared.deaths[node].load(Ordering::Relaxed)
    }

    /// Total proxy respawns performed by supervision.
    #[must_use]
    pub fn restarts_total(&self) -> u64 {
        self.shared.restarts_total.load(Ordering::Relaxed)
    }

    /// The last panic payload recorded for node `node`'s proxy, when it
    /// was a string.
    #[must_use]
    pub fn panic_reason(&self, node: usize) -> Option<String> {
        self.shared.panic_reason(node)
    }

    /// Injection counters of the installed fault plan, if any.
    #[must_use]
    pub fn fault_counts(&self) -> Option<RtFaultCounts> {
        self.shared.faults.as_ref().map(RtFaultState::counts)
    }

    /// Arms or disarms telemetry recording at runtime (histograms and
    /// flight recorders; counters are always on).
    pub fn set_telemetry(&self, on: bool) {
        self.shared.obs_hub.set_recording(on);
    }

    /// Whether telemetry recording is armed.
    #[must_use]
    pub fn telemetry(&self) -> bool {
        self.shared.obs_hub.recording()
    }

    /// Point-in-time telemetry snapshot of every node scope — counters
    /// and histograms, taken without stopping the proxies. Cross-node
    /// counter invariants (e.g. `msgs_out == ops_applied + sheds`) only
    /// hold on a quiesced cluster.
    #[must_use]
    pub fn obs_snapshot(&self, label: &str) -> Snapshot {
        self.shared.obs_hub.snapshot(label)
    }

    /// A handle on the telemetry hub that outlives the cluster — take it
    /// before [`RtCluster::shutdown`] to snapshot or dump traces *after*
    /// shutdown, when every proxy has exited and the cross-node counter
    /// invariants are exact.
    #[must_use]
    pub fn obs_handle(&self) -> Arc<ObsHub> {
        Arc::clone(&self.shared.obs_hub)
    }

    /// Dump every node's flight-recorder ring (oldest event first).
    #[must_use]
    pub fn trace_dump(&self) -> Vec<(String, Vec<TraceEvent>)> {
        self.shared.obs_hub.trace_dump()
    }

    /// Surviving flight-recorder events for one node.
    #[must_use]
    pub fn flight_events(&self, node: usize) -> Vec<TraceEvent> {
        self.shared.obs[node].events()
    }

    /// Render every node's flight recorder as a Chrome `trace_event`
    /// (Perfetto) JSON document.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        mproxy_obs::chrome::chrome_trace(&self.trace_dump())
    }

    /// Stops the proxy threads, waits for them to exit, and reports what
    /// it saw: proxies dead by panic, proxies wedged past the default
    /// 10 s deadline (detached, not joined), and the respawn total.
    /// Completes even with endpoint operations still in flight: surviving
    /// proxies drain their queues and retention buffers before exiting.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.stop_and_join(DEFAULT_SHUTDOWN_DEADLINE)
    }

    /// [`RtCluster::shutdown`] with an explicit deadline for the
    /// slowest proxy.
    pub fn shutdown_with_deadline(mut self, deadline: Duration) -> ShutdownReport {
        self.stop_and_join(deadline)
    }

    fn stop_and_join(&mut self, deadline: Duration) -> ShutdownReport {
        self.shared.stop.store(true, Ordering::Relaxed);
        for p in &self.shared.parkers {
            p.wake();
        }
        // The supervisor first: it observes stop promptly, condemns any
        // node that is dead right now (so surviving proxies stop waiting
        // for its acknowledgements), and exits.
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        let handles: Vec<Option<JoinHandle<()>>> = {
            let mut guard = self.shared.handles.lock().unwrap_or_else(|e| e.into_inner());
            guard.iter_mut().map(Option::take).collect()
        };
        let limit = Instant::now() + deadline;
        let mut report = ShutdownReport {
            restarts: self.shared.restarts_total.load(Ordering::Relaxed),
            ..ShutdownReport::default()
        };
        for (node, handle) in handles.into_iter().enumerate() {
            let Some(handle) = handle else { continue };
            loop {
                if handle.is_finished() {
                    let _ = handle.join();
                    break;
                }
                if Instant::now() >= limit {
                    // Wedged (e.g. stuck in foreign code): report it,
                    // condemn it so nobody waits on it, detach the
                    // handle rather than hanging the shutdown.
                    report.wedged_nodes.push(node);
                    condemn(&self.shared, node);
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        for (node, p) in self.shared.panicked.iter().enumerate() {
            if p.load(Ordering::Acquire) {
                report.panicked_nodes.push(ProxyPanic {
                    node,
                    reason: self.shared.panic_reason(node),
                });
            }
        }
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
        report
    }
}

impl Drop for RtCluster {
    fn drop(&mut self) {
        let _ = self.stop_and_join(DEFAULT_SHUTDOWN_DEADLINE);
    }
}

/// A user process's handle: submits commands, reads/writes its own
/// segment, observes flags and queues. Not `Clone` — a command queue has
/// exactly one producer.
pub struct Endpoint {
    me: Arc<ProcShared>,
    shared: Arc<Shared>,
    cmd: spsc::Producer,
    ready: Arc<AtomicU64>,
    qbit: u32,
    next_alloc: u64,
    /// Decimation tick for the sampled `Enqueue` trace (see
    /// [`OBS_SAMPLE_MASK`]).
    obs_tick: u64,
}

impl Endpoint {
    /// This process's address-space id.
    #[must_use]
    pub fn asid(&self) -> u32 {
        self.me.asid
    }

    /// The node this process runs on.
    #[must_use]
    pub fn node(&self) -> usize {
        self.me.node
    }

    /// Bump-allocates `n` bytes in this process's segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment is exhausted.
    pub fn alloc(&mut self, n: u64) -> u64 {
        let addr = self.next_alloc.next_multiple_of(64);
        assert!(
            self.me.seg.check(addr, n as usize),
            "segment exhausted: need {n} at {addr} of {}",
            self.me.seg.size()
        );
        self.next_alloc = addr + n;
        addr
    }

    /// Local segment accessor.
    #[must_use]
    pub fn seg(&self) -> &Segment {
        &self.me.seg
    }

    /// Protection faults charged to this process.
    #[must_use]
    pub fn faults(&self) -> u64 {
        self.me.faults.load(Ordering::Relaxed)
    }

    /// Bounded waits that expired (or aborted on a dead proxy) for this
    /// process.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.me.timeouts.load(Ordering::Relaxed)
    }

    /// Current value of one of this process's flags.
    #[must_use]
    pub fn flag(&self, f: FlagId) -> u64 {
        self.me.flags[f.0 as usize].load(Ordering::Acquire)
    }

    /// Waits until flag `f` reaches `target` through the shared adaptive
    /// backoff (spin, then yield so oversubscribed hosts still make
    /// progress).
    pub fn wait_flag(&self, f: FlagId, target: u64) {
        let mut backoff = Backoff::new();
        while self.flag(f) < target {
            backoff.snooze();
        }
    }

    /// Bounded [`Endpoint::wait_flag`]: gives up after `timeout`, and
    /// aborts immediately if a proxy has been condemned — the wait could
    /// otherwise never complete. A proxy that merely died *under
    /// supervision* does not abort the wait: its respawn may still
    /// complete the operation within the timeout.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] when the deadline passes,
    /// [`RtError::ProxyDown`] when a proxy is permanently gone. Both bump
    /// [`Endpoint::timeouts`].
    pub fn wait_flag_timeout(
        &self,
        f: FlagId,
        target: u64,
        timeout: Duration,
    ) -> Result<(), RtError> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Backoff::new();
        loop {
            let observed = self.flag(f);
            if observed >= target {
                return Ok(());
            }
            if let Some(node) = self.shared.condemned_node() {
                self.me.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(RtError::ProxyDown {
                    node,
                    reason: self.shared.panic_reason(node),
                });
            }
            if Instant::now() >= deadline {
                self.me.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(RtError::Timeout {
                    flag: f.0,
                    target,
                    observed,
                });
            }
            backoff.snooze();
        }
    }

    /// Non-blocking dequeue from one of this process's own remote queues.
    /// The payload is a shared buffer: it was snapshotted once at the
    /// sender's proxy and travelled the wire without further copies.
    #[must_use]
    pub fn rq_try_recv(&self, rq: RqId) -> Option<Bytes> {
        self.me.queues[rq.0 as usize].pop()
    }

    fn submit(&mut self, mut e: Entry) {
        let obs = &self.shared.obs[self.me.node];
        obs.inc(Ctr::OpsSubmitted);
        self.obs_tick = self.obs_tick.wrapping_add(1);
        if obs.recording() && self.obs_tick & OBS_SAMPLE_MASK == 0 {
            // Stamp for the command-queue-wait and lsync-RTT histograms.
            // The clock read itself is the dominant recording-on cost on
            // this path (kvm-clock reads are slow inside VMs), so the
            // stamp is taken on sampled submissions only; downstream
            // recorders key off `t_ns != 0` and inherit the decimation.
            e.t_ns = self.shared.rel_ns(Instant::now());
            obs.trace_at(e.t_ns, EventKind::Enqueue, self.me.asid as u16, e.op);
        }
        if !self.cmd.try_send(e) {
            // Queue full: the bounded ring is backpressuring us. Count
            // the stall, then fall back to the blocking send.
            obs.inc(Ctr::CreditStalls);
            obs.trace_at(
                self.shared.rel_ns(Instant::now()),
                EventKind::CreditStall,
                self.me.asid as u16,
                e.op,
            );
            self.cmd.send(e);
        }
        // §4.1: flip the shared ready bit so the proxy's idle scan probes
        // one word instead of every queue head — then wake the proxy in
        // case it parked.
        self.ready.fetch_or(1 << self.qbit, Ordering::Release);
        self.shared.parkers[self.me.node].wake();
    }

    fn pack_sync(lsync: Option<FlagId>, rsync: Option<FlagId>) -> u64 {
        let l = lsync.map_or(0, |f| u64::from(f.0) + 1);
        let r = rsync.map_or(0, |f| u64::from(f.0) + 1);
        (l << 32) | r
    }

    /// `PUT`: copy `nbytes` from local `laddr` to `raddr` in `dst`'s
    /// space. `lsync` increments on remote acknowledgement; `rsync` (a
    /// flag of `dst`) increments on delivery.
    pub fn put(
        &mut self,
        laddr: u64,
        dst: u32,
        raddr: u64,
        nbytes: u32,
        lsync: Option<FlagId>,
        rsync: Option<FlagId>,
    ) {
        self.submit(Entry {
            op: OP_PUT,
            args: [
                laddr,
                raddr,
                (u64::from(dst) << 32) | u64::from(nbytes),
                Self::pack_sync(lsync, rsync),
            ],
            t_ns: 0,
        });
    }

    /// `GET`: copy `nbytes` from `raddr` in `dst`'s space to local
    /// `laddr`; `lsync` increments when the data has landed.
    pub fn get(&mut self, laddr: u64, dst: u32, raddr: u64, nbytes: u32, lsync: Option<FlagId>) {
        self.submit(Entry {
            op: OP_GET,
            args: [
                laddr,
                raddr,
                (u64::from(dst) << 32) | u64::from(nbytes),
                Self::pack_sync(lsync, None),
            ],
            t_ns: 0,
        });
    }

    /// Blocking GET convenience: issues the get on flag 63 and waits
    /// (adaptive backoff) for completion.
    pub fn get_blocking(&mut self, laddr: u64, dst: u32, raddr: u64, nbytes: u32) {
        let f = FlagId((NUM_FLAGS - 1) as u32);
        let target = self.flag(f) + 1;
        self.get(laddr, dst, raddr, nbytes, Some(f));
        self.wait_flag(f, target);
    }

    /// Bounded [`Endpoint::get_blocking`].
    ///
    /// # Errors
    ///
    /// See [`Endpoint::wait_flag_timeout`]; on error the fetched data must
    /// be treated as absent (it may still land later).
    pub fn get_blocking_timeout(
        &mut self,
        laddr: u64,
        dst: u32,
        raddr: u64,
        nbytes: u32,
        timeout: Duration,
    ) -> Result<(), RtError> {
        let f = FlagId((NUM_FLAGS - 1) as u32);
        let target = self.flag(f) + 1;
        self.get(laddr, dst, raddr, nbytes, Some(f));
        self.wait_flag_timeout(f, target, timeout)
    }

    /// `ENQ`: append `nbytes` from local `laddr` to queue `rq` of `dst`.
    pub fn enq(
        &mut self,
        laddr: u64,
        dst: u32,
        rq: RqId,
        nbytes: u32,
        lsync: Option<FlagId>,
        rsync: Option<FlagId>,
    ) {
        self.submit(Entry {
            op: OP_ENQ,
            args: [
                laddr,
                u64::from(rq.0),
                (u64::from(dst) << 32) | u64::from(nbytes),
                Self::pack_sync(lsync, rsync),
            ],
            t_ns: 0,
        });
    }
}

fn unpack_sync(v: u64) -> (Option<u32>, Option<u32>) {
    let l = (v >> 32) as u32;
    let r = v as u32;
    ((l != 0).then(|| l - 1), (r != 0).then(|| r - 1))
}

/// Pushes one wire frame towards `dst`, stashing it in the caller's
/// pending queue if the ring is full or earlier frames are already
/// stashed (FIFO per destination).
fn push_wire(shared: &Shared, pending: &mut VecDeque<WireMsg>, dst: usize, msg: WireMsg) {
    if !pending.is_empty() {
        pending.push_back(msg);
        return;
    }
    match shared.wires[dst].try_push(msg) {
        Ok(()) => shared.parkers[dst].wake(),
        Err(back) => pending.push_back(back),
    }
}

/// Retries stashed outbound frames and owed local deliveries; true if
/// any progress was made. Pending output towards a condemned node is
/// discarded — nobody will ever drain that ring.
fn flush_pending(shared: &Shared, st: &mut NodeState) -> bool {
    let mut progressed = false;
    for (dst, q) in st.pending_wire.iter_mut().enumerate() {
        if q.is_empty() {
            continue;
        }
        if shared.condemned[dst].load(Ordering::Relaxed) {
            q.clear();
            continue;
        }
        let mut pushed = false;
        while let Some(m) = q.pop_front() {
            match shared.wires[dst].try_push(m) {
                Ok(()) => pushed = true,
                Err(back) => {
                    q.push_front(back);
                    break;
                }
            }
        }
        if pushed {
            shared.parkers[dst].wake();
            progressed = true;
        }
    }
    while let Some(p) = st.pending_rq.pop_front() {
        let PendingEnq {
            dst,
            rq,
            data,
            rsync,
        } = p;
        match shared.procs[dst as usize].queues[rq as usize].try_push(data) {
            Ok(()) => {
                if let Some(f) = rsync {
                    shared.set_flag(dst, f);
                }
                progressed = true;
            }
            Err(data) => {
                st.pending_rq.push_front(PendingEnq {
                    dst,
                    rq,
                    data,
                    rsync,
                });
                break;
            }
        }
    }
    progressed
}

/// Sequences, retains, and transmits one data frame from `node` towards
/// `dst_node`, applying the fault injector's verdict (drop / duplicate /
/// corrupt) to the transmission — never to the retained copy, which is
/// what retransmission re-sends.
#[allow(clippy::too_many_arguments)]
fn send_data(
    shared: &Shared,
    st: &mut NodeState,
    node: usize,
    now: Instant,
    dst_node: usize,
    body: Payload,
    lsync: Option<(u32, u32)>,
    submit_ns: u64,
) {
    if shared.condemned[dst_node].load(Ordering::Relaxed) {
        // The destination is permanently gone: the op is lost, its lsync
        // never fires (clients observe that through bounded waits), and
        // a GET's CCB is cancelled so the token can't dangle.
        if let Payload::GetReq { token, .. } = body {
            st.ccbs.remove(&token);
        }
        return;
    }
    let obs = &shared.obs[node];
    obs.inc(Ctr::MsgsOut);
    obs.add(Ctr::BytesOut, body.wire_bytes());
    let tx = &mut st.tx[dst_node];
    let seq = tx.next_seq;
    tx.next_seq += 1;
    if tx.retained.is_empty() {
        tx.last_progress = now;
    }
    tx.retained.push_back(Retained {
        seq,
        body: body.clone(),
        lsync,
        // The loop's `now` re-expressed on the shared epoch: pure
        // arithmetic, no extra clock read on the proxy's hot path.
        sent_ns: shared.rel_ns(now),
        submit_ns,
    });
    let mut corrupt = false;
    let mut copies = 1;
    if let Some(faults) = &shared.faults {
        if faults.packet_faults_possible() {
            let fate = faults.judge(node);
            if fate.drop || fate.corrupt || fate.duplicate {
                obs.inc(Ctr::FaultsInjected);
                let kind = if fate.drop {
                    EventKind::FaultDrop
                } else if fate.corrupt {
                    EventKind::FaultCorrupt
                } else {
                    EventKind::FaultDup
                };
                obs.trace_at(shared.rel_ns(now), kind, dst_node as u16, seq as u32);
            }
            if fate.drop {
                return; // retention + RTO recover it
            }
            corrupt = fate.corrupt;
            if fate.duplicate {
                copies = 2;
            }
        }
    }
    st.obs_tick = st.obs_tick.wrapping_add(1);
    if st.obs_tick & OBS_SAMPLE_MASK == 0 {
        obs.trace_at(
            shared.rel_ns(now),
            EventKind::Send,
            dst_node as u16,
            seq as u32,
        );
    }
    for _ in 0..copies {
        push_wire(
            shared,
            &mut st.pending_wire[dst_node],
            dst_node,
            WireMsg::Data {
                from: node,
                seq,
                corrupt,
                body: body.clone(),
            },
        );
    }
}

/// Consumes one cumulative acknowledgement from `from`: advances the
/// watermark, releases retention, fires `lsync` flags for accepted
/// frames, and cancels the CCBs of rejected GETs.
fn process_ack(
    shared: &Shared,
    st: &mut NodeState,
    node: usize,
    now: Instant,
    from: usize,
    upto: u64,
    rejected: &[u64],
) {
    let NodeState {
        tx,
        ccbs,
        obs_tick,
        ..
    } = st;
    let tx = &mut tx[from];
    if upto <= tx.acked {
        return;
    }
    tx.acked = upto;
    tx.last_progress = now;
    let obs = &shared.obs[node];
    let now_ns = shared.rel_ns(now);
    while tx.retained.front().is_some_and(|r| r.seq <= upto) {
        let r = tx.retained.pop_front().expect("front checked above");
        *obs_tick = obs_tick.wrapping_add(1);
        let sampled = *obs_tick & OBS_SAMPLE_MASK == 0;
        // Wire RTT: first transmission → the releasing cumulative ack.
        if sampled {
            obs.record(HistId::WireRttNs, now_ns.saturating_sub(r.sent_ns));
        }
        if rejected.contains(&r.seq) {
            // Shed at the receiver: the op never happened. No lsync; a
            // rejected GET's CCB is cancelled.
            if let Payload::GetReq { token, .. } = r.body {
                ccbs.remove(&token);
            }
        } else if let Some((proc, flag)) = r.lsync {
            // Lsync round trip: user submit stamp → the ack that fires
            // the flag (0 means the stamp predates recording — skip).
            if r.submit_ns != 0 {
                obs.record(HistId::LsyncRttNs, now_ns.saturating_sub(r.submit_ns));
            }
            shared.set_flag(proc, flag);
        }
    }
}

/// Applies one in-order, uncorrupted data frame from node `from`.
fn apply_data(
    shared: &Shared,
    st: &mut NodeState,
    node: usize,
    now: Instant,
    from: usize,
    body: Payload,
) {
    match body {
        Payload::Put {
            dst,
            raddr,
            data,
            rsync,
        } => {
            let dp = &shared.procs[dst as usize];
            if dp.seg.check(raddr, data.len()) {
                dp.seg.write(raddr, &data);
                if let Some(f) = rsync {
                    shared.set_flag(dst, f);
                }
            }
        }
        Payload::GetReq {
            src_asid,
            dst,
            raddr,
            nbytes,
            token,
        } => {
            let dp = &shared.procs[dst as usize];
            let data = if dp.seg.check(raddr, nbytes as usize) {
                Some(dp.seg.read(raddr, nbytes as usize))
            } else {
                shared.fault(src_asid);
                None
            };
            send_data(
                shared,
                st,
                node,
                now,
                from,
                Payload::GetReply { token, data },
                None,
                0,
            );
        }
        Payload::GetReply { token, data } => {
            if let Some(ccb) = st.ccbs.remove(&token) {
                if let Some(data) = data {
                    let take = (ccb.nbytes as usize).min(data.len());
                    shared.procs[ccb.proc as usize]
                        .seg
                        .write(ccb.laddr, &data[..take]);
                }
                if let Some(f) = ccb.lsync {
                    shared.set_flag(ccb.proc, f);
                }
            }
        }
        Payload::Enq {
            dst,
            rq,
            data,
            rsync,
        } => {
            // FIFO per queue: anything already owed goes first.
            if !st.pending_rq.is_empty() {
                st.pending_rq.push_back(PendingEnq {
                    dst,
                    rq,
                    data,
                    rsync,
                });
                return;
            }
            match shared.procs[dst as usize].queues[rq as usize].try_push(data) {
                Ok(()) => {
                    if let Some(f) = rsync {
                        shared.set_flag(dst, f);
                    }
                }
                Err(data) => st.pending_rq.push_back(PendingEnq {
                    dst,
                    rq,
                    data,
                    rsync,
                }),
            }
        }
    }
}

/// Handles one inbound wire frame on node `node`.
fn handle_packet(shared: &Shared, st: &mut NodeState, node: usize, now: Instant, msg: WireMsg) {
    let obs = &shared.obs[node];
    match msg {
        WireMsg::Data {
            from,
            seq,
            corrupt,
            body,
        } => {
            obs.inc(Ctr::MsgsIn);
            obs.add(Ctr::BytesIn, body.wire_bytes());
            let rx = &mut st.rx[from];
            if seq <= rx.delivered {
                // Duplicate (injected, or a retransmission racing the
                // ack): drop it, re-ack so the sender converges.
                obs.inc(Ctr::DedupDrops);
                obs.trace_at(
                    shared.rel_ns(now),
                    EventKind::DedupDrop,
                    from as u16,
                    seq as u32,
                );
                rx.ack_pending = true;
                return;
            }
            if corrupt || seq != rx.delivered + 1 {
                // Damaged or out of order (a gap means an earlier frame
                // was dropped): don't deliver, ask for retransmission.
                obs.inc(Ctr::DamagedDrops);
                rx.nack_pending = true;
                return;
            }
            rx.delivered = seq;
            rx.ack_pending = true;
            obs.inc(Ctr::OpsApplied);
            apply_data(shared, st, node, now, from, body);
        }
        WireMsg::AckUpto {
            from,
            upto,
            rejected,
        } => {
            obs.inc(Ctr::AcksIn);
            // Acks arrive roughly per service batch under load, so this
            // trace is decimated like the other hot-path events. The
            // resync span in the Chrome exporter tolerates a missed ack:
            // it falls back to the (never-sampled) Hello event.
            st.obs_tick = st.obs_tick.wrapping_add(1);
            if st.obs_tick & OBS_SAMPLE_MASK == 0 {
                obs.trace_at(
                    shared.rel_ns(now),
                    EventKind::AckIn,
                    from as u16,
                    upto as u32,
                );
            }
            process_ack(shared, st, node, now, from, upto, &rejected);
        }
        WireMsg::Nack { from, since } => {
            obs.inc(Ctr::NacksIn);
            obs.trace_at(
                shared.rel_ns(now),
                EventKind::NackIn,
                from as u16,
                since as u32,
            );
            st.tx[from].nack_hint = true;
        }
        WireMsg::Hello { from, epoch } => {
            // A peer's proxy respawned. Re-ack our watermark so its
            // retention drains, and retransmit ours immediately — its
            // wire ring may hold our frames from before the crash, but
            // timers would cover any gap slowly; the hello bounds the
            // resync to one round trip.
            obs.trace_at(
                shared.rel_ns(now),
                EventKind::Hello,
                from as u16,
                epoch as u32,
            );
            st.rx[from].ack_pending = true;
            st.tx[from].nack_hint = true;
        }
    }
}

/// Retransmission pass: for every destination with unacknowledged
/// retention, re-send from the buffer head if a NACK asked for it or the
/// RTO expired. Frames go straight to the destination ring (never the
/// pending stash — retransmits are redundant by design; the stash must
/// stay FIFO-clean for new traffic).
fn retransmit(shared: &Shared, st: &mut NodeState, node: usize, now: Instant) {
    let NodeState {
        tx, pending_wire, ..
    } = st;
    for (dst, tx) in tx.iter_mut().enumerate() {
        if tx.retained.is_empty() {
            tx.nack_hint = false;
            continue;
        }
        if !pending_wire[dst].is_empty() || shared.condemned[dst].load(Ordering::Relaxed) {
            continue;
        }
        if !tx.nack_hint && now.duration_since(tx.last_progress) < RTO {
            continue;
        }
        tx.nack_hint = false;
        tx.last_progress = now;
        let obs = &shared.obs[node];
        let mut pushed = false;
        let mut resent = 0u32;
        'frames: for r in tx.retained.iter().take(RESEND_BURST) {
            let mut corrupt = false;
            let mut copies = 1;
            if let Some(faults) = &shared.faults {
                if faults.packet_faults_possible() {
                    let fate = faults.judge(node);
                    if fate.drop || fate.corrupt || fate.duplicate {
                        obs.inc(Ctr::FaultsInjected);
                    }
                    if fate.drop {
                        continue; // the *retransmit* was dropped; next pass retries
                    }
                    corrupt = fate.corrupt;
                    if fate.duplicate {
                        copies = 2;
                    }
                }
            }
            for _ in 0..copies {
                let frame = WireMsg::Data {
                    from: node,
                    seq: r.seq,
                    corrupt,
                    body: r.body.clone(),
                };
                if shared.wires[dst].try_push(frame).is_err() {
                    break 'frames;
                }
                pushed = true;
            }
            resent += 1;
        }
        if resent > 0 {
            obs.add(Ctr::Retransmits, u64::from(resent));
            obs.trace_at(shared.rel_ns(now), EventKind::Retransmit, dst as u16, resent);
        }
        if pushed {
            shared.parkers[dst].wake();
        }
    }
}

/// Emits the acknowledgement state accumulated this pass: one cumulative
/// [`WireMsg::AckUpto`] per source that delivered (or was shed) anything,
/// one [`WireMsg::Nack`] per source that sent a gap or corrupt frame.
fn flush_acks(shared: &Shared, st: &mut NodeState, node: usize) {
    let NodeState {
        rx, pending_wire, ..
    } = st;
    let obs = &shared.obs[node];
    for (src, rx) in rx.iter_mut().enumerate() {
        if rx.ack_pending || !rx.rejected_new.is_empty() {
            rx.ack_pending = false;
            let rejected = std::mem::take(&mut rx.rejected_new);
            obs.inc(Ctr::AcksOut);
            push_wire(
                shared,
                &mut pending_wire[src],
                src,
                WireMsg::AckUpto {
                    from: node,
                    upto: rx.delivered,
                    rejected,
                },
            );
        }
        if rx.nack_pending {
            rx.nack_pending = false;
            obs.inc(Ctr::NacksOut);
            push_wire(
                shared,
                &mut pending_wire[src],
                src,
                WireMsg::Nack {
                    from: node,
                    since: rx.delivered,
                },
            );
        }
    }
}

/// Decodes and executes one user command on node `node` (protection and
/// bounds checks, then a sequenced transmission towards the destination).
fn handle_command(
    shared: &Shared,
    st: &mut NodeState,
    node: usize,
    now: Instant,
    src: u32,
    e: Entry,
) {
    let laddr = e.args[0];
    let dst = (e.args[2] >> 32) as u32;
    let nbytes = e.args[2] as u32;
    let (lsync, rsync) = unpack_sync(e.args[3]);
    if dst as usize >= shared.procs.len() || !shared.allowed(src, dst) {
        shared.fault(src);
        return;
    }
    let src_proc = &shared.procs[src as usize];
    match e.op {
        OP_PUT => {
            if !src_proc.seg.check(laddr, nbytes as usize) {
                shared.fault(src);
                return;
            }
            let data = src_proc.seg.read(laddr, nbytes as usize);
            let raddr = e.args[1];
            let dst_node = shared.procs[dst as usize].node;
            send_data(
                shared,
                st,
                node,
                now,
                dst_node,
                Payload::Put {
                    dst,
                    raddr,
                    data,
                    rsync,
                },
                lsync.map(|l| (src, l)),
                e.t_ns,
            );
        }
        OP_GET => {
            if !src_proc.seg.check(laddr, nbytes as usize) {
                shared.fault(src);
                return;
            }
            let token = st.next_token;
            st.next_token += 1;
            st.ccbs.insert(
                token,
                CcbGet {
                    proc: src,
                    laddr,
                    nbytes,
                    lsync,
                },
            );
            let dst_node = shared.procs[dst as usize].node;
            send_data(
                shared,
                st,
                node,
                now,
                dst_node,
                Payload::GetReq {
                    src_asid: src,
                    dst,
                    raddr: e.args[1],
                    nbytes,
                    token,
                },
                None,
                e.t_ns,
            );
        }
        OP_ENQ => {
            if !src_proc.seg.check(laddr, nbytes as usize) {
                shared.fault(src);
                return;
            }
            let rq = e.args[1] as u32;
            if rq as usize >= NUM_QUEUES {
                shared.fault(src);
                return;
            }
            let data = src_proc.seg.read(laddr, nbytes as usize);
            let dst_node = shared.procs[dst as usize].node;
            send_data(
                shared,
                st,
                node,
                now,
                dst_node,
                Payload::Enq {
                    dst,
                    rq,
                    data,
                    rsync,
                },
                lsync.map(|l| (src, l)),
                e.t_ns,
            );
        }
        _ => shared.fault(src),
    }
}

/// One incarnation of a node's proxy: takes the node's seat (command
/// consumers) and protocol state, runs the service loop under
/// `catch_unwind`, and on panic returns the seat, records the payload,
/// and raises the panic bit — so a supervisor can respawn a successor
/// that resumes from the exact same state.
pub(crate) fn run_proxy(node: usize, shared: Arc<Shared>) {
    let Some(mut seat) = shared.seats[node]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
    else {
        return; // a racing incarnation holds the seat; let it serve
    };
    let mut guard = shared.node_state[node]
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        proxy_main(node, &mut seat, &mut guard, &shared);
    }));
    // The guard is dropped here, *outside* any unwinding — the node-state
    // mutex is never poisoned by a proxy death.
    drop(guard);
    *shared.seats[node].lock().unwrap_or_else(|e| e.into_inner()) = Some(seat);
    if let Err(payload) = result {
        let reason = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        let obs = &shared.obs[node];
        obs.inc(Ctr::Kills);
        obs.trace(EventKind::Kill, node as u16, 0);
        if std::env::var_os("MPROXY_OBS_DUMP_ON_PANIC").is_some() {
            eprintln!(
                "mproxy-rt: node {node} flight recorder at death:\n{}",
                obs.events()
                    .iter()
                    .map(|e| format!(
                        "  t={}ns {} a={} b={}",
                        e.t_ns,
                        e.kind.name(),
                        e.a,
                        e.b
                    ))
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
        shared.deaths[node].fetch_add(1, Ordering::Relaxed);
        *shared.panic_reasons[node]
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(reason);
        if shared.supervision.is_none() || shared.stop.load(Ordering::Relaxed) {
            // Nobody will respawn this node (no supervisor, or it is
            // already shutting down): condemn so waits and drains abort.
            condemn(&shared, node);
        }
        // Last: the panic bit is what the supervisor polls, and every
        // observer must already see the seat, the reason and (possibly)
        // the condemnation when it flips.
        shared.panicked[node].store(true, Ordering::Release);
    }
}

/// The proxy service loop: the Figure 5 loop over real queues and wires,
/// plus the reliability layer (retention, acks, retransmission), the
/// fault injector's time-domain hooks, and condemned-peer purging.
fn proxy_main(
    node: usize,
    seat: &mut [(u32, spsc::Consumer)],
    st: &mut NodeState,
    shared: &Shared,
) {
    let parker = &shared.parkers[node];
    parker.register();
    let ready = &*shared.ready_masks[node];
    let wire_rx = &shared.wires[node];
    let health = &shared.health[node];
    let mut batch: Vec<Entry> = Vec::with_capacity(SERVICE_BURST);
    let mut backoff = Backoff::new();
    let mut legacy_idle_spins = 0u32;
    let mut stop_flush_tries = 0u32;
    loop {
        let now = Instant::now();
        // Injected time-domain faults: kills panic right here (the
        // catch_unwind in run_proxy turns that into a death the
        // supervisor can see); stalls freeze the loop wholesale.
        if let Some(faults) = &shared.faults {
            if faults.has_timed_faults() {
                let ops = shared.ops_serviced[node].load(Ordering::Relaxed);
                if let Some(threshold) = faults.kill_due(node, ops) {
                    panic!("injected kill: node {node} after {threshold} ops");
                }
                if let Some(order) = faults.stall_due(node, now.duration_since(shared.started)) {
                    if order.interruptible {
                        let _ = crate::idle::sleep_unless(order.remaining, &shared.stop);
                    } else {
                        // A wedge: models a proxy stuck in foreign code,
                        // deaf even to the stop signal.
                        std::thread::sleep(order.remaining);
                    }
                    continue;
                }
            }
        }
        // Purge traffic towards condemned peers: their rings will never
        // drain and their acks will never come. Retained GETs cancel
        // their CCBs; lsyncs never fire (the op is lost, and bounded
        // waits report it).
        if shared.any_condemned.load(Ordering::Acquire) {
            for dst in 0..shared.wires.len() {
                if dst == node || !shared.condemned[dst].load(Ordering::Relaxed) {
                    continue;
                }
                st.pending_wire[dst].clear();
                let NodeState { tx, ccbs, .. } = &mut *st;
                for r in tx[dst].retained.drain(..) {
                    if let Payload::GetReq { token, .. } = r.body {
                        ccbs.remove(&token);
                    }
                }
                tx[dst].nack_hint = false;
            }
        }
        // A fresh incarnation owes its peers a Hello (and owes itself a
        // retransmission pass — peers may have acked frames the wire
        // lost while the node was down).
        if st.hello_pending {
            st.hello_pending = false;
            let epoch = st.epoch;
            let obs = &shared.obs[node];
            obs.trace_at(shared.rel_ns(now), EventKind::Hello, node as u16, epoch as u32);
            for dst in 0..shared.wires.len() {
                if dst == node {
                    continue;
                }
                st.tx[dst].nack_hint = true;
                if shared.condemned[dst].load(Ordering::Relaxed) {
                    continue;
                }
                obs.inc(Ctr::HellosOut);
                push_wire(
                    shared,
                    &mut st.pending_wire[dst],
                    dst,
                    WireMsg::Hello { from: node, epoch },
                );
            }
        }
        let mut progressed = false;
        // Stashed outbound packets go first: per-destination FIFO.
        progressed |= flush_pending(shared, st);
        // User command queues: consult the ready-bit vector, then drain a
        // burst per queue. While the outbound stash is deep the drain
        // pauses (bits stay set), so the bounded command rings
        // backpressure users and per-node occupancy stays bounded.
        if st.backlogged() < PENDING_CAP {
            let mask = ready.swap(0, Ordering::Acquire);
            if mask != 0 {
                for (qi, (src, q)) in seat.iter_mut().enumerate() {
                    if mask & (1 << qi) == 0 {
                        continue;
                    }
                    let taken = q.pop_burst(&mut batch, SERVICE_BURST);
                    let src = *src;
                    let obs = &shared.obs[node];
                    let drain_ns = shared.rel_ns(now);
                    for e in batch.drain(..) {
                        // Command-queue wait: submit stamp → this drain.
                        // `t_ns == 0` means the entry was unstamped
                        // (recording off at submit time).
                        if e.t_ns != 0 {
                            obs.record(HistId::CmdWaitNs, drain_ns.saturating_sub(e.t_ns));
                        }
                        handle_command(shared, st, node, now, src, e);
                    }
                    if taken > 0 {
                        st.obs_tick = st.obs_tick.wrapping_add(1);
                        if st.obs_tick & OBS_SAMPLE_MASK == 0 {
                            obs.trace_at(drain_ns, EventKind::Drain, src as u16, taken as u32);
                        }
                        shared.ops_serviced[node].fetch_add(taken as u64, Ordering::Relaxed);
                        progressed = true;
                    }
                    if q.is_ready() {
                        // Entries remain past the burst; re-arm the bit so
                        // the next scan comes back.
                        ready.fetch_or(1 << qi, Ordering::Release);
                    }
                }
            }
        }
        // Overload control: a saturated proxy rejects the oldest request
        // frames over the backlog cap. Rejection *advances the delivered
        // watermark* and reports the sequence on the next ack, so the
        // sender unretains without firing lsync — "acked ⇒ applied
        // exactly once" survives shedding. Control frames and responses
        // are serviced normally even over the cap.
        if shared.shed_enabled.load(Ordering::Relaxed) && health.saturated.load(Ordering::Acquire)
        {
            let mut rejected = 0u64;
            let obs = &shared.obs[node];
            while wire_rx.len() > SHED_BACKLOG {
                let Some(msg) = wire_rx.pop() else { break };
                match msg {
                    WireMsg::Data {
                        from,
                        seq,
                        corrupt,
                        body,
                    } if body.is_request() => {
                        obs.inc(Ctr::MsgsIn);
                        obs.add(Ctr::BytesIn, body.wire_bytes());
                        let rx = &mut st.rx[from];
                        if seq <= rx.delivered {
                            obs.inc(Ctr::DedupDrops);
                            rx.ack_pending = true; // duplicate of old news
                        } else if !corrupt && seq == rx.delivered + 1 {
                            rx.delivered = seq;
                            rx.rejected_new.push(seq);
                            rx.ack_pending = true;
                            rejected += 1;
                            obs.trace_at(
                                shared.rel_ns(now),
                                EventKind::Shed,
                                from as u16,
                                seq as u32,
                            );
                        } else {
                            obs.inc(Ctr::DamagedDrops);
                            rx.nack_pending = true;
                        }
                    }
                    other => {
                        handle_packet(shared, st, node, now, other);
                        shared.ops_serviced[node].fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    }
                }
            }
            if rejected > 0 {
                obs.add(Ctr::Sheds, rejected);
                health.shed.fetch_add(rejected, Ordering::Relaxed);
                progressed = true;
            }
        }
        // Network input (burst-bounded like the command queues: a flooded
        // wire refills faster than it drains, and this loop must not
        // become the whole iteration).
        let mut burst = 0;
        while burst < SERVICE_BURST {
            let Some(msg) = wire_rx.pop() else { break };
            handle_packet(shared, st, node, now, msg);
            shared.ops_serviced[node].fetch_add(1, Ordering::Relaxed);
            progressed = true;
            burst += 1;
        }
        // Reliability upkeep: retransmit overdue retention, then emit the
        // acks and nacks this pass accumulated. Neither counts as
        // progress — an idle-but-unacked sender must still reach the
        // park below (its 1 ms timeout doubles as the retransmit clock).
        retransmit(shared, st, node, now);
        flush_acks(shared, st, node);
        if progressed {
            // Busy time feeds the watchdog's utilisation samples; idle
            // polling scans are charged to nobody, exactly like the
            // simulator's per-node busy counter.
            health.busy_ns.fetch_add(
                u64::try_from(now.elapsed().as_nanos()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
            backoff.reset();
            legacy_idle_spins = 0;
            stop_flush_tries = 0;
            continue;
        }
        if shared.stop.load(Ordering::Relaxed) {
            // Final drain pass (ready bits may have raced with stop).
            let drained = seat.iter_mut().all(|(_, q)| !q.is_ready());
            if drained && wire_rx.is_empty() {
                // Exit only once nothing is owed: no stashed output, and
                // no unacknowledged frames towards live peers (their
                // acks are what release our retention — and our lsyncs).
                let unacked = st
                    .tx
                    .iter()
                    .enumerate()
                    .any(|(d, tx)| {
                        !tx.retained.is_empty() && !shared.condemned[d].load(Ordering::Relaxed)
                    });
                if st.outbox_empty() && !unacked {
                    break;
                }
                // A peer may be gone without condemnation (or its ring
                // is full forever): bounded retries, then in-flight
                // traffic is abandoned — lossy at shutdown by contract.
                stop_flush_tries += 1;
                if stop_flush_tries > STOP_FLUSH_TRIES {
                    break;
                }
            }
            // Re-arm all bits so the next pass scans everything.
            ready.fetch_or(u64::MAX, Ordering::Release);
            std::thread::yield_now();
            continue;
        }
        if shared.locked_plane {
            // The baseline's idle loop, kept verbatim for the A/B: a
            // fixed spin budget, then yield forever — never parks, so an
            // idle proxy keeps taxing the host scheduler.
            if legacy_idle_spins < LEGACY_IDLE_SPINS {
                legacy_idle_spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            continue;
        }
        // Idle: escalate spin → yield → park. Parking is gated on an
        // empty outbound stash (stashed packets wait on a peer's ring,
        // which sends no wake when space frees up). Unacknowledged
        // retention does *not* block parking: the bounded park timeout
        // re-probes often enough to serve as the RTO clock.
        if backoff.is_parkable() && st.outbox_empty() {
            parker.prepare_park();
            if ready.load(Ordering::SeqCst) != 0
                || !wire_rx.is_empty()
                || shared.stop.load(Ordering::Relaxed)
            {
                parker.cancel();
            } else {
                parker.park(PARK_TIMEOUT);
            }
            backoff.reset();
        } else {
            backoff.snooze();
        }
    }
}

/// The overload watchdog: every `interval` it turns each proxy's busy-time
/// delta into a utilisation sample and applies the paper's §5.4 stability
/// rule — a proxy above [`STABLE_UTILIZATION`] has unbounded expected
/// queueing delay, so it is flagged saturated (with a one-time warning per
/// node) until the load falls back under [`RECOVERY_UTILIZATION`].
fn watchdog_main(shared: &Shared, interval: Duration) {
    let nodes = shared.health.len();
    let mut prev_busy = vec![0u64; nodes];
    let mut warned = vec![false; nodes];
    let mut prev_t = Instant::now();
    while crate::idle::sleep_unless(interval, &shared.stop) {
        let now = Instant::now();
        let wall_ns = now.duration_since(prev_t).as_nanos();
        if wall_ns == 0 {
            continue;
        }
        prev_t = now;
        for (node, h) in shared.health.iter().enumerate() {
            let busy = h.busy_ns.load(Ordering::Relaxed);
            let delta = busy.saturating_sub(prev_busy[node]);
            prev_busy[node] = busy;
            let util = (u128::from(delta) as f64 / wall_ns as f64).min(1.0);
            h.util_bits.store(util.to_bits(), Ordering::Relaxed);
            let obs = &shared.obs[node];
            // Busy fraction as permille, one sample per watchdog tick.
            obs.record(HistId::BusyPermille, (util * 1000.0) as u64);
            // Two overload signals. Utilisation is the paper's §5.4 rule,
            // but it is a time-domain measure: on an oversubscribed host
            // the proxy thread may be descheduled and sample low even as
            // its input queue grows without bound. Backlog is the
            // space-domain symptom of the same instability and is immune
            // to scheduler noise, so either one trips the flag.
            let backlog = shared.wires[node].len();
            let was = h.saturated.load(Ordering::Acquire);
            if !was && (util > STABLE_UTILIZATION || backlog > SHED_BACKLOG) {
                h.saturation_events.fetch_add(1, Ordering::Relaxed);
                obs.inc(Ctr::SaturationEvents);
                obs.trace(EventKind::SatEnter, node as u16, backlog as u32);
                h.saturated.store(true, Ordering::Release);
                // A shedding proxy may be parked with its wire already
                // over the cap; make sure it sees the flag.
                shared.parkers[node].wake();
                if !warned[node] {
                    warned[node] = true;
                    eprintln!(
                        "mproxy-rt: node {node} proxy overloaded ({:.0}% utilisation, \
                         {backlog} queued) — past the 50% stability bound, queueing \
                         delay is now unbounded",
                        util * 100.0
                    );
                }
            } else if was && util < RECOVERY_UTILIZATION && backlog < SHED_BACKLOG / 2 {
                obs.trace(EventKind::SatExit, node as u16, backlog as u32);
                h.saturated.store(false, Ordering::Release);
            }
        }
    }
}
