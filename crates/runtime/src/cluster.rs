//! The threaded message-proxy cluster.
//!
//! One proxy thread per node runs the Figure 5 loop for real: it polls the
//! registered per-user command queues and the node's network input, using
//! the §4.1 *shared bit vector* optimisation — producers set a per-queue
//! ready bit, so an idle proxy probes one word instead of scanning every
//! queue head. Protection checks (asid permission, bounds) run in the
//! proxy, never in user code; violations are counted as faults and the
//! operation is dropped, the runtime analogue of "the system faults a
//! process".
//!
//! Because the proxy is a shared, trusted agent, a node must survive its
//! failure without hanging every client: proxy threads carry a panic
//! sentinel, [`Endpoint::wait_flag_timeout`]/[`Endpoint::get_blocking_timeout`]
//! bound every wait, and [`RtCluster::shutdown`] reports which proxies (if
//! any) died instead of joining forever. All shared locks recover from
//! poisoning, so one panicked proxy cannot wedge the survivors.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::mem::Segment;
use crate::spsc::{self, Entry};

/// Synchronisation flags per process.
pub const NUM_FLAGS: usize = 64;
/// Remote queues per process.
pub const NUM_QUEUES: usize = 8;
/// Command queue depth per process.
pub const CMDQ_DEPTH: usize = 128;

const OP_PUT: u32 = 1;
const OP_GET: u32 = 2;
const OP_ENQ: u32 = 3;

/// A synchronisation-flag slot (monotone counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlagId(pub u32);

/// A remote-queue slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RqId(pub u32);

/// A recoverable runtime communication failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtError {
    /// A bounded wait expired before the flag reached its target.
    Timeout {
        /// The flag waited on.
        flag: u32,
        /// The value waited for.
        target: u64,
        /// The value observed when the wait gave up.
        observed: u64,
    },
    /// A proxy thread died (panicked); the node is unreachable.
    ProxyDown {
        /// The node whose proxy is gone.
        node: usize,
    },
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::Timeout {
                flag,
                target,
                observed,
            } => write!(
                f,
                "wait on flag {flag} timed out at {observed}/{target}"
            ),
            RtError::ProxyDown { node } => {
                write!(f, "proxy thread for node {node} has died")
            }
        }
    }
}

impl std::error::Error for RtError {}

/// What [`RtCluster::shutdown`] observed while joining the proxies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Nodes whose proxy thread terminated by panic rather than by the
    /// stop signal.
    pub panicked_nodes: Vec<usize>,
}

impl ShutdownReport {
    /// True if every proxy exited cleanly.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.panicked_nodes.is_empty()
    }
}

/// A multi-producer FIFO with poison recovery — the remote-queue store
/// and the inter-node wire. A panicked proxy can never wedge it.
#[derive(Debug)]
struct PolledFifo<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> Default for PolledFifo<T> {
    fn default() -> Self {
        PolledFifo {
            items: Mutex::new(VecDeque::new()),
        }
    }
}

impl<T> PolledFifo<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.items.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, v: T) {
        self.lock().push_back(v);
    }

    fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

struct ProcShared {
    asid: u32,
    node: usize,
    seg: Segment,
    flags: Vec<Arc<AtomicU64>>,
    queues: Vec<Arc<PolledFifo<Bytes>>>,
    faults: Arc<AtomicU64>,
    timeouts: Arc<AtomicU64>,
}

enum WireMsg {
    Put {
        dst: u32,
        raddr: u64,
        data: Bytes,
        rsync: Option<u32>,
        ack: Option<(usize, u64)>,
    },
    GetReq {
        src_asid: u32,
        dst: u32,
        raddr: u64,
        nbytes: u32,
        origin: usize,
        token: u64,
    },
    GetReply {
        token: u64,
        data: Option<Bytes>,
    },
    Enq {
        dst: u32,
        rq: u32,
        data: Bytes,
        rsync: Option<u32>,
        ack: Option<(usize, u64)>,
    },
    Ack {
        token: u64,
    },
}

enum Ccb {
    Get {
        proc: u32,
        laddr: u64,
        nbytes: u32,
        lsync: Option<u32>,
    },
    PutAck {
        proc: u32,
        lsync: Option<u32>,
    },
}

struct Shared {
    procs: Vec<Arc<ProcShared>>,
    perms: RwLock<HashSet<(u32, u32)>>,
    allow_all: AtomicBool,
    stop: AtomicBool,
    wires: Vec<Arc<PolledFifo<WireMsg>>>,
    ops_serviced: Vec<Arc<AtomicU64>>, // per node
    panicked: Vec<Arc<AtomicBool>>,    // per node
}

impl Shared {
    fn allowed(&self, src: u32, dst: u32) -> bool {
        src == dst
            || self.allow_all.load(Ordering::Relaxed)
            || self
                .perms
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .contains(&(src, dst))
    }

    fn fault(&self, src: u32) {
        self.procs[src as usize]
            .faults
            .fetch_add(1, Ordering::Relaxed);
    }

    fn set_flag(&self, proc: u32, flag: u32) {
        self.procs[proc as usize].flags[flag as usize].fetch_add(1, Ordering::Release);
    }

    /// First node whose proxy has died, if any.
    fn panicked_node(&self) -> Option<usize> {
        self.panicked
            .iter()
            .position(|p| p.load(Ordering::Acquire))
    }
}

/// Sets the per-node panic bit if the proxy unwinds instead of returning.
struct PanicSentinel {
    flag: Arc<AtomicBool>,
}

impl Drop for PanicSentinel {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.flag.store(true, Ordering::Release);
        }
    }
}

/// Builds an [`RtCluster`]: declare nodes and processes, then
/// [`RtClusterBuilder::start`].
pub struct RtClusterBuilder {
    nodes: usize,
    procs: Vec<(usize, usize)>, // (node, segment bytes)
}

impl RtClusterBuilder {
    /// A cluster of `nodes` SMP nodes (each gets one dedicated proxy
    /// thread).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        RtClusterBuilder {
            nodes,
            procs: Vec::new(),
        }
    }

    /// Adds a user process on `node` with a segment of `mem_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn add_process(&mut self, node: usize, mem_bytes: usize) -> u32 {
        assert!(node < self.nodes, "node {node} out of range");
        self.procs.push((node, mem_bytes));
        (self.procs.len() - 1) as u32
    }

    /// Starts the proxy threads and returns the cluster handle plus one
    /// [`Endpoint`] per declared process (in declaration order).
    #[must_use]
    pub fn start(self) -> (RtCluster, Vec<Endpoint>) {
        let wires: Vec<Arc<PolledFifo<WireMsg>>> = (0..self.nodes)
            .map(|_| Arc::new(PolledFifo::default()))
            .collect();
        let procs: Vec<Arc<ProcShared>> = self
            .procs
            .iter()
            .enumerate()
            .map(|(i, &(node, bytes))| {
                Arc::new(ProcShared {
                    asid: i as u32,
                    node,
                    seg: Segment::new(bytes),
                    flags: (0..NUM_FLAGS)
                        .map(|_| Arc::new(AtomicU64::new(0)))
                        .collect(),
                    queues: (0..NUM_QUEUES)
                        .map(|_| Arc::new(PolledFifo::default()))
                        .collect(),
                    faults: Arc::new(AtomicU64::new(0)),
                    timeouts: Arc::new(AtomicU64::new(0)),
                })
            })
            .collect();
        let shared = Arc::new(Shared {
            procs,
            perms: RwLock::new(HashSet::new()),
            allow_all: AtomicBool::new(true),
            stop: AtomicBool::new(false),
            wires,
            ops_serviced: (0..self.nodes)
                .map(|_| Arc::new(AtomicU64::new(0)))
                .collect(),
            panicked: (0..self.nodes)
                .map(|_| Arc::new(AtomicBool::new(false)))
                .collect(),
        });

        // Per-process command queues, grouped by node, plus the §4.1
        // ready-bit vector per node.
        let mut endpoints = Vec::with_capacity(self.procs.len());
        let mut per_node: Vec<Vec<(u32, spsc::Consumer)>> =
            (0..self.nodes).map(|_| Vec::new()).collect();
        let masks: Vec<Arc<AtomicU64>> = (0..self.nodes)
            .map(|_| Arc::new(AtomicU64::new(0)))
            .collect();
        for (i, &(node, _)) in self.procs.iter().enumerate() {
            let (tx, rx) = spsc::channel(CMDQ_DEPTH);
            let qbit = per_node[node].len() as u32;
            assert!(qbit < 64, "at most 64 processes per node");
            per_node[node].push((i as u32, rx));
            endpoints.push(Endpoint {
                me: Arc::clone(&shared.procs[i]),
                shared: Arc::clone(&shared),
                cmd: tx,
                ready: Arc::clone(&masks[node]),
                qbit,
                next_alloc: 0,
            });
        }

        let joins = per_node
            .into_iter()
            .enumerate()
            .map(|(node, queues)| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&shared.wires[node]);
                let mask = Arc::clone(&masks[node]);
                std::thread::Builder::new()
                    .name(format!("mproxy-{node}"))
                    .spawn(move || proxy_main(node, queues, &rx, &mask, &shared))
                    .expect("spawn proxy thread")
            })
            .collect();

        (RtCluster { shared, joins }, endpoints)
    }
}

/// A running cluster of proxy threads.
pub struct RtCluster {
    shared: Arc<Shared>,
    joins: Vec<JoinHandle<()>>,
}

impl RtCluster {
    /// Disables allow-all: only explicit grants pass the protection check.
    pub fn restrict(&self) {
        self.shared.allow_all.store(false, Ordering::Relaxed);
    }

    /// Grants `src` access to address space `dst`.
    pub fn grant(&self, src: u32, dst: u32) {
        self.shared
            .perms
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert((src, dst));
    }

    /// Revokes a grant.
    pub fn revoke(&self, src: u32, dst: u32) {
        self.shared
            .perms
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&(src, dst));
    }

    /// Total commands + packets serviced by node `node`'s proxy.
    #[must_use]
    pub fn ops_serviced(&self, node: usize) -> u64 {
        self.shared.ops_serviced[node].load(Ordering::Relaxed)
    }

    /// Nodes whose proxy thread has already died (live query; a node
    /// appears here as soon as its proxy finishes unwinding).
    #[must_use]
    pub fn panicked_nodes(&self) -> Vec<usize> {
        self.shared
            .panicked
            .iter()
            .enumerate()
            .filter(|(_, p)| p.load(Ordering::Acquire))
            .map(|(n, _)| n)
            .collect()
    }

    /// Stops the proxy threads, waits for them to exit, and reports any
    /// that died by panic instead of the stop signal. Completes even with
    /// endpoint operations still in flight: surviving proxies drain their
    /// queues before exiting, dead ones are joined immediately.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.stop_and_join()
    }

    fn stop_and_join(&mut self) -> ShutdownReport {
        self.shared.stop.store(true, Ordering::Relaxed);
        let mut report = ShutdownReport::default();
        for (node, j) in self.joins.drain(..).enumerate() {
            if j.join().is_err() {
                report.panicked_nodes.push(node);
            }
        }
        report
    }
}

impl Drop for RtCluster {
    fn drop(&mut self) {
        let _ = self.stop_and_join();
    }
}

/// A user process's handle: submits commands, reads/writes its own
/// segment, observes flags and queues. Not `Clone` — a command queue has
/// exactly one producer.
pub struct Endpoint {
    me: Arc<ProcShared>,
    shared: Arc<Shared>,
    cmd: spsc::Producer,
    ready: Arc<AtomicU64>,
    qbit: u32,
    next_alloc: u64,
}

impl Endpoint {
    /// This process's address-space id.
    #[must_use]
    pub fn asid(&self) -> u32 {
        self.me.asid
    }

    /// The node this process runs on.
    #[must_use]
    pub fn node(&self) -> usize {
        self.me.node
    }

    /// Bump-allocates `n` bytes in this process's segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment is exhausted.
    pub fn alloc(&mut self, n: u64) -> u64 {
        let addr = self.next_alloc.next_multiple_of(64);
        assert!(
            self.me.seg.check(addr, n as usize),
            "segment exhausted: need {n} at {addr} of {}",
            self.me.seg.size()
        );
        self.next_alloc = addr + n;
        addr
    }

    /// Local segment accessor.
    #[must_use]
    pub fn seg(&self) -> &Segment {
        &self.me.seg
    }

    /// Protection faults charged to this process.
    #[must_use]
    pub fn faults(&self) -> u64 {
        self.me.faults.load(Ordering::Relaxed)
    }

    /// Bounded waits that expired (or aborted on a dead proxy) for this
    /// process.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.me.timeouts.load(Ordering::Relaxed)
    }

    /// Current value of one of this process's flags.
    #[must_use]
    pub fn flag(&self, f: FlagId) -> u64 {
        self.me.flags[f.0 as usize].load(Ordering::Acquire)
    }

    /// Spins until flag `f` reaches `target` (yielding periodically so
    /// oversubscribed hosts still make progress).
    pub fn wait_flag(&self, f: FlagId, target: u64) {
        let mut spins = 0u32;
        while self.flag(f) < target {
            spins += 1;
            if spins > 500 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Bounded [`Endpoint::wait_flag`]: gives up after `timeout`, and
    /// aborts immediately if a proxy thread has died — the wait could
    /// otherwise never complete.
    ///
    /// # Errors
    ///
    /// [`RtError::Timeout`] when the deadline passes, [`RtError::ProxyDown`]
    /// when a proxy panicked. Both bump [`Endpoint::timeouts`].
    pub fn wait_flag_timeout(
        &self,
        f: FlagId,
        target: u64,
        timeout: Duration,
    ) -> Result<(), RtError> {
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            let observed = self.flag(f);
            if observed >= target {
                return Ok(());
            }
            if let Some(node) = self.shared.panicked_node() {
                self.me.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(RtError::ProxyDown { node });
            }
            if Instant::now() >= deadline {
                self.me.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(RtError::Timeout {
                    flag: f.0,
                    target,
                    observed,
                });
            }
            spins += 1;
            if spins > 500 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Non-blocking dequeue from one of this process's own remote queues.
    /// The payload is a shared buffer: it was snapshotted once at the
    /// sender's proxy and travelled the wire without further copies.
    #[must_use]
    pub fn rq_try_recv(&self, rq: RqId) -> Option<Bytes> {
        self.me.queues[rq.0 as usize].pop()
    }

    fn submit(&mut self, e: Entry) {
        self.cmd.send(e);
        // §4.1: flip the shared ready bit so the proxy's idle scan probes
        // one word instead of every queue head.
        self.ready.fetch_or(1 << self.qbit, Ordering::Release);
    }

    fn pack_sync(lsync: Option<FlagId>, rsync: Option<FlagId>) -> u64 {
        let l = lsync.map_or(0, |f| u64::from(f.0) + 1);
        let r = rsync.map_or(0, |f| u64::from(f.0) + 1);
        (l << 32) | r
    }

    /// `PUT`: copy `nbytes` from local `laddr` to `raddr` in `dst`'s
    /// space. `lsync` increments on remote acknowledgement; `rsync` (a
    /// flag of `dst`) increments on delivery.
    pub fn put(
        &mut self,
        laddr: u64,
        dst: u32,
        raddr: u64,
        nbytes: u32,
        lsync: Option<FlagId>,
        rsync: Option<FlagId>,
    ) {
        self.submit(Entry {
            op: OP_PUT,
            args: [
                laddr,
                raddr,
                (u64::from(dst) << 32) | u64::from(nbytes),
                Self::pack_sync(lsync, rsync),
            ],
        });
    }

    /// `GET`: copy `nbytes` from `raddr` in `dst`'s space to local
    /// `laddr`; `lsync` increments when the data has landed.
    pub fn get(&mut self, laddr: u64, dst: u32, raddr: u64, nbytes: u32, lsync: Option<FlagId>) {
        self.submit(Entry {
            op: OP_GET,
            args: [
                laddr,
                raddr,
                (u64::from(dst) << 32) | u64::from(nbytes),
                Self::pack_sync(lsync, None),
            ],
        });
    }

    /// Blocking GET convenience: issues the get on flag 63 and spins for
    /// completion.
    pub fn get_blocking(&mut self, laddr: u64, dst: u32, raddr: u64, nbytes: u32) {
        let f = FlagId((NUM_FLAGS - 1) as u32);
        let target = self.flag(f) + 1;
        self.get(laddr, dst, raddr, nbytes, Some(f));
        self.wait_flag(f, target);
    }

    /// Bounded [`Endpoint::get_blocking`].
    ///
    /// # Errors
    ///
    /// See [`Endpoint::wait_flag_timeout`]; on error the fetched data must
    /// be treated as absent (it may still land later).
    pub fn get_blocking_timeout(
        &mut self,
        laddr: u64,
        dst: u32,
        raddr: u64,
        nbytes: u32,
        timeout: Duration,
    ) -> Result<(), RtError> {
        let f = FlagId((NUM_FLAGS - 1) as u32);
        let target = self.flag(f) + 1;
        self.get(laddr, dst, raddr, nbytes, Some(f));
        self.wait_flag_timeout(f, target, timeout)
    }

    /// `ENQ`: append `nbytes` from local `laddr` to queue `rq` of `dst`.
    pub fn enq(
        &mut self,
        laddr: u64,
        dst: u32,
        rq: RqId,
        nbytes: u32,
        lsync: Option<FlagId>,
        rsync: Option<FlagId>,
    ) {
        self.submit(Entry {
            op: OP_ENQ,
            args: [
                laddr,
                u64::from(rq.0),
                (u64::from(dst) << 32) | u64::from(nbytes),
                Self::pack_sync(lsync, rsync),
            ],
        });
    }
}

fn unpack_sync(v: u64) -> (Option<u32>, Option<u32>) {
    let l = (v >> 32) as u32;
    let r = v as u32;
    ((l != 0).then(|| l - 1), (r != 0).then(|| r - 1))
}

/// The proxy thread: the Figure 5 loop over real queues and wires.
fn proxy_main(
    node: usize,
    mut queues: Vec<(u32, spsc::Consumer)>,
    wire_rx: &PolledFifo<WireMsg>,
    ready: &AtomicU64,
    shared: &Shared,
) {
    let _sentinel = PanicSentinel {
        flag: Arc::clone(&shared.panicked[node]),
    };
    let mut ccbs: HashMap<u64, Ccb> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut idle_spins = 0u32;
    loop {
        let mut progressed = false;
        // User command queues: consult the ready-bit vector, then drain.
        let mask = ready.swap(0, Ordering::Acquire);
        if mask != 0 {
            for (qi, (src, q)) in queues.iter_mut().enumerate() {
                if mask & (1 << qi) == 0 {
                    continue;
                }
                while let Some(e) = q.try_recv() {
                    handle_command(node, *src, e, shared, &mut ccbs, &mut next_token);
                    shared.ops_serviced[node].fetch_add(1, Ordering::Relaxed);
                    progressed = true;
                }
            }
        }
        // Network input FIFO.
        while let Some(msg) = wire_rx.pop() {
            handle_packet(node, msg, shared, &mut ccbs);
            shared.ops_serviced[node].fetch_add(1, Ordering::Relaxed);
            progressed = true;
        }
        if progressed {
            idle_spins = 0;
            continue;
        }
        if shared.stop.load(Ordering::Relaxed) {
            // Final drain pass (ready bits may have raced with stop).
            let drained = queues.iter_mut().all(|(_, q)| !q.is_ready());
            if drained && wire_rx.is_empty() {
                break;
            }
            // Re-arm all bits so the next pass scans everything.
            ready.fetch_or(u64::MAX, Ordering::Release);
            continue;
        }
        idle_spins += 1;
        if idle_spins > 200 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

fn handle_command(
    node: usize,
    src: u32,
    e: Entry,
    shared: &Shared,
    ccbs: &mut HashMap<u64, Ccb>,
    next_token: &mut u64,
) {
    let laddr = e.args[0];
    let dst = (e.args[2] >> 32) as u32;
    let nbytes = e.args[2] as u32;
    let (lsync, rsync) = unpack_sync(e.args[3]);
    if dst as usize >= shared.procs.len() || !shared.allowed(src, dst) {
        shared.fault(src);
        return;
    }
    let src_proc = &shared.procs[src as usize];
    match e.op {
        OP_PUT => {
            if !src_proc.seg.check(laddr, nbytes as usize) {
                shared.fault(src);
                return;
            }
            let data = src_proc.seg.read(laddr, nbytes as usize);
            let raddr = e.args[1];
            let ack = lsync.map(|l| {
                let token = *next_token;
                *next_token += 1;
                ccbs.insert(
                    token,
                    Ccb::PutAck {
                        proc: src,
                        lsync: Some(l),
                    },
                );
                (node, token)
            });
            let dst_node = shared.procs[dst as usize].node;
            shared.wires[dst_node].push(WireMsg::Put {
                dst,
                raddr,
                data,
                rsync,
                ack,
            });
        }
        OP_GET => {
            if !src_proc.seg.check(laddr, nbytes as usize) {
                shared.fault(src);
                return;
            }
            let token = *next_token;
            *next_token += 1;
            ccbs.insert(
                token,
                Ccb::Get {
                    proc: src,
                    laddr,
                    nbytes,
                    lsync,
                },
            );
            let dst_node = shared.procs[dst as usize].node;
            shared.wires[dst_node].push(WireMsg::GetReq {
                src_asid: src,
                dst,
                raddr: e.args[1],
                nbytes,
                origin: node,
                token,
            });
        }
        OP_ENQ => {
            if !src_proc.seg.check(laddr, nbytes as usize) {
                shared.fault(src);
                return;
            }
            let data = src_proc.seg.read(laddr, nbytes as usize);
            let rq = e.args[1] as u32;
            if rq as usize >= NUM_QUEUES {
                shared.fault(src);
                return;
            }
            let ack = lsync.map(|l| {
                let token = *next_token;
                *next_token += 1;
                ccbs.insert(
                    token,
                    Ccb::PutAck {
                        proc: src,
                        lsync: Some(l),
                    },
                );
                (node, token)
            });
            let dst_node = shared.procs[dst as usize].node;
            shared.wires[dst_node].push(WireMsg::Enq {
                dst,
                rq,
                data,
                rsync,
                ack,
            });
        }
        _ => shared.fault(src),
    }
}

fn handle_packet(node: usize, msg: WireMsg, shared: &Shared, ccbs: &mut HashMap<u64, Ccb>) {
    match msg {
        WireMsg::Put {
            dst,
            raddr,
            data,
            rsync,
            ack,
        } => {
            let dp = &shared.procs[dst as usize];
            if dp.seg.check(raddr, data.len()) {
                dp.seg.write(raddr, &data);
                if let Some(f) = rsync {
                    shared.set_flag(dst, f);
                }
            }
            if let Some((origin, token)) = ack {
                shared.wires[origin].push(WireMsg::Ack { token });
            }
        }
        WireMsg::GetReq {
            src_asid,
            dst,
            raddr,
            nbytes,
            origin,
            token,
        } => {
            let dp = &shared.procs[dst as usize];
            let data = if dp.seg.check(raddr, nbytes as usize) {
                Some(dp.seg.read(raddr, nbytes as usize))
            } else {
                shared.fault(src_asid);
                None
            };
            shared.wires[origin].push(WireMsg::GetReply { token, data });
        }
        WireMsg::GetReply { token, data } => {
            if let Some(Ccb::Get {
                proc,
                laddr,
                nbytes,
                lsync,
            }) = ccbs.remove(&token)
            {
                if let Some(data) = data {
                    let take = (nbytes as usize).min(data.len());
                    shared.procs[proc as usize].seg.write(laddr, &data[..take]);
                }
                if let Some(f) = lsync {
                    shared.set_flag(proc, f);
                }
            }
        }
        WireMsg::Enq {
            dst,
            rq,
            data,
            rsync,
            ack,
        } => {
            shared.procs[dst as usize].queues[rq as usize].push(data);
            if let Some(f) = rsync {
                shared.set_flag(dst, f);
            }
            if let Some((origin, token)) = ack {
                shared.wires[origin].push(WireMsg::Ack { token });
            }
        }
        WireMsg::Ack { token } => {
            if let Some(Ccb::PutAck {
                proc,
                lsync: Some(f),
            }) = ccbs.remove(&token)
            {
                shared.set_flag(proc, f);
            }
        }
    }
    let _ = node;
}
