//! Contended hardware resources.
//!
//! A [`Resource`] models a server with `capacity` identical units —
//! a processor, a DMA engine, a network port, the message-proxy CPU. The
//! paper's simulator "accounts for contention for hardware resources within
//! a node, such as the processors, the DMA engines, and the network queues";
//! `Resource` is that mechanism, with FIFO queueing and utilisation
//! statistics (the "interface utilisation" column of Table 6).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::{Core, SimCtx};
use crate::stats::{Tally, TimeWeighted};
use crate::time::{Dur, SimTime};

struct WaitSlot {
    granted: bool,
    waker: Option<Waker>,
}

struct ResState {
    capacity: usize,
    in_use: usize,
    queue: VecDeque<Rc<RefCell<WaitSlot>>>,
    busy: TimeWeighted,
    queue_len: TimeWeighted,
    acquisitions: u64,
    wait_times: Tally,
}

impl ResState {
    fn note(&mut self, now: SimTime) {
        self.busy.update(now, self.in_use as f64);
        self.queue_len.update(now, self.queue.len() as f64);
    }
}

/// A FIFO-fair, capacity-limited resource with utilisation accounting.
///
/// # Examples
///
/// ```
/// use mproxy_des::{Dur, Resource, Simulation};
///
/// let sim = Simulation::new();
/// let ctx = sim.ctx();
/// let cpu = Resource::new(&ctx, "cpu", 1);
/// for _ in 0..2 {
///     let cpu = cpu.clone();
///     sim.spawn(async move {
///         cpu.hold(Dur::from_us(10.0)).await; // acquire, work, release
///     });
/// }
/// let r = sim.run();
/// assert_eq!(r.end.as_us(), 20.0); // serialized on the single unit
/// let ctx = sim.ctx();
/// assert!((cpu.utilization(ctx.now()) - 1.0).abs() < 1e-9);
/// ```
pub struct Resource {
    name: String,
    core: Rc<RefCell<Core>>,
    state: Rc<RefCell<ResState>>,
}

impl Clone for Resource {
    fn clone(&self) -> Self {
        Resource {
            name: self.name.clone(),
            core: Rc::clone(&self.core),
            state: Rc::clone(&self.state),
        }
    }
}

impl Resource {
    /// Creates a resource with `capacity` units.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(ctx: &SimCtx, name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "resource capacity must be > 0");
        let now = ctx.now();
        Resource {
            name: name.into(),
            core: Rc::clone(ctx.core()),
            state: Rc::new(RefCell::new(ResState {
                capacity,
                in_use: 0,
                queue: VecDeque::new(),
                busy: TimeWeighted::new(now, 0.0),
                queue_len: TimeWeighted::new(now, 0.0),
                acquisitions: 0,
                wait_times: Tally::new(),
            })),
        }
    }

    /// Resource name (for reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total units.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.state.borrow().capacity
    }

    /// Units currently held.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.state.borrow().in_use
    }

    /// Acquires one unit, waiting FIFO behind earlier requests.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            res: self.clone(),
            slot: None,
            requested_at: None,
        }
    }

    /// Acquires one unit, holds it for `d`, then releases — the common
    /// "charge service time on this resource" idiom.
    pub async fn hold(&self, d: Dur) {
        let guard = self.acquire().await;
        guard.delay(d).await;
        drop(guard);
    }

    /// Fraction of capacity busy, time-averaged from creation to `end`.
    #[must_use]
    pub fn utilization(&self, end: SimTime) -> f64 {
        let s = self.state.borrow();
        s.busy.average(end) / s.capacity as f64
    }

    /// Total busy time (unit-microseconds) accumulated up to `end` — for
    /// capacity 1 this is simply how long the resource has been held.
    #[must_use]
    pub fn busy_us(&self, end: SimTime) -> f64 {
        self.state.borrow().busy.integral_us(end)
    }

    /// Time-averaged number of requests waiting in queue.
    #[must_use]
    pub fn mean_queue_len(&self, end: SimTime) -> f64 {
        self.state.borrow().queue_len.average(end)
    }

    /// Number of completed acquisitions.
    #[must_use]
    pub fn acquisitions(&self) -> u64 {
        self.state.borrow().acquisitions
    }

    /// Distribution of time spent waiting to acquire (µs).
    #[must_use]
    pub fn wait_times(&self) -> Tally {
        self.state.borrow().wait_times
    }

    fn now(&self) -> SimTime {
        self.core.borrow().now()
    }

    fn release_one(&self) {
        let now = self.now();
        let mut s = self.state.borrow_mut();
        debug_assert!(s.in_use > 0, "release without acquire");
        // Hand the unit directly to the next waiter, if any, preserving
        // FIFO order (in_use stays constant in that case).
        if let Some(slot) = s.queue.pop_front() {
            let mut sl = slot.borrow_mut();
            sl.granted = true;
            if let Some(w) = sl.waker.take() {
                w.wake();
            }
            s.note(now);
        } else {
            s.in_use -= 1;
            s.note(now);
        }
    }
}

impl fmt::Debug for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.borrow();
        f.debug_struct("Resource")
            .field("name", &self.name)
            .field("capacity", &s.capacity)
            .field("in_use", &s.in_use)
            .field("queued", &s.queue.len())
            .finish()
    }
}

/// Future returned by [`Resource::acquire`].
pub struct Acquire {
    res: Resource,
    slot: Option<Rc<RefCell<WaitSlot>>>,
    requested_at: Option<SimTime>,
}

impl Future for Acquire {
    type Output = ResourceGuard;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<ResourceGuard> {
        let now = self.res.now();
        if self.requested_at.is_none() {
            self.requested_at = Some(now);
        }
        // Fast path / re-poll path.
        if let Some(slot) = &self.slot {
            let granted = slot.borrow().granted;
            if granted {
                let waited = now.since(self.requested_at.expect("set above"));
                {
                    let mut s = self.res.state.borrow_mut();
                    s.acquisitions += 1;
                    s.wait_times.add_dur(waited);
                }
                self.slot = None;
                return Poll::Ready(ResourceGuard {
                    res: self.res.clone(),
                    released: false,
                });
            }
            slot.borrow_mut().waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let mut s = self.res.state.borrow_mut();
        if s.queue.is_empty() && s.in_use < s.capacity {
            s.in_use += 1;
            s.acquisitions += 1;
            s.wait_times.add_dur(Dur::ZERO);
            s.note(now);
            drop(s);
            Poll::Ready(ResourceGuard {
                res: self.res.clone(),
                released: false,
            })
        } else {
            let slot = Rc::new(RefCell::new(WaitSlot {
                granted: false,
                waker: Some(cx.waker().clone()),
            }));
            s.queue.push_back(Rc::clone(&slot));
            s.note(now);
            drop(s);
            self.slot = Some(slot);
            Poll::Pending
        }
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        // If we were granted a unit but never observed it (future dropped
        // mid-wait), give the unit back so it is not leaked.
        if let Some(slot) = self.slot.take() {
            if slot.borrow().granted {
                self.res.release_one();
            } else {
                let mut s = self.res.state.borrow_mut();
                s.queue.retain(|q| !Rc::ptr_eq(q, &slot));
            }
        }
    }
}

/// Holds one unit of a [`Resource`]; released on drop.
pub struct ResourceGuard {
    res: Resource,
    released: bool,
}

impl ResourceGuard {
    /// Sleeps for `d` while continuing to hold the unit.
    pub fn delay(&self, d: Dur) -> crate::executor::Delay {
        let ctx = SimCtx::from_core(Rc::clone(&self.res.core));
        ctx.delay(d)
    }

    /// Releases explicitly (equivalent to dropping the guard).
    pub fn release(mut self) {
        self.released = true;
        self.res.release_one();
    }
}

impl Drop for ResourceGuard {
    fn drop(&mut self) {
        if !self.released {
            self.res.release_one();
        }
    }
}

impl fmt::Debug for ResourceGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResourceGuard")
            .field("resource", &self.res.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use std::cell::Cell;

    #[test]
    fn serializes_on_single_unit_fifo() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let r = Resource::new(&ctx, "srv", 1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let r = r.clone();
            let order = Rc::clone(&order);
            let ctx = ctx.clone();
            sim.spawn(async move {
                r.hold(Dur::from_us(10.0)).await;
                order.borrow_mut().push((i, ctx.now().as_us()));
            });
        }
        assert!(sim.run().completed_cleanly());
        assert_eq!(*order.borrow(), vec![(0, 10.0), (1, 20.0), (2, 30.0)]);
    }

    #[test]
    fn parallel_capacity_two() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let r = Resource::new(&ctx, "srv", 2);
        for _ in 0..4 {
            let r = r.clone();
            sim.spawn(async move { r.hold(Dur::from_us(5.0)).await });
        }
        let report = sim.run();
        assert_eq!(report.end.as_us(), 10.0);
    }

    #[test]
    fn utilization_and_queue_stats() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let r = Resource::new(&ctx, "srv", 1);
        for _ in 0..2 {
            let r = r.clone();
            sim.spawn(async move { r.hold(Dur::from_us(10.0)).await });
        }
        // One idle task stretches the sim to 40 µs so utilisation is 50 %.
        let ctx2 = ctx.clone();
        sim.spawn(async move { ctx2.delay(Dur::from_us(40.0)).await });
        sim.run();
        let end = ctx.now();
        assert!((r.utilization(end) - 0.5).abs() < 1e-9);
        assert_eq!(r.acquisitions(), 2);
        // Second acquirer waited 10 µs.
        assert_eq!(r.wait_times().max(), 10.0);
        assert!(r.mean_queue_len(end) > 0.0);
    }

    #[test]
    fn guard_release_is_idempotent_with_drop() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let r = Resource::new(&ctx, "srv", 1);
        let r2 = r.clone();
        let ok = Rc::new(Cell::new(false));
        let ok2 = Rc::clone(&ok);
        sim.spawn(async move {
            let g = r2.acquire().await;
            g.release();
            let g2 = r2.acquire().await; // available again immediately
            drop(g2);
            ok2.set(true);
        });
        assert!(sim.run().completed_cleanly());
        assert!(ok.get());
        assert_eq!(r.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_rejected() {
        let sim = Simulation::new();
        let _ = Resource::new(&sim.ctx(), "bad", 0);
    }
}
