//! Lightweight statistics accumulators used across the simulator
//! (service times, queue lengths, resource utilisation — the numbers the
//! paper reports in Table 6).

use crate::time::{Dur, SimTime};

/// Accumulates count / mean / min / max of a stream of samples.
///
/// # Examples
///
/// ```
/// use mproxy_des::Tally;
///
/// let mut t = Tally::new();
/// t.add(2.0);
/// t.add(4.0);
/// assert_eq!(t.mean(), 3.0);
/// assert_eq!(t.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Tally {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// Creates an empty tally.
    #[must_use]
    pub fn new() -> Self {
        Tally::default()
    }

    /// Records a sample.
    pub fn add(&mut self, x: f64) {
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
        self.sum += x;
    }

    /// Records a duration sample in microseconds.
    pub fn add_dur(&mut self, d: Dur) {
        self.add(d.as_us());
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples, or 0.0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Smallest sample, or 0.0 if empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0.0 if empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Integrates a piecewise-constant value over simulated time, yielding its
/// time-weighted average (e.g. busy servers → utilisation).
///
/// # Examples
///
/// ```
/// use mproxy_des::{SimTime, TimeWeighted};
///
/// let mut u = TimeWeighted::new(SimTime::ZERO, 0.0);
/// u.update(SimTime::from_ns(100), 1.0); // value was 0.0 for 100 ns
/// u.update(SimTime::from_ns(300), 0.0); // value was 1.0 for 200 ns
/// assert!((u.average(SimTime::from_ns(400)) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    integral: f64, // value · ns
    last_t: SimTime,
    last_v: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts integrating at `t0` with initial value `v0`.
    #[must_use]
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            integral: 0.0,
            last_t: t0,
            last_v: v0,
            start: t0,
        }
    }

    /// Records that the value changed to `v` at time `t`.
    pub fn update(&mut self, t: SimTime, v: f64) {
        self.integral += self.last_v * t.since(self.last_t).as_ns() as f64;
        self.last_t = t;
        self.last_v = v;
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.last_v
    }

    /// Time-weighted average over `[start, end]`.
    #[must_use]
    pub fn average(&self, end: SimTime) -> f64 {
        let total = end.since(self.start).as_ns() as f64;
        if total == 0.0 {
            return self.last_v;
        }
        let tail = self.last_v * end.since(self.last_t).as_ns() as f64;
        (self.integral + tail) / total
    }

    /// Integral of the value over time, in value · microseconds.
    #[must_use]
    pub fn integral_us(&self, end: SimTime) -> f64 {
        (self.integral + self.last_v * end.since(self.last_t).as_ns() as f64) / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_basic_moments() {
        let mut t = Tally::new();
        for x in [5.0, 1.0, 3.0] {
            t.add(x);
        }
        assert_eq!(t.count(), 3);
        assert_eq!(t.mean(), 3.0);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.max(), 5.0);
        assert_eq!(t.sum(), 9.0);
    }

    #[test]
    fn empty_tally_is_zeroes() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.min(), 0.0);
        assert_eq!(t.max(), 0.0);
    }

    #[test]
    fn tally_merge() {
        let mut a = Tally::new();
        a.add(1.0);
        let mut b = Tally::new();
        b.add(9.0);
        b.add(2.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 9.0);
        assert_eq!(a.min(), 1.0);
        let mut empty = Tally::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn time_weighted_average_with_tail() {
        let mut u = TimeWeighted::new(SimTime::ZERO, 2.0);
        u.update(SimTime::from_ns(50), 4.0);
        // [0,50): 2.0 ; [50,100): 4.0 → average 3.0
        assert!((u.average(SimTime::from_ns(100)) - 3.0).abs() < 1e-12);
        assert_eq!(u.value(), 4.0);
    }

    #[test]
    fn time_weighted_zero_span() {
        let u = TimeWeighted::new(SimTime::from_ns(10), 7.0);
        assert_eq!(u.average(SimTime::from_ns(10)), 7.0);
    }
}
