//! The simulated-time async executor.
//!
//! Simulation *processes* (the user programs, message proxies, network
//! adapters, DMA engines, ... of the paper's execution-driven simulator) are
//! plain Rust futures. Awaiting a [`SimCtx::delay`] advances the process to
//! a later simulated instant; awaiting a channel, signal or resource from
//! [`crate::sync`] / [`crate::resource`] blocks it until another process
//! acts. The executor is strictly deterministic: events fire in
//! `(time, creation sequence)` order and ready tasks are polled FIFO.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::time::{Dur, SimTime};

/// Identifier of a spawned simulation task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(u64);

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

/// An entry in the event calendar: wake `waker` at instant `at`.
struct TimedWake {
    at: SimTime,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimedWake {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimedWake {}
impl PartialOrd for TimedWake {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimedWake {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// FIFO of tasks that are ready to be polled. Shared with wakers, which must
/// be `Send + Sync` by contract even though the simulation is single-threaded.
type ReadyQueue = Arc<Mutex<VecDeque<TaskId>>>;

struct TaskWaker {
    id: TaskId,
    ready: ReadyQueue,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready
            .lock()
            .expect("ready queue poisoned")
            .push_back(self.id);
    }
}

pub(crate) struct Core {
    now: SimTime,
    next_seq: u64,
    calendar: BinaryHeap<Reverse<TimedWake>>,
    ready: ReadyQueue,
    tasks: HashMap<TaskId, Option<BoxFuture>>,
    wakers: HashMap<TaskId, Waker>,
    next_task: u64,
    spawned: u64,
    completed: u64,
    events: u64,
}

impl Core {
    fn new() -> Self {
        Core {
            now: SimTime::ZERO,
            next_seq: 0,
            calendar: BinaryHeap::new(),
            ready: Arc::new(Mutex::new(VecDeque::new())),
            tasks: HashMap::new(),
            wakers: HashMap::new(),
            next_task: 0,
            spawned: 0,
            completed: 0,
            events: 0,
        }
    }

    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    /// Registers a wakeup at `at` (clamped to be no earlier than now).
    pub(crate) fn schedule(&mut self, at: SimTime, waker: Waker) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.calendar.push(Reverse(TimedWake { at, seq, waker }));
    }

    fn spawn(&mut self, fut: BoxFuture) -> TaskId {
        let id = TaskId(self.next_task);
        self.next_task += 1;
        self.spawned += 1;
        self.tasks.insert(id, Some(fut));
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: Arc::clone(&self.ready),
        }));
        self.wakers.insert(id, waker);
        self.ready
            .lock()
            .expect("ready queue poisoned")
            .push_back(id);
        id
    }
}

/// A cloneable handle onto the running simulation, passed into every process.
///
/// `SimCtx` is how a process reads the clock, sleeps, and spawns further
/// processes. It is cheap to clone and not `Send` (the engine is
/// single-threaded and deterministic).
///
/// # Examples
///
/// ```
/// use mproxy_des::{Dur, Simulation};
///
/// let sim = Simulation::new();
/// let ctx = sim.ctx();
/// sim.spawn(async move {
///     ctx.delay(Dur::from_us(10.0)).await;
///     assert_eq!(ctx.now().as_us(), 10.0);
/// });
/// let report = sim.run();
/// assert!(report.completed_cleanly());
/// ```
#[derive(Clone)]
pub struct SimCtx {
    core: Rc<RefCell<Core>>,
}

impl SimCtx {
    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.core.borrow().now()
    }

    /// Returns a future that completes `d` later in simulated time.
    #[must_use]
    pub fn delay(&self, d: Dur) -> Delay {
        Delay {
            core: Rc::clone(&self.core),
            at: None,
            dur: d,
            scheduled: false,
        }
    }

    /// Returns a future that completes at instant `at` (immediately if in
    /// the past).
    #[must_use]
    pub fn delay_until(&self, at: SimTime) -> Delay {
        Delay {
            core: Rc::clone(&self.core),
            at: Some(at),
            dur: Dur::ZERO,
            scheduled: false,
        }
    }

    /// Spawns a new simulation process.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        self.core.borrow_mut().spawn(Box::pin(fut))
    }

    /// Yields to any other ready process at the same instant.
    ///
    /// Useful for modelling an agent that re-checks state in the same cycle
    /// after letting concurrent events land.
    #[must_use]
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    pub(crate) fn core(&self) -> &Rc<RefCell<Core>> {
        &self.core
    }

    pub(crate) fn from_core(core: Rc<RefCell<Core>>) -> Self {
        SimCtx { core }
    }
}

impl std::fmt::Debug for SimCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCtx").field("now", &self.now()).finish()
    }
}

/// Future returned by [`SimCtx::delay`] and [`SimCtx::delay_until`].
pub struct Delay {
    core: Rc<RefCell<Core>>,
    /// Resolved absolute deadline; computed on first poll for `delay`.
    at: Option<SimTime>,
    dur: Dur,
    /// Whether the calendar wake-up has been registered.
    scheduled: bool,
}

impl std::fmt::Debug for Delay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Delay")
            .field("at", &self.at)
            .field("dur", &self.dur)
            .finish()
    }
}

impl Future for Delay {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let now = self.core.borrow().now();
        match self.at {
            Some(at) if now >= at => Poll::Ready(()),
            Some(at) => {
                // An absolute deadline ([`SimCtx::delay_until`]) arrives
                // here on its first poll: the wake-up must be scheduled
                // just like a relative delay's, or the task sleeps forever.
                if !self.scheduled {
                    self.scheduled = true;
                    self.core.borrow_mut().schedule(at, cx.waker().clone());
                }
                Poll::Pending
            }
            None => {
                let at = now + self.dur;
                self.at = Some(at);
                if now >= at {
                    return Poll::Ready(());
                }
                self.scheduled = true;
                self.core.borrow_mut().schedule(at, cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Future returned by [`SimCtx::yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Summary of a completed [`Simulation::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Simulated time when the run stopped.
    pub end: SimTime,
    /// Total processes spawned over the run.
    pub spawned: u64,
    /// Processes that ran to completion.
    pub completed: u64,
    /// Processes still pending when the run stopped (blocked forever unless
    /// the run hit a time limit).
    pub pending: u64,
    /// Calendar events processed.
    pub events: u64,
}

impl RunReport {
    /// True if every spawned process ran to completion.
    #[must_use]
    pub fn completed_cleanly(&self) -> bool {
        self.pending == 0
    }
}

/// A deterministic discrete-event simulation.
///
/// # Examples
///
/// Two processes handing a token back and forth through a channel:
///
/// ```
/// use mproxy_des::{Channel, Dur, Simulation};
///
/// let sim = Simulation::new();
/// let ctx = sim.ctx();
/// let ch: Channel<u32> = Channel::unbounded();
///
/// let (tx, rx) = (ch.clone(), ch);
/// let ctx2 = ctx.clone();
/// sim.spawn(async move {
///     ctx2.delay(Dur::from_us(5.0)).await;
///     tx.try_send(42).unwrap();
/// });
/// sim.spawn(async move {
///     let v = rx.recv().await.unwrap();
///     assert_eq!(v, 42);
///     assert_eq!(ctx.now().as_us(), 5.0);
/// });
/// assert!(sim.run().completed_cleanly());
/// ```
pub struct Simulation {
    core: Rc<RefCell<Core>>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at time zero.
    #[must_use]
    pub fn new() -> Self {
        Simulation {
            core: Rc::new(RefCell::new(Core::new())),
        }
    }

    /// Returns a handle for spawning processes and reading the clock.
    #[must_use]
    pub fn ctx(&self) -> SimCtx {
        SimCtx {
            core: Rc::clone(&self.core),
        }
    }

    /// Spawns a root process.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        self.core.borrow_mut().spawn(Box::pin(fut))
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.core.borrow().now()
    }

    /// Runs until no process can make further progress.
    pub fn run(&self) -> RunReport {
        self.run_inner(None)
    }

    /// Runs until no process can make further progress or simulated time
    /// would pass `limit`, whichever comes first.
    pub fn run_until(&self, limit: SimTime) -> RunReport {
        self.run_inner(Some(limit))
    }

    fn run_inner(&self, limit: Option<SimTime>) -> RunReport {
        loop {
            // Drain every task that is ready at the current instant.
            loop {
                let next = {
                    let ready = Arc::clone(&self.core.borrow().ready);
                    let popped = ready.lock().expect("ready queue poisoned").pop_front();
                    popped
                };
                match next {
                    Some(id) => self.poll_task(id),
                    None => break,
                }
            }
            // Advance the clock to the next calendar event.
            let wake = {
                let mut core = self.core.borrow_mut();
                match core.calendar.peek() {
                    Some(Reverse(tw)) if limit.is_none_or(|l| tw.at <= l) => {
                        let Reverse(tw) = core.calendar.pop().expect("peeked");
                        core.now = tw.at;
                        core.events += 1;
                        Some(tw.waker)
                    }
                    _ => None,
                }
            };
            match wake {
                Some(w) => w.wake(),
                None => break,
            }
        }
        let core = self.core.borrow();
        RunReport {
            end: core.now,
            spawned: core.spawned,
            completed: core.completed,
            pending: core.spawned - core.completed,
            events: core.events,
        }
    }

    fn poll_task(&self, id: TaskId) {
        // Take the future out so the core is not borrowed while polling
        // (the task will re-borrow it through its `SimCtx`).
        let (fut, waker) = {
            let mut core = self.core.borrow_mut();
            let fut = match core.tasks.get_mut(&id) {
                Some(slot) => match slot.take() {
                    Some(f) => f,
                    // Already being polled higher up the stack; impossible
                    // single-threaded, but be defensive.
                    None => return,
                },
                // Task already completed; stale wake.
                None => return,
            };
            let waker = core.wakers.get(&id).expect("waker exists").clone();
            (fut, waker)
        };
        let mut fut = fut;
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                let mut core = self.core.borrow_mut();
                core.tasks.remove(&id);
                core.wakers.remove(&id);
                core.completed += 1;
            }
            Poll::Pending => {
                self.core.borrow_mut().tasks.insert(id, Some(fut));
            }
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn empty_simulation_ends_at_zero() {
        let sim = Simulation::new();
        let r = sim.run();
        assert_eq!(r.end, SimTime::ZERO);
        assert!(r.completed_cleanly());
        assert_eq!(r.events, 0);
    }

    #[test]
    fn delay_advances_time() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            ctx.delay(Dur::from_us(3.5)).await;
            ctx.delay(Dur::from_us(1.5)).await;
            assert_eq!(ctx.now().as_us(), 5.0);
        });
        let r = sim.run();
        assert_eq!(r.end.as_us(), 5.0);
        assert!(r.completed_cleanly());
    }

    #[test]
    fn delay_until_schedules_its_own_wakeup() {
        // Regression: an absolute-deadline delay must register a calendar
        // event on first poll; it used to return Pending and sleep forever.
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            ctx.delay_until(SimTime::ZERO + Dur::from_us(40.0)).await;
            assert_eq!(ctx.now().as_us(), 40.0);
            // A deadline already in the past completes without moving time.
            ctx.delay_until(SimTime::ZERO + Dur::from_us(10.0)).await;
            assert_eq!(ctx.now().as_us(), 40.0);
        });
        let r = sim.run();
        assert_eq!(r.end.as_us(), 40.0);
        assert!(r.completed_cleanly());
    }

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, us) in [(0u32, 5.0), (1, 2.0), (2, 5.0), (3, 1.0)] {
            let ctx = ctx.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                ctx.delay(Dur::from_us(us)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        // Ties (tasks 0 and 2, both at 5 us) resolve in spawn order.
        assert_eq!(*order.borrow(), vec![3, 1, 0, 2]);
    }

    #[test]
    fn spawned_tasks_run_at_spawn_time() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let hit = Rc::new(Cell::new(0.0f64));
        let hit2 = Rc::clone(&hit);
        sim.spawn(async move {
            ctx.delay(Dur::from_us(7.0)).await;
            let inner_ctx = ctx.clone();
            ctx.spawn(async move {
                hit2.set(inner_ctx.now().as_us());
            });
        });
        sim.run();
        assert_eq!(hit.get(), 7.0);
    }

    #[test]
    fn run_until_respects_limit() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            ctx.delay(Dur::from_us(100.0)).await;
        });
        let r = sim.run_until(SimTime::from_ns(10_000));
        assert_eq!(r.pending, 1);
        assert_eq!(r.end.as_us(), 0.0);
        // Resuming finishes the task.
        let r = sim.run();
        assert!(r.completed_cleanly());
        assert_eq!(r.end.as_us(), 100.0);
    }

    #[test]
    fn zero_delay_completes_without_calendar_event() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        sim.spawn(async move {
            ctx.delay(Dur::ZERO).await;
        });
        let r = sim.run();
        assert!(r.completed_cleanly());
        assert_eq!(r.events, 0);
    }

    #[test]
    fn yield_now_interleaves_same_instant_tasks() {
        let sim = Simulation::new();
        let ctx = sim.ctx();
        let order = Rc::new(RefCell::new(Vec::new()));
        let (o1, o2) = (Rc::clone(&order), Rc::clone(&order));
        let ctx1 = ctx.clone();
        sim.spawn(async move {
            o1.borrow_mut().push("a1");
            ctx1.yield_now().await;
            o1.borrow_mut().push("a2");
        });
        sim.spawn(async move {
            o2.borrow_mut().push("b1");
            ctx.yield_now().await;
            o2.borrow_mut().push("b2");
        });
        sim.run();
        assert_eq!(*order.borrow(), vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn deadlocked_task_reported_pending() {
        let sim = Simulation::new();
        let ch: crate::Channel<u8> = crate::Channel::unbounded();
        sim.spawn(async move {
            let _ = ch.recv().await; // nobody ever sends
        });
        let r = sim.run();
        assert_eq!(r.pending, 1);
        assert!(!r.completed_cleanly());
    }

    #[test]
    fn determinism_two_identical_runs() {
        fn run_once() -> (u64, u64, Vec<u32>) {
            let sim = Simulation::new();
            let ctx = sim.ctx();
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..20u32 {
                let ctx = ctx.clone();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    ctx.delay(Dur::from_ns(u64::from(i % 7) * 100)).await;
                    log.borrow_mut().push(i);
                    ctx.delay(Dur::from_ns(u64::from(i % 3) * 50)).await;
                    log.borrow_mut().push(i + 100);
                });
            }
            let r = sim.run();
            let log = Rc::try_unwrap(log).unwrap().into_inner();
            (r.end.as_ns(), r.events, log)
        }
        assert_eq!(run_once(), run_once());
    }
}
